// Facility planning (paper §I): "a city may need to find the best locations
// for hospitals, in order to minimize the total construction cost and
// ensure that a desired fraction of the population is close to at least one
// location. Due to staff size limits or zoning constraints, at most k such
// objects may be built."
//
// We synthesize a city of blocks described by (borough, zone, density) with
// a land-cost measure. A pattern like {borough=B3, zone=ALL, density=high}
// is a candidate service area whose construction cost is the total land
// cost inside it (you buy every block you serve); SCWSC picks at most k areas covering at least 85% of the
// blocks at minimal total cost.
//
// Run: ./facility_location [k] [coverage]

#include <cstdio>
#include <cstdlib>

#include "src/scwsc.h"

using namespace scwsc;

namespace {

Table MakeCity(std::size_t blocks, std::uint64_t seed) {
  Rng rng(seed);
  ZipfSampler borough(12, 0.8);
  ZipfSampler zone(5, 0.5);
  ZipfSampler density(4, 0.7);
  TableBuilder builder({"borough", "zone", "density"}, "land_cost");
  const char* const zones[] = {"residential", "commercial", "industrial",
                               "mixed", "park"};
  const char* const densities[] = {"low", "medium", "high", "tower"};
  for (std::size_t i = 0; i < blocks; ++i) {
    const std::size_t b = borough.Sample(rng);
    const std::size_t z = zone.Sample(rng);
    const std::size_t d = density.Sample(rng);
    // Land cost correlates with density and a borough premium.
    const double cost = rng.NextLogNormal(1.0 + 0.4 * double(d), 0.5) *
                        (1.0 + 0.05 * double(b));
    SCWSC_CHECK(builder
                    .AddRow({StrFormat("B%zu", b + 1), zones[z],
                             densities[d]},
                            cost)
                    .ok());
  }
  return std::move(builder).Build();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t k = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
  const double coverage = argc > 2 ? std::strtod(argv[2], nullptr) : 0.85;

  Table city = MakeCity(20'000, 7);
  const pattern::CostFunction cost_fn(pattern::CostKind::kSum);

  std::printf("City of %zu blocks; build at most %zu facilities covering at "
              "least %.0f%% of blocks.\n\n",
              city.num_rows(), k, coverage * 100);

  CwscOptions opts{k, coverage};
  pattern::PatternStats stats;
  auto plan = pattern::RunOptimizedCwsc(city, cost_fn, opts, &stats);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }

  std::printf("Selected service areas (CWSC):\n");
  for (const auto& p : plan->patterns) {
    std::size_t blocks = 0;
    for (RowId r = 0; r < city.num_rows(); ++r) {
      if (p.Matches(city, r)) ++blocks;
    }
    std::printf("  %-58s serves %5zu blocks\n", p.ToString(city).c_str(),
                blocks);
  }
  std::printf("Total construction cost %s covering %zu/%zu blocks "
              "(%.1f%%), %zu lattice patterns examined.\n\n",
              FormatNumber(plan->total_cost).c_str(), plan->covered,
              city.num_rows(),
              100.0 * double(plan->covered) / double(city.num_rows()),
              stats.patterns_considered);

  // What an unconstrained weighted set cover would have done.
  auto system = pattern::PatternSystem::Build(city, cost_fn);
  GreedyWscOptions wsc_opts;
  wsc_opts.coverage_fraction = coverage;
  auto unconstrained = RunGreedyWeightedSetCover(system->set_system(),
                                                 wsc_opts);
  if (unconstrained.ok()) {
    std::printf("Without the size constraint, weighted set cover would build "
                "%zu facilities\n(cost %s) — operationally impossible under "
                "the staffing limit of %zu.\n",
                unconstrained->sets.size(),
                FormatNumber(unconstrained->total_cost).c_str(), k);
  }
  return 0;
}
