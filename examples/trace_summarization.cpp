// Network-trace summarization — the paper's own evaluation domain: describe
// a TCP connection log with at most k data-cube patterns that cover a
// desired fraction of the connections while keeping the summary's weight
// (here: the total session time each pattern commits to describe) small.
//
// Also demonstrates the incremental extension (§VII future work): the
// summary is maintained as new connections stream in.
//
// Run: ./trace_summarization [rows]

#include <cstdio>
#include <cstdlib>

#include "src/scwsc.h"

using namespace scwsc;

int main(int argc, char** argv) {
  const std::size_t rows =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 60'000;

  gen::LblSynthSpec spec;
  spec.num_rows = rows;
  spec.seed = 99;
  auto trace = gen::MakeLblSynth(spec);
  if (!trace.ok()) {
    std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
    return 1;
  }
  const pattern::CostFunction cost_fn(pattern::CostKind::kSum);

  std::printf("Summarizing %zu TCP connections with at most 10 patterns "
              "covering 30%%.\n\n",
              trace->num_rows());

  CwscOptions opts{10, 0.3};
  Stopwatch sw;
  auto summary = pattern::RunOptimizedCwsc(*trace, cost_fn, opts);
  const double secs = sw.ElapsedSeconds();
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }

  std::printf("Summary (computed in %.2fs):\n", secs);
  for (const auto& p : summary->patterns) {
    std::printf("  %s\n", p.ToString(*trace).c_str());
  }
  std::printf("covers %zu/%zu connections at total weight %s\n\n",
              summary->covered, trace->num_rows(),
              FormatNumber(summary->total_cost).c_str());

  // Compare with CMC at the same target.
  CmcOptions cmc_opts;
  cmc_opts.k = 10;
  cmc_opts.coverage_fraction = 0.3;
  cmc_opts.relax_coverage = false;
  sw.Reset();
  auto cmc = pattern::RunOptimizedCmc(*trace, cost_fn, cmc_opts);
  if (cmc.ok()) {
    std::printf("CMC reaches the same coverage with %zu patterns at weight "
                "%s in %.2fs.\n\n",
                cmc->patterns.size(), FormatNumber(cmc->total_cost).c_str(),
                sw.ElapsedSeconds());
  }

  // Incremental maintenance over a live stream: feed the same trace in
  // batches and keep the summary valid throughout.
  std::printf("Streaming the trace in 6 batches (repair policy):\n");
  ext::IncrementalOptions inc_opts;
  inc_opts.k = 10;
  inc_opts.coverage_fraction = 0.3;
  inc_opts.policy = ext::RepairPolicy::kRepair;
  ext::IncrementalCwsc inc(
      {"protocol", "localhost", "remotehost", "endstate", "flags"},
      "session_length", cost_fn, inc_opts);

  const std::size_t batch = (trace->num_rows() + 5) / 6;
  for (std::size_t lo = 0; lo < trace->num_rows(); lo += batch) {
    const std::size_t hi = std::min(lo + batch, trace->num_rows());
    std::vector<std::vector<std::string>> batch_rows;
    std::vector<double> batch_measures;
    for (std::size_t r = lo; r < hi; ++r) {
      std::vector<std::string> row;
      for (std::size_t a = 0; a < trace->num_attributes(); ++a) {
        row.push_back(trace->value_name(static_cast<RowId>(r), a));
      }
      batch_rows.push_back(std::move(row));
      batch_measures.push_back(trace->measure(static_cast<RowId>(r)));
    }
    const Status st = inc.Append(batch_rows, batch_measures);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("  after %6zu rows: %2zu patterns, coverage %5.1f%%\n",
                inc.num_rows(), inc.solution().patterns.size(),
                100.0 * double(inc.solution().covered) /
                    double(inc.num_rows()));
  }
  const auto& istats = inc.stats();
  std::printf("maintenance: %zu no-op batches, %zu repairs, %zu full "
              "recomputes\n",
              istats.no_op_batches, istats.repairs, istats.full_recomputes);
  return 0;
}
