// Hierarchical patterns and numerical ranges — the extension §II of the
// paper defers ("Attribute tree hierarchies or numerical ranges may be used
// as well, but are not considered in this paper").
//
// A retail chain summarizes sales: stores roll up into districts and
// regions, and the order value is bucketized into ranges. The hierarchical
// solver can then choose coarse nodes ({region=North}) where they are
// cheap and drill down ({store=s17}, {order in [50..80]}) where precision
// pays — candidate sets a flat pattern solver simply does not have.
//
// Run: ./hierarchical_rollup

#include <cstdio>

#include "src/scwsc.h"

using namespace scwsc;

namespace {

struct SalesData {
  Table table;
  hierarchy::TableHierarchy hierarchy;
};

Result<SalesData> MakeSales(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  constexpr std::size_t kStores = 48;
  ZipfSampler store(kStores, 0.9);
  ZipfSampler category(10, 0.9);
  ZipfSampler channel(3, 0.4);

  TableBuilder builder({"store", "category", "channel"}, "handling_cost");
  const char* const channels[] = {"web", "phone", "walk-in"};
  std::vector<double> order_values;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t st = store.Sample(rng);
    const std::size_t cat = category.Sample(rng);
    const std::size_t ch = channel.Sample(rng);
    // Handling cost depends on the category and channel.
    const double cost =
        rng.NextLogNormal(0.5 + 0.25 * double(cat % 4) + 0.3 * double(ch),
                          0.8);
    SCWSC_RETURN_NOT_OK(builder.AddRow({StrFormat("s%zu", st + 1),
                                        StrFormat("cat%zu", cat + 1),
                                        channels[ch]},
                                       cost));
    order_values.push_back(rng.NextLogNormal(3.5, 1.0));
  }
  Table base = std::move(builder).Build();

  // Bucketize the order value into ranges with a binary merge hierarchy.
  SCWSC_ASSIGN_OR_RETURN(
      hierarchy::BucketizedAttribute bucketized,
      hierarchy::AppendBucketizedAttribute(base, order_values, "order_value",
                                           {.num_buckets = 8}));

  // Stores roll up: 4 stores per district, 4 districts per region.
  std::vector<std::pair<std::string, std::string>> edges;
  for (ValueId v = 0; v < bucketized.table.domain_size(0); ++v) {
    const std::string& name = bucketized.table.dictionary(0).Name(v);
    const std::size_t idx = std::strtoul(name.c_str() + 1, nullptr, 10) - 1;
    edges.emplace_back(name, StrFormat("district%zu", idx / 4 + 1));
  }
  for (std::size_t d = 0; d < (kStores + 3) / 4; ++d) {
    edges.emplace_back(StrFormat("district%zu", d + 1),
                       StrFormat("region%zu", d / 4 + 1));
  }
  SCWSC_ASSIGN_OR_RETURN(
      hierarchy::AttributeHierarchy stores,
      hierarchy::AttributeHierarchy::Build(bucketized.table.dictionary(0),
                                           edges));
  SCWSC_ASSIGN_OR_RETURN(
      hierarchy::TableHierarchy th,
      hierarchy::TableHierarchy::Build(
          bucketized.table, {{0, std::move(stores)},
                             {bucketized.attribute_index,
                              std::move(bucketized.hierarchy)}}));
  return SalesData{std::move(bucketized.table), std::move(th)};
}

}  // namespace

int main() {
  auto sales = MakeSales(25'000, 31);
  if (!sales.ok()) {
    std::fprintf(stderr, "%s\n", sales.status().ToString().c_str());
    return 1;
  }
  const pattern::CostFunction cost_fn(pattern::CostKind::kSum);

  std::printf("Summarizing %zu sales with at most 8 segments covering 50%%.\n",
              sales->table.num_rows());

  // Flat solver: only leaf values and ALL are available.
  CwscOptions opts{8, 0.5};
  auto flat = pattern::RunOptimizedCwsc(sales->table, cost_fn, opts);
  if (!flat.ok()) {
    std::fprintf(stderr, "%s\n", flat.status().ToString().c_str());
    return 1;
  }
  std::printf("\nFlat patterns (cost %s):\n",
              FormatNumber(flat->total_cost).c_str());
  for (const auto& p : flat->patterns) {
    std::printf("  %s\n", p.ToString(sales->table).c_str());
  }

  // Hierarchical solver: districts, regions and order-value ranges too.
  auto hier = hierarchy::RunHierarchicalCwsc(sales->table, sales->hierarchy,
                                             cost_fn, opts);
  if (!hier.ok()) {
    std::fprintf(stderr, "%s\n", hier.status().ToString().c_str());
    return 1;
  }
  std::printf("\nHierarchical patterns (cost %s):\n",
              FormatNumber(hier->total_cost).c_str());
  for (const auto& p : hier->patterns) {
    std::printf("  %s\n", p.ToString(sales->table, sales->hierarchy).c_str());
  }

  std::printf("\nflat: %zu segments cost %s | hierarchical: %zu segments "
              "cost %s (%.0f%% of flat)\n",
              flat->patterns.size(), FormatNumber(flat->total_cost).c_str(),
              hier->patterns.size(), FormatNumber(hier->total_cost).c_str(),
              100.0 * hier->total_cost / flat->total_cost);
  return 0;
}
