// Quickstart: the paper's running example end to end.
//
// Builds Table I (16 real-world entities), materializes Table II (all 24
// patterns with max-cost weights), and contrasts the solutions of plain
// weighted set cover, size-constrained weighted set cover (exact and both
// greedy algorithms) and max coverage — reproducing every number from the
// paper's §I and the §V walk-throughs.
//
// Run: ./quickstart

#include <cstdio>

#include "src/scwsc.h"

using namespace scwsc;

int main() {
  Table table = gen::MakeEntitiesTable();
  const pattern::CostFunction cost_fn(pattern::CostKind::kMax);

  std::printf("== Table I: %zu entities over (Type, Location) ==\n",
              table.num_rows());
  for (RowId r = 0; r < table.num_rows(); ++r) {
    std::printf("  %2u  %-2s %-10s %5.0f\n", r + 1, table.value_name(r, 0).c_str(),
                table.value_name(r, 1).c_str(), table.measure(r));
  }

  auto system = pattern::PatternSystem::Build(table, cost_fn);
  if (!system.ok()) {
    std::fprintf(stderr, "enumeration failed: %s\n",
                 system.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== Table II: all %zu patterns (cost = max Cost, benefit = "
              "#covered) ==\n",
              system->num_patterns());
  for (SetId id = 0; id < system->num_patterns(); ++id) {
    const auto& s = system->set_system().set(id);
    std::printf("  %-34s cost=%-4s benefit=%zu\n",
                system->pattern(id).ToString(table).c_str(),
                FormatNumber(s.cost).c_str(), s.elements.size());
  }

  const double fraction = 9.0 / 16.0;
  std::printf("\n== covering at least 9/16 of the entities ==\n");

  // 1. Plain weighted set cover: cheapest, but 7 patterns.
  GreedyWscOptions wsc_opts;
  wsc_opts.coverage_fraction = fraction;
  auto wsc = RunGreedyWeightedSetCover(system->set_system(), wsc_opts);
  std::printf("weighted set cover : %zu patterns, cost %s  (too many sets!)\n",
              wsc->sets.size(), FormatNumber(wsc->total_cost).c_str());

  // 2. Size-constrained weighted set cover with k = 2 — the paper's problem.
  ExactOptions exact_opts;
  exact_opts.k = 2;
  exact_opts.coverage_fraction = fraction;
  auto exact = SolveExact(system->set_system(), exact_opts);
  std::printf("optimal k=2        : %s\n",
              SolutionToString(system->set_system(), exact->solution).c_str());

  CwscOptions cwsc_opts{2, fraction};
  auto cwsc = pattern::RunOptimizedCwsc(table, cost_fn, cwsc_opts);
  std::printf("CWSC (Fig. 2/3)    : cost %s, %zu patterns:",
              FormatNumber(cwsc->total_cost).c_str(), cwsc->patterns.size());
  for (const auto& p : cwsc->patterns) {
    std::printf(" %s", p.ToString(table).c_str());
  }
  std::printf("\n");

  CmcOptions cmc_opts;
  cmc_opts.k = 2;
  cmc_opts.coverage_fraction = fraction;
  cmc_opts.relax_coverage = false;  // the walk-through folds (1-1/e) into s
  pattern::PatternStats stats;
  auto cmc = pattern::RunOptimizedCmc(table, cost_fn, cmc_opts, &stats);
  std::printf("CMC  (Fig. 1/4)    : cost %s, %zu patterns after %zu budget "
              "rounds (B = %s)\n",
              FormatNumber(cmc->total_cost).c_str(), cmc->patterns.size(),
              stats.budget_rounds, FormatNumber(stats.final_budget).c_str());

  // 3. Max coverage ignores cost entirely.
  GreedyMaxCoverageOptions mc_opts;
  mc_opts.k = 2;
  mc_opts.stop_coverage_fraction = fraction;
  auto maxcov = RunGreedyMaxCoverage(system->set_system(), mc_opts);
  std::printf("max coverage k=2   : cost %s  (pays for the ALL pattern)\n",
              FormatNumber(maxcov->total_cost).c_str());

  std::printf(
      "\nThe size-constrained solutions use 2 patterns at a small premium\n"
      "over the 7-pattern weighted set cover — the paper's motivation.\n");
  return 0;
}
