// Marketing campaigns over business listings (paper §I): pick at most k
// campaigns — each a pattern over (industry, region, size segment) — that
// reach a desired fraction of businesses. Demonstrates the multi-weight
// extension (§VII future work): every campaign has both a media budget and
// a staffing cost, and SweepScalarizations returns the Pareto front of the
// two objectives instead of one number.
//
// Run: ./marketing_campaign

#include <cstdio>

#include "src/scwsc.h"

using namespace scwsc;

namespace {

Table MakeListings(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  ZipfSampler industry(15, 0.9);
  ZipfSampler region(9, 0.6);
  ZipfSampler segment(4, 0.8);
  TableBuilder builder({"industry", "region", "segment"}, "reach_cost");
  const char* const segments[] = {"micro", "small", "medium", "enterprise"};
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t ind = industry.Sample(rng);
    const std::size_t reg = region.Sample(rng);
    const std::size_t seg = segment.Sample(rng);
    const double cost = rng.NextLogNormal(0.5 + 0.5 * double(seg), 0.6);
    SCWSC_CHECK(builder
                    .AddRow({StrFormat("industry%zu", ind + 1),
                             StrFormat("region%zu", reg + 1), segments[seg]},
                            cost)
                    .ok());
  }
  return std::move(builder).Build();
}

}  // namespace

int main() {
  Table listings = MakeListings(15'000, 11);
  const pattern::CostFunction cost_fn(pattern::CostKind::kSum);

  std::printf("Planning campaigns over %zu business listings: at most 5 "
              "campaigns reaching 60%%.\n\n",
              listings.num_rows());

  // Single-objective plan (media budget only) via the pattern solver.
  CwscOptions opts{5, 0.6};
  auto plan = pattern::RunOptimizedCwsc(listings, cost_fn, opts);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("Media-budget-only plan (cost %s):\n",
              FormatNumber(plan->total_cost).c_str());
  for (const auto& p : plan->patterns) {
    std::printf("  %s\n", p.ToString(listings).c_str());
  }

  // Two objectives: media budget (sum of reach costs) and staffing (one
  // team per constant attribute — more specific campaigns need more staff
  // per reached business). Build the multi-weight system from the
  // enumerated patterns of a manageable sample.
  Rng rng(23);
  Table sample = listings.Sample(4'000, rng);
  auto system = pattern::PatternSystem::Build(sample, cost_fn);
  if (!system.ok()) {
    std::fprintf(stderr, "%s\n", system.status().ToString().c_str());
    return 1;
  }

  ext::MultiWeightSetSystem multi(sample.num_rows(), 2);
  for (SetId id = 0; id < system->num_patterns(); ++id) {
    const auto& s = system->set_system().set(id);
    const auto& p = system->pattern(id);
    const double media = s.cost;
    const double staffing =
        (1.0 + 2.0 * static_cast<double>(p.num_constants())) *
        static_cast<double>(s.elements.size()) / 100.0;
    std::vector<ElementId> elements = s.elements;
    SCWSC_CHECK(multi.AddSet(std::move(elements), {media, staffing}).ok());
  }

  std::vector<ext::Scalarizer> scalarizers;
  for (double lambda : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    scalarizers.push_back(
        *ext::Scalarizer::WeightedSum({lambda, 1.0 - lambda}));
  }
  scalarizers.push_back(*ext::Scalarizer::WeightedChebyshev({1.0, 1.0}));

  CwscOptions multi_opts{5, 0.6};
  auto front = ext::SweepScalarizations(multi, multi_opts, scalarizers);
  if (!front.ok()) {
    std::fprintf(stderr, "%s\n", front.status().ToString().c_str());
    return 1;
  }
  std::printf("\nPareto front over (media budget, staffing cost), %zu "
              "non-dominated plans:\n",
              front->size());
  for (const auto& ms : *front) {
    std::printf("  media %-10s staffing %-10s using %zu campaigns\n",
                FormatNumber(ms.objective_costs[0], 5).c_str(),
                FormatNumber(ms.objective_costs[1], 5).c_str(),
                ms.solution.sets.size());
  }
  std::printf("\nPick the operating point that matches this quarter's "
              "budget split.\n");
  return 0;
}
