// scwsc_cli — solve size-constrained weighted set cover on a CSV file.
//
// Usage:
//   scwsc_cli --input data.csv --measure Cost [options]
//
// Options:
//   --input PATH        CSV file (header row; one column is the measure)
//   --measure NAME      numeric measure column used for pattern weights
//   --k N               maximum number of patterns        [default 10]
//   --coverage F        coverage fraction in [0,1]        [default 0.3]
//   --cost max|sum|lp   pattern cost function             [default max]
//   --lp P              exponent for --cost lp            [default 2]
//   --algorithm cwsc|cmc|exact                            [default cwsc]
//   --b F               CMC budget growth                 [default 1]
//   --epsilon F         CMC merged-level variant          [default 0]
//   --strict            CMC: target the full s.n (not (1-1/e)s.n)
//   --delimiter C       CSV delimiter                     [default ,]
//   --deadline-ms N     wall-clock budget; 0 = unlimited  [default 0]
//
// Ctrl-C requests cooperative cancellation: the solver stops at its next
// check point and the best-so-far solution is printed.
//
// Output: one line per selected pattern, then a summary line. Exit code 0
// on success, 1 on error or infeasibility, 2 when a deadline or Ctrl-C
// interrupted the run (a best-so-far partial solution is still printed).

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/common/run_context.h"

#include "src/scwsc.h"

using namespace scwsc;

namespace {

struct CliArgs {
  std::string input;
  std::string measure;
  std::size_t k = 10;
  double coverage = 0.3;
  std::string cost = "max";
  double lp = 2.0;
  std::string algorithm = "cwsc";
  double b = 1.0;
  double epsilon = 0.0;
  bool strict = false;
  char delimiter = ',';
  std::uint64_t deadline_ms = 0;  // 0 = unlimited
};

/// Shared by the solver (deadline) and the SIGINT handler (cancellation).
/// RequestCancel is async-signal-safe: a relaxed store plus one CAS.
RunContext g_run_context;

extern "C" void HandleSigint(int) { g_run_context.RequestCancel(); }

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n(run with --help for usage)\n",
               message.c_str());
  return 1;
}

void PrintUsage() {
  std::printf(
      "scwsc_cli --input data.csv --measure COLUMN [--k N] [--coverage F]\n"
      "          [--cost max|sum|lp] [--lp P] [--algorithm cwsc|cmc|exact]\n"
      "          [--b F] [--epsilon F] [--strict] [--delimiter C]\n"
      "          [--deadline-ms N]\n");
}

Result<CliArgs> ParseArgs(int argc, char** argv) {
  CliArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") {
      PrintUsage();
      std::exit(0);
    }
    if (flag == "--strict") {
      args.strict = true;
      continue;
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("missing value for " + flag);
    }
    const std::string value = argv[++i];
    if (flag == "--input") {
      args.input = value;
    } else if (flag == "--measure") {
      args.measure = value;
    } else if (flag == "--k") {
      SCWSC_ASSIGN_OR_RETURN(auto k, ParseU64(value));
      args.k = static_cast<std::size_t>(k);
    } else if (flag == "--coverage") {
      SCWSC_ASSIGN_OR_RETURN(args.coverage, ParseDouble(value));
    } else if (flag == "--cost") {
      args.cost = value;
    } else if (flag == "--lp") {
      SCWSC_ASSIGN_OR_RETURN(args.lp, ParseDouble(value));
    } else if (flag == "--algorithm") {
      args.algorithm = value;
    } else if (flag == "--b") {
      SCWSC_ASSIGN_OR_RETURN(args.b, ParseDouble(value));
    } else if (flag == "--epsilon") {
      SCWSC_ASSIGN_OR_RETURN(args.epsilon, ParseDouble(value));
    } else if (flag == "--deadline-ms") {
      SCWSC_ASSIGN_OR_RETURN(args.deadline_ms, ParseU64(value));
    } else if (flag == "--delimiter") {
      if (value.size() != 1) {
        return Status::InvalidArgument("--delimiter takes one character");
      }
      args.delimiter = value[0];
    } else {
      return Status::InvalidArgument("unknown flag " + flag);
    }
  }
  if (args.input.empty()) return Status::InvalidArgument("--input required");
  if (args.measure.empty()) {
    return Status::InvalidArgument("--measure required");
  }
  return args;
}

Result<pattern::CostFunction> MakeCost(const CliArgs& args) {
  if (args.cost == "max") {
    return pattern::CostFunction(pattern::CostKind::kMax);
  }
  if (args.cost == "sum") {
    return pattern::CostFunction(pattern::CostKind::kSum);
  }
  if (args.cost == "lp") return pattern::CostFunction::LpNorm(args.lp);
  return Status::InvalidArgument("unknown cost function '" + args.cost + "'");
}

void PrintSolution(const Table& table, const pattern::PatternSolution& s) {
  for (const auto& p : s.patterns) {
    std::printf("%s\n", p.ToString(table).c_str());
  }
  std::printf("# %zu patterns, total cost %s, covered %zu/%zu (%.2f%%)\n",
              s.patterns.size(), FormatNumber(s.total_cost).c_str(), s.covered,
              table.num_rows(),
              100.0 * static_cast<double>(s.covered) /
                  static_cast<double>(table.num_rows() == 0
                                          ? 1
                                          : table.num_rows()));
}

}  // namespace

int main(int argc, char** argv) {
  auto args = ParseArgs(argc, argv);
  if (!args.ok()) return Fail(args.status().ToString());

  csv::ReadOptions read_opts;
  read_opts.measure_column = args->measure;
  read_opts.delimiter = args->delimiter;
  auto table = csv::ReadFile(args->input, read_opts);
  if (!table.ok()) return Fail(table.status().ToString());

  auto cost_fn = MakeCost(*args);
  if (!cost_fn.ok()) return Fail(cost_fn.status().ToString());

  if (args->deadline_ms > 0) {
    g_run_context.SetDeadline(std::chrono::milliseconds(args->deadline_ms));
  }
  std::signal(SIGINT, HandleSigint);

  // Prints the best-so-far solution an interruption Status carries and
  // reports how the run was cut short. Exit code 2.
  auto report_interrupted = [&](const Table& t,
                                const pattern::PatternSolution& partial,
                                const Status& status) {
    PrintSolution(t, partial);
    std::printf("# interrupted (%s): best-so-far solution above, %zu "
                "patterns chosen, %zu rows covered\n",
                TripKindToString(partial.provenance.trip),
                partial.provenance.sets_chosen,
                partial.provenance.coverage_reached);
    std::fprintf(stderr, "warning: %s\n", status.ToString().c_str());
    return 2;
  };

  Stopwatch sw;
  if (args->algorithm == "cwsc") {
    CwscOptions opts{args->k, args->coverage};
    opts.run_context = &g_run_context;
    pattern::PatternStats stats;
    auto solution = pattern::RunOptimizedCwsc(*table, *cost_fn, opts, &stats);
    if (!solution.ok()) {
      const Status& st = solution.status();
      if (const auto* partial = st.payload<pattern::PatternSolution>();
          partial != nullptr && st.IsInterruption()) {
        return report_interrupted(*table, *partial, st);
      }
      return Fail(st.ToString());
    }
    PrintSolution(*table, *solution);
    std::printf("# cwsc: %.3fs, %zu patterns considered\n",
                sw.ElapsedSeconds(), stats.patterns_considered);
    return 0;
  }
  if (args->algorithm == "cmc") {
    CmcOptions opts;
    opts.k = args->k;
    opts.coverage_fraction = args->coverage;
    opts.b = args->b;
    opts.epsilon = args->epsilon;
    opts.relax_coverage = !args->strict;
    opts.run_context = &g_run_context;
    pattern::PatternStats stats;
    auto solution = pattern::RunOptimizedCmc(*table, *cost_fn, opts, &stats);
    if (!solution.ok()) {
      const Status& st = solution.status();
      if (const auto* partial = st.payload<pattern::PatternSolution>();
          partial != nullptr && st.IsInterruption()) {
        return report_interrupted(*table, *partial, st);
      }
      return Fail(st.ToString());
    }
    PrintSolution(*table, *solution);
    std::printf("# cmc: %.3fs, %zu budget rounds (B = %s), %zu patterns "
                "considered\n",
                sw.ElapsedSeconds(), stats.budget_rounds,
                FormatNumber(stats.final_budget).c_str(),
                stats.patterns_considered);
    return 0;
  }
  if (args->algorithm == "exact") {
    auto system = pattern::PatternSystem::Build(*table, *cost_fn);
    if (!system.ok()) return Fail(system.status().ToString());
    ExactOptions opts;
    opts.k = args->k;
    opts.coverage_fraction = args->coverage;
    opts.run_context = &g_run_context;
    auto result = SolveExact(system->set_system(), opts);
    if (!result.ok()) {
      const Status& st = result.status();
      if (const auto* partial = st.payload<ExactResult>();
          partial != nullptr && st.IsInterruption()) {
        pattern::PatternSolution ps =
            system->ToPatternSolution(partial->solution);
        ps.provenance = partial->solution.provenance;
        return report_interrupted(*table, ps, st);
      }
      return Fail(st.ToString());
    }
    PrintSolution(*table, system->ToPatternSolution(result->solution));
    std::printf("# exact: %.3fs, %llu branch-and-bound nodes\n",
                sw.ElapsedSeconds(),
                static_cast<unsigned long long>(result->nodes));
    return 0;
  }
  return Fail("unknown algorithm '" + args->algorithm + "'");
}
