// scwsc_cli — solve size-constrained weighted set cover on a CSV file.
//
// Usage:
//   scwsc_cli --input data.csv --measure Cost [options]
//   scwsc_cli --list-solvers
//
// Options:
//   --input PATH        CSV file (header row; one column is the measure)
//   --measure NAME      numeric measure column used for pattern weights
//   --solver NAME       any registered solver (see --list-solvers)
//                                                         [default opt-cwsc]
//   --k N               maximum number of patterns        [default 10]
//   --coverage F        coverage fraction in [0,1]        [default 0.3]
//   --cost max|sum|lp   pattern cost function             [default max]
//   --lp P              exponent for --cost lp            [default 2]
//   --opt KEY=VALUE     solver-specific option (repeatable; unknown keys
//                       are rejected with the accepted list)
//   --hierarchy flat    attach flat attribute hierarchies, enabling the
//                       hierarchical solvers (hcwsc, hcmc)
//   --delimiter C       CSV delimiter                     [default ,]
//   --deadline-ms N     wall-clock budget; 0 = unlimited  [default 0]
//   --trace-out PATH    write a Chrome trace-event JSON of the solve
//                       (load in Perfetto or chrome://tracing)
//   --metrics-out PATH  write solver metrics as JSON (or CSV when PATH
//                       ends in .csv)
//   --batch PATH        run a jobs.json file through the SolveScheduler
//                       instead of a single solve (see docs/serving.md).
//                       A top-level "faults" object installs a seeded
//                       FaultPlan for the run and arms the scheduler's
//                       retry / breaker / watchdog machinery.
//   --batch-out PATH    where --batch writes its JSON report
//                                               [default batch_results.json]
//   --threads N         scheduler worker threads for --batch; 0 = all cores
//   --telemetry-out P   continuous telemetry for --batch: a JSONL time
//                       series appended at P plus a Prometheus text
//                       exposition rewritten at P.prom each tick
//   --slo RULE          SLO rule evaluated each telemetry tick
//                       (repeatable; e.g. "p99_latency_ms<=250",
//                       "error_rate<=0.01" — see docs/observability.md).
//                       Violations bump serve.slo.violations and dump the
//                       flight recorder as Chrome-trace JSON. Combines
//                       with a batch file's "slo" object. A "tenant=NAME:"
//                       prefix scopes the rule to that tenant's metrics.
//   --serve PORT        run the socket front end (docs/serving.md) over the
//                       loaded instance, published as snapshot "live";
//                       0 picks an ephemeral port (printed). Ctrl-C stops.
//   --tenant NAME       tenant id stamped on the single-solve request
//   --tenant-quota NAME=RATE[:BURST[:WEIGHT]]
//                       per-tenant admission quota (requests/second) and
//                       fair-share weight for --batch / --serve; any use
//                       enables tenant-aware scheduling (repeatable)
//   --json              with --list-solvers: machine-readable OptionsSpec
//                       tables (the same schema the socket server's
//                       list_solvers request returns)
//
// Legacy aliases kept for scripts: --algorithm cwsc|cmc|exact maps to
// opt-cwsc/opt-cmc/exact, and --b/--epsilon/--strict feed the CMC options.
//
// Ctrl-C requests cooperative cancellation: the solver stops at its next
// check point and the best-so-far solution is printed.
//
// Output: one line per selected pattern, then a summary line. Exit code 0
// on success, 1 on error or infeasibility, 2 when a deadline or Ctrl-C
// interrupted the run (a best-so-far partial solution is still printed).

#include <chrono>
#include <csignal>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/fault.h"
#include "src/common/run_context.h"
#include "src/common/thread_pool.h"
#include "src/serve/batch.h"
#include "src/serve/server.h"
#include "src/serve/wire.h"

#include "src/scwsc.h"

using namespace scwsc;

namespace {

struct CliArgs {
  std::string input;
  std::string measure;
  bool list_solvers = false;
  bool json = false;        // --list-solvers --json: machine-readable form
  std::string solver = "opt-cwsc";
  std::size_t k = 10;
  double coverage = 0.3;
  std::string cost = "max";
  double lp = 2.0;
  std::vector<std::string> opts;  // raw key=value items
  bool flat_hierarchy = false;
  char delimiter = ',';
  std::uint64_t deadline_ms = 0;  // 0 = unlimited
  std::string trace_out;    // empty = tracing off
  std::string metrics_out;  // empty = no metrics dump
  std::string batch;        // jobs.json path; empty = single-solve mode
  std::string batch_out = "batch_results.json";
  std::string telemetry_out;            // JSONL path; empty = no telemetry
  std::vector<std::string> slo_rules;   // raw --slo values, parsed later
  unsigned threads = 0;     // 0 = hardware concurrency
  std::size_t shards = 1;   // element-range shards for the snapshot
  std::string tenant;       // single-solve tenant id (wire "tenant" field)
  /// Raw --tenant-quota NAME=RATE[:BURST[:WEIGHT]] items; any present
  /// enables the scheduler's tenant policy for --batch / --serve.
  std::vector<std::string> tenant_quotas;
  int serve_port = -1;  // --serve PORT; -1 = not serving, 0 = ephemeral
};

/// Shared by the solver (deadline) and the SIGINT handler (cancellation).
/// RequestCancel is async-signal-safe: a relaxed store plus one CAS.
RunContext g_run_context;

extern "C" void HandleSigint(int) { g_run_context.RequestCancel(); }

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n(run with --help for usage)\n",
               message.c_str());
  return 1;
}

void PrintUsage() {
  std::printf(
      "scwsc_cli --input data.csv --measure COLUMN [--solver NAME] [--k N]\n"
      "          [--coverage F] [--cost max|sum|lp] [--lp P]\n"
      "          [--opt KEY=VALUE]... [--hierarchy flat] [--delimiter C]\n"
      "          [--deadline-ms N] [--trace-out PATH] [--metrics-out PATH]\n"
      "          [--shards N]\n"
      "          [--batch jobs.json [--batch-out PATH] [--threads N]\n"
      "           [--telemetry-out PATH] [--slo RULE]...]\n"
      "          [--serve PORT [--tenant-quota NAME=RATE[:BURST[:WEIGHT]]]...]\n"
      "          [--tenant NAME]\n"
      "scwsc_cli --list-solvers [--json]\n");
}

int ListSolvers(bool as_json) {
  if (as_json) {
    // Machine-readable form: the same OptionsSpec tables the socket
    // server's list_solvers request returns (serve::SolverListToJson), so
    // scripts and socket clients read one schema.
    std::printf("%s\n", serve::SolverListToJson().Dump().c_str());
    return 0;
  }
  std::printf("%-22s %-32s %s\n", "NAME", "CAPABILITIES", "SUMMARY");
  for (const api::SolverInfo& info : api::SolverRegistry::Global().List()) {
    std::printf("%-22s %-32s %s\n", info.name.c_str(),
                api::CapabilitiesToString(info.capabilities).c_str(),
                info.summary.c_str());
    // One line per option, straight from the registered OptionsSpec.
    for (const api::OptionSpec& opt : info.options) {
      std::string meta(api::OptionTypeToString(opt.type));
      if (opt.required) {
        meta += ", required";
      } else {
        meta += ", default " + opt.default_value;
      }
      if (!opt.deprecated_alias.empty()) {
        meta += ", alias " + opt.deprecated_alias;
      }
      std::printf("%-22s   --opt %s=<%s>  %s\n", "", opt.name.c_str(),
                  meta.c_str(), opt.help.c_str());
    }
  }
  return 0;
}

Result<CliArgs> ParseArgs(int argc, char** argv) {
  CliArgs args;
  std::string legacy_algorithm;
  std::vector<std::string> legacy_cmc;  // from --b/--epsilon/--strict
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") {
      PrintUsage();
      std::exit(0);
    }
    if (flag == "--list-solvers") {
      args.list_solvers = true;
      continue;
    }
    if (flag == "--json") {
      args.json = true;
      continue;
    }
    if (flag == "--strict") {
      legacy_cmc.push_back("strict=true");
      continue;
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("missing value for " + flag);
    }
    const std::string value = argv[++i];
    if (flag == "--input") {
      args.input = value;
    } else if (flag == "--measure") {
      args.measure = value;
    } else if (flag == "--solver") {
      args.solver = value;
    } else if (flag == "--k") {
      SCWSC_ASSIGN_OR_RETURN(auto k, ParseU64(value));
      args.k = static_cast<std::size_t>(k);
    } else if (flag == "--coverage") {
      SCWSC_ASSIGN_OR_RETURN(args.coverage, ParseDouble(value));
    } else if (flag == "--cost") {
      args.cost = value;
    } else if (flag == "--lp") {
      SCWSC_ASSIGN_OR_RETURN(args.lp, ParseDouble(value));
    } else if (flag == "--opt") {
      args.opts.push_back(value);
    } else if (flag == "--hierarchy") {
      if (value != "flat") {
        return Status::InvalidArgument("--hierarchy only supports 'flat'");
      }
      args.flat_hierarchy = true;
    } else if (flag == "--algorithm") {
      legacy_algorithm = value;
    } else if (flag == "--b") {
      legacy_cmc.push_back("b=" + value);
    } else if (flag == "--epsilon") {
      legacy_cmc.push_back("epsilon=" + value);
    } else if (flag == "--deadline-ms") {
      SCWSC_ASSIGN_OR_RETURN(args.deadline_ms, ParseU64(value));
    } else if (flag == "--trace-out") {
      args.trace_out = value;
    } else if (flag == "--metrics-out") {
      args.metrics_out = value;
    } else if (flag == "--batch") {
      args.batch = value;
    } else if (flag == "--batch-out") {
      args.batch_out = value;
    } else if (flag == "--telemetry-out") {
      args.telemetry_out = value;
    } else if (flag == "--slo") {
      // Parse eagerly so a typo fails at the command line, not mid-batch.
      SCWSC_ASSIGN_OR_RETURN(serve::SloRule parsed, serve::ParseSloRule(value));
      (void)parsed;
      args.slo_rules.push_back(value);
    } else if (flag == "--threads") {
      SCWSC_ASSIGN_OR_RETURN(auto threads, ParseU64(value));
      args.threads = static_cast<unsigned>(threads);
    } else if (flag == "--tenant") {
      args.tenant = value;
    } else if (flag == "--tenant-quota") {
      args.tenant_quotas.push_back(value);
    } else if (flag == "--serve") {
      SCWSC_ASSIGN_OR_RETURN(auto port, ParseU64(value));
      if (port > 65535) {
        return Status::InvalidArgument("--serve port must be <= 65535");
      }
      args.serve_port = static_cast<int>(port);
    } else if (flag == "--shards") {
      SCWSC_ASSIGN_OR_RETURN(auto shards, ParseU64(value));
      if (shards == 0) {
        return Status::InvalidArgument("--shards must be >= 1");
      }
      args.shards = static_cast<std::size_t>(shards);
    } else if (flag == "--delimiter") {
      if (value.size() != 1) {
        return Status::InvalidArgument("--delimiter takes one character");
      }
      args.delimiter = value[0];
    } else {
      return Status::InvalidArgument("unknown flag " + flag);
    }
  }
  if (!legacy_algorithm.empty()) {
    if (legacy_algorithm == "cwsc") {
      args.solver = "opt-cwsc";
    } else if (legacy_algorithm == "cmc") {
      args.solver = "opt-cmc";
    } else if (legacy_algorithm == "exact") {
      args.solver = "exact";
    } else {
      return Status::InvalidArgument("unknown algorithm '" + legacy_algorithm +
                                     "'");
    }
  }
  // The legacy CMC flags are forwarded only to solvers that understand
  // them, matching the old CLI (which silently ignored --b under cwsc).
  if (const api::SolverInfo* info =
          api::SolverRegistry::Global().Find(args.solver)) {
    for (const std::string& item : legacy_cmc) {
      const std::string key = item.substr(0, item.find('='));
      if (api::FindOption(info->options, key) != nullptr) {
        args.opts.push_back(item);
      }
    }
  }
  if (args.list_solvers) return args;  // no input needed
  if (args.input.empty()) return Status::InvalidArgument("--input required");
  if (args.measure.empty()) {
    return Status::InvalidArgument("--measure required");
  }
  return args;
}

/// Parses --tenant-quota NAME=RATE[:BURST[:WEIGHT]] items into a policy;
/// any item enables tenancy for the scheduler modes (--batch, --serve).
Result<serve::TenantPolicy> MakeTenantPolicy(const CliArgs& args) {
  serve::TenantPolicy policy;
  for (const std::string& raw : args.tenant_quotas) {
    const std::size_t eq = raw.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument(
          "--tenant-quota expects NAME=RATE[:BURST[:WEIGHT]], got '" + raw +
          "'");
    }
    const std::string name = raw.substr(0, eq);
    serve::TenantQuota quota;
    std::vector<double> parts;
    std::size_t begin = eq + 1;
    while (begin <= raw.size()) {
      const std::size_t colon = raw.find(':', begin);
      const std::string piece =
          raw.substr(begin, colon == std::string::npos ? colon : colon - begin);
      SCWSC_ASSIGN_OR_RETURN(double parsed, ParseDouble(piece));
      parts.push_back(parsed);
      if (colon == std::string::npos) break;
      begin = colon + 1;
    }
    if (parts.empty() || parts.size() > 3) {
      return Status::InvalidArgument(
          "--tenant-quota takes 1-3 ':'-separated numbers after '='");
    }
    quota.rate_per_second = parts[0];
    if (parts.size() > 1) quota.burst = parts[1];
    if (parts.size() > 2) quota.weight = parts[2];
    policy.quotas[name] = quota;
    policy.enabled = true;
  }
  return policy;
}

Result<pattern::CostFunction> MakeCost(const CliArgs& args) {
  if (args.cost == "max") {
    return pattern::CostFunction(pattern::CostKind::kMax);
  }
  if (args.cost == "sum") {
    return pattern::CostFunction(pattern::CostKind::kSum);
  }
  if (args.cost == "lp") return pattern::CostFunction::LpNorm(args.lp);
  return Status::InvalidArgument("unknown cost function '" + args.cost + "'");
}

void PrintResult(std::size_t num_rows, const api::SolveResult& result) {
  for (const std::string& label : result.labels) {
    std::printf("%s\n", label.c_str());
  }
  std::printf("# %zu patterns, total cost %s, covered %zu/%zu (%.2f%%)\n",
              result.labels.size(), FormatNumber(result.total_cost).c_str(),
              result.covered, num_rows,
              100.0 * static_cast<double>(result.covered) /
                  static_cast<double>(num_rows == 0 ? 1 : num_rows));
}

void PrintCounters(const std::string& solver, const api::SolveResult& result) {
  std::string extras;
  const api::SolveCounters& c = result.counters;
  if (c.budget_rounds > 0) {
    extras += StrFormat(", %zu budget rounds (B = %s)", c.budget_rounds,
                        FormatNumber(c.final_budget).c_str());
  }
  if (c.nodes > 0) {
    extras += StrFormat(", %llu branch-and-bound nodes",
                        static_cast<unsigned long long>(c.nodes));
  }
  if (c.sets_considered > 0) {
    extras += StrFormat(", %zu candidates considered", c.sets_considered);
  }
  if (c.lp_lower_bound > 0.0) {
    extras += StrFormat(", LP lower bound %s (size excess %zu)",
                        FormatNumber(c.lp_lower_bound).c_str(),
                        c.cardinality_violation);
  }
  std::printf("# %s: %.3fs%s\n", solver.c_str(), result.seconds,
              extras.c_str());
}

/// --batch mode: run every job in a jobs.json file through a SolveScheduler
/// over the already-loaded instance, write the JSON report, and print a
/// one-line aggregate summary. Exit code 0 when every job succeeded.
int RunBatchMode(const CliArgs& args, api::InstancePtr instance) {
  auto spec = serve::ParseBatchSpec(args.batch, instance);
  if (!spec.ok()) return Fail(spec.status().ToString());
  const std::size_t num_jobs = spec->jobs.size();

  std::optional<obs::TraceSession> trace;
  if (!args.trace_out.empty() || !args.metrics_out.empty()) trace.emplace();

  ThreadPool pool(args.threads);  // 0 = hardware concurrency
  serve::SchedulerOptions scheduler_options;
  scheduler_options.trace = trace.has_value() ? &*trace : nullptr;
  {
    auto tenant_policy = MakeTenantPolicy(args);
    if (!tenant_policy.ok()) return Fail(tenant_policy.status().ToString());
    scheduler_options.tenant = *std::move(tenant_policy);
  }
  if (spec->faults.configured) {
    // A chaos run arms the recovery machinery alongside the faults; a
    // fault-free batch keeps the inert defaults (bit-identical serve path).
    serve::ResilienceOptions& res = scheduler_options.resilience;
    res.retry.max_attempts = 3;
    res.breaker.enabled = true;
    res.ladder = serve::DegradationLadder::Default();
    res.watchdog = true;
  }

  // Telemetry: the batch file's "slo" object and the --telemetry-out /
  // --slo flags merge into one pump configuration.
  const bool want_telemetry = spec->slo.configured ||
                              !args.telemetry_out.empty() ||
                              !args.slo_rules.empty();
  if (want_telemetry) {
    serve::TelemetryOptions& tel = scheduler_options.telemetry;
    tel.jsonl_path = args.telemetry_out;
    if (!args.telemetry_out.empty()) {
      tel.prom_path = args.telemetry_out + ".prom";
    }
    tel.interval_seconds =
        (spec->slo.configured ? spec->slo.interval_ms : 250.0) / 1000.0;
    tel.slo_rules = spec->slo.rules;
    for (const std::string& raw : args.slo_rules) {
      auto rule = serve::ParseSloRule(raw);  // validated at parse time
      if (rule.ok()) tel.slo_rules.push_back(*std::move(rule));
    }
    tel.slo_dump_path = spec->slo.dump_path;
  }
  serve::SolveScheduler scheduler(&pool, scheduler_options);

  // Key the loaded table by content in the scheduler's snapshot cache: a
  // frontend reloading the same CSV reuses the cached snapshot (and its
  // lazily built pattern enumeration) instead of the fresh copy.
  const std::uint64_t hash = serve::ContentHash(*instance);
  if (api::InstancePtr cached = scheduler.snapshot_cache().Lookup(hash)) {
    instance = std::move(cached);
  } else {
    scheduler.snapshot_cache().Insert(hash, instance);
  }

  // The fault plan stays installed for exactly the span of the batch run.
  std::optional<ScopedFaultPlan> chaos;
  if (spec->faults.configured) {
    chaos.emplace(spec->faults.seed);
    spec->faults.ApplyTo(chaos->plan());
  }

  auto report = serve::RunBatch(std::move(spec->jobs), scheduler);
  if (!report.ok()) return Fail(report.status().ToString());
  if (Status s = serve::WriteJsonFile(*report, args.batch_out); !s.ok()) {
    return Fail(s.ToString());
  }

  if (trace.has_value() && !args.trace_out.empty()) {
    if (Status s = obs::WriteChromeTraceJson(*trace, args.trace_out);
        !s.ok()) {
      std::fprintf(stderr, "warning: --trace-out: %s\n", s.ToString().c_str());
    }
  }
  if (trace.has_value() && !args.metrics_out.empty()) {
    if (Status s = obs::WriteMetricsFile(trace->metrics(), args.metrics_out);
        !s.ok()) {
      std::fprintf(stderr, "warning: --metrics-out: %s\n",
                   s.ToString().c_str());
    }
  }

  const serve::JsonValue* aggregate = report->Find("aggregate");
  double failed = 0.0, jobs_per_second = 0.0, result_hits = 0.0;
  if (aggregate != nullptr) {
    if (const auto* v = aggregate->Find("failed")) failed = v->as_number();
    if (const auto* v = aggregate->Find("jobs_per_second")) {
      jobs_per_second = v->as_number();
    }
    if (const auto* v = aggregate->Find("result_cache_hits")) {
      result_hits = v->as_number();
    }
  }
  std::printf(
      "# batch: %zu jobs on %u threads, %.1f jobs/s, %.0f result-cache hits, "
      "%.0f failed -> %s\n",
      num_jobs, pool.size(), jobs_per_second, result_hits, failed,
      args.batch_out.c_str());
  if (want_telemetry && aggregate != nullptr) {
    double violations = 0.0;
    if (const auto* v = aggregate->Find("slo_violations")) {
      violations = v->as_number();
    }
    std::printf("# telemetry: %.0f SLO violation(s)%s%s\n", violations,
                args.telemetry_out.empty() ? "" : " -> ",
                args.telemetry_out.c_str());
  }
  return failed > 0.0 ? 1 : 0;
}

/// --serve mode: publish the loaded instance as snapshot "live" and run the
/// socket front end (docs/serving.md) until SIGINT. Solve and delta
/// requests name it with "snapshot": "live"; deltas advance the head
/// in-place while in-flight solves keep the version they resolved.
int RunServeMode(const CliArgs& args, api::InstancePtr instance) {
  ThreadPool pool(args.threads);  // 0 = hardware concurrency
  serve::SchedulerOptions scheduler_options;
  {
    auto tenant_policy = MakeTenantPolicy(args);
    if (!tenant_policy.ok()) return Fail(tenant_policy.status().ToString());
    scheduler_options.tenant = *std::move(tenant_policy);
  }
  const bool want_telemetry =
      !args.telemetry_out.empty() || !args.slo_rules.empty();
  if (want_telemetry) {
    serve::TelemetryOptions& tel = scheduler_options.telemetry;
    tel.jsonl_path = args.telemetry_out;
    if (!args.telemetry_out.empty()) {
      tel.prom_path = args.telemetry_out + ".prom";
    }
    tel.interval_seconds = 0.25;
    for (const std::string& raw : args.slo_rules) {
      auto rule = serve::ParseSloRule(raw);  // validated at parse time
      if (rule.ok()) tel.slo_rules.push_back(*std::move(rule));
    }
  }
  serve::SolveScheduler scheduler(&pool, scheduler_options);
  serve::SnapshotStore store(&scheduler.snapshot_cache());
  if (Status s = store.Put("live", std::move(instance)); !s.ok()) {
    return Fail(s.ToString());
  }

  serve::ServerOptions server_options;
  server_options.port = args.serve_port;
  serve::SolveServer server(&scheduler, &store, server_options);
  if (Status s = server.Start(); !s.ok()) return Fail(s.ToString());
  std::printf("# serving snapshot \"live\" on 127.0.0.1:%d (Ctrl-C stops)\n",
              server.port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSigint);
  while (g_run_context.Check() == TripKind::kNone) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.Stop();
  scheduler.Drain();
  std::printf("# serve: stopped\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = ParseArgs(argc, argv);
  if (!args.ok()) return Fail(args.status().ToString());
  if (args->list_solvers) return ListSolvers(args->json);

  csv::ReadOptions read_opts;
  read_opts.measure_column = args->measure;
  read_opts.delimiter = args->delimiter;
  auto table = csv::ReadFile(args->input, read_opts);
  if (!table.ok()) return Fail(table.status().ToString());

  auto cost_fn = MakeCost(*args);
  if (!cost_fn.ok()) return Fail(cost_fn.status().ToString());

  const std::size_t num_rows = table->num_rows();
  std::optional<hierarchy::TableHierarchy> hier;
  if (args->flat_hierarchy) hier = hierarchy::TableHierarchy::Flat(*table);
  ShardingOptions sharding;
  sharding.num_shards = args->shards;
  auto instance = api::InstanceSnapshot::FromTable(
      *std::move(table), *std::move(cost_fn), std::move(hier), {}, sharding);
  if (!instance.ok()) return Fail(instance.status().ToString());

  if (args->serve_port >= 0) return RunServeMode(*args, *instance);
  if (!args->batch.empty()) return RunBatchMode(*args, *instance);

  auto built = api::SolveRequest::Builder(*instance)
                   .WithK(args->k)
                   .WithCoverage(args->coverage)
                   .WithOptions(args->opts)
                   .WithLabel("cli")
                   .WithTenant(args->tenant)
                   .Build();
  if (!built.ok()) return Fail(built.status().ToString());
  api::SolveRequest request = *std::move(built);

  if (args->deadline_ms > 0) {
    g_run_context.SetDeadline(std::chrono::milliseconds(args->deadline_ms));
  }
  std::signal(SIGINT, HandleSigint);

  // One trace session per solve; written out on success AND on interruption
  // so a deadline-trimmed run still leaves its profile behind.
  std::optional<obs::TraceSession> trace;
  if (!args->trace_out.empty() || !args->metrics_out.empty()) {
    trace.emplace();
    request.trace = &*trace;
  }
  auto write_observability = [&] {
    if (!trace.has_value()) return;
    if (!args->trace_out.empty()) {
      if (Status s = obs::WriteChromeTraceJson(*trace, args->trace_out);
          !s.ok()) {
        std::fprintf(stderr, "warning: --trace-out: %s\n",
                     s.ToString().c_str());
      }
    }
    if (!args->metrics_out.empty()) {
      if (Status s = obs::WriteMetricsFile(trace->metrics(),
                                           args->metrics_out);
          !s.ok()) {
        std::fprintf(stderr, "warning: --metrics-out: %s\n",
                     s.ToString().c_str());
      }
    }
  };

  auto result = api::SolverRegistry::Global().Solve(args->solver, request,
                                                    &g_run_context);
  write_observability();
  if (!result.ok()) {
    const Status& status = result.status();
    if (const auto* partial = status.payload<api::SolveResult>();
        partial != nullptr && status.IsInterruption()) {
      PrintResult(num_rows, *partial);
      std::printf("# interrupted (%s): best-so-far solution above, %zu "
                  "patterns chosen, %zu rows covered\n",
                  TripKindToString(partial->provenance.trip),
                  partial->provenance.sets_chosen,
                  partial->provenance.coverage_reached);
      std::fprintf(stderr, "warning: %s\n", status.ToString().c_str());
      return 2;
    }
    return Fail(status.ToString());
  }

  PrintResult(num_rows, *result);
  PrintCounters(args->solver, *result);
  return 0;
}
