// Incremental size-constrained weighted set cover (paper §VII future work).
//
// "One interesting direction for future work is to study an incremental
// version of size-constrained weighted set cover, in which the solution
// must be continuously maintained as new elements arrive."
//
// IncrementalCwsc maintains a pattern solution over a growing table of
// records. After each appended batch it re-evaluates the current solution
// against the enlarged data set (benefits can only grow, costs can grow
// under max/sum/lp weights, and the coverage *fraction* can drop as
// uncovered records arrive) and, when the coverage constraint is violated,
// repairs it under one of two policies:
//
//  - kRecompute: run optimized CWSC from scratch on the current table —
//    the quality reference.
//  - kRepair: keep the selected patterns and spend the remaining size
//    budget k - |S| on the *residual* problem (optimized CWSC over the
//    still-uncovered rows); falls back to a full recompute when the budget
//    is exhausted or the residual run fails. Much cheaper on streams whose
//    distribution drifts slowly; quality is re-auditable via solution().
//
// The table is rebuilt per batch (columnar storage is immutable here); the
// incremental savings target the *solver* work, which dominates.

#ifndef SCWSC_EXT_INCREMENTAL_H_
#define SCWSC_EXT_INCREMENTAL_H_

#include <optional>
#include <string>
#include <vector>

#include "src/api/solver.h"
#include "src/common/result.h"
#include "src/core/cwsc.h"
#include "src/pattern/cost.h"
#include "src/pattern/opt_cwsc.h"
#include "src/pattern/stats.h"
#include "src/table/builder.h"

namespace scwsc {
namespace ext {

enum class RepairPolicy { kRecompute, kRepair };

struct IncrementalOptions {
  std::size_t k = 10;
  double coverage_fraction = 0.3;
  RepairPolicy policy = RepairPolicy::kRepair;
  /// Deadline / cancellation / work-budget context forwarded into every
  /// embedded optimized-CWSC run (nullptr = unlimited). On a trip Append
  /// returns the interruption Status; the maintained solution stays the one
  /// from the last successful Append (possibly infeasible for the enlarged
  /// table — re-auditable via solution()).
  const RunContext* run_context = nullptr;
};

struct IncrementalStats {
  std::size_t batches = 0;
  std::size_t full_recomputes = 0;
  std::size_t repairs = 0;
  /// Batches absorbed with the existing solution still feasible.
  std::size_t no_op_batches = 0;
};

class IncrementalCwsc {
 public:
  /// Schema of the stream; `cost_fn` weights patterns over the measure.
  IncrementalCwsc(std::vector<std::string> attribute_names,
                  std::string measure_name, pattern::CostFunction cost_fn,
                  IncrementalOptions options);

  /// Appends a batch of records and restores the invariant that solution()
  /// is feasible for the current table. `rows[i]` are the attribute values
  /// of record i; `measures[i]` its measure.
  Status Append(const std::vector<std::vector<std::string>>& rows,
                const std::vector<double>& measures);

  /// The maintained solution, feasible for the current table; empty before
  /// the first Append.
  const pattern::PatternSolution& solution() const { return solution_; }

  /// The current table (rebuilt after the last Append); nullopt before the
  /// first Append.
  const std::optional<Table>& table() const { return table_; }

  std::size_t num_rows() const { return raw_rows_.size(); }

  const IncrementalStats& stats() const { return stats_; }

 private:
  Status Refresh();
  /// Recomputes covered rows, solution cost and coverage of the current
  /// pattern selection against table_. Returns number of covered rows.
  std::size_t ReevaluateSolution();
  Status FullRecompute();
  Status TryRepair();

  std::vector<std::string> attribute_names_;
  std::string measure_name_;
  pattern::CostFunction cost_fn_;
  IncrementalOptions options_;

  std::vector<std::vector<std::string>> raw_rows_;
  std::vector<double> raw_measures_;

  std::optional<Table> table_;
  pattern::PatternSolution solution_;
  std::vector<bool> covered_;  // by the current solution, over table_ rows
  IncrementalStats stats_;
};

// --- snapshot-delta warm start (serve layer) -------------------------------

/// What one WarmStartSolve did, for telemetry and tests.
struct WarmStartStats {
  std::size_t carried = 0;   // parent selections re-mapped onto the child
  std::size_t dropped = 0;   // parent selections with no unique child match
  std::size_t repaired = 0;  // greedy additions on the residual
  bool fell_back = false;    // full registry solve was required
};

/// Solves `request` (whose instance is typically a delta child, api/delta.h)
/// warm-started from `parent_result`, the result of the same logical query
/// against the parent snapshot. The parent's selections are re-mapped onto
/// the child by set label; if the carried selection already satisfies the
/// child's constraints it is finished directly (audit recomputed), otherwise
/// the remaining budget k - |carried| is spent greedily on the residual
/// (BetterGain marginal-gain scan over the still-uncovered universe), and
/// only when that still falls short does the call fall back to a full
/// registry solve of `solver`.
///
/// Warm-started solutions are feasible and audited but not guaranteed
/// bit-identical to a from-scratch solve — the bit-identity the soak bench
/// gates is the *snapshot* hash, not the solution. Requires unique non-empty
/// set labels on the child (pattern instances always have them); otherwise
/// falls back. `parent_result == nullptr` is the cold path: plain registry
/// solve.
Result<api::SolveResult> WarmStartSolve(const std::string& solver,
                                        const api::SolveRequest& request,
                                        const api::SolveResult* parent_result,
                                        WarmStartStats* stats = nullptr);

}  // namespace ext
}  // namespace scwsc

#endif  // SCWSC_EXT_INCREMENTAL_H_
