// Multi-weight size-constrained weighted set cover (paper §VII future work).
//
// "Another interesting problem is how to handle multiple weights associated
// with each set or pattern."
//
// Each set carries a cost vector (e.g. deployment cost and staffing cost of
// a facility). The solver scalarizes the vector into a single cost —
// weighted sum or weighted Chebyshev (max) — runs CWSC, and reports the
// solution's per-objective totals. SweepScalarizations runs a family of
// scalarizers and keeps the Pareto-optimal outcomes, giving callers a
// cost-tradeoff front instead of one number.

#ifndef SCWSC_EXT_MULTIWEIGHT_H_
#define SCWSC_EXT_MULTIWEIGHT_H_

#include <vector>

#include "src/common/result.h"
#include "src/core/cwsc.h"
#include "src/core/solution.h"

namespace scwsc {
namespace ext {

class MultiWeightSetSystem {
 public:
  MultiWeightSetSystem(std::size_t num_elements, std::size_t num_objectives);

  /// Adds a set with one cost per objective (costs.size() must equal
  /// num_objectives; each cost finite and >= 0).
  Result<SetId> AddSet(std::vector<ElementId> elements,
                       std::vector<double> costs, std::string label = "");

  std::size_t num_elements() const { return num_elements_; }
  std::size_t num_objectives() const { return num_objectives_; }
  std::size_t num_sets() const { return costs_.size(); }

  const std::vector<double>& costs(SetId id) const { return costs_[id]; }
  const std::vector<ElementId>& elements(SetId id) const {
    return elements_[id];
  }
  const std::string& label(SetId id) const { return labels_[id]; }

  /// Materializes a single-cost SetSystem with cost = scalarize(costs).
  /// SetIds are preserved.
  Result<SetSystem> Scalarize(const class Scalarizer& scalarizer) const;

 private:
  std::size_t num_elements_;
  std::size_t num_objectives_;
  std::vector<std::vector<ElementId>> elements_;
  std::vector<std::vector<double>> costs_;
  std::vector<std::string> labels_;
};

/// Maps a cost vector to a single cost.
class Scalarizer {
 public:
  enum class Kind {
    kWeightedSum,    // Σ lambda_i * c_i
    kWeightedChebyshev,  // max_i lambda_i * c_i
  };

  /// `lambda` must be non-empty with non-negative finite entries.
  static Result<Scalarizer> WeightedSum(std::vector<double> lambda);
  static Result<Scalarizer> WeightedChebyshev(std::vector<double> lambda);

  Kind kind() const { return kind_; }
  const std::vector<double>& lambda() const { return lambda_; }

  /// Requires costs.size() == lambda().size().
  double Apply(const std::vector<double>& costs) const;

 private:
  Scalarizer(Kind kind, std::vector<double> lambda)
      : kind_(kind), lambda_(std::move(lambda)) {}
  Kind kind_;
  std::vector<double> lambda_;
};

/// A solution with its per-objective cost totals.
struct MultiSolution {
  Solution solution;
  std::vector<double> objective_costs;
};

/// True when a is at least as good as b on every objective and strictly
/// better on at least one.
bool Dominates(const MultiSolution& a, const MultiSolution& b);

/// Keeps only the non-dominated solutions (stable order, duplicates by
/// selected-set equality removed first).
std::vector<MultiSolution> ParetoFilter(std::vector<MultiSolution> solutions);

/// Runs CWSC once per scalarizer and returns the Pareto front of the
/// distinct outcomes. Scalarizers whose runs are infeasible are skipped;
/// Infeasible is returned only when every run fails.
Result<std::vector<MultiSolution>> SweepScalarizations(
    const MultiWeightSetSystem& system, const CwscOptions& options,
    const std::vector<Scalarizer>& scalarizers);

}  // namespace ext
}  // namespace scwsc

#endif  // SCWSC_EXT_MULTIWEIGHT_H_
