#include "src/ext/incremental.h"

#include <algorithm>
#include <chrono>
#include <string_view>
#include <unordered_map>

#include "src/api/adapter_util.h"
#include "src/api/registry.h"
#include "src/common/strings.h"

namespace scwsc {
namespace ext {
namespace {

/// Re-encodes a pattern built against `from`'s dictionaries into `to`'s.
/// Every constant value must exist in `to` (true whenever `to` contains all
/// the rows the pattern was mined from).
Result<pattern::Pattern> TranslatePattern(const pattern::Pattern& p,
                                          const Table& from, const Table& to) {
  std::vector<ValueId> values(p.num_attributes(), pattern::kAll);
  for (std::size_t a = 0; a < p.num_attributes(); ++a) {
    if (p.is_wildcard(a)) continue;
    const std::string& name = from.dictionary(a).Name(p.value(a));
    SCWSC_ASSIGN_OR_RETURN(values[a], to.dictionary(a).Find(name));
  }
  return pattern::Pattern(std::move(values));
}

}  // namespace

IncrementalCwsc::IncrementalCwsc(std::vector<std::string> attribute_names,
                                 std::string measure_name,
                                 pattern::CostFunction cost_fn,
                                 IncrementalOptions options)
    : attribute_names_(std::move(attribute_names)),
      measure_name_(std::move(measure_name)),
      cost_fn_(cost_fn),
      options_(options) {}

Status IncrementalCwsc::Append(
    const std::vector<std::vector<std::string>>& rows,
    const std::vector<double>& measures) {
  if (rows.size() != measures.size()) {
    return Status::InvalidArgument("rows/measures length mismatch");
  }
  for (const auto& row : rows) {
    if (row.size() != attribute_names_.size()) {
      return Status::InvalidArgument("row arity does not match schema");
    }
  }
  raw_rows_.insert(raw_rows_.end(), rows.begin(), rows.end());
  raw_measures_.insert(raw_measures_.end(), measures.begin(), measures.end());
  ++stats_.batches;
  return Refresh();
}

Status IncrementalCwsc::Refresh() {
  // Rebuild the table in original row order: dictionary ids are assigned in
  // first-seen order, so ids of previously seen values are stable across
  // rebuilds and the retained solution patterns remain valid.
  TableBuilder builder(attribute_names_, measure_name_);
  for (std::size_t i = 0; i < raw_rows_.size(); ++i) {
    std::vector<std::string_view> views(raw_rows_[i].begin(),
                                        raw_rows_[i].end());
    SCWSC_RETURN_NOT_OK(builder.AddRow(views, raw_measures_[i]));
  }
  table_ = std::move(builder).Build();

  const std::size_t covered_now = ReevaluateSolution();
  const std::size_t target = SetSystem::CoverageTarget(
      options_.coverage_fraction, table_->num_rows());
  if (covered_now >= target) {
    ++stats_.no_op_batches;
    return Status::OK();
  }
  if (options_.policy == RepairPolicy::kRecompute) return FullRecompute();
  return TryRepair();
}

std::size_t IncrementalCwsc::ReevaluateSolution() {
  const Table& table = *table_;
  const std::size_t n = table.num_rows();
  covered_.assign(n, false);
  solution_.total_cost = 0.0;
  std::size_t covered_count = 0;
  std::vector<RowId> ben;
  for (const pattern::Pattern& p : solution_.patterns) {
    ben.clear();
    for (RowId r = 0; r < n; ++r) {
      if (p.Matches(table, r)) {
        ben.push_back(r);
        if (!covered_[r]) {
          covered_[r] = true;
          ++covered_count;
        }
      }
    }
    solution_.total_cost += cost_fn_.Compute(table, ben);
  }
  solution_.covered = covered_count;
  return covered_count;
}

Status IncrementalCwsc::FullRecompute() {
  CwscOptions opts;
  opts.k = options_.k;
  opts.coverage_fraction = options_.coverage_fraction;
  opts.run_context = options_.run_context;
  SCWSC_ASSIGN_OR_RETURN(solution_,
                         pattern::RunOptimizedCwsc(*table_, cost_fn_, opts));
  ++stats_.full_recomputes;
  ReevaluateSolution();
  return Status::OK();
}

Status IncrementalCwsc::TryRepair() {
  const std::size_t used = solution_.patterns.size();
  if (used >= options_.k) return FullRecompute();
  const std::size_t budget = options_.k - used;

  // Residual problem: the uncovered rows only.
  const Table& table = *table_;
  std::vector<std::size_t> uncovered;
  for (std::size_t r = 0; r < covered_.size(); ++r) {
    if (!covered_[r]) uncovered.push_back(r);
  }
  const std::size_t target = SetSystem::CoverageTarget(
      options_.coverage_fraction, table.num_rows());
  const std::size_t needed = target - solution_.covered;  // > 0 here
  if (needed > uncovered.size()) {
    return Status::Internal("coverage target exceeds uncovered rows");
  }

  TableBuilder builder(attribute_names_, measure_name_);
  for (std::size_t r : uncovered) {
    std::vector<std::string_view> views(raw_rows_[r].begin(),
                                        raw_rows_[r].end());
    SCWSC_RETURN_NOT_OK(builder.AddRow(views, raw_measures_[r]));
  }
  const Table residual = std::move(builder).Build();

  CwscOptions opts;
  opts.k = budget;
  opts.coverage_fraction = static_cast<double>(needed) /
                           static_cast<double>(residual.num_rows());
  opts.run_context = options_.run_context;
  auto patch = pattern::RunOptimizedCwsc(residual, cost_fn_, opts);
  if (!patch.ok()) {
    // An interruption must surface, not trigger an (equally doomed and more
    // expensive) full recompute.
    if (patch.status().IsInterruption()) return patch.status();
    return FullRecompute();
  }

  for (const pattern::Pattern& p : patch->patterns) {
    SCWSC_ASSIGN_OR_RETURN(pattern::Pattern translated,
                           TranslatePattern(p, residual, table));
    solution_.patterns.push_back(std::move(translated));
  }
  const std::size_t covered_now = ReevaluateSolution();
  if (covered_now < target) {
    // The patch met its residual target, so this indicates drift between
    // the residual and full encodings; recompute defensively.
    return FullRecompute();
  }
  ++stats_.repairs;
  return Status::OK();
}

// --- snapshot-delta warm start ---------------------------------------------

namespace {

Result<api::SolveResult> FullRegistrySolve(const std::string& solver,
                                           const api::SolveRequest& request,
                                           WarmStartStats* stats) {
  if (stats != nullptr) stats->fell_back = true;
  return api::SolverRegistry::Global().Solve(solver, request, nullptr);
}

}  // namespace

Result<api::SolveResult> WarmStartSolve(const std::string& solver,
                                        const api::SolveRequest& request,
                                        const api::SolveResult* parent_result,
                                        WarmStartStats* stats) {
  WarmStartStats local;
  if (stats == nullptr) stats = &local;
  *stats = WarmStartStats{};
  if (request.instance == nullptr) {
    return Status::InvalidArgument("WarmStartSolve: request has no instance");
  }
  if (parent_result == nullptr || parent_result->labels.empty()) {
    return FullRegistrySolve(solver, request, stats);
  }

  const auto start = std::chrono::steady_clock::now();
  SCWSC_ASSIGN_OR_RETURN(const SetSystem* system,
                         request.instance->set_system());

  // Re-map the parent selection by label. Labels are the only identity that
  // survives a delta (SetIds renumber on removal); warm starting needs them
  // unique and non-empty, otherwise the cold path is the only sound one.
  std::unordered_map<std::string_view, SetId> by_label;
  by_label.reserve(system->num_sets());
  for (SetId id = 0; id < system->num_sets(); ++id) {
    const std::string& label = system->set(id).label;
    if (label.empty() || !by_label.emplace(label, id).second) {
      return FullRegistrySolve(solver, request, stats);
    }
  }

  const std::size_t n = system->num_elements();
  const std::size_t target =
      SetSystem::CoverageTarget(request.coverage_fraction, n);
  std::vector<bool> covered(n, false);
  std::vector<bool> selected(system->num_sets(), false);
  Solution solution;
  std::size_t covered_count = 0;
  for (const std::string& label : parent_result->labels) {
    const auto it = by_label.find(label);
    if (it == by_label.end()) {
      ++stats->dropped;  // the delta retracted this set
      continue;
    }
    if (solution.sets.size() >= request.k) {
      ++stats->dropped;  // over budget after remapping; keep earliest picks
      continue;
    }
    const SetId id = it->second;
    const WeightedSet& s = system->set(id);
    solution.sets.push_back(id);
    selected[id] = true;
    solution.total_cost += s.cost;
    for (const ElementId e : s.elements) {
      if (!covered[e]) {
        covered[e] = true;
        ++covered_count;
      }
    }
    ++stats->carried;
  }

  // Greedy repair on the residual: spend the remaining budget on the
  // cheapest-per-newly-covered sets (exact cross-multiplied comparison, no
  // float division) until the child's coverage target is met.
  std::size_t sets_considered = 0;
  while (covered_count < target && solution.sets.size() < request.k) {
    bool have_best = false;
    SetId best = 0;
    std::size_t best_gain = 0;
    double best_cost = 0.0;
    for (SetId id = 0; id < system->num_sets(); ++id) {
      if (selected[id]) continue;
      const WeightedSet& s = system->set(id);
      std::size_t gain = 0;
      for (const ElementId e : s.elements) {
        if (!covered[e]) ++gain;
      }
      ++sets_considered;
      if (gain == 0) continue;
      if (!have_best || BetterGain(gain, s.cost, best_gain, best_cost)) {
        have_best = true;
        best = id;
        best_gain = gain;
        best_cost = s.cost;
      }
    }
    if (!have_best) break;  // nothing left covers anything new
    const WeightedSet& s = system->set(best);
    solution.sets.push_back(best);
    selected[best] = true;
    solution.total_cost += s.cost;
    for (const ElementId e : s.elements) {
      if (!covered[e]) {
        covered[e] = true;
        ++covered_count;
      }
    }
    ++stats->repaired;
  }

  if (covered_count < target) {
    // Carried + repaired still infeasible (e.g. the delta removed the only
    // sets covering a region and the greedy ran out of budget): the full
    // solver may still find a feasible selection.
    return FullRegistrySolve(solver, request, stats);
  }

  solution.covered = covered_count;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  api::SolveContract contract;
  contract.max_sets = request.k;
  contract.coverage_target = target;
  api::SolveCounters counters;
  counters.sets_considered = sets_considered;
  return api::internal::FinishSetBacked(request, std::move(solution), seconds,
                                        contract, counters);
}

}  // namespace ext
}  // namespace scwsc
