#include "src/ext/incremental.h"

#include <algorithm>

#include "src/common/strings.h"

namespace scwsc {
namespace ext {
namespace {

/// Re-encodes a pattern built against `from`'s dictionaries into `to`'s.
/// Every constant value must exist in `to` (true whenever `to` contains all
/// the rows the pattern was mined from).
Result<pattern::Pattern> TranslatePattern(const pattern::Pattern& p,
                                          const Table& from, const Table& to) {
  std::vector<ValueId> values(p.num_attributes(), pattern::kAll);
  for (std::size_t a = 0; a < p.num_attributes(); ++a) {
    if (p.is_wildcard(a)) continue;
    const std::string& name = from.dictionary(a).Name(p.value(a));
    SCWSC_ASSIGN_OR_RETURN(values[a], to.dictionary(a).Find(name));
  }
  return pattern::Pattern(std::move(values));
}

}  // namespace

IncrementalCwsc::IncrementalCwsc(std::vector<std::string> attribute_names,
                                 std::string measure_name,
                                 pattern::CostFunction cost_fn,
                                 IncrementalOptions options)
    : attribute_names_(std::move(attribute_names)),
      measure_name_(std::move(measure_name)),
      cost_fn_(cost_fn),
      options_(options) {}

Status IncrementalCwsc::Append(
    const std::vector<std::vector<std::string>>& rows,
    const std::vector<double>& measures) {
  if (rows.size() != measures.size()) {
    return Status::InvalidArgument("rows/measures length mismatch");
  }
  for (const auto& row : rows) {
    if (row.size() != attribute_names_.size()) {
      return Status::InvalidArgument("row arity does not match schema");
    }
  }
  raw_rows_.insert(raw_rows_.end(), rows.begin(), rows.end());
  raw_measures_.insert(raw_measures_.end(), measures.begin(), measures.end());
  ++stats_.batches;
  return Refresh();
}

Status IncrementalCwsc::Refresh() {
  // Rebuild the table in original row order: dictionary ids are assigned in
  // first-seen order, so ids of previously seen values are stable across
  // rebuilds and the retained solution patterns remain valid.
  TableBuilder builder(attribute_names_, measure_name_);
  for (std::size_t i = 0; i < raw_rows_.size(); ++i) {
    std::vector<std::string_view> views(raw_rows_[i].begin(),
                                        raw_rows_[i].end());
    SCWSC_RETURN_NOT_OK(builder.AddRow(views, raw_measures_[i]));
  }
  table_ = std::move(builder).Build();

  const std::size_t covered_now = ReevaluateSolution();
  const std::size_t target = SetSystem::CoverageTarget(
      options_.coverage_fraction, table_->num_rows());
  if (covered_now >= target) {
    ++stats_.no_op_batches;
    return Status::OK();
  }
  if (options_.policy == RepairPolicy::kRecompute) return FullRecompute();
  return TryRepair();
}

std::size_t IncrementalCwsc::ReevaluateSolution() {
  const Table& table = *table_;
  const std::size_t n = table.num_rows();
  covered_.assign(n, false);
  solution_.total_cost = 0.0;
  std::size_t covered_count = 0;
  std::vector<RowId> ben;
  for (const pattern::Pattern& p : solution_.patterns) {
    ben.clear();
    for (RowId r = 0; r < n; ++r) {
      if (p.Matches(table, r)) {
        ben.push_back(r);
        if (!covered_[r]) {
          covered_[r] = true;
          ++covered_count;
        }
      }
    }
    solution_.total_cost += cost_fn_.Compute(table, ben);
  }
  solution_.covered = covered_count;
  return covered_count;
}

Status IncrementalCwsc::FullRecompute() {
  CwscOptions opts;
  opts.k = options_.k;
  opts.coverage_fraction = options_.coverage_fraction;
  opts.run_context = options_.run_context;
  SCWSC_ASSIGN_OR_RETURN(solution_,
                         pattern::RunOptimizedCwsc(*table_, cost_fn_, opts));
  ++stats_.full_recomputes;
  ReevaluateSolution();
  return Status::OK();
}

Status IncrementalCwsc::TryRepair() {
  const std::size_t used = solution_.patterns.size();
  if (used >= options_.k) return FullRecompute();
  const std::size_t budget = options_.k - used;

  // Residual problem: the uncovered rows only.
  const Table& table = *table_;
  std::vector<std::size_t> uncovered;
  for (std::size_t r = 0; r < covered_.size(); ++r) {
    if (!covered_[r]) uncovered.push_back(r);
  }
  const std::size_t target = SetSystem::CoverageTarget(
      options_.coverage_fraction, table.num_rows());
  const std::size_t needed = target - solution_.covered;  // > 0 here
  if (needed > uncovered.size()) {
    return Status::Internal("coverage target exceeds uncovered rows");
  }

  TableBuilder builder(attribute_names_, measure_name_);
  for (std::size_t r : uncovered) {
    std::vector<std::string_view> views(raw_rows_[r].begin(),
                                        raw_rows_[r].end());
    SCWSC_RETURN_NOT_OK(builder.AddRow(views, raw_measures_[r]));
  }
  const Table residual = std::move(builder).Build();

  CwscOptions opts;
  opts.k = budget;
  opts.coverage_fraction = static_cast<double>(needed) /
                           static_cast<double>(residual.num_rows());
  opts.run_context = options_.run_context;
  auto patch = pattern::RunOptimizedCwsc(residual, cost_fn_, opts);
  if (!patch.ok()) {
    // An interruption must surface, not trigger an (equally doomed and more
    // expensive) full recompute.
    if (patch.status().IsInterruption()) return patch.status();
    return FullRecompute();
  }

  for (const pattern::Pattern& p : patch->patterns) {
    SCWSC_ASSIGN_OR_RETURN(pattern::Pattern translated,
                           TranslatePattern(p, residual, table));
    solution_.patterns.push_back(std::move(translated));
  }
  const std::size_t covered_now = ReevaluateSolution();
  if (covered_now < target) {
    // The patch met its residual target, so this indicates drift between
    // the residual and full encodings; recompute defensively.
    return FullRecompute();
  }
  ++stats_.repairs;
  return Status::OK();
}

}  // namespace ext
}  // namespace scwsc
