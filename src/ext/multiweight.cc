#include "src/ext/multiweight.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace scwsc {
namespace ext {

MultiWeightSetSystem::MultiWeightSetSystem(std::size_t num_elements,
                                           std::size_t num_objectives)
    : num_elements_(num_elements), num_objectives_(num_objectives) {}

Result<SetId> MultiWeightSetSystem::AddSet(std::vector<ElementId> elements,
                                           std::vector<double> costs,
                                           std::string label) {
  if (costs.size() != num_objectives_) {
    return Status::InvalidArgument("cost vector arity mismatch");
  }
  for (double c : costs) {
    if (!(c >= 0.0) || !std::isfinite(c)) {
      return Status::InvalidArgument("costs must be finite and >= 0");
    }
  }
  std::sort(elements.begin(), elements.end());
  elements.erase(std::unique(elements.begin(), elements.end()),
                 elements.end());
  if (!elements.empty() && elements.back() >= num_elements_) {
    return Status::InvalidArgument("element id out of universe");
  }
  elements_.push_back(std::move(elements));
  costs_.push_back(std::move(costs));
  labels_.push_back(std::move(label));
  return static_cast<SetId>(costs_.size() - 1);
}

Result<SetSystem> MultiWeightSetSystem::Scalarize(
    const Scalarizer& scalarizer) const {
  if (scalarizer.lambda().size() != num_objectives_) {
    return Status::InvalidArgument("scalarizer arity mismatch");
  }
  SetSystem system(num_elements_);
  for (SetId id = 0; id < num_sets(); ++id) {
    SCWSC_ASSIGN_OR_RETURN(
        SetId added, system.AddSet(elements_[id],
                                   scalarizer.Apply(costs_[id]), labels_[id]));
    (void)added;
  }
  return system;
}

namespace {
Result<std::vector<double>> ValidateLambda(std::vector<double> lambda) {
  if (lambda.empty()) {
    return Status::InvalidArgument("lambda must be non-empty");
  }
  for (double l : lambda) {
    if (!(l >= 0.0) || !std::isfinite(l)) {
      return Status::InvalidArgument("lambda entries must be finite and >= 0");
    }
  }
  return lambda;
}
}  // namespace

Result<Scalarizer> Scalarizer::WeightedSum(std::vector<double> lambda) {
  SCWSC_ASSIGN_OR_RETURN(auto validated, ValidateLambda(std::move(lambda)));
  return Scalarizer(Kind::kWeightedSum, std::move(validated));
}

Result<Scalarizer> Scalarizer::WeightedChebyshev(std::vector<double> lambda) {
  SCWSC_ASSIGN_OR_RETURN(auto validated, ValidateLambda(std::move(lambda)));
  return Scalarizer(Kind::kWeightedChebyshev, std::move(validated));
}

double Scalarizer::Apply(const std::vector<double>& costs) const {
  double out = 0.0;
  for (std::size_t i = 0; i < lambda_.size(); ++i) {
    const double term = lambda_[i] * costs[i];
    if (kind_ == Kind::kWeightedSum) {
      out += term;
    } else {
      out = std::max(out, term);
    }
  }
  return out;
}

bool Dominates(const MultiSolution& a, const MultiSolution& b) {
  bool strictly_better = false;
  for (std::size_t i = 0; i < a.objective_costs.size(); ++i) {
    if (a.objective_costs[i] > b.objective_costs[i]) return false;
    if (a.objective_costs[i] < b.objective_costs[i]) strictly_better = true;
  }
  return strictly_better;
}

std::vector<MultiSolution> ParetoFilter(std::vector<MultiSolution> solutions) {
  // Deduplicate by the selected set collection (order-insensitive).
  std::set<std::vector<SetId>> seen;
  std::vector<MultiSolution> unique;
  for (auto& ms : solutions) {
    std::vector<SetId> key = ms.solution.sets;
    std::sort(key.begin(), key.end());
    if (seen.insert(std::move(key)).second) unique.push_back(std::move(ms));
  }
  std::vector<MultiSolution> front;
  for (std::size_t i = 0; i < unique.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < unique.size() && !dominated; ++j) {
      if (i != j && Dominates(unique[j], unique[i])) dominated = true;
    }
    if (!dominated) front.push_back(unique[i]);
  }
  return front;
}

Result<std::vector<MultiSolution>> SweepScalarizations(
    const MultiWeightSetSystem& system, const CwscOptions& options,
    const std::vector<Scalarizer>& scalarizers) {
  if (scalarizers.empty()) {
    return Status::InvalidArgument("need at least one scalarizer");
  }
  std::vector<MultiSolution> outcomes;
  Status last_failure = Status::OK();
  for (const Scalarizer& sc : scalarizers) {
    SCWSC_ASSIGN_OR_RETURN(SetSystem scalar, system.Scalarize(sc));
    auto solved = RunCwsc(scalar, options);
    if (!solved.ok()) {
      last_failure = solved.status();
      continue;
    }
    MultiSolution ms;
    ms.solution = std::move(*solved);
    ms.objective_costs.assign(system.num_objectives(), 0.0);
    for (SetId id : ms.solution.sets) {
      const auto& costs = system.costs(id);
      for (std::size_t o = 0; o < costs.size(); ++o) {
        ms.objective_costs[o] += costs[o];
      }
    }
    outcomes.push_back(std::move(ms));
  }
  if (outcomes.empty()) {
    return Status::Infeasible("every scalarized run failed: " +
                              last_failure.ToString());
  }
  return ParetoFilter(std::move(outcomes));
}

}  // namespace ext
}  // namespace scwsc
