// A dense two-phase primal simplex solver, written from scratch for the LP
// relaxation of size-constrained weighted set cover (§III discusses the
// ILP/relax-and-round approach; lp_rounding.h builds on this solver).
//
// Scope: small/medium dense LPs (hundreds of variables/constraints) in the
// form
//        min  c'x
//        s.t. a_i'x  {<=, >=, =}  b_i      for each constraint i
//             x >= 0
//
// Phase 1 minimizes the sum of artificial variables to find a basic
// feasible solution; phase 2 optimizes the real objective. Bland's rule
// guards against cycling. This is not a production LP code — no presolve,
// no revised simplex, no numerical scaling — but it is exact enough for the
// covering LPs used here and fully deterministic.

#ifndef SCWSC_LP_SIMPLEX_H_
#define SCWSC_LP_SIMPLEX_H_

#include <vector>

#include "src/common/result.h"
#include "src/common/run_context.h"

namespace scwsc {

namespace obs {
class TraceSession;
}  // namespace obs

namespace lp {

enum class Relation { kLessEqual, kGreaterEqual, kEqual };

struct Constraint {
  std::vector<double> coefficients;  // one per variable
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
};

struct LpProblem {
  std::size_t num_variables = 0;
  /// Minimized objective, one coefficient per variable.
  std::vector<double> objective;
  std::vector<Constraint> constraints;
};

struct LpOptions {
  std::size_t max_pivots = 100'000;
  double tolerance = 1e-9;
  /// Deadline / cancellation / work-budget context; nullptr = unlimited.
  /// Checked once per pivot (one node expansion charged each); a trip
  /// returns DeadlineExceeded / Cancelled / ResourceExhausted with no
  /// payload — an interrupted tableau has no meaningful partial solution.
  const RunContext* run_context = nullptr;
  /// Optional trace/metrics session (src/obs): phases run under
  /// "simplex.phase1"/"simplex.phase2" spans and every pivot bumps the
  /// "lp.pivots" counter. nullptr = observability off.
  obs::TraceSession* trace = nullptr;
};

struct LpSolution {
  std::vector<double> x;
  double objective = 0.0;
};

/// Solves the LP. Returns:
///  - the optimal solution,
///  - Infeasible when no x >= 0 satisfies the constraints,
///  - InvalidArgument for malformed input (arity mismatches, NaNs),
///  - ResourceExhausted when max_pivots is hit,
///  - DeadlineExceeded / Cancelled on a RunContext trip,
///  - Internal("unbounded") when the objective is unbounded below.
Result<LpSolution> SolveLp(const LpProblem& problem,
                           const LpOptions& options = {});

}  // namespace lp
}  // namespace scwsc

#endif  // SCWSC_LP_SIMPLEX_H_
