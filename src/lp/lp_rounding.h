// LP relaxation and randomized rounding for size-constrained weighted set
// cover (the §III approach: "model it via an integer linear program,
// consider its linear relaxation and then round the fractional solution").
//
// Relaxation (variables x_s per set, z_e per element, all in [0, 1]):
//
//   min  Σ_s Cost(s) · x_s
//   s.t. z_e ≤ Σ_{s ∋ e} x_s      for every element e
//        Σ_e z_e ≥ ŝ·n
//        Σ_s x_s ≤ k
//
// Its optimum lower-bounds every integral solution, so LpLowerBound gives a
// *certified* optimality gap for the greedy solvers without exhaustive
// search. SolveByLpRounding rounds x by independent inclusion with
// probability min(1, α·x_s) over several trials, greedily repairing
// coverage when needed — and reports by how much the rounded solution
// violates the cardinality constraint, which is exactly the §III caveat
// ("may violate the cardinality constraint by more than a (1 + ε) factor
// unless k is large").

#ifndef SCWSC_LP_LP_ROUNDING_H_
#define SCWSC_LP_LP_ROUNDING_H_

#include "src/common/result.h"
#include "src/core/solution.h"
#include "src/lp/simplex.h"

namespace scwsc {
namespace lp {

struct LpScwscOptions {
  std::size_t k = 10;
  double coverage_fraction = 0.3;
  /// Rounding inflation factor; <= 0 picks ln(n) + 1 automatically.
  double alpha = 0.0;
  /// Independent rounding trials; the cheapest coverage-feasible one wins.
  std::size_t trials = 64;
  std::uint64_t seed = 2015;
  LpOptions lp;
  /// Deadline / cancellation / work-budget context; nullptr = unlimited.
  /// Propagated into the simplex solve (per-pivot checks) and observed
  /// between rounding trials and repair picks. On a trip after the
  /// relaxation solved, the error Status carries the best LpRoundingResult
  /// so far as payload (its solution may be coverage-infeasible when no
  /// trial had finished; check provenance.coverage_reached).
  const RunContext* run_context = nullptr;
  /// Optional trace/metrics session (src/obs): the relax / round / repair
  /// phases run under spans and trial counters are published. Propagated
  /// into the simplex solve (options.lp.trace) when that is unset.
  obs::TraceSession* trace = nullptr;
};

/// The LP relaxation's optimal value (a lower bound on OPT), with the
/// fractional solution.
struct LpRelaxation {
  double lower_bound = 0.0;
  std::vector<double> x;  // per set, in [0, 1]
};

Result<LpRelaxation> SolveScwscRelaxation(const SetSystem& system,
                                          std::size_t k,
                                          double coverage_fraction,
                                          const LpOptions& options = {});

struct LpRoundingResult {
  /// Cheapest coverage-feasible rounded solution (after greedy repair).
  Solution solution;
  double lp_lower_bound = 0.0;
  /// max(0, |solution| - k): the §III cardinality violation.
  std::size_t cardinality_violation = 0;
  /// Trials that met coverage without repair.
  std::size_t feasible_trials = 0;
  /// Full-system set scans across rounding trials and greedy repair.
  std::size_t sets_considered = 0;
};

/// Rounds the relaxation. Always returns a coverage-feasible solution when
/// the instance is coverable at all (greedy repair as a fallback); the
/// cardinality constraint is soft, as §III warns.
Result<LpRoundingResult> SolveByLpRounding(const SetSystem& system,
                                           const LpScwscOptions& options);

}  // namespace lp
}  // namespace scwsc

#endif  // SCWSC_LP_LP_ROUNDING_H_
