#include "src/lp/simplex.h"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace scwsc {
namespace lp {
namespace {

/// Dense simplex tableau over the constraint matrix with slack/surplus and
/// artificial columns appended. Row 0..m-1 are constraints; the objective
/// row is kept separately.
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), a_(rows * cols, 0.0), b_(rows, 0.0) {}

  double& At(std::size_t r, std::size_t c) { return a_[r * cols_ + c]; }
  double At(std::size_t r, std::size_t c) const { return a_[r * cols_ + c]; }
  double& Rhs(std::size_t r) { return b_[r]; }
  double Rhs(std::size_t r) const { return b_[r]; }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Gauss-Jordan pivot on (pr, pc).
  void Pivot(std::size_t pr, std::size_t pc) {
    const double piv = At(pr, pc);
    for (std::size_t c = 0; c < cols_; ++c) At(pr, c) /= piv;
    Rhs(pr) /= piv;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      const double f = At(r, pc);
      if (f == 0.0) continue;
      for (std::size_t c = 0; c < cols_; ++c) At(r, c) -= f * At(pr, c);
      Rhs(r) -= f * Rhs(pr);
    }
  }

 private:
  std::size_t rows_, cols_;
  std::vector<double> a_;
  std::vector<double> b_;
};

struct Phase {
  Tableau* tab;
  std::vector<double>* reduced;  // objective row (length cols)
  std::vector<std::size_t>* basis;  // basis[r] = basic column of row r
};

/// Runs simplex iterations on the given phase until optimality. Entering
/// column by Bland's rule (smallest index with negative reduced cost),
/// leaving row by minimum ratio with smallest-basis tie-break. `allowed`
/// marks columns eligible to enter (used to lock out artificials in
/// phase 2).
Result<bool> Iterate(const Phase& ph, const std::vector<bool>& allowed,
                     const LpOptions& options, std::size_t* pivots,
                     obs::MetricCounter* pivots_metric) {
  Tableau& tab = *ph.tab;
  std::vector<double>& reduced = *ph.reduced;
  for (;;) {
    // Entering column: Bland's rule.
    std::size_t enter = tab.cols();
    for (std::size_t c = 0; c < tab.cols(); ++c) {
      if (allowed[c] && reduced[c] < -options.tolerance) {
        enter = c;
        break;
      }
    }
    if (enter == tab.cols()) return true;  // optimal

    // Leaving row: minimum ratio test.
    std::size_t leave = tab.rows();
    double best_ratio = 0.0;
    for (std::size_t r = 0; r < tab.rows(); ++r) {
      const double a = tab.At(r, enter);
      if (a > options.tolerance) {
        const double ratio = tab.Rhs(r) / a;
        if (leave == tab.rows() || ratio < best_ratio - options.tolerance ||
            (std::abs(ratio - best_ratio) <= options.tolerance &&
             (*ph.basis)[r] < (*ph.basis)[leave])) {
          leave = r;
          best_ratio = ratio;
        }
      }
    }
    if (leave == tab.rows()) {
      return Status::Internal("unbounded");
    }

    if (++*pivots > options.max_pivots) {
      return Status::ResourceExhausted("simplex exceeded max_pivots");
    }
    if (pivots_metric != nullptr) pivots_metric->Increment();
    if (options.run_context != nullptr) {
      const TripKind trip = options.run_context->ChargeNodes(1);
      if (trip != TripKind::kNone) return TripStatus(trip, "simplex");
    }
    tab.Pivot(leave, enter);
    // Update the objective row (the value itself is recomputed from the
    // final basis by the caller).
    const double f = reduced[enter];
    if (f != 0.0) {
      for (std::size_t c = 0; c < tab.cols(); ++c) {
        reduced[c] -= f * tab.At(leave, c);
      }
    }
    (*ph.basis)[leave] = enter;
  }
}

}  // namespace

Result<LpSolution> SolveLp(const LpProblem& problem, const LpOptions& options) {
  const std::size_t n = problem.num_variables;
  const std::size_t m = problem.constraints.size();
  if (problem.objective.size() != n) {
    return Status::InvalidArgument("objective arity mismatch");
  }
  for (double c : problem.objective) {
    if (!std::isfinite(c)) {
      return Status::InvalidArgument("objective must be finite");
    }
  }
  for (const auto& con : problem.constraints) {
    if (con.coefficients.size() != n) {
      return Status::InvalidArgument("constraint arity mismatch");
    }
    if (!std::isfinite(con.rhs)) {
      return Status::InvalidArgument("rhs must be finite");
    }
    for (double c : con.coefficients) {
      if (!std::isfinite(c)) {
        return Status::InvalidArgument("coefficients must be finite");
      }
    }
  }

  // Column layout: [structural n][slack/surplus, one per inequality]
  // [artificials, as needed]. Normalize rhs >= 0 first.
  std::size_t num_slack = 0;
  for (const auto& con : problem.constraints) {
    if (con.relation != Relation::kEqual) ++num_slack;
  }
  // Conservatively one artificial per row; unused ones are never created.
  std::vector<int> slack_col(m, -1);
  std::vector<int> artificial_col(m, -1);

  // First pass to size the tableau.
  std::size_t next_col = n;
  std::vector<double> sign(m, 1.0);
  std::vector<Relation> rel(m);
  for (std::size_t i = 0; i < m; ++i) {
    rel[i] = problem.constraints[i].relation;
    if (problem.constraints[i].rhs < 0.0) {
      sign[i] = -1.0;
      if (rel[i] == Relation::kLessEqual) {
        rel[i] = Relation::kGreaterEqual;
      } else if (rel[i] == Relation::kGreaterEqual) {
        rel[i] = Relation::kLessEqual;
      }
    }
    if (rel[i] != Relation::kEqual) slack_col[i] = static_cast<int>(next_col++);
  }
  for (std::size_t i = 0; i < m; ++i) {
    // >= and = rows need artificials; <= rows start basic on their slack.
    if (rel[i] != Relation::kLessEqual) {
      artificial_col[i] = static_cast<int>(next_col++);
    }
  }
  const std::size_t cols = next_col;

  Tableau tab(m, cols);
  std::vector<std::size_t> basis(m);
  for (std::size_t i = 0; i < m; ++i) {
    const auto& con = problem.constraints[i];
    for (std::size_t j = 0; j < n; ++j) {
      tab.At(i, j) = sign[i] * con.coefficients[j];
    }
    tab.Rhs(i) = sign[i] * con.rhs;
    if (slack_col[i] >= 0) {
      tab.At(i, static_cast<std::size_t>(slack_col[i])) =
          rel[i] == Relation::kLessEqual ? 1.0 : -1.0;
    }
    if (artificial_col[i] >= 0) {
      tab.At(i, static_cast<std::size_t>(artificial_col[i])) = 1.0;
      basis[i] = static_cast<std::size_t>(artificial_col[i]);
    } else {
      basis[i] = static_cast<std::size_t>(slack_col[i]);
    }
  }

  std::size_t pivots = 0;
  obs::MetricCounter* pivots_metric =
      options.trace != nullptr ? &options.trace->metrics().counter("lp.pivots")
                               : nullptr;

  // Phase 1: minimize the sum of artificials.
  bool has_artificials = false;
  for (std::size_t i = 0; i < m; ++i) has_artificials |= artificial_col[i] >= 0;
  if (has_artificials) {
    obs::Span phase1_span(options.trace, "simplex.phase1");
    std::vector<double> reduced(cols, 0.0);
    // Objective = sum of artificial columns; express in terms of the
    // current (artificial) basis: reduced = c - sum over basic rows.
    for (std::size_t i = 0; i < m; ++i) {
      if (artificial_col[i] < 0) continue;
      for (std::size_t c = 0; c < cols; ++c) reduced[c] -= tab.At(i, c);
    }
    for (std::size_t i = 0; i < m; ++i) {
      if (artificial_col[i] >= 0) {
        reduced[static_cast<std::size_t>(artificial_col[i])] += 1.0;
      }
    }
    std::vector<bool> allowed(cols, true);
    Phase phase{&tab, &reduced, &basis};
    SCWSC_ASSIGN_OR_RETURN(
        bool ok, Iterate(phase, allowed, options, &pivots, pivots_metric));
    (void)ok;
    // Phase-1 value: total artificial mass still in the basis.
    double infeasibility = 0.0;
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t i = 0; i < m; ++i) {
        if (artificial_col[i] >= 0 &&
            basis[r] == static_cast<std::size_t>(artificial_col[i])) {
          infeasibility += tab.Rhs(r);
        }
      }
    }
    if (infeasibility > 1e-7) {
      return Status::Infeasible("LP has no feasible point");
    }
    // Drive any residual artificial out of the basis (degenerate rows).
    for (std::size_t r = 0; r < m; ++r) {
      bool basic_artificial = false;
      for (std::size_t i = 0; i < m; ++i) {
        if (artificial_col[i] >= 0 &&
            basis[r] == static_cast<std::size_t>(artificial_col[i])) {
          basic_artificial = true;
        }
      }
      if (!basic_artificial) continue;
      bool pivoted = false;
      for (std::size_t c = 0; c < cols && !pivoted; ++c) {
        bool is_artificial = false;
        for (std::size_t i = 0; i < m; ++i) {
          if (artificial_col[i] >= 0 &&
              c == static_cast<std::size_t>(artificial_col[i])) {
            is_artificial = true;
          }
        }
        if (is_artificial) continue;
        if (std::abs(tab.At(r, c)) > options.tolerance) {
          tab.Pivot(r, c);
          basis[r] = c;
          pivoted = true;
        }
      }
      // If no pivot exists the row is all zero (redundant); leave it.
    }
  }

  // Phase 2: the real objective, artificials locked out.
  {
    obs::Span phase2_span(options.trace, "simplex.phase2");
    std::vector<double> reduced(cols, 0.0);
    for (std::size_t j = 0; j < n; ++j) reduced[j] = problem.objective[j];
    // Express in terms of the current basis.
    for (std::size_t r = 0; r < m; ++r) {
      const std::size_t bc = basis[r];
      const double cb = bc < n ? problem.objective[bc] : 0.0;
      if (cb == 0.0) continue;
      for (std::size_t c = 0; c < cols; ++c) {
        reduced[c] -= cb * tab.At(r, c);
      }
    }
    std::vector<bool> allowed(cols, true);
    for (std::size_t i = 0; i < m; ++i) {
      if (artificial_col[i] >= 0) {
        allowed[static_cast<std::size_t>(artificial_col[i])] = false;
      }
    }
    Phase phase{&tab, &reduced, &basis};
    SCWSC_ASSIGN_OR_RETURN(
        bool ok, Iterate(phase, allowed, options, &pivots, pivots_metric));
    (void)ok;

    LpSolution solution;
    solution.x.assign(n, 0.0);
    for (std::size_t r = 0; r < m; ++r) {
      if (basis[r] < n) solution.x[basis[r]] = tab.Rhs(r);
    }
    double value = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      value += problem.objective[j] * solution.x[j];
    }
    solution.objective = value;
    return solution;
  }
}

}  // namespace lp
}  // namespace scwsc
