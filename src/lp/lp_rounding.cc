#include "src/lp/lp_rounding.h"

#include <algorithm>
#include <cmath>

#include "src/common/bitset.h"
#include "src/common/rng.h"
#include "src/core/greedy_state.h"
#include "src/obs/trace.h"

namespace scwsc {
namespace lp {

Result<LpRelaxation> SolveScwscRelaxation(const SetSystem& system,
                                          std::size_t k,
                                          double coverage_fraction,
                                          const LpOptions& options) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (coverage_fraction < 0.0 || coverage_fraction > 1.0) {
    return Status::InvalidArgument("coverage_fraction must be in [0, 1]");
  }
  const std::size_t m = system.num_sets();
  const std::size_t n = system.num_elements();
  const std::size_t target = SetSystem::CoverageTarget(coverage_fraction, n);
  if (target == 0) return LpRelaxation{};
  if (m == 0) return Status::Infeasible("no sets");

  // Variables: x_0..x_{m-1}, z_0..z_{n-1}.
  LpProblem problem;
  problem.num_variables = m + n;
  problem.objective.assign(m + n, 0.0);
  for (SetId s = 0; s < m; ++s) problem.objective[s] = system.set(s).cost;

  const auto& inverted = system.InvertedIndex();
  // z_e - Σ_{s ∋ e} x_s <= 0.
  for (ElementId e = 0; e < n; ++e) {
    Constraint con;
    con.coefficients.assign(m + n, 0.0);
    con.coefficients[m + e] = 1.0;
    for (SetId s : inverted[e]) con.coefficients[s] -= 1.0;
    con.relation = Relation::kLessEqual;
    con.rhs = 0.0;
    problem.constraints.push_back(std::move(con));
  }
  // z_e <= 1 and x_s <= 1.
  for (std::size_t v = 0; v < m + n; ++v) {
    Constraint con;
    con.coefficients.assign(m + n, 0.0);
    con.coefficients[v] = 1.0;
    con.relation = Relation::kLessEqual;
    con.rhs = 1.0;
    problem.constraints.push_back(std::move(con));
  }
  // Σ z_e >= target.
  {
    Constraint con;
    con.coefficients.assign(m + n, 0.0);
    for (ElementId e = 0; e < n; ++e) con.coefficients[m + e] = 1.0;
    con.relation = Relation::kGreaterEqual;
    con.rhs = static_cast<double>(target);
    problem.constraints.push_back(std::move(con));
  }
  // Σ x_s <= k.
  {
    Constraint con;
    con.coefficients.assign(m + n, 0.0);
    for (SetId s = 0; s < m; ++s) con.coefficients[s] = 1.0;
    con.relation = Relation::kLessEqual;
    con.rhs = static_cast<double>(k);
    problem.constraints.push_back(std::move(con));
  }

  SCWSC_ASSIGN_OR_RETURN(LpSolution lp, SolveLp(problem, options));
  LpRelaxation relaxation;
  relaxation.lower_bound = lp.objective;
  relaxation.x.assign(lp.x.begin(), lp.x.begin() + static_cast<std::ptrdiff_t>(m));
  return relaxation;
}

Result<LpRoundingResult> SolveByLpRounding(const SetSystem& system,
                                           const LpScwscOptions& options) {
  const std::size_t n = system.num_elements();
  const std::size_t target =
      SetSystem::CoverageTarget(options.coverage_fraction, n);
  const RunContext& ctx =
      options.run_context ? *options.run_context : RunContext::Unlimited();
  LpOptions lp_options = options.lp;
  if (lp_options.run_context == nullptr) {
    lp_options.run_context = options.run_context;
  }
  if (lp_options.trace == nullptr) lp_options.trace = options.trace;
  LpRelaxation relaxation;
  {
    obs::Span relax_span(options.trace, "lp.relax");
    SCWSC_ASSIGN_OR_RETURN(
        relaxation,
        SolveScwscRelaxation(system, options.k, options.coverage_fraction,
                             lp_options));
  }
  LpRoundingResult result;
  result.lp_lower_bound = relaxation.lower_bound;
  if (target == 0) return result;

  const double alpha =
      options.alpha > 0.0
          ? options.alpha
          : std::log(static_cast<double>(std::max<std::size_t>(n, 2))) + 1.0;

  Rng rng(options.seed);
  bool have_best = false;
  Solution best;

  // Once the relaxation is solved, every later stage can surrender the best
  // rounded solution found so far (possibly none) as the Status payload.
  auto interrupted = [&](TripKind trip) -> Status {
    LpRoundingResult partial = result;
    if (have_best) partial.solution = best;
    Provenance& prov = partial.solution.provenance;
    prov.trip = trip;
    prov.sets_chosen = partial.solution.sets.size();
    prov.coverage_reached = partial.solution.covered;
    partial.cardinality_violation =
        partial.solution.sets.size() > options.k
            ? partial.solution.sets.size() - options.k
            : 0;
    return TripStatus(trip, "lp rounding").WithPayload(std::move(partial));
  };

  auto evaluate = [&](const std::vector<SetId>& picked) {
    DynamicBitset covered(n);
    double cost = 0.0;
    for (SetId s : picked) {
      cost += system.set(s).cost;
      for (ElementId e : system.set(s).elements) covered.set(e);
    }
    return std::make_pair(covered.count(), cost);
  };

  obs::Span round_span(options.trace, "lp.round");
  for (std::size_t t = 0; t < options.trials; ++t) {
    if (const TripKind trip = ctx.Check(); trip != TripKind::kNone) {
      return interrupted(trip);
    }
    std::vector<SetId> picked;
    for (SetId s = 0; s < system.num_sets(); ++s) {
      const double p = std::min(1.0, alpha * relaxation.x[s]);
      if (p > 0.0 && rng.NextBool(p)) picked.push_back(s);
    }
    result.sets_considered += system.num_sets();
    auto [covered, cost] = evaluate(picked);
    if (covered < target) continue;
    ++result.feasible_trials;
    if (!have_best || cost < best.total_cost) {
      best.sets = std::move(picked);
      best.total_cost = cost;
      best.covered = covered;
      have_best = true;
    }
  }

  round_span.End();
  if (options.trace != nullptr) {
    options.trace->metrics().counter("lp.trials").Increment(options.trials);
    options.trace->metrics()
        .counter("lp.feasible_trials")
        .Increment(result.feasible_trials);
  }

  if (!have_best) {
    // Greedy repair: densify the best fractional support by gain until the
    // target is met (falls back to the whole system if the support is too
    // thin).
    obs::Span repair_span(options.trace, "lp.repair");
    CoverState state(system);
    LazySelector selector;
    for (SetId s = 0; s < system.num_sets(); ++s) {
      const std::size_t count = state.MarginalCount(s);
      if (count > 0) selector.Push(MakeGainKey(count, system.set(s).cost, s));
    }
    result.sets_considered += system.num_sets();
    std::size_t rem = target;
    Solution repaired;
    while (rem > 0) {
      if (const TripKind trip = ctx.Check(); trip != TripKind::kNone) {
        repaired.covered = state.covered_count();
        best = std::move(repaired);
        have_best = true;
        return interrupted(trip);
      }
      auto key = selector.Pop([&](SetId s) -> std::optional<SelectionKey> {
        const std::size_t count = state.MarginalCount(s);
        if (count == 0) return std::nullopt;
        return MakeGainKey(count, system.set(s).cost, s);
      });
      if (!key.has_value()) {
        return Status::Infeasible("LP rounding: instance is not coverable");
      }
      const std::size_t newly = state.Select(key->id);
      repaired.sets.push_back(key->id);
      repaired.total_cost += system.set(key->id).cost;
      rem = newly >= rem ? 0 : rem - newly;
    }
    repaired.covered = state.covered_count();
    best = std::move(repaired);
  }

  result.solution = std::move(best);
  result.cardinality_violation =
      result.solution.sets.size() > options.k
          ? result.solution.sets.size() - options.k
          : 0;
  return result;
}

}  // namespace lp
}  // namespace scwsc
