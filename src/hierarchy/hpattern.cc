#include "src/hierarchy/hpattern.h"

#include "src/common/logging.h"

namespace scwsc {
namespace hierarchy {

std::size_t HPattern::num_constants() const {
  std::size_t c = 0;
  for (NodeId n : nodes_) {
    if (n != kAllNode) ++c;
  }
  return c;
}

HPattern HPattern::WithNode(std::size_t attr, NodeId node) const {
  SCWSC_DCHECK(attr < nodes_.size());
  std::vector<NodeId> nodes = nodes_;
  nodes[attr] = node;
  return HPattern(std::move(nodes));
}

bool HPattern::Matches(const Table& table, const TableHierarchy& hierarchy,
                       RowId r) const {
  SCWSC_DCHECK(nodes_.size() == table.num_attributes());
  for (std::size_t a = 0; a < nodes_.size(); ++a) {
    if (nodes_[a] == kAllNode) continue;
    if (!hierarchy.attribute(a).IsAncestorOrSelf(nodes_[a],
                                                 table.value(r, a))) {
      return false;
    }
  }
  return true;
}

HPattern HPattern::ParentAt(const TableHierarchy& hierarchy,
                            std::size_t attr) const {
  SCWSC_DCHECK(nodes_[attr] != kAllNode);
  const NodeId parent = hierarchy.attribute(attr).parent(nodes_[attr]);
  return WithNode(attr, parent == kNoNode ? kAllNode : parent);
}

std::string HPattern::ToString(const Table& table,
                               const TableHierarchy& hierarchy) const {
  std::string out = "{";
  for (std::size_t a = 0; a < nodes_.size(); ++a) {
    if (a) out += ", ";
    out += table.schema().attribute_name(a);
    out += '=';
    if (nodes_[a] == kAllNode) {
      out += "ALL";
    } else {
      out += hierarchy.attribute(a).NodeName(table.dictionary(a), nodes_[a]);
    }
  }
  out += '}';
  return out;
}

bool CanonicalLess(const HPattern& a, const HPattern& b) {
  SCWSC_DCHECK(a.num_attributes() == b.num_attributes());
  for (std::size_t i = 0; i < a.num_attributes(); ++i) {
    const NodeId na = a.node(i);
    const NodeId nb = b.node(i);
    if (na == nb) continue;
    if (na == kAllNode) return false;  // constrained orders before ALL
    if (nb == kAllNode) return true;
    return na < nb;
  }
  return false;
}

std::size_t HPatternHash::operator()(const HPattern& p) const {
  std::size_t h = 1469598103934665603ull;
  for (NodeId n : p.nodes()) {
    h ^= n;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace hierarchy
}  // namespace scwsc
