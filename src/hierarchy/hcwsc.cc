#include "src/hierarchy/hcwsc.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "src/common/bitset.h"
#include "src/common/thread_pool.h"
#include "src/core/benefit_engine.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace scwsc {
namespace hierarchy {
namespace {

struct Candidate {
  HPattern pattern;
  std::vector<RowId> ben;
  std::vector<RowId> mben;
  double cost = 0.0;
  bool processed = false;
};

using CandidateMap = std::unordered_map<HPattern, Candidate, HPatternHash>;

struct WaitEntry {
  std::size_t count;
  const HPattern* pattern;
};
struct WaitLess {
  bool operator()(const WaitEntry& a, const WaitEntry& b) const {
    if (a.count != b.count) return a.count < b.count;
    return CanonicalLess(*b.pattern, *a.pattern);
  }
};

bool BetterCandidate(const Candidate& cand, const Candidate& best) {
  const std::size_t ca = cand.mben.size();
  const std::size_t cb = best.mben.size();
  if (BetterGain(ca, cand.cost, cb, best.cost)) return true;
  if (BetterGain(cb, best.cost, ca, cand.cost)) return false;
  if (ca != cb) return ca > cb;
  if (cand.cost != best.cost) return cand.cost < best.cost;
  return CanonicalLess(cand.pattern, best.pattern);
}

/// One prospective child of `q` at one attribute: the node one level below
/// q's constraint on the ancestor path of some marginal row.
struct HChildGroup {
  std::size_t attr = 0;
  NodeId node = kNoNode;
  std::vector<RowId> marginal_rows;
};

/// Groups q's marginal rows by the one-step specialization that contains
/// them, per attribute: below ALL that is the leaf's forest root; below an
/// internal node its depth+1 ancestor; leaves have no children.
std::vector<HChildGroup> GroupHChildren(const Table& table,
                                        const TableHierarchy& hierarchy,
                                        const HPattern& parent,
                                        const std::vector<RowId>& rows) {
  std::vector<HChildGroup> groups;
  for (std::size_t a = 0; a < parent.num_attributes(); ++a) {
    const AttributeHierarchy& h = hierarchy.attribute(a);
    const NodeId pnode = parent.node(a);
    if (pnode != kAllNode && h.is_leaf(pnode)) continue;  // no children
    const std::size_t child_depth =
        pnode == kAllNode ? 0 : h.depth(pnode) + 1;
    std::unordered_map<NodeId, std::vector<RowId>> by_node;
    for (RowId r : rows) {
      const NodeId leaf = table.value(r, a);
      if (h.depth(leaf) < child_depth) continue;  // leaf sits above
      // When descending from an internal node, only rows in its subtree
      // are in `rows` already (rows = MBen(parent)); the chain lookup
      // yields the child on this leaf's path.
      by_node[h.AncestorAtDepth(leaf, child_depth)].push_back(r);
    }
    const std::size_t first = groups.size();
    for (auto& [node, grows] : by_node) {
      groups.push_back(HChildGroup{a, node, std::move(grows)});
    }
    std::sort(groups.begin() + static_cast<std::ptrdiff_t>(first),
              groups.end(), [](const HChildGroup& x, const HChildGroup& y) {
                return x.node < y.node;
              });
  }
  return groups;
}

}  // namespace

Result<HSolution> RunHierarchicalCwsc(const Table& table,
                                      const TableHierarchy& hierarchy,
                                      const pattern::CostFunction& cost_fn,
                                      const CwscOptions& options,
                                      pattern::PatternStats* stats) {
  if (options.k == 0) return Status::InvalidArgument("k must be positive");
  if (options.coverage_fraction < 0.0 || options.coverage_fraction > 1.0) {
    return Status::InvalidArgument("coverage_fraction must be in [0, 1]");
  }
  if (!table.has_measure()) {
    return Status::InvalidArgument("pattern costs require a measure column");
  }
  if (hierarchy.num_attributes() != table.num_attributes()) {
    return Status::InvalidArgument("hierarchy arity does not match table");
  }

  pattern::PatternStats local_stats;
  pattern::PatternStats& st = stats ? *stats : local_stats;
  st = pattern::PatternStats{};

  const std::size_t n = table.num_rows();
  std::size_t rem = SetSystem::CoverageTarget(options.coverage_fraction, n);
  HSolution solution;
  if (rem == 0) return solution;
  if (n == 0) return Status::Infeasible("empty table with positive target");

  DynamicBitset covered(n);
  obs::Span span(options.trace, "hcwsc");
  obs::MetricCounter* considered_metric = nullptr;
  obs::MetricCounter* admitted_metric = nullptr;
  if (options.trace != nullptr) {
    considered_metric = &options.trace->metrics().counter("pattern.considered");
    admitted_metric = &options.trace->metrics().counter("pattern.admitted");
  }
  const RunContext& ctx =
      options.run_context ? *options.run_context : RunContext::Unlimited();
  auto interrupted = [&](TripKind trip) -> Status {
    solution.covered = covered.count();
    solution.provenance.trip = trip;
    solution.provenance.sets_chosen = solution.patterns.size();
    solution.provenance.coverage_reached = solution.covered;
    return TripStatus(trip, "hierarchical cwsc").WithPayload(solution);
  };
  CandidateMap candidates;
  std::unordered_set<HPattern, HPatternHash> selected;

  // Candidate-scan pool for the per-iteration MBen refresh; each candidate's
  // posting list is filtered independently, so any lane count is
  // bit-identical to serial.
  std::unique_ptr<ThreadPool> pool;
  if (ThreadPool::ResolveThreads(options.engine.num_threads) > 1) {
    pool = std::make_unique<ThreadPool>(options.engine.num_threads);
  }

  {
    Candidate root;
    root.pattern = HPattern::AllWildcards(table.num_attributes());
    root.ben.resize(n);
    for (RowId r = 0; r < n; ++r) root.ben[r] = r;
    root.mben = root.ben;
    root.cost = cost_fn.Compute(table, root.ben);
    ++st.patterns_considered;
    ++st.candidates_admitted;
    if (considered_metric != nullptr) considered_metric->Increment();
    if (admitted_metric != nullptr) admitted_metric->Increment();
    candidates.emplace(root.pattern, std::move(root));
  }

  for (std::size_t i = options.k; i >= 1; --i) {
    if (const TripKind trip = ctx.Check(); trip != TripKind::kNone) {
      return interrupted(trip);
    }
    obs::Span descend_span(options.trace, "hcwsc.descend");
    for (auto it = candidates.begin(); it != candidates.end();) {
      if (it->second.mben.size() * i < rem) {
        it = candidates.erase(it);
      } else {
        it->second.processed = false;
        ++it;
      }
    }

    std::priority_queue<WaitEntry, std::vector<WaitEntry>, WaitLess> waitlist;
    for (auto& [pat, cand] : candidates) {
      waitlist.push(WaitEntry{cand.mben.size(), &pat});
    }
    while (!waitlist.empty()) {
      if (const TripKind trip = ctx.Check(); trip != TripKind::kNone) {
        return interrupted(trip);
      }
      const WaitEntry top = waitlist.top();
      waitlist.pop();
      auto qit = candidates.find(*top.pattern);
      if (qit == candidates.end() || qit->second.processed) continue;
      Candidate& q = qit->second;
      q.processed = true;

      auto groups = GroupHChildren(table, hierarchy, q.pattern, q.mben);
      // Each prospective child is one lattice expansion against the
      // node-expansion budget; a trip surfaces at the next Check above.
      ctx.ChargeNodes(groups.size());

      struct Pending {
        std::size_t group_index;
        HPattern child;
      };
      std::vector<Pending> pending;
      for (std::size_t g = 0; g < groups.size(); ++g) {
        HPattern child = q.pattern.WithNode(groups[g].attr, groups[g].node);
        if (candidates.count(child) || selected.count(child)) continue;
        bool parents_ok = true;
        for (std::size_t a = 0; a < child.num_attributes() && parents_ok;
             ++a) {
          if (child.is_wildcard(a)) continue;
          if (!candidates.count(child.ParentAt(hierarchy, a))) {
            parents_ok = false;
          }
        }
        if (!parents_ok) continue;
        pending.push_back(Pending{g, std::move(child)});
      }

      for (auto& pend : pending) {
        const HChildGroup& group = groups[pend.group_index];
        const AttributeHierarchy& h = hierarchy.attribute(group.attr);
        Candidate cand;
        cand.pattern = std::move(pend.child);
        cand.ben.reserve(group.marginal_rows.size());
        for (RowId r : q.ben) {
          if (h.IsAncestorOrSelf(group.node, table.value(r, group.attr))) {
            cand.ben.push_back(r);
          }
        }
        cand.mben = group.marginal_rows;
        cand.cost = cost_fn.Compute(table, cand.ben);
        ++st.patterns_considered;
        if (considered_metric != nullptr) considered_metric->Increment();
        if (cand.mben.size() * i >= rem) {
          ++st.candidates_admitted;
          if (admitted_metric != nullptr) admitted_metric->Increment();
          auto [it, inserted] =
              candidates.emplace(cand.pattern, std::move(cand));
          SCWSC_CHECK(inserted, "candidate admitted twice");
          waitlist.push(WaitEntry{it->second.mben.size(), &it->first});
        }
      }
    }

    const Candidate* best = nullptr;
    for (const auto& [pat, cand] : candidates) {
      if (best == nullptr || BetterCandidate(cand, *best)) best = &cand;
    }
    if (best == nullptr) {
      return Status::Infeasible("hierarchical CWSC: no qualified candidate");
    }

    descend_span.Event("pick");
    solution.patterns.push_back(best->pattern);
    solution.total_cost += best->cost;
    const std::size_t newly = best->mben.size();
    for (RowId r : best->mben) covered.set(r);
    selected.insert(best->pattern);
    candidates.erase(best->pattern);
    rem = newly >= rem ? 0 : rem - newly;
    solution.covered = covered.count();
    if (rem == 0) return solution;

    std::vector<std::vector<RowId>*> mben_lists;
    mben_lists.reserve(candidates.size());
    for (auto& [pat, cand] : candidates) mben_lists.push_back(&cand.mben);
    const Status filtered =
        FilterCoveredIds(covered, mben_lists, pool.get(), &ctx);
    if (!filtered.ok()) {
      if (!filtered.IsInterruption()) return filtered;  // pool task threw
      return interrupted(ctx.tripped());
    }
    for (auto it = candidates.begin(); it != candidates.end();) {
      if (it->second.mben.empty()) {
        it = candidates.erase(it);
      } else {
        ++it;
      }
    }
  }

  return Status::Internal(
      "hierarchical CWSC exhausted k picks without meeting coverage");
}

}  // namespace hierarchy
}  // namespace scwsc
