#include "src/hierarchy/bucketize.h"

#include <algorithm>
#include <cmath>

#include "src/common/strings.h"
#include "src/table/builder.h"

namespace scwsc {
namespace hierarchy {

Result<BucketizedAttribute> AppendBucketizedAttribute(
    const Table& table, const std::vector<double>& values,
    const std::string& name, const BucketizeOptions& options) {
  if (values.size() != table.num_rows()) {
    return Status::InvalidArgument("values length does not match row count");
  }
  if (options.num_buckets < 2) {
    return Status::InvalidArgument("need at least 2 buckets");
  }
  if (values.empty()) {
    return Status::InvalidArgument("cannot bucketize an empty table");
  }
  for (double v : values) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("values must be finite");
    }
  }

  // Equi-depth cut points; deduplicate so buckets are non-degenerate.
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> cuts;  // lower bounds of buckets 1..m-1
  for (std::size_t b = 1; b < options.num_buckets; ++b) {
    const double cut = sorted[values.size() * b / options.num_buckets];
    if (cuts.empty() || cut > cuts.back()) cuts.push_back(cut);
  }
  const std::size_t num_buckets = cuts.size() + 1;

  auto bucket_of = [&](double v) -> std::size_t {
    return static_cast<std::size_t>(
        std::upper_bound(cuts.begin(), cuts.end(), v) - cuts.begin());
  };
  auto bucket_lo = [&](std::size_t b) {
    return b == 0 ? sorted.front() : cuts[b - 1];
  };
  auto bucket_hi = [&](std::size_t b) {
    return b + 1 == num_buckets ? sorted.back() : cuts[b];
  };
  auto range_label = [&](std::size_t lo_bucket, std::size_t hi_bucket) {
    return StrFormat("[%s..%s]", FormatNumber(bucket_lo(lo_bucket)).c_str(),
                     FormatNumber(bucket_hi(hi_bucket)).c_str());
  };

  // Rebuild the table with the bucket attribute appended.
  std::vector<std::string> attr_names = table.schema().attribute_names();
  attr_names.push_back(name);
  TableBuilder builder(attr_names, table.schema().measure_name());
  for (RowId r = 0; r < table.num_rows(); ++r) {
    std::vector<std::string_view> row;
    std::vector<std::string> storage;
    storage.reserve(table.num_attributes() + 1);
    for (std::size_t a = 0; a < table.num_attributes(); ++a) {
      storage.push_back(table.value_name(r, a));
    }
    const std::size_t b = bucket_of(values[r]);
    storage.push_back(range_label(b, b));
    for (const auto& s : storage) row.push_back(s);
    SCWSC_RETURN_NOT_OK(
        builder.AddRow(row, table.has_measure() ? table.measure(r) : 0.0));
  }
  Table with_bucket = std::move(builder).Build();
  const std::size_t attr_index = with_bucket.num_attributes() - 1;

  // Binary merge hierarchy over the ordered buckets: pair adjacent ranges
  // until a single root covers everything.
  std::vector<std::pair<std::string, std::string>> edges;
  struct Range {
    std::size_t lo, hi;
    std::string label;
  };
  std::vector<Range> level;
  for (std::size_t b = 0; b < num_buckets; ++b) {
    level.push_back(Range{b, b, range_label(b, b)});
  }
  // Stop at two roots: a single root would cover every bucket and thus
  // duplicate the ALL wildcard as a redundant lattice node.
  while (level.size() > 2) {
    std::vector<Range> next;
    for (std::size_t i = 0; i < level.size(); i += 2) {
      if (i + 1 < level.size()) {
        Range merged{level[i].lo, level[i + 1].hi,
                     "range" + range_label(level[i].lo, level[i + 1].hi)};
        edges.emplace_back(level[i].label, merged.label);
        edges.emplace_back(level[i + 1].label, merged.label);
        next.push_back(std::move(merged));
      } else {
        next.push_back(level[i]);  // odd range promotes unchanged
      }
    }
    level = std::move(next);
  }

  SCWSC_ASSIGN_OR_RETURN(
      AttributeHierarchy h,
      AttributeHierarchy::Build(with_bucket.dictionary(attr_index), edges));
  return BucketizedAttribute{std::move(with_bucket), attr_index, std::move(h),
                             num_buckets};
}

}  // namespace hierarchy
}  // namespace scwsc
