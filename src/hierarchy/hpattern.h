// HierarchicalPattern: a pattern whose attribute constraints may be any
// hierarchy node, not just a leaf value.
//
// A record matches when, for every constrained attribute, its leaf value
// lies in the constrained node's subtree. The specialization lattice is:
// ALL -> (roots of the attribute's forest) -> children -> ... -> leaves;
// the flat pattern lattice is the special case where every leaf is a root.

#ifndef SCWSC_HIERARCHY_HPATTERN_H_
#define SCWSC_HIERARCHY_HPATTERN_H_

#include <string>
#include <vector>

#include "src/hierarchy/hierarchy.h"
#include "src/table/table.h"

namespace scwsc {
namespace hierarchy {

/// Sentinel for the ALL wildcard (sits above every root).
inline constexpr NodeId kAllNode = 0xFFFFFFFEu;

class HPattern {
 public:
  HPattern() = default;
  explicit HPattern(std::vector<NodeId> nodes) : nodes_(std::move(nodes)) {}

  static HPattern AllWildcards(std::size_t num_attributes) {
    return HPattern(std::vector<NodeId>(num_attributes, kAllNode));
  }

  std::size_t num_attributes() const { return nodes_.size(); }
  NodeId node(std::size_t attr) const { return nodes_[attr]; }
  bool is_wildcard(std::size_t attr) const { return nodes_[attr] == kAllNode; }
  std::size_t num_constants() const;

  HPattern WithNode(std::size_t attr, NodeId node) const;

  /// True when row `r` of `table` matches under `hierarchy`.
  bool Matches(const Table& table, const TableHierarchy& hierarchy,
               RowId r) const;

  /// The lattice parent obtained by generalizing attribute `attr` one step:
  /// the node's hierarchy parent, or ALL when the node is a root. Requires
  /// a non-wildcard attribute.
  HPattern ParentAt(const TableHierarchy& hierarchy, std::size_t attr) const;

  /// "{Location=South, Type=ALL}" with hierarchy node names.
  std::string ToString(const Table& table,
                       const TableHierarchy& hierarchy) const;

  const std::vector<NodeId>& nodes() const { return nodes_; }

  friend bool operator==(const HPattern& a, const HPattern& b) {
    return a.nodes_ == b.nodes_;
  }

 private:
  std::vector<NodeId> nodes_;
};

/// Deterministic total order (attribute-wise node ids, ALL last).
bool CanonicalLess(const HPattern& a, const HPattern& b);

struct HPatternHash {
  std::size_t operator()(const HPattern& p) const;
};

}  // namespace hierarchy
}  // namespace scwsc

#endif  // SCWSC_HIERARCHY_HPATTERN_H_
