// Optimized CWSC over hierarchical patterns — Fig. 3 generalized to the
// deeper lattice induced by attribute hierarchies (paper §II's deferred
// extension).
//
// Identical structure to pattern::RunOptimizedCwsc: candidates start at the
// all-wildcards pattern and descend one specialization step at a time —
// ALL -> forest root -> child node -> ... -> leaf — with a child admitted
// only when all of its lattice parents qualify (marginal benefit is
// anti-monotone along subtree containment, exactly as in the flat case).
// With all-flat hierarchies this computes precisely the flat Fig. 3
// algorithm, which the tests verify against pattern::RunOptimizedCwsc.

#ifndef SCWSC_HIERARCHY_HCWSC_H_
#define SCWSC_HIERARCHY_HCWSC_H_

#include "src/common/result.h"
#include "src/core/cwsc.h"
#include "src/hierarchy/hpattern.h"
#include "src/pattern/cost.h"
#include "src/pattern/stats.h"

namespace scwsc {
namespace hierarchy {

struct HSolution {
  std::vector<HPattern> patterns;  // in selection order
  double total_cost = 0.0;
  std::size_t covered = 0;
  /// How the run ended (trip == kNone for a clean finish). Interrupted runs
  /// surface the best-so-far HSolution as the interruption Status payload.
  Provenance provenance;
};

/// Lattice-optimized CWSC under `hierarchy`. `stats` (optional) receives
/// the patterns-considered instrumentation.
Result<HSolution> RunHierarchicalCwsc(const Table& table,
                                      const TableHierarchy& hierarchy,
                                      const pattern::CostFunction& cost_fn,
                                      const CwscOptions& options,
                                      pattern::PatternStats* stats = nullptr);

}  // namespace hierarchy
}  // namespace scwsc

#endif  // SCWSC_HIERARCHY_HCWSC_H_
