#include "src/hierarchy/hcmc.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "src/common/bitset.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/pattern/pattern.h"

namespace scwsc {
namespace hierarchy {
namespace {

struct Candidate {
  std::vector<RowId> mben;
  std::size_t epoch = 0;
  double cost = 0.0;
  bool cost_known = false;
};

struct HeapEntry {
  std::size_t count;
  HPattern key;
};
struct HeapLess {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.count != b.count) return a.count < b.count;
    return CanonicalLess(b.key, a.key);
  }
};

/// Ben(p) by a direct matching scan (hierarchical postings would need a
/// per-node index; a scan is O(n·j) and only runs once per popped pattern).
std::vector<RowId> BenOf(const Table& table, const TableHierarchy& hierarchy,
                         const HPattern& p) {
  std::vector<RowId> rows;
  for (RowId r = 0; r < table.num_rows(); ++r) {
    if (p.Matches(table, hierarchy, r)) rows.push_back(r);
  }
  return rows;
}

}  // namespace

Result<HSolution> RunHierarchicalCmc(const Table& table,
                                     const TableHierarchy& hierarchy,
                                     const pattern::CostFunction& cost_fn,
                                     const CmcOptions& options,
                                     pattern::PatternStats* stats) {
  if (options.k == 0) return Status::InvalidArgument("k must be positive");
  if (options.l == 0) return Status::InvalidArgument("l must be positive");
  if (options.coverage_fraction < 0.0 || options.coverage_fraction > 1.0) {
    return Status::InvalidArgument("coverage_fraction must be in [0, 1]");
  }
  if (options.b <= 0.0) {
    return Status::InvalidArgument("budget growth b must be positive");
  }
  if (options.epsilon < 0.0) {
    return Status::InvalidArgument("epsilon must be >= 0");
  }
  if (!table.has_measure()) {
    return Status::InvalidArgument("pattern costs require a measure column");
  }
  if (hierarchy.num_attributes() != table.num_attributes()) {
    return Status::InvalidArgument("hierarchy arity does not match table");
  }

  pattern::PatternStats local_stats;
  pattern::PatternStats& st = stats ? *stats : local_stats;
  st = pattern::PatternStats{};

  const std::size_t n = table.num_rows();
  const std::size_t j = table.num_attributes();
  const std::size_t target =
      CmcCoverageTarget(options.coverage_fraction, n, options.relax_coverage);

  HSolution solution;
  if (target == 0) return solution;
  if (n == 0) return Status::Infeasible("empty table with positive target");

  std::vector<RowId> all_rows(n);
  for (RowId r = 0; r < n; ++r) all_rows[r] = r;
  const double root_cost = cost_fn.Compute(table, all_rows);

  // Budget seed: same lower bound as the flat optimized CMC.
  double min_measure = 0.0;
  double min_positive_measure = 0.0;
  bool first = true;
  for (RowId r = 0; r < n; ++r) {
    const double m = table.measure(r);
    if (first || m < min_measure) min_measure = m;
    if (m > 0.0 && (min_positive_measure == 0.0 || m < min_positive_measure)) {
      min_positive_measure = m;
    }
    first = false;
  }
  double budget = static_cast<double>(options.k) * std::max(min_measure, 0.0);
  if (budget <= 0.0) {
    budget = min_positive_measure > 0.0 ? min_positive_measure : 1.0;
  }

  // Round-feasibility precheck (see hcmc.h): duplicate-group aggregates.
  std::vector<double> coverable_thresholds;
  {
    bool bound_valid = cost_fn.kind() == pattern::CostKind::kMax;
    if (!bound_valid) {
      bound_valid = true;
      for (RowId r = 0; r < n; ++r) {
        if (table.measure(r) < 0.0) {
          bound_valid = false;
          break;
        }
      }
    }
    if (bound_valid) {
      std::unordered_map<pattern::Pattern, std::vector<RowId>,
                         pattern::PatternHash>
          groups;
      for (RowId r = 0; r < n; ++r) {
        std::vector<ValueId> key(j);
        for (std::size_t a = 0; a < j; ++a) key[a] = table.value(r, a);
        groups[pattern::Pattern(std::move(key))].push_back(r);
      }
      coverable_thresholds.reserve(n);
      for (const auto& [pat, rows] : groups) {
        const double aggregate = cost_fn.Compute(table, rows);
        for (std::size_t i = 0; i < rows.size(); ++i) {
          coverable_thresholds.push_back(aggregate);
        }
      }
      std::sort(coverable_thresholds.begin(), coverable_thresholds.end());
    }
  }
  auto coverable_rows = [&](double b) -> std::size_t {
    if (coverable_thresholds.empty()) return n;
    return static_cast<std::size_t>(
        std::upper_bound(coverable_thresholds.begin(),
                         coverable_thresholds.end(), b) -
        coverable_thresholds.begin());
  };

  DynamicBitset covered(n);
  bool final_round = budget >= root_cost;

  const RunContext& ctx =
      options.run_context ? *options.run_context : RunContext::Unlimited();
  // `partial` must arrive with `covered` already stamped; each round
  // restarts from scratch, so the previous (insufficient) round is the
  // best-so-far for a trip between rounds.
  auto interrupted = [&](TripKind trip, HSolution partial) -> Status {
    partial.provenance.trip = trip;
    partial.provenance.sets_chosen = partial.patterns.size();
    partial.provenance.coverage_reached = partial.covered;
    partial.provenance.budget_level = budget;
    return TripStatus(trip, "hierarchical cmc").WithPayload(std::move(partial));
  };
  HSolution last_round;

  using CandidateMap = std::unordered_map<HPattern, Candidate, HPatternHash>;
  using KeySet = std::unordered_set<HPattern, HPatternHash>;
  using Heap = std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapLess>;

  obs::Span cmc_span(options.trace, "hcmc");
  obs::MetricCounter* considered_metric = nullptr;
  obs::MetricCounter* admitted_metric = nullptr;
  if (options.trace != nullptr) {
    considered_metric = &options.trace->metrics().counter("pattern.considered");
    admitted_metric = &options.trace->metrics().counter("pattern.admitted");
  }

  for (std::size_t round = 1; round <= options.max_budget_rounds; ++round) {
    if (const TripKind trip = ctx.Check(); trip != TripKind::kNone) {
      return interrupted(trip, std::move(last_round));
    }
    st.budget_rounds = round;
    if (coverable_rows(budget) < target) {
      if (final_round) {
        return Status::Infeasible(
            "hierarchical CMC: coverage unreachable even at the "
            "all-wildcards pattern's cost");
      }
      budget *= (1.0 + options.b);
      if (budget >= root_cost) {
        budget = root_cost;
        final_round = true;
      }
      continue;
    }

    obs::Span round_span(options.trace, "hcmc.round");
    const auto levels =
        BuildCmcLevels(budget, options.k, options.epsilon, options.l);
    std::size_t total_allowance = 0;
    for (const auto& lv : levels) total_allowance += lv.capacity;

    covered.clear();
    std::size_t rem = target;
    CandidateMap candidates;
    KeySet visited;
    KeySet selected;
    std::vector<std::size_t> level_count(levels.size(), 0);
    std::size_t total_count = 0;
    std::size_t epoch = 0;

    HSolution round_solution;

    {
      Candidate root;
      root.mben = all_rows;
      root.cost = root_cost;
      root.cost_known = true;
      ++st.patterns_considered;
      ++st.candidates_admitted;
      if (considered_metric != nullptr) considered_metric->Increment();
      if (admitted_metric != nullptr) admitted_metric->Increment();
      candidates.emplace(HPattern::AllWildcards(j), std::move(root));
    }
    Heap heap;
    heap.push(HeapEntry{n, HPattern::AllWildcards(j)});

    while (!candidates.empty() && total_count <= total_allowance && rem > 0) {
      if (heap.empty()) break;
      if (const TripKind trip = ctx.Check(); trip != TripKind::kNone) {
        round_solution.covered = covered.count();
        return interrupted(trip, std::move(round_solution));
      }
      HeapEntry top = heap.top();
      heap.pop();
      auto qit = candidates.find(top.key);
      if (qit == candidates.end()) continue;
      Candidate& cand_ref = qit->second;
      if (cand_ref.epoch != epoch) {
        auto& m = cand_ref.mben;
        m.erase(std::remove_if(m.begin(), m.end(),
                               [&](RowId r) { return covered.test(r); }),
                m.end());
        cand_ref.epoch = epoch;
        if (m.empty()) {
          candidates.erase(qit);
          continue;
        }
      }
      if (cand_ref.mben.size() != top.count) {
        heap.push(HeapEntry{cand_ref.mben.size(), std::move(top.key)});
        continue;
      }

      const HPattern q_key = top.key;
      Candidate q = std::move(qit->second);
      candidates.erase(qit);
      if (!q.cost_known) {
        q.cost = cost_fn.Compute(table, BenOf(table, hierarchy, q_key));
        q.cost_known = true;
      }

      const int level = LevelOf(levels, q.cost);
      bool selected_now = false;
      if (level >= 0) {
        std::size_t& cnt = level_count[static_cast<std::size_t>(level)];
        ++cnt;
        ++total_count;
        if (cnt <= levels[static_cast<std::size_t>(level)].capacity) {
          selected_now = true;
        }
      }

      if (selected_now) {
        round_span.Event("pick");
        round_solution.patterns.push_back(q_key);
        round_solution.total_cost += q.cost;
        selected.insert(q_key);
        const std::size_t newly = q.mben.size();
        for (RowId r : q.mben) covered.set(r);
        rem = newly >= rem ? 0 : rem - newly;
        ++epoch;
        if (rem == 0) break;
        continue;
      }

      visited.insert(q_key);
      // Children of q with non-zero marginal benefit, grouped by the
      // one-step specialization containing each row.
      for (std::size_t a = 0; a < j; ++a) {
        const AttributeHierarchy& h = hierarchy.attribute(a);
        const NodeId pnode = q_key.node(a);
        if (pnode != kAllNode && h.is_leaf(pnode)) continue;
        const std::size_t child_depth =
            pnode == kAllNode ? 0 : h.depth(pnode) + 1;
        std::unordered_map<NodeId, std::vector<RowId>> by_node;
        for (RowId r : q.mben) {
          const NodeId leaf = table.value(r, a);
          if (h.depth(leaf) < child_depth) continue;
          by_node[h.AncestorAtDepth(leaf, child_depth)].push_back(r);
        }
        // Deterministic admission order by node id.
        std::vector<NodeId> nodes;
        nodes.reserve(by_node.size());
        for (const auto& [node, rows] : by_node) nodes.push_back(node);
        std::sort(nodes.begin(), nodes.end());
        // One lattice expansion per prospective child; a trip surfaces at
        // the next heap-pop Check.
        ctx.ChargeNodes(nodes.size());
        for (NodeId node : nodes) {
          HPattern child = q_key.WithNode(a, node);
          if (candidates.count(child) || visited.count(child) ||
              selected.count(child)) {
            continue;
          }
          bool parents_ok = true;
          for (std::size_t pa = 0; pa < j && parents_ok; ++pa) {
            if (child.is_wildcard(pa)) continue;
            if (!visited.count(child.ParentAt(hierarchy, pa))) {
              parents_ok = false;
            }
          }
          if (!parents_ok) continue;
          Candidate cand;
          cand.mben = std::move(by_node[node]);
          cand.epoch = epoch;
          ++st.patterns_considered;
          ++st.candidates_admitted;
          if (considered_metric != nullptr) considered_metric->Increment();
          if (admitted_metric != nullptr) admitted_metric->Increment();
          const std::size_t count = cand.mben.size();
          candidates.emplace(child, std::move(cand));
          heap.push(HeapEntry{count, std::move(child)});
        }
      }
    }

    if (rem == 0) {
      round_solution.covered = covered.count();
      st.final_budget = budget;
      return round_solution;
    }
    round_solution.covered = covered.count();
    last_round = std::move(round_solution);
    if (final_round) {
      return Status::Infeasible(
          "hierarchical CMC: coverage unreachable even at the all-wildcards "
          "pattern's cost");
    }
    budget *= (1.0 + options.b);
    if (budget >= root_cost) {
      budget = root_cost;
      final_round = true;
    }
  }
  return Status::ResourceExhausted(
      "hierarchical CMC: max_budget_rounds exceeded");
}

}  // namespace hierarchy
}  // namespace scwsc
