#include "src/hierarchy/hierarchy.h"

#include <algorithm>
#include <unordered_map>

#include "src/common/logging.h"

namespace scwsc {
namespace hierarchy {

AttributeHierarchy AttributeHierarchy::Flat(std::size_t num_leaves) {
  AttributeHierarchy h;
  h.num_leaves_ = num_leaves;
  h.parent_.assign(num_leaves, kNoNode);
  h.children_.assign(num_leaves, {});
  h.roots_.resize(num_leaves);
  for (NodeId v = 0; v < num_leaves; ++v) h.roots_[v] = v;
  h.FinishConstruction();
  return h;
}

Result<AttributeHierarchy> AttributeHierarchy::Build(
    const Dictionary& dictionary,
    const std::vector<std::pair<std::string, std::string>>& child_to_parent) {
  AttributeHierarchy h;
  h.num_leaves_ = dictionary.size();

  // Assign ids: leaves first (dictionary ids), then internal names in
  // first-mention order.
  std::unordered_map<std::string, NodeId> internal_ids;
  auto resolve = [&](const std::string& name,
                     bool must_be_internal) -> Result<NodeId> {
    auto leaf = dictionary.Find(name);
    if (leaf.ok()) {
      if (must_be_internal) {
        return Status::InvalidArgument(
            "hierarchy parent '" + name +
            "' collides with a leaf value; parents must be internal nodes");
      }
      return *leaf;
    }
    auto it = internal_ids.find(name);
    if (it != internal_ids.end()) return it->second;
    const NodeId id =
        static_cast<NodeId>(h.num_leaves_ + h.internal_names_.size());
    internal_ids.emplace(name, id);
    h.internal_names_.push_back(name);
    return id;
  };

  // First pass: discover all nodes.
  for (const auto& [child, parent] : child_to_parent) {
    SCWSC_ASSIGN_OR_RETURN(NodeId c, resolve(child, false));
    SCWSC_ASSIGN_OR_RETURN(NodeId p, resolve(parent, true));
    (void)c;
    (void)p;
  }
  const std::size_t num_nodes = h.num_leaves_ + h.internal_names_.size();
  h.parent_.assign(num_nodes, kNoNode);
  h.children_.assign(num_nodes, {});

  // Second pass: wire edges.
  for (const auto& [child, parent] : child_to_parent) {
    SCWSC_ASSIGN_OR_RETURN(NodeId c, resolve(child, false));
    SCWSC_ASSIGN_OR_RETURN(NodeId p, resolve(parent, true));
    if (c == p) return Status::InvalidArgument("self-edge in hierarchy");
    if (h.parent_[c] != kNoNode && h.parent_[c] != p) {
      return Status::InvalidArgument("node '" + child +
                                     "' has multiple parents");
    }
    if (h.parent_[c] == p) continue;  // duplicate edge
    h.parent_[c] = p;
    h.children_[p].push_back(c);
  }

  // Roots, cycle detection via root-path walking with a visited budget.
  for (NodeId v = 0; v < num_nodes; ++v) {
    if (h.parent_[v] == kNoNode) h.roots_.push_back(v);
    std::size_t steps = 0;
    for (NodeId cur = v; cur != kNoNode; cur = h.parent_[cur]) {
      if (++steps > num_nodes) {
        return Status::InvalidArgument("hierarchy contains a cycle");
      }
    }
  }
  // Internal nodes with no children would be unreachable dead nodes; they
  // are legal but useless, so reject to surface likely typos.
  for (NodeId v = static_cast<NodeId>(h.num_leaves_); v < num_nodes; ++v) {
    if (h.children_[v].empty()) {
      return Status::InvalidArgument(
          "internal node '" + h.internal_names_[v - h.num_leaves_] +
          "' has no children");
    }
  }

  h.FinishConstruction();
  return h;
}

void AttributeHierarchy::FinishConstruction() {
  const std::size_t num_nodes = parent_.size();
  depth_.assign(num_nodes, 0);
  euler_in_.assign(num_nodes, 0);
  euler_out_.assign(num_nodes, 0);
  leaf_count_.assign(num_nodes, 0);
  chains_.assign(num_leaves_, {});

  // Sort children and roots for deterministic traversal order.
  for (auto& c : children_) std::sort(c.begin(), c.end());
  std::sort(roots_.begin(), roots_.end());

  std::uint32_t clock = 0;
  std::vector<NodeId> path;
  // Iterative DFS from each root.
  struct Frame {
    NodeId node;
    std::size_t next_child;
  };
  std::vector<Frame> stack;
  for (NodeId root : roots_) {
    stack.push_back(Frame{root, 0});
    depth_[root] = 0;
    euler_in_[root] = clock++;
    path.push_back(root);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.next_child < children_[frame.node].size()) {
        const NodeId child = children_[frame.node][frame.next_child++];
        depth_[child] = depth_[frame.node] + 1;
        euler_in_[child] = clock++;
        path.push_back(child);
        stack.push_back(Frame{child, 0});
      } else {
        const NodeId node = frame.node;
        euler_out_[node] = clock++;
        if (is_leaf(node)) {
          leaf_count_[node] = 1;
          chains_[node] = path;  // root-to-leaf chain
        }
        if (parent_[node] != kNoNode) {
          leaf_count_[parent_[node]] += leaf_count_[node];
        }
        path.pop_back();
        stack.pop_back();
      }
    }
  }
}

const std::string& AttributeHierarchy::NodeName(const Dictionary& dictionary,
                                                NodeId node) const {
  if (is_leaf(node)) return dictionary.Name(node);
  return internal_names_[node - num_leaves_];
}

TableHierarchy TableHierarchy::Flat(const Table& table) {
  std::vector<AttributeHierarchy> per_attribute;
  per_attribute.reserve(table.num_attributes());
  for (std::size_t a = 0; a < table.num_attributes(); ++a) {
    per_attribute.push_back(AttributeHierarchy::Flat(table.domain_size(a)));
  }
  return TableHierarchy(std::move(per_attribute));
}

Result<TableHierarchy> TableHierarchy::Build(
    const Table& table,
    std::vector<std::pair<std::size_t, AttributeHierarchy>> overrides) {
  TableHierarchy th = Flat(table);
  for (auto& [attr, h] : overrides) {
    if (attr >= table.num_attributes()) {
      return Status::InvalidArgument("hierarchy attribute index out of range");
    }
    if (h.num_leaves() != table.domain_size(attr)) {
      return Status::InvalidArgument(
          "hierarchy leaf count does not match the attribute's domain");
    }
    th.per_attribute_[attr] = std::move(h);
  }
  return th;
}

}  // namespace hierarchy
}  // namespace scwsc
