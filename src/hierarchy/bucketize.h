// Numerical range attributes (paper §II's second deferred extension).
//
// A numeric series is discretized into equi-depth buckets that become a new
// categorical pattern attribute, and a binary merge hierarchy is built over
// the ordered buckets, so that contiguous ranges ("age in [13..19]") are
// available to the hierarchical solvers as single lattice nodes: the solver
// can pick a coarse range where it is cheap and drill into narrow buckets
// where it pays.

#ifndef SCWSC_HIERARCHY_BUCKETIZE_H_
#define SCWSC_HIERARCHY_BUCKETIZE_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/hierarchy/hierarchy.h"
#include "src/table/table.h"

namespace scwsc {
namespace hierarchy {

struct BucketizeOptions {
  /// Target number of equi-depth buckets; duplicates at quantile boundaries
  /// can merge buckets, so the realized count may be smaller.
  std::size_t num_buckets = 8;
};

struct BucketizedAttribute {
  /// The input table with one extra categorical attribute appended (last).
  Table table;
  /// Index of the appended attribute.
  std::size_t attribute_index;
  /// Binary range hierarchy over the appended attribute's buckets.
  AttributeHierarchy hierarchy;
  /// Realized bucket count.
  std::size_t num_buckets;
};

/// Discretizes `values` (one per row of `table`) into the new attribute
/// `name`. Bucket labels encode their half-open value range; internal
/// nodes encode merged ranges.
Result<BucketizedAttribute> AppendBucketizedAttribute(
    const Table& table, const std::vector<double>& values,
    const std::string& name, const BucketizeOptions& options = {});

}  // namespace hierarchy
}  // namespace scwsc

#endif  // SCWSC_HIERARCHY_BUCKETIZE_H_
