// Optimized CMC over hierarchical patterns — Fig. 4 generalized to the
// hierarchy lattice, completing the §II extension for both of the paper's
// algorithms. Shares the budget schedule and level structure with the
// generic CMC (BuildCmcLevels) and the engineering of the flat optimized
// CMC: lazy marginal refresh, pop-time cost computation, and the
// round-feasibility precheck (a row is coverable within budget B only if
// its duplicate-group aggregate is <= B — hierarchical patterns also cover
// whole duplicate groups, so the bound carries over unchanged).

#ifndef SCWSC_HIERARCHY_HCMC_H_
#define SCWSC_HIERARCHY_HCMC_H_

#include "src/common/result.h"
#include "src/core/cmc.h"
#include "src/hierarchy/hcwsc.h"

namespace scwsc {
namespace hierarchy {

/// Lattice-optimized CMC under `hierarchy`. Coverage/size guarantees match
/// the generic CMC (Theorems 4/5) since the hierarchical patterns form just
/// another set system containing the all-wildcards universe set.
Result<HSolution> RunHierarchicalCmc(const Table& table,
                                     const TableHierarchy& hierarchy,
                                     const pattern::CostFunction& cost_fn,
                                     const CmcOptions& options,
                                     pattern::PatternStats* stats = nullptr);

}  // namespace hierarchy
}  // namespace scwsc

#endif  // SCWSC_HIERARCHY_HCMC_H_
