#include "src/hierarchy/henumerate.h"

#include <algorithm>
#include <unordered_map>

#include "src/obs/trace.h"

namespace scwsc {
namespace hierarchy {

Result<std::vector<EnumeratedHPattern>> EnumerateAllHPatterns(
    const Table& table, const TableHierarchy& hierarchy,
    const HEnumerateOptions& options) {
  const std::size_t j = table.num_attributes();
  if (j == 0) {
    return Status::InvalidArgument("table has no pattern attributes");
  }
  if (hierarchy.num_attributes() != j) {
    return Status::InvalidArgument("hierarchy arity does not match table");
  }

  obs::Span span(options.trace, "henumerate");
  std::unordered_map<HPattern, std::uint32_t, HPatternHash> index;
  std::vector<EnumeratedHPattern> out;

  // Per-row generalization cross product: each attribute contributes the
  // leaf's root chain plus ALL.
  const RunContext& ctx =
      options.run_context ? *options.run_context : RunContext::Unlimited();

  std::vector<std::vector<NodeId>> options_per_attr(j);
  std::vector<std::size_t> cursor(j);
  for (RowId r = 0; r < table.num_rows(); ++r) {
    if (const TripKind trip = ctx.Check(); trip != TripKind::kNone) {
      return TripStatus(trip, "hierarchical pattern enumeration");
    }
    for (std::size_t a = 0; a < j; ++a) {
      const AttributeHierarchy& h = hierarchy.attribute(a);
      const NodeId leaf = table.value(r, a);
      auto& opts = options_per_attr[a];
      opts.clear();
      opts.push_back(kAllNode);
      for (std::size_t d = 0; d <= h.depth(leaf); ++d) {
        opts.push_back(h.AncestorAtDepth(leaf, d));
      }
      cursor[a] = 0;
    }
    // Odometer over the cross product.
    while (true) {
      std::vector<NodeId> nodes(j);
      for (std::size_t a = 0; a < j; ++a) {
        nodes[a] = options_per_attr[a][cursor[a]];
      }
      HPattern p(std::move(nodes));
      auto [it, inserted] =
          index.try_emplace(std::move(p), static_cast<std::uint32_t>(out.size()));
      if (inserted) {
        if (out.size() >= options.max_patterns) {
          return Status::ResourceExhausted(
              "hierarchical enumeration exceeded max_patterns");
        }
        if (ctx.ChargeNodes(1) != TripKind::kNone) {
          return TripStatus(ctx.tripped(),
                            "hierarchical pattern enumeration");
        }
        out.push_back(EnumeratedHPattern{it->first, {}});
      }
      out[it->second].rows.push_back(r);

      std::size_t a = 0;
      while (a < j && ++cursor[a] == options_per_attr[a].size()) {
        cursor[a] = 0;
        ++a;
      }
      if (a == j) break;
    }
  }

  std::sort(out.begin(), out.end(),
            [](const EnumeratedHPattern& a, const EnumeratedHPattern& b) {
              return CanonicalLess(a.pattern, b.pattern);
            });
  if (options.trace != nullptr) {
    options.trace->metrics().counter("henumerate.patterns")
        .Increment(out.size());
  }
  return out;
}

Result<HPatternSystem> HPatternSystem::Build(
    const Table& table, const TableHierarchy& hierarchy,
    const pattern::CostFunction& cost_fn, const HEnumerateOptions& options) {
  if (!table.has_measure()) {
    return Status::InvalidArgument(
        "HPatternSystem requires a measure column for pattern costs");
  }
  SCWSC_ASSIGN_OR_RETURN(auto enumerated,
                         EnumerateAllHPatterns(table, hierarchy, options));
  SetSystem system(table.num_rows());
  std::vector<HPattern> patterns;
  patterns.reserve(enumerated.size());
  for (auto& ep : enumerated) {
    const double cost = cost_fn.Compute(table, ep.rows);
    std::vector<ElementId> elements(ep.rows.begin(), ep.rows.end());
    SCWSC_ASSIGN_OR_RETURN(SetId id, system.AddSet(std::move(elements), cost));
    (void)id;
    patterns.push_back(std::move(ep.pattern));
  }
  return HPatternSystem(std::move(system), std::move(patterns));
}

}  // namespace hierarchy
}  // namespace scwsc
