// Attribute value hierarchies (paper §II: "Attribute tree hierarchies or
// numerical ranges may be used as well, but are not considered in this
// paper" — implemented here as an extension).
//
// An AttributeHierarchy organizes one attribute's active domain into a
// forest: the dictionary values are the leaves and user-defined internal
// nodes roll them up ("Houston" -> "Texas" -> "South"). A hierarchical
// pattern may then constrain an attribute to any node, covering every
// record whose leaf value lies in that node's subtree; the ALL wildcard
// sits above all roots. This generalizes the flat case exactly: with no
// internal nodes every leaf is a root and the node lattice degenerates to
// {value, ALL}.
//
// Ancestor tests are O(1) via Euler-tour intervals; the child-of-a-node
// that contains a given leaf is O(1) via precomputed root-to-leaf chains,
// which keeps the hierarchical lattice descent as cheap as the flat one.

#ifndef SCWSC_HIERARCHY_HIERARCHY_H_
#define SCWSC_HIERARCHY_HIERARCHY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/table/table.h"

namespace scwsc {
namespace hierarchy {

/// Node within one attribute's hierarchy. Ids [0, num_leaves) are exactly
/// the attribute's dictionary ValueIds; internal nodes follow.
using NodeId = std::uint32_t;

inline constexpr NodeId kNoNode = 0xFFFFFFFFu;

class AttributeHierarchy {
 public:
  /// The trivial hierarchy: every leaf is a root (flat semantics).
  static AttributeHierarchy Flat(std::size_t num_leaves);

  /// Builds from (child, parent) edges over names. A child name may be a
  /// dictionary value (leaf) or a previously/later mentioned internal
  /// name; parent names must be internal (they must not collide with
  /// dictionary values). Values absent from the edge list stay roots.
  /// Fails on cycles, multiple parents, or a parent name that equals a
  /// leaf value.
  static Result<AttributeHierarchy> Build(
      const Dictionary& dictionary,
      const std::vector<std::pair<std::string, std::string>>& child_to_parent);

  std::size_t num_leaves() const { return num_leaves_; }
  std::size_t num_nodes() const { return parent_.size(); }
  bool is_leaf(NodeId node) const { return node < num_leaves_; }

  /// Parent of `node`, or kNoNode for roots.
  NodeId parent(NodeId node) const { return parent_[node]; }

  const std::vector<NodeId>& children(NodeId node) const {
    return children_[node];
  }
  const std::vector<NodeId>& roots() const { return roots_; }

  /// Depth of `node` (roots are depth 0).
  std::size_t depth(NodeId node) const { return depth_[node]; }

  /// True when `ancestor` is `node` or lies on its root path. O(1).
  bool IsAncestorOrSelf(NodeId ancestor, NodeId node) const {
    return euler_in_[ancestor] <= euler_in_[node] &&
           euler_out_[node] <= euler_out_[ancestor];
  }

  /// The ancestor of `leaf` at depth `d`; requires d <= depth(leaf).
  NodeId AncestorAtDepth(NodeId leaf, std::size_t d) const {
    return chains_[leaf][d];
  }

  /// Number of leaves in `node`'s subtree.
  std::size_t LeafCount(NodeId node) const { return leaf_count_[node]; }

  /// Name of a node: the dictionary value for leaves, the internal name
  /// otherwise.
  const std::string& NodeName(const Dictionary& dictionary,
                              NodeId node) const;

 private:
  AttributeHierarchy() = default;
  void FinishConstruction();

  std::size_t num_leaves_ = 0;
  std::vector<NodeId> parent_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<NodeId> roots_;
  std::vector<std::string> internal_names_;  // for ids >= num_leaves_
  std::vector<std::size_t> depth_;
  std::vector<std::uint32_t> euler_in_;
  std::vector<std::uint32_t> euler_out_;
  std::vector<std::size_t> leaf_count_;
  // Root-to-leaf node chain per leaf (chains_[leaf][0] is the root,
  // chains_[leaf].back() == leaf).
  std::vector<std::vector<NodeId>> chains_;
};

/// One hierarchy per pattern attribute of a table.
class TableHierarchy {
 public:
  /// All-flat hierarchies for every attribute of `table`.
  static TableHierarchy Flat(const Table& table);

  /// Flat hierarchies except the listed overrides (attribute index ->
  /// hierarchy). Fails when an override's leaf count does not match the
  /// attribute's domain.
  static Result<TableHierarchy> Build(
      const Table& table,
      std::vector<std::pair<std::size_t, AttributeHierarchy>> overrides);

  std::size_t num_attributes() const { return per_attribute_.size(); }
  const AttributeHierarchy& attribute(std::size_t a) const {
    return per_attribute_[a];
  }

 private:
  explicit TableHierarchy(std::vector<AttributeHierarchy> per_attribute)
      : per_attribute_(std::move(per_attribute)) {}
  std::vector<AttributeHierarchy> per_attribute_;
};

}  // namespace hierarchy
}  // namespace scwsc

#endif  // SCWSC_HIERARCHY_HIERARCHY_H_
