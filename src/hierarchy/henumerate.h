// Enumeration of all hierarchical patterns with non-empty benefit, and the
// bridge to the generic SetSystem (the hierarchical analogue of
// pattern::EnumerateAllPatterns / PatternSystem).
//
// A record's generalizations per attribute are its leaf's full root chain
// plus ALL, so each record produces Π_a (depth_a(leaf) + 2) patterns;
// flat hierarchies reduce this to the familiar 2^j.

#ifndef SCWSC_HIERARCHY_HENUMERATE_H_
#define SCWSC_HIERARCHY_HENUMERATE_H_

#include <vector>

#include "src/common/result.h"
#include "src/core/set_system.h"
#include "src/core/solution.h"
#include "src/hierarchy/hpattern.h"
#include "src/pattern/cost.h"

namespace scwsc {

namespace obs {
class TraceSession;
}  // namespace obs

namespace hierarchy {

struct EnumeratedHPattern {
  HPattern pattern;
  std::vector<RowId> rows;  // sorted, unique
};

struct HEnumerateOptions {
  std::size_t max_patterns = 50'000'000;
  /// Deadline / cancellation / work-budget context; nullptr = unlimited.
  /// Checked once per row and each newly inserted pattern charges one node
  /// expansion. A partial enumeration is not a usable solver substrate, so
  /// trips return the bare interruption Status with no payload.
  const RunContext* run_context = nullptr;
  /// Optional trace/metrics session (src/obs): the walk runs under an
  /// "henumerate" span and publishes the distinct-pattern count.
  obs::TraceSession* trace = nullptr;
};

/// All distinct hierarchical patterns matching at least one record, sorted
/// canonically.
Result<std::vector<EnumeratedHPattern>> EnumerateAllHPatterns(
    const Table& table, const TableHierarchy& hierarchy,
    const HEnumerateOptions& options = {});

/// Materialized weighted set system over the hierarchical patterns;
/// SetIds follow canonical pattern order.
class HPatternSystem {
 public:
  static Result<HPatternSystem> Build(const Table& table,
                                      const TableHierarchy& hierarchy,
                                      const pattern::CostFunction& cost_fn,
                                      const HEnumerateOptions& options = {});

  const SetSystem& set_system() const { return system_; }
  std::size_t num_patterns() const { return patterns_.size(); }
  const HPattern& pattern(SetId id) const { return patterns_[id]; }

 private:
  HPatternSystem(SetSystem system, std::vector<HPattern> patterns)
      : system_(std::move(system)), patterns_(std::move(patterns)) {}
  SetSystem system_;
  std::vector<HPattern> patterns_;
};

}  // namespace hierarchy
}  // namespace scwsc

#endif  // SCWSC_HIERARCHY_HENUMERATE_H_
