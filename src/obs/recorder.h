// Always-on flight recorder: per-thread ring buffers that retain the most
// recent spans and instants at bounded memory, dumped as Chrome-trace JSON
// on demand. Where TraceSession (obs/trace.h) is opt-in and unbounded — a
// per-request tool you attach when you already know which solve to watch —
// the flight recorder is the opposite: it is always recording everything
// cheaply, so when an SLO trips or a breaker opens, the seconds leading up
// to the incident can be dumped after the fact.
//
// Recording never blocks and never allocates: each thread owns a
// fixed-capacity ring of 64-byte POD entries guarded by a mutex the writer
// only try_locks. Uncontended (the steady state — the only other party is a
// dump, which is rare) that is a single atomic exchange; when a dump does
// hold the ring, the event is dropped and counted instead of making the
// serve path wait. This deliberately trades a seqlock's never-drop property
// for being exactly checkable under ThreadSanitizer, which the CI TSan job
// runs these rings under.

#ifndef SCWSC_OBS_RECORDER_H_
#define SCWSC_OBS_RECORDER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/common/result.h"

namespace scwsc {
namespace obs {

struct RecorderOptions {
  /// Entries retained per thread (64 bytes each). Rounded up to a power of
  /// two so the ring index is a mask, not a division, on the record path.
  /// The default bounds each thread's ring at 256 KiB.
  std::size_t ring_capacity = 4096;
  /// DumpChromeTraceJson(0) keeps events whose end time falls within this
  /// many seconds of the dump.
  double retention_seconds = 30.0;
};

/// One process-wide (or per-test) flight recorder. All members are
/// thread-safe; recording threads register a ring lazily on first use.
class FlightRecorder {
 public:
  explicit FlightRecorder(RecorderOptions options = {});
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder (never destroyed). The serve layer and the
  /// sharded engine record into this instance.
  static FlightRecorder& Global();

  /// Disabling makes RecordInstant/RecordComplete single-load no-ops;
  /// benches use this to measure the recorder's own overhead.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Steady-clock nanoseconds since this recorder's construction; the time
  /// base of every recorded entry.
  std::int64_t NowNs() const;

  /// Records a thread-scoped instant ("i" in the trace). `value` is kept in
  /// the event's args. Names longer than the entry's inline capacity (38
  /// bytes) are truncated.
  void RecordInstant(std::string_view name, double value = 0.0);

  /// Records a closed span ("X" in the trace) from start_ns to end_ns
  /// (NowNs() values). A non-zero `value` rides in the event's args — the
  /// serve path uses it for queue wait, which keeps the hot path at one
  /// event per job instead of a span plus an instant. RecorderScope is the
  /// RAII wrapper over this.
  void RecordComplete(std::string_view name, std::int64_t start_ns,
                      std::int64_t end_ns, double value = 0.0);

  /// Chrome trace-event JSON of the retained entries whose end time falls
  /// within the last `last_seconds` (<= 0 means options.retention_seconds).
  std::string DumpChromeTraceJson(double last_seconds = 0.0) const;

  /// Writes DumpChromeTraceJson(last_seconds) to `path`.
  Status DumpToFile(const std::string& path, double last_seconds = 0.0) const;

  /// Events accepted into rings so far (old entries overwritten in place
  /// still count once).
  std::uint64_t recorded() const;
  /// Events dropped because a concurrent dump held the thread's ring.
  std::uint64_t dropped() const;
  /// Threads that have registered a ring.
  std::size_t num_threads() const;

  const RecorderOptions& options() const { return options_; }

 private:
  struct Ring;

  Ring* RingForThisThread();

  const RecorderOptions options_;
  const std::uint64_t instance_id_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{true};
  mutable std::mutex registry_mu_;
  std::map<std::thread::id, std::unique_ptr<Ring>> rings_;
};

/// RAII complete-event: records name with the scope's duration into the
/// recorder on destruction. Default-constructed scopes are inert; move
/// assignment (mirroring obs::Span) lets a scope be armed conditionally.
class RecorderScope {
 public:
  RecorderScope() = default;
  /// `recorder` == nullptr records into FlightRecorder::Global().
  explicit RecorderScope(std::string_view name,
                         FlightRecorder* recorder = nullptr);
  /// Two-part name (`prefix` + `suffix`), concatenated into the scope's
  /// inline buffer — no heap allocation on the hot path.
  RecorderScope(std::string_view prefix, std::string_view suffix,
                FlightRecorder* recorder = nullptr);
  ~RecorderScope();
  RecorderScope(const RecorderScope&) = delete;
  RecorderScope& operator=(const RecorderScope&) = delete;
  RecorderScope(RecorderScope&& other) noexcept;
  RecorderScope& operator=(RecorderScope&& other) noexcept;

  /// Attaches a value to the recorded span's args (see RecordComplete).
  void set_value(double value) { value_ = value; }

 private:
  void Finish();
  void SetName(std::string_view prefix, std::string_view suffix);

  FlightRecorder* recorder_ = nullptr;
  std::int64_t start_ns_ = 0;
  double value_ = 0.0;
  // Matches the ring entry's inline name capacity; longer names truncate at
  // record time anyway, so nothing is lost by truncating here.
  char name_[40];
  std::uint8_t name_len_ = 0;
};

}  // namespace obs
}  // namespace scwsc

#endif  // SCWSC_OBS_RECORDER_H_
