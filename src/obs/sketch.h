// Mergeable log-bucketed quantile sketch (DDSketch-style) for latency
// distributions. Fixed-bucket histograms answer "how many solves took
// between 1ms and 10ms", but their quantile estimates are only as good as
// the bucket layout, and sketches from different solvers or shards cannot
// be combined unless every layout matches exactly. The log-bucketed sketch
// fixes both: bucket i holds values in (gamma^(i-1), gamma^i] with
// gamma = (1 + alpha) / (1 - alpha), so any quantile estimate is within a
// relative error of alpha of the true sample quantile, and two sketches
// with the same alpha merge by adding bucket counts — the merged sketch is
// exactly the sketch of the concatenated samples.
//
// The serve layer keeps one sketch per solver ("serve.latency_seconds#cwsc")
// and per shard ("engine.stripe_seconds#3"); the telemetry pump merges the
// members of each '#'-family into aggregate p50/p90/p99/p999 — see
// docs/observability.md.

#ifndef SCWSC_OBS_SKETCH_H_
#define SCWSC_OBS_SKETCH_H_

#include <cstdint>
#include <map>
#include <mutex>

#include "src/common/result.h"

namespace scwsc {
namespace obs {

/// Quantile sketch with bounded relative error. Not thread-safe (that is
/// MetricSketch's job); cheap to copy for snapshots and merging.
class QuantileSketch {
 public:
  static constexpr double kDefaultRelativeError = 0.01;
  /// Values at or below this are folded into an exact zero bucket. Latencies
  /// live many orders of magnitude above it.
  static constexpr double kMinTrackable = 1e-12;

  /// `relative_error` (alpha) must lie in (0, 1); quantile estimates for
  /// values above kMinTrackable satisfy |estimate - exact| <= alpha * exact.
  explicit QuantileSketch(double relative_error = kDefaultRelativeError);

  /// Adds one sample. Values <= kMinTrackable (including all non-positive
  /// values) land in the zero bucket and are reported as 0.0 by Quantile().
  void Observe(double v);

  /// Adds `other`'s samples into this sketch. The two sketches must have
  /// been built with the same relative error.
  Status Merge(const QuantileSketch& other);

  /// The sample quantile estimate for q in [0, 1] (clamped), using the same
  /// nearest-rank convention as the serve benches: rank = round(q*(n-1)).
  /// Returns 0.0 on an empty sketch.
  double Quantile(double q) const;

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double relative_error() const { return relative_error_; }
  std::uint64_t zero_count() const { return zero_count_; }
  /// Log-bucket index -> count, ascending. Exposed for exporters.
  const std::map<int, std::uint64_t>& buckets() const { return buckets_; }

 private:
  int BucketKey(double v) const;
  double BucketValue(int key) const;

  double relative_error_;
  double gamma_;
  double inv_log_gamma_;
  std::map<int, std::uint64_t> buckets_;
  std::uint64_t zero_count_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Registry instrument wrapping a QuantileSketch behind a mutex. Observe()
/// is a short critical section (one map operation); snapshot() copies the
/// sketch so exporters never hold the lock while rendering.
class MetricSketch {
 public:
  explicit MetricSketch(double relative_error)
      : sketch_(relative_error) {}

  void Observe(double v) {
    std::lock_guard<std::mutex> lock(mu_);
    sketch_.Observe(v);
  }

  QuantileSketch snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sketch_;
  }

 private:
  mutable std::mutex mu_;
  QuantileSketch sketch_;
};

}  // namespace obs
}  // namespace scwsc

#endif  // SCWSC_OBS_SKETCH_H_
