#include "src/obs/recorder.h"

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/obs/json_util.h"

namespace scwsc {
namespace obs {

namespace {

// 64 bytes: one cache line per entry, so a ring of the default 4096 entries
// costs 256 KiB per thread and a record touches exactly one line.
struct Entry {
  std::int64_t ts_ns;
  std::int64_t dur_ns;  // -1 marks an instant
  double value;
  char name[40];  // NUL-terminated, truncating
};
static_assert(sizeof(Entry) == 64, "recorder entries must stay one cache line");

std::atomic<std::uint64_t> g_next_instance_id{1};

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

RecorderOptions Normalized(RecorderOptions options) {
  SCWSC_CHECK(options.ring_capacity > 0,
              "recorder ring capacity must be > 0");
  options.ring_capacity = RoundUpPow2(options.ring_capacity);
  return options;
}

}  // namespace

struct FlightRecorder::Ring {
  Ring(std::size_t capacity, std::uint32_t index)
      : slots(capacity), mask(capacity - 1), thread_index(index) {}
  std::vector<Entry> slots;
  const std::uint64_t mask;  // capacity - 1; capacity is a power of two
  std::uint64_t head = 0;  // next write position (monotonic), guarded by mu
  const std::uint32_t thread_index;
  std::mutex mu;
  std::atomic<std::uint64_t> dropped{0};
};

FlightRecorder::FlightRecorder(RecorderOptions options)
    : options_(Normalized(options)),
      instance_id_(g_next_instance_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

FlightRecorder::~FlightRecorder() = default;

FlightRecorder& FlightRecorder::Global() {
  // Leaked: recording threads may outlive main()'s static destructors, and
  // the thread_local ring cache in RingForThisThread guards against any
  // other recorder instance, never against this one disappearing.
  static FlightRecorder* g = new FlightRecorder();
  return *g;
}

std::int64_t FlightRecorder::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

FlightRecorder::Ring* FlightRecorder::RingForThisThread() {
  // The cache is keyed by the recorder's unique instance id: a stale entry
  // from a destroyed recorder can never match a live one, so the dangling
  // pointer is never dereferenced.
  thread_local std::uint64_t cached_id = 0;
  thread_local Ring* cached_ring = nullptr;
  if (cached_id == instance_id_) return cached_ring;
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto& slot = rings_[std::this_thread::get_id()];
  if (slot == nullptr) {
    slot = std::make_unique<Ring>(options_.ring_capacity,
                                  static_cast<std::uint32_t>(rings_.size() - 1));
  }
  cached_id = instance_id_;
  cached_ring = slot.get();
  return cached_ring;
}

void FlightRecorder::RecordInstant(std::string_view name, double value) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  const std::int64_t now = NowNs();
  Ring* ring = RingForThisThread();
  std::unique_lock<std::mutex> lock(ring->mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    // A dump holds this ring; dropping beats blocking the serve path.
    ring->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Entry& e = ring->slots[ring->head & ring->mask];
  e.ts_ns = now;
  e.dur_ns = -1;
  e.value = value;
  const std::size_t n = std::min(name.size(), sizeof(e.name) - 1);
  std::memcpy(e.name, name.data(), n);
  e.name[n] = '\0';
  ++ring->head;
}

void FlightRecorder::RecordComplete(std::string_view name, std::int64_t start_ns,
                                    std::int64_t end_ns, double value) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  Ring* ring = RingForThisThread();
  std::unique_lock<std::mutex> lock(ring->mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    ring->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Entry& e = ring->slots[ring->head & ring->mask];
  e.ts_ns = start_ns;
  e.dur_ns = std::max<std::int64_t>(end_ns - start_ns, 0);
  e.value = value;
  const std::size_t n = std::min(name.size(), sizeof(e.name) - 1);
  std::memcpy(e.name, name.data(), n);
  e.name[n] = '\0';
  ++ring->head;
}

std::string FlightRecorder::DumpChromeTraceJson(double last_seconds) const {
  const double window =
      last_seconds > 0.0 ? last_seconds : options_.retention_seconds;
  const std::int64_t cutoff =
      NowNs() - static_cast<std::int64_t>(window * 1e9);

  struct ThreadEntries {
    std::uint32_t thread_index;
    std::vector<Entry> entries;
  };
  std::vector<ThreadEntries> copies;
  {
    std::lock_guard<std::mutex> reg(registry_mu_);
    copies.reserve(rings_.size());
    for (const auto& [tid, ring] : rings_) {
      std::lock_guard<std::mutex> lock(ring->mu);
      const std::uint64_t cap = ring->slots.size();
      const std::uint64_t n = std::min<std::uint64_t>(ring->head, cap);
      ThreadEntries te;
      te.thread_index = ring->thread_index;
      te.entries.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t i = ring->head - n; i < ring->head; ++i) {
        te.entries.push_back(ring->slots[i % cap]);  // oldest first
      }
      copies.push_back(std::move(te));
    }
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out += ',';
    first = false;
  };
  for (const ThreadEntries& te : copies) {
    comma();
    out += StrFormat(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
        "\"args\":{\"name\":\"scwsc-flight-%u\"}}",
        te.thread_index, te.thread_index);
  }
  for (const ThreadEntries& te : copies) {
    for (const Entry& e : te.entries) {
      const bool instant = e.dur_ns < 0;
      const std::int64_t end_ns = instant ? e.ts_ns : e.ts_ns + e.dur_ns;
      if (end_ns < cutoff) continue;
      comma();
      out += "{\"name\":\"";
      internal::AppendJsonEscaped(e.name, &out);
      out += "\",\"cat\":\"scwsc\"";
      if (instant) {
        out += StrFormat(",\"ph\":\"i\",\"s\":\"t\",\"ts\":%s",
                         internal::TraceTs(e.ts_ns).c_str());
        out += ",\"args\":{\"v\":" + internal::JsonNumber(e.value) + "}";
      } else {
        out += StrFormat(",\"ph\":\"X\",\"ts\":%s,\"dur\":%s",
                         internal::TraceTs(e.ts_ns).c_str(),
                         internal::TraceTs(e.dur_ns).c_str());
        if (e.value != 0.0) {
          out += ",\"args\":{\"v\":" + internal::JsonNumber(e.value) + "}";
        }
      }
      out += StrFormat(",\"pid\":1,\"tid\":%u}", te.thread_index);
    }
  }
  out += "]}";
  return out;
}

Status FlightRecorder::DumpToFile(const std::string& path,
                                  double last_seconds) const {
  return internal::WriteFileOrStatus(path, DumpChromeTraceJson(last_seconds));
}

std::uint64_t FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> reg(registry_mu_);
  std::uint64_t total = 0;
  for (const auto& [tid, ring] : rings_) {
    std::lock_guard<std::mutex> lock(ring->mu);
    total += ring->head;
  }
  return total;
}

std::uint64_t FlightRecorder::dropped() const {
  std::lock_guard<std::mutex> reg(registry_mu_);
  std::uint64_t total = 0;
  for (const auto& [tid, ring] : rings_) {
    total += ring->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

std::size_t FlightRecorder::num_threads() const {
  std::lock_guard<std::mutex> reg(registry_mu_);
  return rings_.size();
}

RecorderScope::RecorderScope(std::string_view name, FlightRecorder* recorder)
    : recorder_(recorder != nullptr ? recorder : &FlightRecorder::Global()),
      start_ns_(recorder_->NowNs()) {
  SetName(name, {});
}

RecorderScope::RecorderScope(std::string_view prefix, std::string_view suffix,
                             FlightRecorder* recorder)
    : recorder_(recorder != nullptr ? recorder : &FlightRecorder::Global()),
      start_ns_(recorder_->NowNs()) {
  SetName(prefix, suffix);
}

RecorderScope::~RecorderScope() { Finish(); }

RecorderScope::RecorderScope(RecorderScope&& other) noexcept
    : recorder_(other.recorder_),
      start_ns_(other.start_ns_),
      value_(other.value_),
      name_len_(other.name_len_) {
  std::memcpy(name_, other.name_, name_len_);
  other.recorder_ = nullptr;
}

RecorderScope& RecorderScope::operator=(RecorderScope&& other) noexcept {
  if (this != &other) {
    Finish();
    recorder_ = other.recorder_;
    start_ns_ = other.start_ns_;
    value_ = other.value_;
    name_len_ = other.name_len_;
    std::memcpy(name_, other.name_, name_len_);
    other.recorder_ = nullptr;
  }
  return *this;
}

void RecorderScope::SetName(std::string_view prefix, std::string_view suffix) {
  const std::size_t n = std::min(prefix.size(), sizeof(name_));
  if (n > 0) std::memcpy(name_, prefix.data(), n);
  const std::size_t m = std::min(suffix.size(), sizeof(name_) - n);
  if (m > 0) std::memcpy(name_ + n, suffix.data(), m);
  name_len_ = static_cast<std::uint8_t>(n + m);
}

void RecorderScope::Finish() {
  if (recorder_ == nullptr) return;
  recorder_->RecordComplete(std::string_view(name_, name_len_), start_ns_,
                            recorder_->NowNs(), value_);
  recorder_ = nullptr;
}

}  // namespace obs
}  // namespace scwsc
