// Thread-safe metric registry: named counters, gauges and fixed-bucket
// histograms. This is the generalization of api::SolveCounters — the fixed
// struct keeps its role as the typed per-solve snapshot in the Solver API,
// while the registry lets any layer (benefit engine, simplex pivots, lattice
// pruning) publish instrumentation without widening that struct.
//
// Usage contract: `counter()`/`gauge()`/`histogram()` get-or-create under a
// mutex and return a reference that stays valid for the registry's lifetime
// (instruments are heap-allocated nodes); the returned instruments are
// lock-free atomics, so hot loops resolve the name once and then update
// without synchronization. Names are dotted lowercase paths
// ("engine.celf_hits", "solve.cwsc.sets_considered") — see
// docs/observability.md for the naming scheme.

#ifndef SCWSC_OBS_METRICS_H_
#define SCWSC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/sketch.h"

namespace scwsc {
namespace obs {

/// Monotonically increasing count of events (picks, pivots, cache hits).
class MetricCounter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar (final budget, LP lower bound, seconds).
class MetricGauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed upper-bound buckets plus an implicit +inf overflow bucket.
/// Observe() is lock-free (per-bucket atomic counts, CAS-add for the sum).
class MetricHistogram {
 public:
  /// `bounds` are inclusive upper bounds, strictly increasing.
  explicit MetricHistogram(std::vector<double> bounds);

  void Observe(double v);

  struct Snapshot {
    std::vector<double> bounds;        // upper bounds, +inf bucket implied
    std::vector<std::uint64_t> counts; // bounds.size() + 1 entries
    std::uint64_t total = 0;
    double sum = 0.0;
  };
  Snapshot snapshot() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<double> sum_{0.0};
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Get-or-create. The reference stays valid for the registry's lifetime.
  MetricCounter& counter(const std::string& name);
  MetricGauge& gauge(const std::string& name);
  /// `bounds` is used only on first creation; later calls return the
  /// existing histogram unchanged.
  MetricHistogram& histogram(const std::string& name,
                             const std::vector<double>& bounds);
  /// Mergeable quantile sketch (see obs/sketch.h). `relative_error` is used
  /// only on first creation. A '#' in the name marks a family member
  /// ("serve.latency_seconds#cwsc"): the telemetry pump merges all members
  /// of a family into one aggregate distribution.
  MetricSketch& sketch(
      const std::string& name,
      double relative_error = QuantileSketch::kDefaultRelativeError);

  /// Snapshot accessors, sorted by name. Values read with relaxed atomics —
  /// call after the recording threads have quiesced for exact totals.
  std::vector<std::pair<std::string, std::uint64_t>> CounterValues() const;
  std::vector<std::pair<std::string, double>> GaugeValues() const;
  std::vector<std::pair<std::string, MetricHistogram::Snapshot>>
  HistogramValues() const;
  std::vector<std::pair<std::string, QuantileSketch>> SketchValues() const;

  /// Convenience for tests: the counter's value, or 0 when absent.
  std::uint64_t CounterValue(const std::string& name) const;
  /// The gauge's value, or 0.0 when absent.
  double GaugeValue(const std::string& name) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<MetricCounter>> counters_;
  std::map<std::string, std::unique_ptr<MetricGauge>> gauges_;
  std::map<std::string, std::unique_ptr<MetricHistogram>> histograms_;
  std::map<std::string, std::unique_ptr<MetricSketch>> sketches_;
};

}  // namespace obs
}  // namespace scwsc

#endif  // SCWSC_OBS_METRICS_H_
