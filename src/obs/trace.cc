#include "src/obs/trace.h"

#include <algorithm>
#include <chrono>

namespace scwsc {
namespace obs {
namespace {

/// One open span on the calling thread. The stack is thread-local and keyed
/// by session, so concurrent sessions and pool threads never contend on it.
struct OpenFrame {
  const TraceSession* session;
  SpanId id;
};

thread_local std::vector<OpenFrame> t_open_spans;

std::int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Innermost open span of `session` on this thread, or kNoSpan.
SpanId CurrentSpanOf(const TraceSession* session) {
  for (auto it = t_open_spans.rbegin(); it != t_open_spans.rend(); ++it) {
    if (it->session == session) return it->id;
  }
  return kNoSpan;
}

}  // namespace

TraceSession::TraceSession() : epoch_ns_(SteadyNowNs()) {}

std::uint32_t TraceSession::ThreadIndexLocked() {
  const auto id = std::this_thread::get_id();
  auto it = thread_index_.find(id);
  if (it == thread_index_.end()) {
    it = thread_index_
             .emplace(id, static_cast<std::uint32_t>(thread_index_.size()))
             .first;
  }
  return it->second;
}

SpanId TraceSession::BeginSpan(std::string_view name) {
  const SpanId parent = CurrentSpanOf(this);
  const std::int64_t now = SteadyNowNs() - epoch_ns_;
  SpanId id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = static_cast<SpanId>(spans_.size()) + 1;
    SpanRecord record;
    record.id = id;
    record.parent = parent;
    record.name.assign(name.data(), name.size());
    record.thread = ThreadIndexLocked();
    record.start_ns = now;
    spans_.push_back(std::move(record));
  }
  t_open_spans.push_back(OpenFrame{this, id});
  return id;
}

void TraceSession::EndSpan(SpanId id) {
  if (id == kNoSpan) return;
  const std::int64_t now = SteadyNowNs() - epoch_ns_;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (id <= spans_.size()) spans_[id - 1].end_ns = now;
  }
  // Pop this span's frame; tolerate out-of-order ends (a moved Span closed
  // on another thread simply leaves no frame here).
  for (auto it = t_open_spans.rbegin(); it != t_open_spans.rend(); ++it) {
    if (it->session == this && it->id == id) {
      t_open_spans.erase(std::next(it).base());
      break;
    }
  }
}

void TraceSession::AddEvent(std::string_view name) {
  AddEventOn(CurrentSpanOf(this), name);
}

void TraceSession::AddEventOn(SpanId span, std::string_view name) {
  const std::int64_t now = SteadyNowNs() - epoch_ns_;
  std::lock_guard<std::mutex> lock(mu_);
  EventRecord record;
  record.span = span;
  record.name.assign(name.data(), name.size());
  record.thread = ThreadIndexLocked();
  record.ts_ns = now;
  events_.push_back(std::move(record));
}

std::vector<SpanRecord> TraceSession::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::vector<EventRecord> TraceSession::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

double TraceSession::SpanSeconds(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  double total = 0.0;
  for (const SpanRecord& s : spans_) {
    if (s.name == name) total += s.seconds();
  }
  return total;
}

std::vector<std::pair<std::string, double>> TraceSession::PhaseTotals() const {
  std::vector<std::pair<std::string, double>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const SpanRecord& s : spans_) {
      if (!s.closed()) continue;
      auto it = std::find_if(out.begin(), out.end(), [&](const auto& kv) {
        return kv.first == s.name;
      });
      if (it == out.end()) {
        out.emplace_back(s.name, s.seconds());
      } else {
        it->second += s.seconds();
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace obs
}  // namespace scwsc
