#include "src/obs/export.h"

#include <cstddef>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/strings.h"
#include "src/obs/json_util.h"

namespace scwsc {
namespace obs {

using internal::AppendJsonEscaped;
using internal::JsonNumber;
using internal::TraceTs;
using internal::WriteFileOrStatus;

std::string ToChromeTraceJson(const TraceSession& session) {
  const std::vector<SpanRecord> spans = session.spans();
  const std::vector<EventRecord> events = session.events();

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out += ',';
    first = false;
  };

  std::uint32_t max_thread = 0;
  for (const SpanRecord& s : spans) max_thread = std::max(max_thread, s.thread);
  for (const EventRecord& e : events) {
    max_thread = std::max(max_thread, e.thread);
  }
  if (!spans.empty() || !events.empty()) {
    for (std::uint32_t t = 0; t <= max_thread; ++t) {
      comma();
      out += StrFormat(
          "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
          "\"args\":{\"name\":\"scwsc-%u\"}}",
          t, t);
    }
  }

  for (const SpanRecord& s : spans) {
    comma();
    out += "{\"name\":\"";
    AppendJsonEscaped(s.name, &out);
    out += "\",\"cat\":\"scwsc\"";
    if (s.closed()) {
      out += StrFormat(",\"ph\":\"X\",\"ts\":%s,\"dur\":%s",
                       TraceTs(s.start_ns).c_str(),
                       TraceTs(s.end_ns - s.start_ns).c_str());
    } else {
      out += StrFormat(",\"ph\":\"B\",\"ts\":%s", TraceTs(s.start_ns).c_str());
    }
    out += StrFormat(",\"pid\":1,\"tid\":%u}", s.thread);
  }

  for (const EventRecord& e : events) {
    comma();
    out += "{\"name\":\"";
    AppendJsonEscaped(e.name, &out);
    out += StrFormat(
        "\",\"cat\":\"scwsc\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,"
        "\"pid\":1,\"tid\":%u}",
        TraceTs(e.ts_ns).c_str(), e.thread);
  }

  out += "]}";
  return out;
}

namespace {

// The quantiles every sketch export reports, matching the telemetry JSONL
// schema in docs/observability.md.
constexpr struct {
  double q;
  const char* label;  // JSONL/CSV key
  const char* prom;   // Prometheus quantile label value
} kSketchQuantiles[] = {{0.5, "p50", "0.5"},
                        {0.9, "p90", "0.9"},
                        {0.99, "p99", "0.99"},
                        {0.999, "p999", "0.999"}};

}  // namespace

std::string ToMetricsJson(const MetricRegistry& registry) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : registry.CounterValues()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(name, &out);
    out += StrFormat("\":%llu", static_cast<unsigned long long>(value));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : registry.GaugeValues()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(name, &out);
    out += "\":" + JsonNumber(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, snap] : registry.HistogramValues()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(name, &out);
    out += "\":{\"bounds\":[";
    for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
      if (i > 0) out += ',';
      out += JsonNumber(snap.bounds[i]);
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i < snap.counts.size(); ++i) {
      if (i > 0) out += ',';
      out += StrFormat("%llu", static_cast<unsigned long long>(snap.counts[i]));
    }
    out += StrFormat("],\"total\":%llu,\"sum\":%s}",
                     static_cast<unsigned long long>(snap.total),
                     JsonNumber(snap.sum).c_str());
  }
  out += "},\"sketches\":{";
  first = true;
  for (const auto& [name, sketch] : registry.SketchValues()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(name, &out);
    out += StrFormat("\":{\"count\":%llu,\"sum\":%s,\"min\":%s,\"max\":%s",
                     static_cast<unsigned long long>(sketch.count()),
                     JsonNumber(sketch.sum()).c_str(),
                     JsonNumber(sketch.min()).c_str(),
                     JsonNumber(sketch.max()).c_str());
    for (const auto& sq : kSketchQuantiles) {
      out += StrFormat(",\"%s\":%s", sq.label,
                       JsonNumber(sketch.Quantile(sq.q)).c_str());
    }
    out += '}';
  }
  out += "}}";
  return out;
}

std::string ToMetricsCsv(const MetricRegistry& registry) {
  std::string out = "kind,name,value\n";
  for (const auto& [name, value] : registry.CounterValues()) {
    out += StrFormat("counter,%s,%llu\n", name.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : registry.GaugeValues()) {
    out += StrFormat("gauge,%s,%.17g\n", name.c_str(), value);
  }
  for (const auto& [name, snap] : registry.HistogramValues()) {
    for (std::size_t i = 0; i < snap.counts.size(); ++i) {
      const std::string bucket =
          i < snap.bounds.size() ? StrFormat("le_%.17g", snap.bounds[i])
                                 : std::string("le_inf");
      out += StrFormat("histogram,%s.%s,%llu\n", name.c_str(), bucket.c_str(),
                       static_cast<unsigned long long>(snap.counts[i]));
    }
    out += StrFormat("histogram,%s.sum,%.17g\n", name.c_str(), snap.sum);
    out += StrFormat("histogram,%s.total,%llu\n", name.c_str(),
                     static_cast<unsigned long long>(snap.total));
  }
  for (const auto& [name, sketch] : registry.SketchValues()) {
    for (const auto& sq : kSketchQuantiles) {
      out += StrFormat("sketch,%s.%s,%.17g\n", name.c_str(), sq.label,
                       sketch.Quantile(sq.q));
    }
    out += StrFormat("sketch,%s.sum,%.17g\n", name.c_str(), sketch.sum());
    out += StrFormat("sketch,%s.count,%llu\n", name.c_str(),
                     static_cast<unsigned long long>(sketch.count()));
  }
  return out;
}

namespace {

/// Metric names are dotted paths; Prometheus names allow [a-zA-Z0-9_:].
/// Everything else becomes '_', and every name gets a "scwsc_" prefix.
std::string PrometheusName(std::string_view name) {
  std::string out = "scwsc_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

/// Splits "family#member" sketch names; member is empty for plain names.
std::pair<std::string, std::string> SplitSketchFamily(const std::string& name) {
  const std::size_t hash = name.find('#');
  if (hash == std::string::npos) return {name, std::string()};
  return {name.substr(0, hash), name.substr(hash + 1)};
}

}  // namespace

std::string ToPrometheusText(const MetricRegistry& registry) {
  std::string out;
  for (const auto& [name, value] : registry.CounterValues()) {
    const std::string prom = PrometheusName(name);
    out += StrFormat("# TYPE %s counter\n%s %llu\n", prom.c_str(), prom.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : registry.GaugeValues()) {
    const std::string prom = PrometheusName(name);
    out += StrFormat("# TYPE %s gauge\n%s %s\n", prom.c_str(), prom.c_str(),
                     JsonNumber(value).c_str());
  }
  for (const auto& [name, snap] : registry.HistogramValues()) {
    const std::string prom = PrometheusName(name);
    out += StrFormat("# TYPE %s histogram\n", prom.c_str());
    std::uint64_t cum = 0;  // Prometheus buckets are cumulative
    for (std::size_t i = 0; i < snap.counts.size(); ++i) {
      cum += snap.counts[i];
      const std::string le = i < snap.bounds.size()
                                 ? StrFormat("%.17g", snap.bounds[i])
                                 : std::string("+Inf");
      out += StrFormat("%s_bucket{le=\"%s\"} %llu\n", prom.c_str(), le.c_str(),
                       static_cast<unsigned long long>(cum));
    }
    out += StrFormat("%s_sum %s\n%s_count %llu\n", prom.c_str(),
                     JsonNumber(snap.sum).c_str(), prom.c_str(),
                     static_cast<unsigned long long>(snap.total));
  }
  std::string last_family;
  for (const auto& [name, sketch] : registry.SketchValues()) {
    const auto [family, member] = SplitSketchFamily(name);
    const std::string prom = PrometheusName(family);
    if (family != last_family) {
      out += StrFormat("# TYPE %s summary\n", prom.c_str());
      last_family = family;
    }
    const std::string member_label =
        member.empty() ? std::string()
                       : StrFormat("member=\"%s\",", member.c_str());
    for (const auto& sq : kSketchQuantiles) {
      out += StrFormat("%s{%squantile=\"%s\"} %s\n", prom.c_str(),
                       member_label.c_str(), sq.prom,
                       JsonNumber(sketch.Quantile(sq.q)).c_str());
    }
    const std::string suffix_labels =
        member.empty() ? std::string()
                       : StrFormat("{member=\"%s\"}", member.c_str());
    out += StrFormat("%s_sum%s %s\n%s_count%s %llu\n", prom.c_str(),
                     suffix_labels.c_str(), JsonNumber(sketch.sum()).c_str(),
                     prom.c_str(), suffix_labels.c_str(),
                     static_cast<unsigned long long>(sketch.count()));
  }
  return out;
}

Status WriteChromeTraceJson(const TraceSession& session,
                            const std::string& path) {
  return WriteFileOrStatus(path, ToChromeTraceJson(session));
}

Status WriteMetricsFile(const MetricRegistry& registry,
                        const std::string& path) {
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  return WriteFileOrStatus(path,
                           csv ? ToMetricsCsv(registry) : ToMetricsJson(registry));
}

}  // namespace obs
}  // namespace scwsc
