#include "src/obs/export.h"

#include <cmath>
#include <cstdio>
#include <string_view>

#include "src/common/strings.h"

namespace scwsc {
namespace obs {
namespace {

void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          *out += c;
        }
    }
  }
}

/// A JSON number literal: finite doubles round-trip via %.17g, non-finite
/// values (not representable in JSON) degrade to null.
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  return StrFormat("%.17g", v);
}

/// Nanoseconds to the trace-event format's microsecond unit.
std::string TraceTs(std::int64_t ns) {
  return StrFormat("%.3f", static_cast<double>(ns) * 1e-3);
}

}  // namespace

std::string ToChromeTraceJson(const TraceSession& session) {
  const std::vector<SpanRecord> spans = session.spans();
  const std::vector<EventRecord> events = session.events();

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out += ',';
    first = false;
  };

  std::uint32_t max_thread = 0;
  for (const SpanRecord& s : spans) max_thread = std::max(max_thread, s.thread);
  for (const EventRecord& e : events) {
    max_thread = std::max(max_thread, e.thread);
  }
  if (!spans.empty() || !events.empty()) {
    for (std::uint32_t t = 0; t <= max_thread; ++t) {
      comma();
      out += StrFormat(
          "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
          "\"args\":{\"name\":\"scwsc-%u\"}}",
          t, t);
    }
  }

  for (const SpanRecord& s : spans) {
    comma();
    out += "{\"name\":\"";
    AppendJsonEscaped(s.name, &out);
    out += "\",\"cat\":\"scwsc\"";
    if (s.closed()) {
      out += StrFormat(",\"ph\":\"X\",\"ts\":%s,\"dur\":%s",
                       TraceTs(s.start_ns).c_str(),
                       TraceTs(s.end_ns - s.start_ns).c_str());
    } else {
      out += StrFormat(",\"ph\":\"B\",\"ts\":%s", TraceTs(s.start_ns).c_str());
    }
    out += StrFormat(",\"pid\":1,\"tid\":%u}", s.thread);
  }

  for (const EventRecord& e : events) {
    comma();
    out += "{\"name\":\"";
    AppendJsonEscaped(e.name, &out);
    out += StrFormat(
        "\",\"cat\":\"scwsc\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,"
        "\"pid\":1,\"tid\":%u}",
        TraceTs(e.ts_ns).c_str(), e.thread);
  }

  out += "]}";
  return out;
}

std::string ToMetricsJson(const MetricRegistry& registry) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : registry.CounterValues()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(name, &out);
    out += StrFormat("\":%llu", static_cast<unsigned long long>(value));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : registry.GaugeValues()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(name, &out);
    out += "\":" + JsonNumber(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, snap] : registry.HistogramValues()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(name, &out);
    out += "\":{\"bounds\":[";
    for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
      if (i > 0) out += ',';
      out += JsonNumber(snap.bounds[i]);
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i < snap.counts.size(); ++i) {
      if (i > 0) out += ',';
      out += StrFormat("%llu", static_cast<unsigned long long>(snap.counts[i]));
    }
    out += StrFormat("],\"total\":%llu,\"sum\":%s}",
                     static_cast<unsigned long long>(snap.total),
                     JsonNumber(snap.sum).c_str());
  }
  out += "}}";
  return out;
}

std::string ToMetricsCsv(const MetricRegistry& registry) {
  std::string out = "kind,name,value\n";
  for (const auto& [name, value] : registry.CounterValues()) {
    out += StrFormat("counter,%s,%llu\n", name.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : registry.GaugeValues()) {
    out += StrFormat("gauge,%s,%.17g\n", name.c_str(), value);
  }
  for (const auto& [name, snap] : registry.HistogramValues()) {
    for (std::size_t i = 0; i < snap.counts.size(); ++i) {
      const std::string bucket =
          i < snap.bounds.size() ? StrFormat("le_%.17g", snap.bounds[i])
                                 : std::string("le_inf");
      out += StrFormat("histogram,%s.%s,%llu\n", name.c_str(), bucket.c_str(),
                       static_cast<unsigned long long>(snap.counts[i]));
    }
    out += StrFormat("histogram,%s.sum,%.17g\n", name.c_str(), snap.sum);
    out += StrFormat("histogram,%s.total,%llu\n", name.c_str(),
                     static_cast<unsigned long long>(snap.total));
  }
  return out;
}

namespace {

Status WriteFileOrStatus(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != body.size() || !close_ok) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace

Status WriteChromeTraceJson(const TraceSession& session,
                            const std::string& path) {
  return WriteFileOrStatus(path, ToChromeTraceJson(session));
}

Status WriteMetricsFile(const MetricRegistry& registry,
                        const std::string& path) {
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  return WriteFileOrStatus(path,
                           csv ? ToMetricsCsv(registry) : ToMetricsJson(registry));
}

}  // namespace obs
}  // namespace scwsc
