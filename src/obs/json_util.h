// Shared string-building helpers for the obs exporters (export.cc,
// recorder.cc, telemetry renderers). The repo has no JSON dependency; the
// trace-event and metrics formats only need objects, arrays, numbers and
// escaped strings.

#ifndef SCWSC_OBS_JSON_UTIL_H_
#define SCWSC_OBS_JSON_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/result.h"

namespace scwsc {
namespace obs {
namespace internal {

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes,
/// control characters).
void AppendJsonEscaped(std::string_view s, std::string* out);

/// A JSON number literal: finite doubles round-trip via %.17g, non-finite
/// values (not representable in JSON) degrade to null.
std::string JsonNumber(double v);

/// Nanoseconds to the trace-event format's microsecond unit.
std::string TraceTs(std::int64_t ns);

/// Writes `body` to `path`, reporting open and short-write failures.
Status WriteFileOrStatus(const std::string& path, const std::string& body);

}  // namespace internal
}  // namespace obs
}  // namespace scwsc

#endif  // SCWSC_OBS_JSON_UTIL_H_
