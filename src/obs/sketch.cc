#include "src/obs/sketch.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace scwsc {
namespace obs {

namespace {
// Safety valve: a sketch never holds more than this many log buckets. With
// the default alpha = 0.01 the buckets span gamma^4096 — far beyond any
// double a latency could take — so collapsing only ever fires for sketches
// fed adversarial exponent sweeps. Collapsing folds the lowest bucket into
// its neighbor, which biases only the lowest quantiles.
constexpr std::size_t kMaxBuckets = 4096;
}  // namespace

QuantileSketch::QuantileSketch(double relative_error)
    : relative_error_(relative_error),
      gamma_((1.0 + relative_error) / (1.0 - relative_error)),
      inv_log_gamma_(1.0 / std::log(gamma_)) {
  SCWSC_CHECK(relative_error > 0.0 && relative_error < 1.0,
              "sketch relative error must lie in (0, 1)");
}

int QuantileSketch::BucketKey(double v) const {
  return static_cast<int>(std::ceil(std::log(v) * inv_log_gamma_));
}

double QuantileSketch::BucketValue(int key) const {
  // Midpoint (in the multiplicative sense) of (gamma^(key-1), gamma^key]:
  // 2 * gamma^key / (gamma + 1), which is within relative_error_ of every
  // value in the bucket.
  return 2.0 * std::pow(gamma_, key) / (gamma_ + 1.0);
}

void QuantileSketch::Observe(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  if (!(v > kMinTrackable)) {  // non-positive and NaN values fold to zero
    ++zero_count_;
    return;
  }
  ++buckets_[BucketKey(v)];
  if (buckets_.size() > kMaxBuckets) {
    auto lowest = buckets_.begin();
    auto next = std::next(lowest);
    next->second += lowest->second;
    buckets_.erase(lowest);
  }
}

Status QuantileSketch::Merge(const QuantileSketch& other) {
  if (std::abs(relative_error_ - other.relative_error_) > 1e-12) {
    return Status::InvalidArgument(
        "sketch merge: relative errors differ (" +
        std::to_string(relative_error_) + " vs " +
        std::to_string(other.relative_error_) + ")");
  }
  if (other.count_ == 0) return Status::OK();
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  zero_count_ += other.zero_count_;
  for (const auto& [key, n] : other.buckets_) buckets_[key] += n;
  while (buckets_.size() > kMaxBuckets) {
    auto lowest = buckets_.begin();
    auto next = std::next(lowest);
    next->second += lowest->second;
    buckets_.erase(lowest);
  }
  return Status::OK();
}

double QuantileSketch::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::llround(q * static_cast<double>(count_ - 1)));
  if (rank < zero_count_) return 0.0;
  std::uint64_t cum = zero_count_;
  for (const auto& [key, n] : buckets_) {
    cum += n;
    if (rank < cum) {
      // min_/max_ are exact, so clamping the bucket midpoint into their
      // range can only move the estimate toward the true sample value.
      return std::clamp(BucketValue(key), min_, max_);
    }
  }
  return max_;
}

}  // namespace obs
}  // namespace scwsc
