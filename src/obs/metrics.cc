#include "src/obs/metrics.h"

#include <algorithm>

#include "src/common/logging.h"

namespace scwsc {
namespace obs {

MetricHistogram::MetricHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  SCWSC_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
              "histogram bounds must be increasing");
}

void MetricHistogram::Observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  counts_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  // C++17 has no fetch_add for atomic<double>; CAS-add the sum.
  double old = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(old, old + v, std::memory_order_relaxed)) {
  }
}

MetricHistogram::Snapshot MetricHistogram::snapshot() const {
  Snapshot out;
  out.bounds = bounds_;
  out.counts.reserve(counts_.size());
  for (const auto& c : counts_) {
    const std::uint64_t n = c.load(std::memory_order_relaxed);
    out.counts.push_back(n);
    out.total += n;
  }
  out.sum = sum_.load(std::memory_order_relaxed);
  return out;
}

MetricCounter& MetricRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<MetricCounter>();
  return *slot;
}

MetricGauge& MetricRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<MetricGauge>();
  return *slot;
}

MetricHistogram& MetricRegistry::histogram(const std::string& name,
                                           const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<MetricHistogram>(bounds);
  return *slot;
}

MetricSketch& MetricRegistry::sketch(const std::string& name,
                                     double relative_error) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = sketches_[name];
  if (slot == nullptr) slot = std::make_unique<MetricSketch>(relative_error);
  return *slot;
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricRegistry::CounterValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> MetricRegistry::GaugeValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, MetricHistogram::Snapshot>>
MetricRegistry::HistogramValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, MetricHistogram::Snapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.emplace_back(name, h->snapshot());
  }
  return out;
}

std::vector<std::pair<std::string, QuantileSketch>>
MetricRegistry::SketchValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, QuantileSketch>> out;
  out.reserve(sketches_.size());
  for (const auto& [name, s] : sketches_) out.emplace_back(name, s->snapshot());
  return out;
}

std::uint64_t MetricRegistry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

double MetricRegistry::GaugeValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second->value();
}

}  // namespace obs
}  // namespace scwsc
