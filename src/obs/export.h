// Exporters for a TraceSession: Chrome trace-event JSON (loads directly in
// Perfetto or chrome://tracing) and a flat metrics dump as JSON or CSV.
// Rendering is plain string building — the repo has no JSON dependency and
// the trace-event format only needs objects, arrays, numbers and escaped
// strings.

#ifndef SCWSC_OBS_EXPORT_H_
#define SCWSC_OBS_EXPORT_H_

#include <string>

#include "src/common/result.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace scwsc {
namespace obs {

/// The session's spans and events in Chrome trace-event format: closed
/// spans as complete ("X") events, still-open spans as begin ("B") events,
/// span events as thread-scoped instants ("i"), plus thread-name metadata.
std::string ToChromeTraceJson(const TraceSession& session);

/// The registry's counters, gauges and histograms as one JSON object.
std::string ToMetricsJson(const MetricRegistry& registry);

/// The same dump as `kind,name,value` CSV rows (histogram buckets flattened
/// to one row per bound).
std::string ToMetricsCsv(const MetricRegistry& registry);

/// The registry in the Prometheus text exposition format: counters and
/// gauges as plain samples, histograms with cumulative `_bucket{le=...}`
/// rows, sketches as summaries with quantile labels. Sketch family members
/// ("serve.latency_seconds#cwsc") become a `member` label on the family
/// metric. All names are prefixed "scwsc_" with dots mapped to underscores.
std::string ToPrometheusText(const MetricRegistry& registry);

/// Writes ToChromeTraceJson(session) to `path`.
Status WriteChromeTraceJson(const TraceSession& session,
                            const std::string& path);

/// Writes the metrics dump to `path`; a ".csv" extension selects the CSV
/// form, anything else gets JSON.
Status WriteMetricsFile(const MetricRegistry& registry,
                        const std::string& path);

}  // namespace obs
}  // namespace scwsc

#endif  // SCWSC_OBS_EXPORT_H_
