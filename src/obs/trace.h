// Hierarchical trace spans with steady-clock timestamps, thread-id tagging
// and point-in-time events — the per-phase view the paper's experimental
// section (budget rounds, per-level picks, lattice pruning) needs and the
// single wall-clock number in SolveResult cannot give.
//
// Recording model: a TraceSession owns the recorded spans/events plus a
// MetricRegistry; solvers receive a raw `TraceSession*` (nullptr = tracing
// off). The RAII `Span` wrapper costs a single branch on that pointer when
// tracing is disabled, so it is safe to leave in hot loops. Parenting is
// implicit: each thread keeps a stack of its currently open spans per
// session, and BeginSpan parents to the innermost open span *of the same
// session on the same thread* — cross-thread work (engine scan shards)
// starts a fresh track under its own thread id, which is exactly how the
// Chrome trace-event viewer nests things anyway.
//
// Timestamps share Stopwatch's std::chrono::steady_clock so span durations
// and bench timings come from one clock source.

#ifndef SCWSC_OBS_TRACE_H_
#define SCWSC_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"

namespace scwsc {
namespace obs {

/// 1-based index into the session's span table; 0 = "no span".
using SpanId = std::uint64_t;
constexpr SpanId kNoSpan = 0;

struct SpanRecord {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;  // kNoSpan for root spans
  std::string name;
  std::uint32_t thread = 0;   // small per-session thread index
  std::int64_t start_ns = 0;  // relative to the session epoch
  std::int64_t end_ns = -1;   // -1 while the span is still open
  bool closed() const { return end_ns >= 0; }
  double seconds() const {
    return closed() ? static_cast<double>(end_ns - start_ns) * 1e-9 : 0.0;
  }
};

/// A point-in-time marker (RunContext trip, incumbent update) attached to
/// the span that was open on the recording thread, or kNoSpan.
struct EventRecord {
  SpanId span = kNoSpan;
  std::string name;
  std::uint32_t thread = 0;
  std::int64_t ts_ns = 0;
};

class TraceSession {
 public:
  TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  // --- recording (thread-safe; prefer the RAII Span wrapper) --------------

  /// Opens a span parented to this thread's innermost open span of this
  /// session (kNoSpan parent when there is none).
  SpanId BeginSpan(std::string_view name);
  void EndSpan(SpanId id);

  /// Records an event on this thread's innermost open span of this session.
  void AddEvent(std::string_view name);
  /// Records an event on an explicit span.
  void AddEventOn(SpanId span, std::string_view name);

  MetricRegistry& metrics() { return metrics_; }
  const MetricRegistry& metrics() const { return metrics_; }

  // --- inspection (snapshot copies; safe while recording continues) -------

  std::vector<SpanRecord> spans() const;
  std::vector<EventRecord> events() const;

  /// Total seconds across every *closed* span named `name`.
  double SpanSeconds(std::string_view name) const;

  /// (name, total closed seconds) aggregated per span name, sorted by name.
  /// This is the per-phase breakdown the bench JSON rows embed.
  std::vector<std::pair<std::string, double>> PhaseTotals() const;

 private:
  std::uint32_t ThreadIndexLocked();

  const std::int64_t epoch_ns_;  // steady-clock origin of all timestamps
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  std::vector<EventRecord> events_;
  std::unordered_map<std::thread::id, std::uint32_t> thread_index_;
  MetricRegistry metrics_;
};

/// RAII span handle. With a null session every method is a no-op behind one
/// pointer branch, so instrumentation stays in place in hot paths.
class Span {
 public:
  Span() = default;
  Span(TraceSession* session, std::string_view name) : session_(session) {
    if (session_ != nullptr) id_ = session_->BeginSpan(name);
  }
  Span(Span&& other) noexcept
      : session_(other.session_), id_(other.id_) {
    other.session_ = nullptr;
    other.id_ = kNoSpan;
  }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      End();
      session_ = other.session_;
      id_ = other.id_;
      other.session_ = nullptr;
      other.id_ = kNoSpan;
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { End(); }

  /// Closes the span early (idempotent).
  void End() {
    if (session_ != nullptr) {
      session_->EndSpan(id_);
      session_ = nullptr;
      id_ = kNoSpan;
    }
  }

  /// Records an event on this span.
  void Event(std::string_view name) {
    if (session_ != nullptr) session_->AddEventOn(id_, name);
  }

  TraceSession* session() const { return session_; }
  SpanId id() const { return id_; }

 private:
  TraceSession* session_ = nullptr;
  SpanId id_ = kNoSpan;
};

}  // namespace obs
}  // namespace scwsc

#endif  // SCWSC_OBS_TRACE_H_
