#include "src/obs/json_util.h"

#include <cmath>
#include <cstdio>

#include "src/common/strings.h"

namespace scwsc {
namespace obs {
namespace internal {

void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          *out += c;
        }
    }
  }
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  return StrFormat("%.17g", v);
}

std::string TraceTs(std::int64_t ns) {
  return StrFormat("%.3f", static_cast<double>(ns) * 1e-3);
}

Status WriteFileOrStatus(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != body.size() || !close_ok) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace internal
}  // namespace obs
}  // namespace scwsc
