// Parser for the real LBL-CONN-7 trace format (ita.ee.lbl.gov).
//
// The archive's connection records are whitespace-separated lines:
//
//   timestamp duration protocol bytes_src bytes_dst localhost remotehost
//   state flags
//
// with "?" marking unknown durations/byte counts. This library's benches
// substitute a synthetic trace (the archive is not redistributable), but
// anyone holding the original file can parse it into the exact Table shape
// the experiments use — 5 pattern attributes (protocol, localhost,
// remotehost, endstate, flags) with the session duration as the measure —
// and rerun every bench on the paper's real data.

#ifndef SCWSC_GEN_LBL_PARSER_H_
#define SCWSC_GEN_LBL_PARSER_H_

#include <iosfwd>
#include <string>

#include "src/common/result.h"
#include "src/table/table.h"

namespace scwsc {
namespace gen {

struct LblParseOptions {
  /// Rows whose duration is "?" are skipped when true; otherwise they get
  /// unknown_duration_value.
  bool skip_unknown_durations = true;
  double unknown_duration_value = 0.0;
  /// Stop after this many parsed rows (0 = no limit).
  std::size_t max_rows = 0;
  /// Tolerate and skip malformed lines instead of failing.
  bool skip_malformed_lines = false;
};

struct LblParseStats {
  std::size_t parsed_rows = 0;
  std::size_t skipped_unknown = 0;
  std::size_t skipped_malformed = 0;
};

/// Parses the LBL-CONN-7 record stream into the experiment Table.
Result<Table> ParseLblConnections(std::istream& in,
                                  const LblParseOptions& options = {},
                                  LblParseStats* stats = nullptr);

/// File overload.
Result<Table> ParseLblConnectionsFile(const std::string& path,
                                      const LblParseOptions& options = {},
                                      LblParseStats* stats = nullptr);

}  // namespace gen
}  // namespace scwsc

#endif  // SCWSC_GEN_LBL_PARSER_H_
