// The paper's running example (Tables I and II): 16 real-world entities
// with Type and Location pattern attributes and a Cost measure.

#ifndef SCWSC_GEN_TOY_H_
#define SCWSC_GEN_TOY_H_

#include "src/table/table.h"

namespace scwsc {
namespace gen {

/// Builds Table I of the paper verbatim: 16 entities, attributes Type
/// (A/B) and Location (8 values), measure Cost. Enumerating its patterns
/// with the max cost function yields exactly the 24 patterns of Table II.
Table MakeEntitiesTable();

}  // namespace gen
}  // namespace scwsc

#endif  // SCWSC_GEN_TOY_H_
