// The Lemma 1 hardness gadget: reduction from VERTEX COVER IN TRIPARTITE
// GRAPHS to size-constrained weighted set cover on patterned sets.
//
// Given a tripartite graph G = (A ∪ B ∪ C, E), build a table with pattern
// attributes D1, D2, D3 and measure M: every edge becomes one record —
// {a_i, b_j} -> (a_i, b_j, z | τ), {a_i, c_k} -> (a_i, y, c_k | τ),
// {b_j, c_k} -> (x, b_j, c_k | τ) — plus a final record (x, y, z | W) with
// W > τ. With coverage fraction m/(m+1) and max-measure costs, the
// smallest set of patterns of cost ≤ τ covering the target equals the
// minimum vertex cover of G (Lemma 1); tests/tripartite_test.cc verifies
// this equivalence on random graphs against a brute-force vertex cover.

#ifndef SCWSC_GEN_TRIPARTITE_H_
#define SCWSC_GEN_TRIPARTITE_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/table/table.h"

namespace scwsc {
namespace gen {

struct TripartiteSpec {
  std::size_t a_size = 4;
  std::size_t b_size = 4;
  std::size_t c_size = 4;
  /// Probability of each cross-partition edge.
  double edge_probability = 0.4;
  std::uint64_t seed = 1;
  /// Measure of edge records (the cost threshold of Lemma 1).
  double tau = 1.0;
  /// Measure of the (x, y, z) record; must exceed tau.
  double big_weight = 100.0;
};

/// An edge of the generated tripartite graph, as vertex names
/// ("a0".."aN", "b...", "c...").
struct TripartiteEdge {
  std::string u;
  std::string v;
};

struct TripartiteInstance {
  Table table;
  std::vector<TripartiteEdge> edges;
  /// The Lemma 1 coverage fraction m / (m + 1).
  double coverage_fraction = 0.0;
};

/// Builds the reduction for a random tripartite graph. Fails when the graph
/// has no edges (the reduction needs m >= 1) after the random draw — retry
/// with another seed or higher probability.
Result<TripartiteInstance> MakeTripartiteReduction(const TripartiteSpec& spec);

}  // namespace gen
}  // namespace scwsc

#endif  // SCWSC_GEN_TRIPARTITE_H_
