#include "src/gen/toy.h"

#include "src/common/logging.h"
#include "src/table/builder.h"

namespace scwsc {
namespace gen {

Table MakeEntitiesTable() {
  TableBuilder builder({"Type", "Location"}, "Cost");
  struct Row {
    const char* type;
    const char* location;
    double cost;
  };
  // Paper Table I, rows 1-16 in order (row id = paper ID - 1).
  static constexpr Row kRows[] = {
      {"A", "West", 10},      {"A", "Northeast", 32}, {"B", "South", 2},
      {"A", "North", 4},      {"B", "East", 7},       {"A", "Northwest", 20},
      {"B", "West", 4},       {"B", "Southwest", 24}, {"A", "Southwest", 4},
      {"B", "Northwest", 4},  {"A", "North", 3},      {"B", "Northeast", 3},
      {"B", "South", 1},      {"B", "North", 20},     {"A", "East", 3},
      {"A", "South", 96},
  };
  for (const Row& row : kRows) {
    SCWSC_CHECK(builder.AddRow({row.type, row.location}, row.cost).ok());
  }
  return std::move(builder).Build();
}

}  // namespace gen
}  // namespace scwsc
