#include "src/gen/lbl_parser.h"

#include <fstream>
#include <istream>
#include <sstream>

#include "src/common/strings.h"
#include "src/table/builder.h"

namespace scwsc {
namespace gen {
namespace {

/// Splits on runs of whitespace (the archive uses single spaces, but be
/// liberal in what we accept).
std::vector<std::string_view> SplitWhitespace(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    const std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i > start) out.push_back(line.substr(start, i - start));
  }
  return out;
}

}  // namespace

Result<Table> ParseLblConnections(std::istream& in,
                                  const LblParseOptions& options,
                                  LblParseStats* stats) {
  LblParseStats local;
  LblParseStats& st = stats ? *stats : local;
  st = LblParseStats{};

  TableBuilder builder(
      {"protocol", "localhost", "remotehost", "endstate", "flags"},
      "session_length");

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto fields = SplitWhitespace(line);
    if (fields.empty()) continue;  // blank line
    // timestamp duration protocol bytes bytes local remote state [flags]
    // (the flags column is absent from some archive variants).
    if (fields.size() != 8 && fields.size() != 9) {
      if (options.skip_malformed_lines) {
        ++st.skipped_malformed;
        continue;
      }
      return Status::ParseError(
          StrFormat("line %zu: expected 8 or 9 fields, got %zu", line_no,
                    fields.size()));
    }
    double duration = options.unknown_duration_value;
    if (fields[1] == "?") {
      if (options.skip_unknown_durations) {
        ++st.skipped_unknown;
        continue;
      }
    } else {
      auto parsed = ParseDouble(fields[1]);
      if (!parsed.ok()) {
        if (options.skip_malformed_lines) {
          ++st.skipped_malformed;
          continue;
        }
        return Status::ParseError(StrFormat(
            "line %zu: bad duration '%.*s'", line_no,
            static_cast<int>(fields[1].size()), fields[1].data()));
      }
      duration = *parsed;
    }
    const std::string_view flags = fields.size() == 9 ? fields[8] : "-";
    SCWSC_RETURN_NOT_OK(builder.AddRow(
        {fields[2], fields[5], fields[6], fields[7], flags}, duration));
    ++st.parsed_rows;
    if (options.max_rows != 0 && st.parsed_rows >= options.max_rows) break;
  }
  if (st.parsed_rows == 0) {
    return Status::ParseError("no connection records parsed");
  }
  return std::move(builder).Build();
}

Result<Table> ParseLblConnectionsFile(const std::string& path,
                                      const LblParseOptions& options,
                                      LblParseStats* stats) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open file: " + path);
  return ParseLblConnections(in, options, stats);
}

}  // namespace gen
}  // namespace scwsc
