#include "src/gen/perturb.h"

#include <algorithm>
#include <numeric>

namespace scwsc {
namespace gen {

Result<Table> UniformPerturbMeasure(const Table& table, double delta,
                                    Rng& rng) {
  if (!table.has_measure()) {
    return Status::InvalidArgument("table has no measure column");
  }
  if (delta < 0.0 || delta > 1.0) {
    return Status::InvalidArgument("delta must be in [0, 1]");
  }
  std::vector<double> measure(table.num_rows());
  for (RowId r = 0; r < table.num_rows(); ++r) {
    const double m = table.measure(r);
    measure[r] = rng.NextDouble((1.0 - delta) * m, (1.0 + delta) * m);
  }
  return table.WithMeasure(std::move(measure));
}

Result<Table> LogNormalRankPreserving(const Table& table, double log_mean,
                                      double log_sigma, Rng& rng) {
  if (!table.has_measure()) {
    return Status::InvalidArgument("table has no measure column");
  }
  if (log_sigma < 0.0) {
    return Status::InvalidArgument("log_sigma must be >= 0");
  }
  const std::size_t n = table.num_rows();
  std::vector<double> draws(n);
  for (auto& d : draws) d = rng.NextLogNormal(log_mean, log_sigma);
  std::sort(draws.begin(), draws.end());

  // Rank of each row by original measure (ties by row id).
  std::vector<RowId> order(n);
  std::iota(order.begin(), order.end(), RowId{0});
  std::stable_sort(order.begin(), order.end(), [&](RowId a, RowId b) {
    return table.measure(a) < table.measure(b);
  });

  std::vector<double> measure(n);
  for (std::size_t rank = 0; rank < n; ++rank) {
    measure[order[rank]] = draws[rank];
  }
  return table.WithMeasure(std::move(measure));
}

}  // namespace gen
}  // namespace scwsc
