#include "src/gen/lbl_synth.h"

#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/table/builder.h"

namespace scwsc {
namespace gen {
namespace {

const char* const kProtocolNames[] = {"nntp",   "smtp", "telnet", "ftp",
                                      "finger", "http", "login",  "shell",
                                      "exec",   "uucp"};
const char* const kEndstateNames[] = {"SF",  "REJ",    "S0",   "S1",
                                      "S2",  "S3",     "RSTO", "RSTR",
                                      "OTH", "RSTOSn", "SHR",  "SH"};

std::string ProtocolName(std::size_t i) {
  constexpr std::size_t kNamed = sizeof(kProtocolNames) / sizeof(char*);
  if (i < kNamed) return kProtocolNames[i];
  return StrFormat("proto%zu", i);
}

std::string EndstateName(std::size_t i) {
  constexpr std::size_t kNamed = sizeof(kEndstateNames) / sizeof(char*);
  if (i < kNamed) return kEndstateNames[i];
  return StrFormat("state%zu", i);
}

}  // namespace

Result<Table> MakeLblSynth(const LblSynthSpec& spec) {
  if (spec.num_rows == 0) {
    return Status::InvalidArgument("num_rows must be positive");
  }
  if (spec.num_protocols == 0 || spec.num_localhosts == 0 ||
      spec.num_remotehosts == 0 || spec.num_endstates == 0 ||
      spec.num_flags == 0) {
    return Status::InvalidArgument("all attribute domains must be non-empty");
  }
  if (spec.endstate_protocol_correlation < 0.0 ||
      spec.endstate_protocol_correlation > 1.0) {
    return Status::InvalidArgument("correlation must be in [0, 1]");
  }
  if (spec.session_log_sigma < 0.0) {
    return Status::InvalidArgument("session_log_sigma must be >= 0");
  }

  // Deterministic per-value log-mean shift in [-1, 1], keyed on the
  // attribute index and value id (independent of the RNG stream so that
  // adding rows never changes earlier rows' measures).
  const auto value_shift = [&](std::size_t attr, std::size_t value) {
    std::uint64_t state =
        spec.seed ^ (0x9E3779B97F4A7C15ull * (attr + 1)) ^ (value * 0x51ull);
    const std::uint64_t h = SplitMix64(state);
    return 2.0 * (static_cast<double>(h >> 11) * 0x1.0p-53) - 1.0;
  };
  // Attribute weights: protocol and end state dominate duration, flags
  // matter a little, hosts barely.
  const double weights[5] = {1.0, 0.15, 0.15, 0.7, 0.3};

  Rng rng(spec.seed);
  ZipfSampler protocol(spec.num_protocols, spec.protocol_skew);
  ZipfSampler localhost(spec.num_localhosts, spec.host_skew);
  ZipfSampler remotehost(spec.num_remotehosts, spec.host_skew);
  ZipfSampler endstate(spec.num_endstates, spec.endstate_skew);
  ZipfSampler flags(spec.num_flags, spec.flags_skew);

  TableBuilder builder(
      {"protocol", "localhost", "remotehost", "endstate", "flags"},
      "session_length");

  for (std::size_t i = 0; i < spec.num_rows; ++i) {
    const std::size_t proto = protocol.Sample(rng);
    const std::size_t lhost = localhost.Sample(rng);
    const std::size_t rhost = remotehost.Sample(rng);
    // Correlated end state: each protocol prefers one end state.
    std::size_t state;
    if (rng.NextBool(spec.endstate_protocol_correlation)) {
      state = proto % spec.num_endstates;
    } else {
      state = endstate.Sample(rng);
    }
    const std::size_t flag = flags.Sample(rng);
    const double mu =
        spec.session_log_mean +
        spec.measure_attribute_effect *
            (weights[0] * value_shift(0, proto) +
             weights[1] * value_shift(1, lhost) +
             weights[2] * value_shift(2, rhost) +
             weights[3] * value_shift(3, state) +
             weights[4] * value_shift(4, flag));
    const double session = rng.NextLogNormal(mu, spec.session_log_sigma);

    const Status st = builder.AddRow(
        {ProtocolName(proto), StrFormat("lh%zu", lhost),
         StrFormat("rh%zu", rhost), EndstateName(state),
         StrFormat("f%zu", flag)},
        session);
    SCWSC_RETURN_NOT_OK(st);
  }
  return std::move(builder).Build();
}

}  // namespace gen
}  // namespace scwsc
