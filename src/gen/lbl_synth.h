// LBL-CONN-7-like synthetic TCP connection traces.
//
// The paper evaluates on the LBL-CONN-7 trace (≈700k TCP connections from
// ita.ee.lbl.gov) with five pattern attributes — protocol, localhost,
// remotehost, endstate, flags — and a session-length measure used for
// pattern weights. That archive is not available offline, so this generator
// synthesizes traces with the same schema and the statistical properties
// the algorithms are sensitive to:
//
//  - heavily skewed categorical values (Zipf-distributed: a handful of
//    dominant protocols/end states, a long tail of hosts),
//  - domain sizes modeled on a campus trace (few protocols and end states,
//    thousands of hosts),
//  - mild cross-attribute correlation (an end state drawn, with some
//    probability, from a protocol-specific preference),
//  - a log-normal session-length measure — the paper itself re-draws
//    measures from a log-normal with log-mean 2 in §VI-B, which anchors the
//    scale used here.
//
// Everything is deterministic in the seed.

#ifndef SCWSC_GEN_LBL_SYNTH_H_
#define SCWSC_GEN_LBL_SYNTH_H_

#include <cstdint>

#include "src/common/result.h"
#include "src/table/table.h"

namespace scwsc {
namespace gen {

struct LblSynthSpec {
  std::size_t num_rows = 100'000;
  std::uint64_t seed = 42;

  // Domain sizes (active domains shrink for small num_rows automatically).
  std::size_t num_protocols = 6;
  std::size_t num_localhosts = 1'600;
  std::size_t num_remotehosts = 3'000;
  std::size_t num_endstates = 11;
  std::size_t num_flags = 8;

  // Zipf skews per attribute.
  double protocol_skew = 1.1;
  double host_skew = 1.2;
  double endstate_skew = 1.0;
  double flags_skew = 0.9;

  /// Probability that the end state follows the protocol's preferred state
  /// instead of an independent Zipf draw.
  double endstate_protocol_correlation = 0.35;

  // Log-normal session length: exp(N(mu_row, sigma^2)) where mu_row is
  // session_log_mean shifted per attribute value (below).
  double session_log_mean = 2.0;
  double session_log_sigma = 1.4;

  /// Strength of the attribute -> duration dependence. Real traces have
  /// strongly protocol-dependent session lengths (nntp transfers run long,
  /// finger lookups are instant); without this dependence the measure is
  /// i.i.d. across rows and the max-of-m cost of a pattern grows slower
  /// than its benefit m, making the all-wildcards pattern gain-optimal for
  /// every request — a degenerate regime no real workload exhibits. Each
  /// attribute value contributes a deterministic log-mean shift in
  /// [-effect, effect] scaled by a per-attribute weight (protocol and end
  /// state strongest). 0 disables the dependence.
  double measure_attribute_effect = 1.0;
};

/// Generates the synthetic trace. Fails on degenerate specs (zero rows or
/// empty domains).
Result<Table> MakeLblSynth(const LblSynthSpec& spec);

}  // namespace gen
}  // namespace scwsc

#endif  // SCWSC_GEN_LBL_SYNTH_H_
