// Measure perturbations of §VI-B.
//
// To probe CWSC's solution quality under different weight distributions the
// paper derives two groups of synthetic data sets from the base trace:
//  (1) each measure m replaced by a uniform draw from [(1-δ)m, (1+δ)m];
//  (2) measures re-drawn from a log-normal distribution and assigned to
//      rows in the same rank order as the original measures.

#ifndef SCWSC_GEN_PERTURB_H_
#define SCWSC_GEN_PERTURB_H_

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/table/table.h"

namespace scwsc {
namespace gen {

/// Group 1: per-row uniform perturbation with relative width delta in
/// [0, 1]. delta = 0 returns an identical measure column.
Result<Table> UniformPerturbMeasure(const Table& table, double delta,
                                    Rng& rng);

/// Group 2: draws num_rows log-normal values with the given parameters and
/// assigns them rank-preservingly: the row with the r-th smallest original
/// measure receives the r-th smallest new value (ties broken by row id).
Result<Table> LogNormalRankPreserving(const Table& table, double log_mean,
                                      double log_sigma, Rng& rng);

}  // namespace gen
}  // namespace scwsc

#endif  // SCWSC_GEN_PERTURB_H_
