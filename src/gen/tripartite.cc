#include "src/gen/tripartite.h"

#include "src/common/strings.h"
#include "src/table/builder.h"

namespace scwsc {
namespace gen {

Result<TripartiteInstance> MakeTripartiteReduction(
    const TripartiteSpec& spec) {
  if (spec.a_size == 0 || spec.b_size == 0 || spec.c_size == 0) {
    return Status::InvalidArgument("all partitions must be non-empty");
  }
  if (spec.edge_probability < 0.0 || spec.edge_probability > 1.0) {
    return Status::InvalidArgument("edge_probability must be in [0, 1]");
  }
  if (!(spec.big_weight > spec.tau)) {
    return Status::InvalidArgument("big_weight must exceed tau");
  }

  Rng rng(spec.seed);
  TableBuilder builder({"D1", "D2", "D3"}, "M");
  std::vector<TripartiteEdge> edges;

  auto an = [](std::size_t i) { return StrFormat("a%zu", i); };
  auto bn = [](std::size_t i) { return StrFormat("b%zu", i); };
  auto cn = [](std::size_t i) { return StrFormat("c%zu", i); };

  for (std::size_t i = 0; i < spec.a_size; ++i) {
    for (std::size_t j = 0; j < spec.b_size; ++j) {
      if (!rng.NextBool(spec.edge_probability)) continue;
      SCWSC_RETURN_NOT_OK(builder.AddRow({an(i), bn(j), "z"}, spec.tau));
      edges.push_back(TripartiteEdge{an(i), bn(j)});
    }
  }
  for (std::size_t i = 0; i < spec.a_size; ++i) {
    for (std::size_t k = 0; k < spec.c_size; ++k) {
      if (!rng.NextBool(spec.edge_probability)) continue;
      SCWSC_RETURN_NOT_OK(builder.AddRow({an(i), "y", cn(k)}, spec.tau));
      edges.push_back(TripartiteEdge{an(i), cn(k)});
    }
  }
  for (std::size_t j = 0; j < spec.b_size; ++j) {
    for (std::size_t k = 0; k < spec.c_size; ++k) {
      if (!rng.NextBool(spec.edge_probability)) continue;
      SCWSC_RETURN_NOT_OK(builder.AddRow({"x", bn(j), cn(k)}, spec.tau));
      edges.push_back(TripartiteEdge{bn(j), cn(k)});
    }
  }
  if (edges.empty()) {
    return Status::Infeasible(
        "random graph has no edges; raise edge_probability or reseed");
  }
  SCWSC_RETURN_NOT_OK(builder.AddRow({"x", "y", "z"}, spec.big_weight));

  TripartiteInstance instance{std::move(builder).Build(), std::move(edges),
                              0.0};
  const double m = static_cast<double>(instance.edges.size());
  instance.coverage_fraction = m / (m + 1.0);
  return instance;
}

}  // namespace gen
}  // namespace scwsc
