// Small string utilities shared by the CSV reader, the pattern printer and
// the benchmark harness.

#ifndef SCWSC_COMMON_STRINGS_H_
#define SCWSC_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"

namespace scwsc {

/// Splits `line` on `delim`. Empty fields are preserved; an empty input
/// yields a single empty field (CSV semantics).
std::vector<std::string_view> SplitView(std::string_view line, char delim);

/// Strips ASCII whitespace from both ends.
std::string_view StripView(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Parses a double; rejects trailing garbage, NaN and infinities.
Result<double> ParseDouble(std::string_view s);

/// Parses a non-negative integer; rejects trailing garbage and overflow.
Result<std::uint64_t> ParseU64(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders a double with up to `precision` significant digits, trimming
/// trailing zeros ("24", "27.5").
std::string FormatNumber(double v, int precision = 6);

}  // namespace scwsc

#endif  // SCWSC_COMMON_STRINGS_H_
