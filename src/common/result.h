// Result<T>: a value or a Status, for fallible functions that produce data.
//
// Mirrors arrow::Result / absl::StatusOr. A Result is either OK and holds a
// T, or holds a non-OK Status. Accessing the value of an error Result aborts
// (library invariant violation), so callers must check ok() or use
// SCWSC_ASSIGN_OR_RETURN.

#ifndef SCWSC_COMMON_RESULT_H_
#define SCWSC_COMMON_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "src/common/logging.h"
#include "src/common/status.h"

namespace scwsc {

template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, like arrow::Result).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status. Passing an OK status is a programming
  /// error and is converted to an Internal error.
  Result(Status status)  // NOLINT(runtime/explicit)
      : repr_(std::move(status)) {
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; OK() if this Result holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// The contained value. Requires ok().
  const T& value() const& {
    CheckOk();
    return std::get<T>(repr_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(repr_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result is an error.
  T ValueOr(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  void CheckOk() const {
    if (!ok()) {
      SCWSC_LOG_FATAL("Result::value() on error: %s",
                      std::get<Status>(repr_).ToString().c_str());
    }
  }
  std::variant<T, Status> repr_;
};

}  // namespace scwsc

/// Evaluates `rexpr` (a Result<T>), propagating the error or assigning the
/// value into `lhs`:
///   SCWSC_ASSIGN_OR_RETURN(auto table, csv::Read(path));
#define SCWSC_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  SCWSC_ASSIGN_OR_RETURN_IMPL_(                                 \
      SCWSC_CONCAT_(scwsc_result_, __LINE__), lhs, rexpr)

#define SCWSC_CONCAT_INNER_(a, b) a##b
#define SCWSC_CONCAT_(a, b) SCWSC_CONCAT_INNER_(a, b)
#define SCWSC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#endif  // SCWSC_COMMON_RESULT_H_
