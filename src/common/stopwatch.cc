#include "src/common/stopwatch.h"

// Stopwatch is header-only; this translation unit exists so the target has a
// stable place to grow (e.g. CPU-time clocks) without touching the build.
