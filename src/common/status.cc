#include "src/common/status.h"

namespace scwsc {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kInfeasible:
      return "Infeasible";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_shared<const Rep>(Rep{code, std::move(message), {}});
  }
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += rep_->message;
  return out;
}

}  // namespace scwsc
