// FNV-1a content hashing, the one primitive behind every content address in
// the library: the serve layer's snapshot/result cache keys and the api
// layer's per-shard snapshot hashes. Hoisted out of src/serve/cache.cc so
// the two layers stop duplicating the byte-mixing code (and so the chained
// per-shard hashes are guaranteed to use the same mixer as the flat hash
// they replace).
//
// All helpers fold into a running std::uint64_t accumulator seeded with
// kFnv64Offset. Doubles are hashed by bit pattern (exact, never rounded);
// strings and sized buffers mix their length first so adjacent fields
// cannot alias ("ab","c" vs "a","bc").

#ifndef SCWSC_COMMON_HASH_H_
#define SCWSC_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace scwsc {

inline constexpr std::uint64_t kFnv64Offset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnv64Prime = 1099511628211ull;

/// Folds `len` raw bytes into `h` (FNV-1a inner loop).
inline void HashBytes(const void* data, std::size_t len, std::uint64_t& h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnv64Prime;
  }
}

inline void HashU64(std::uint64_t v, std::uint64_t& h) {
  HashBytes(&v, sizeof(v), h);
}

/// Hashes the exact bit pattern, so 0.1 + 0.2 and 0.3 hash differently and
/// no rounding ever merges two distinct inputs.
inline void HashDouble(double v, std::uint64_t& h) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  HashU64(bits, h);
}

/// Length-prefixed string hash.
inline void HashString(const std::string& s, std::uint64_t& h) {
  HashU64(s.size(), h);
  HashBytes(s.data(), s.size(), h);
}

/// One-shot convenience over a buffer, seeded with the FNV offset.
std::uint64_t Fnv1a64(const void* data, std::size_t len);

}  // namespace scwsc

#endif  // SCWSC_COMMON_HASH_H_
