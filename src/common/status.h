// Status: lightweight error propagation for fallible operations.
//
// Follows the RocksDB/Arrow idiom: library code never throws across the
// public API; instead every fallible function returns a Status (or a
// Result<T>, see result.h). A Status is cheap to copy when OK (no
// allocation) and carries a code plus a human-readable message otherwise.

#ifndef SCWSC_COMMON_STATUS_H_
#define SCWSC_COMMON_STATUS_H_

#include <any>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace scwsc {

/// Error category for a failed operation.
enum class StatusCode : int {
  kOk = 0,
  /// The caller supplied an argument outside the documented domain
  /// (e.g. a negative k, a coverage fraction outside [0, 1]).
  kInvalidArgument = 1,
  /// The instance admits no feasible solution under the given constraints
  /// (CWSC line 07: return "No solution").
  kInfeasible = 2,
  /// A referenced entity (column, pattern attribute, file) does not exist.
  kNotFound = 3,
  /// Input data failed to parse (CSV syntax, dictionary overflow, ...).
  kParseError = 4,
  /// An internal invariant was violated; indicates a bug in this library.
  kInternal = 5,
  /// The requested operation is not implemented for this configuration.
  kNotSupported = 6,
  /// A resource limit was exceeded (e.g. exact solver node budget).
  kResourceExhausted = 7,
  /// A RunContext deadline expired before the operation completed. The
  /// Status may carry the best solution found so far as a payload.
  kDeadlineExceeded = 8,
  /// The operation was cancelled via RunContext::RequestCancel(). The
  /// Status may carry the best solution found so far as a payload.
  kCancelled = 9,
  /// The serving target is temporarily refusing work (an open circuit
  /// breaker, a draining backend). Unlike kResourceExhausted this is a
  /// health signal, not a capacity one; the message names a retry-after.
  kUnavailable = 10,
};

/// Returns a stable human-readable name for a status code ("InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Machine-readable retry-after carried as a Status payload by throttling
/// rejections (open circuit breakers, tenant quota denials, a full serve
/// queue). Frontends map it into the wire error envelope's retry_after_ms
/// field instead of parsing it out of the message text.
struct RetryAfterHint {
  double ms = 0.0;
};

/// Result of a fallible operation: a code plus an optional message.
///
/// The OK state is represented by a null payload, so `Status::OK()` never
/// allocates and moves are trivially cheap. Inspired by rocksdb::Status.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. `code` must not be
  /// kOk (use the default constructor / OK() for success).
  Status(StatusCode code, std::string message);

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsInfeasible() const { return code() == StatusCode::kInfeasible; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  /// True for the codes a tripped RunContext produces: DeadlineExceeded,
  /// Cancelled, or ResourceExhausted (work-budget trips). Such statuses may
  /// carry a best-so-far solution payload.
  bool IsInterruption() const {
    return IsDeadlineExceeded() || IsCancelled() || IsResourceExhausted();
  }

  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  /// The message supplied at construction; empty for OK.
  std::string_view message() const {
    return rep_ ? std::string_view(rep_->message) : std::string_view();
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Returns a copy of this Status carrying `value` as its payload.
  ///
  /// Interruption statuses (deadline/cancel/budget) use this to hand the
  /// caller the best solution found before the trip: a `Result<Solution>`
  /// holding the error can still surrender the partial answer via
  /// `status.payload<Solution>()`. Must not be called on an OK status —
  /// success values travel in Result<T>, not here.
  template <class T>
  Status WithPayload(T value) const {
    Status out(code(), std::string(message()));
    if (out.rep_ != nullptr) {  // OK has no rep; payload is silently dropped
      const_cast<Rep*>(out.rep_.get())->payload = std::move(value);
    }
    return out;
  }

  /// Returns the payload if one of type T is attached, else nullptr.
  template <class T>
  const T* payload() const {
    return rep_ ? std::any_cast<T>(&rep_->payload) : nullptr;
  }

  bool has_payload() const { return rep_ && rep_->payload.has_value(); }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
    std::any payload;  // best-so-far solution on interruption; usually empty
  };
  // Null iff OK. shared_ptr keeps copies cheap; Status is logically a value.
  std::shared_ptr<const Rep> rep_;
};

}  // namespace scwsc

/// Propagates a non-OK Status to the caller. Usage:
///   SCWSC_RETURN_NOT_OK(DoThing());
#define SCWSC_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::scwsc::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                    \
  } while (false)

#endif  // SCWSC_COMMON_STATUS_H_
