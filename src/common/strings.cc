#include "src/common/strings.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace scwsc {

std::vector<std::string_view> SplitView(std::string_view line, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = line.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripView(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

Result<double> ParseDouble(std::string_view s) {
  s = StripView(s);
  if (s.empty()) return Status::ParseError("empty numeric field");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("trailing garbage in numeric field: '" + buf +
                              "'");
  }
  if (errno == ERANGE || !std::isfinite(v)) {
    return Status::ParseError("numeric field out of range: '" + buf + "'");
  }
  return v;
}

Result<std::uint64_t> ParseU64(std::string_view s) {
  s = StripView(s);
  if (s.empty()) return Status::ParseError("empty integer field");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size() || buf[0] == '-') {
    return Status::ParseError("bad integer field: '" + buf + "'");
  }
  if (errno == ERANGE) {
    return Status::ParseError("integer field out of range: '" + buf + "'");
  }
  return static_cast<std::uint64_t>(v);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string FormatNumber(double v, int precision) {
  std::string s = StrFormat("%.*g", precision, v);
  return s;
}

}  // namespace scwsc
