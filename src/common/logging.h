// Minimal leveled logging and fatal-check macros.
//
// Logging goes to stderr; benchmarks and examples print their payload to
// stdout so the two streams can be separated. Fatal checks abort: they guard
// internal invariants only, never user input (user input errors surface as
// Status).

#ifndef SCWSC_COMMON_LOGGING_H_
#define SCWSC_COMMON_LOGGING_H_

#include <cstdarg>
#include <cstdint>

namespace scwsc {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the minimum level that is emitted. The default is kInfo, or the
/// SCWSC_LOG_LEVEL environment variable (debug|info|warn|error or 0-3) when
/// set; this call overrides either. Every line carries an ISO-8601 UTC
/// timestamp and a short thread tag.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// printf-style log emission; prefer the SCWSC_LOG_* macros.
void LogMessage(LogLevel level, const char* file, int line, const char* fmt,
                ...) __attribute__((format(printf, 4, 5)));

/// Logs and aborts. Used by SCWSC_LOG_FATAL / SCWSC_CHECK.
[[noreturn]] void LogFatal(const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

/// Warn-level messages are rate limited per call site (a token bucket of 10
/// with 5 tokens/second refill), so a chaos storm repeating one warning
/// cannot flood stderr; suppressed messages are counted here and surfaced
/// by the telemetry pump as the `log.suppressed` gauge. When a site
/// recovers a token after suppressing, the next emitted line is followed by
/// a note with the suppressed count.
std::uint64_t LogSuppressedCount();

}  // namespace scwsc

#define SCWSC_LOG_DEBUG(...) \
  ::scwsc::LogMessage(::scwsc::LogLevel::kDebug, __FILE__, __LINE__, __VA_ARGS__)
#define SCWSC_LOG_INFO(...) \
  ::scwsc::LogMessage(::scwsc::LogLevel::kInfo, __FILE__, __LINE__, __VA_ARGS__)
#define SCWSC_LOG_WARN(...) \
  ::scwsc::LogMessage(::scwsc::LogLevel::kWarn, __FILE__, __LINE__, __VA_ARGS__)
#define SCWSC_LOG_ERROR(...) \
  ::scwsc::LogMessage(::scwsc::LogLevel::kError, __FILE__, __LINE__, __VA_ARGS__)
#define SCWSC_LOG_FATAL(...) \
  ::scwsc::LogFatal(__FILE__, __LINE__, __VA_ARGS__)

/// Aborts with a message when an internal invariant does not hold.
#define SCWSC_CHECK(cond, ...)                                   \
  do {                                                           \
    if (!(cond)) {                                               \
      ::scwsc::LogFatal(__FILE__, __LINE__,                      \
                        "Check failed: %s " __VA_ARGS__, #cond); \
    }                                                            \
  } while (false)

#ifndef NDEBUG
#define SCWSC_DCHECK(cond, ...) SCWSC_CHECK(cond, __VA_ARGS__)
#else
#define SCWSC_DCHECK(cond, ...) \
  do {                          \
  } while (false)
#endif

#endif  // SCWSC_COMMON_LOGGING_H_
