// DynamicBitset: a fixed-universe bitset sized at run time.
//
// The coverage state of every algorithm in this library is "which elements of
// T are already covered"; DynamicBitset provides that with O(n/64) storage,
// constant-time test/set, and a popcount-based count. It deliberately has no
// resize-on-access behaviour: all accesses must be within [0, size()), which
// is DCHECK-enforced.

#ifndef SCWSC_COMMON_BITSET_H_
#define SCWSC_COMMON_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/logging.h"

namespace scwsc {

class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// Creates a bitset over universe {0, ..., n-1}, all bits clear.
  explicit DynamicBitset(std::size_t n)
      : size_(n), words_((n + 63) / 64, 0), count_(0) {}

  std::size_t size() const { return size_; }

  /// Number of set bits. O(1): maintained incrementally.
  std::size_t count() const { return count_; }

  bool none() const { return count_ == 0; }
  bool all() const { return count_ == size_; }

  bool test(std::size_t i) const {
    SCWSC_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Sets bit i; returns true if the bit was previously clear.
  bool set(std::size_t i) {
    SCWSC_DCHECK(i < size_);
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    std::uint64_t& w = words_[i >> 6];
    if (w & mask) return false;
    w |= mask;
    ++count_;
    return true;
  }

  /// Clears bit i; returns true if the bit was previously set.
  bool reset(std::size_t i) {
    SCWSC_DCHECK(i < size_);
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    std::uint64_t& w = words_[i >> 6];
    if (!(w & mask)) return false;
    w &= ~mask;
    --count_;
    return true;
  }

  /// Clears all bits.
  void clear() {
    std::fill(words_.begin(), words_.end(), 0);
    count_ = 0;
  }

  /// Grows the universe to n (new bits clear). n must be >= size().
  void Resize(std::size_t n);

  /// Packed-word view, little-endian within each word (bit i lives at
  /// words()[i >> 6] bit (i & 63)). Trailing bits past size() are zero.
  const std::uint64_t* words() const { return words_.data(); }
  std::size_t num_words() const { return words_.size(); }

  /// Number of bits set in `other` but clear here: popcount(other & ~this)
  /// over `nwords` packed words. `other` must use this bitset's layout with
  /// nwords <= num_words(); trailing bits of `other` past the universe must
  /// be zero. This is the marginal-benefit kernel: with `other` a set's
  /// membership row and `this` the covered state, the result is |MBen|.
  std::size_t AndNotCount(const std::uint64_t* other,
                          std::size_t nwords) const {
    SCWSC_DCHECK(nwords <= words_.size());
    std::size_t c = 0;
    for (std::size_t w = 0; w < nwords; ++w) {
      c += static_cast<std::size_t>(
          __builtin_popcountll(other[w] & ~words_[w]));
    }
    return c;
  }

  /// AndNotCount restricted to the word subrange [word_begin, word_end):
  /// the per-shard marginal kernel. `other` is indexed absolutely (the full
  /// packed row), so a sharded recount reads exactly the shard's words.
  std::size_t AndNotCountWords(const std::uint64_t* other,
                               std::size_t word_begin,
                               std::size_t word_end) const {
    SCWSC_DCHECK(word_begin <= word_end && word_end <= words_.size());
    std::size_t c = 0;
    for (std::size_t w = word_begin; w < word_end; ++w) {
      c += static_cast<std::size_t>(
          __builtin_popcountll(other[w] & ~words_[w]));
    }
    return c;
  }

  /// ORs `other` into this bitset and returns the number of newly set bits.
  /// Same layout contract as AndNotCount.
  std::size_t UnionWith(const std::uint64_t* other, std::size_t nwords) {
    SCWSC_DCHECK(nwords <= words_.size());
    std::size_t newly = 0;
    for (std::size_t w = 0; w < nwords; ++w) {
      const std::uint64_t add = other[w] & ~words_[w];
      if (add != 0) {
        newly += static_cast<std::size_t>(__builtin_popcountll(add));
        words_[w] |= add;
      }
    }
    count_ += newly;
    return newly;
  }

  /// UnionWith restricted to the word subrange [word_begin, word_end);
  /// returns the newly set bits within that range (a shard's coverage-epoch
  /// increment when `other` is a membership row and this is covered state).
  std::size_t UnionWithWords(const std::uint64_t* other,
                             std::size_t word_begin, std::size_t word_end) {
    SCWSC_DCHECK(word_begin <= word_end && word_end <= words_.size());
    std::size_t newly = 0;
    for (std::size_t w = word_begin; w < word_end; ++w) {
      const std::uint64_t add = other[w] & ~words_[w];
      if (add != 0) {
        newly += static_cast<std::size_t>(__builtin_popcountll(add));
        words_[w] |= add;
      }
    }
    count_ += newly;
    return newly;
  }

  /// Number of ids in `ids` whose bit is clear.
  template <typename Container>
  std::size_t CountClear(const Container& ids) const {
    std::size_t c = 0;
    for (auto id : ids) {
      if (!test(static_cast<std::size_t>(id))) ++c;
    }
    return c;
  }

  /// CountClear over the contiguous id range [begin, end) — the sorted
  /// per-shard slice of a set's element list.
  template <typename T>
  std::size_t CountClear(const T* begin, const T* end) const {
    std::size_t c = 0;
    for (const T* p = begin; p != end; ++p) {
      if (!test(static_cast<std::size_t>(*p))) ++c;
    }
    return c;
  }

  /// Calls fn(i) for every set bit i, in increasing order.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits) {
        const int b = __builtin_ctzll(bits);
        fn(w * 64 + static_cast<std::size_t>(b));
        bits &= bits - 1;
      }
    }
  }

  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
  std::size_t count_ = 0;
};

}  // namespace scwsc

#endif  // SCWSC_COMMON_BITSET_H_
