#include "src/common/bitset.h"

namespace scwsc {

void DynamicBitset::Resize(std::size_t n) {
  SCWSC_CHECK(n >= size_, "DynamicBitset cannot shrink");
  size_ = n;
  words_.resize((n + 63) / 64, 0);
}

}  // namespace scwsc
