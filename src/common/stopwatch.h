// Stopwatch: wall-clock timing for the benchmark harness.

#ifndef SCWSC_COMMON_STOPWATCH_H_
#define SCWSC_COMMON_STOPWATCH_H_

#include <chrono>

namespace scwsc {

/// Monotonic wall-clock stopwatch. Started at construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction/Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace scwsc

#endif  // SCWSC_COMMON_STOPWATCH_H_
