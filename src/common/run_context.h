// RunContext: a cheap, thread-safe execution context threaded through every
// solver so long-running work can be bounded and interrupted cooperatively.
//
// A RunContext carries four independent interruption sources:
//   - a steady-clock deadline (SetDeadline / SetDeadlineAt),
//   - a cooperative cancellation token (RequestCancel, e.g. from a signal
//     handler or another thread),
//   - work budgets: an element-recount budget charged by the benefit engine
//     and a node-expansion budget charged by search/enumeration loops,
//   - test-only fault injection (FailAfter / FailWithProbability) so timeout
//     paths are deterministically exercisable without real clocks.
//
// Solvers call Check() at loop heads (and ChargeRecounts / ChargeNodes where
// they do metered work) and, on a non-kNone result, stop and return their
// best-so-far solution tagged with the matching Status (see TripStatus).
// The first trip is sticky: once any source fires, every subsequent Check()
// on that context reports the same TripKind, so a multi-threaded scan that
// observes the trip at different points converges on one verdict.
//
// A default-constructed RunContext is unlimited: limited() is false and the
// fast path is a single relaxed atomic load, so threading a context through
// hot loops costs nothing measurable when no limits are set. All members are
// lock-free atomics; RequestCancel() is async-signal-safe.

#ifndef SCWSC_COMMON_RUN_CONTEXT_H_
#define SCWSC_COMMON_RUN_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

#include "src/common/status.h"

namespace scwsc {

/// Which interruption source fired first. Sticky per context.
enum class TripKind : unsigned char {
  kNone = 0,
  kDeadline = 1,  // steady-clock deadline passed
  kCancel = 2,    // RequestCancel() was called
  kBudget = 3,    // a work budget (recounts or node expansions) ran out
};

/// Stable name for a trip kind ("deadline", "cancel", ...).
const char* TripKindToString(TripKind kind);

/// Maps a trip to the Status a solver should return: kDeadline ->
/// DeadlineExceeded, kCancel -> Cancelled, kBudget -> ResourceExhausted.
/// `what` names the interrupted operation for the message ("cwsc", "exact").
Status TripStatus(TripKind kind, const char* what);

class RunContext {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unlimited context: never trips (until limits are set or RequestCancel
  /// is called).
  RunContext() = default;

  // Not copyable/movable: solvers hold `const RunContext*` and the owner
  // keeps it alive for the duration of the call; atomics pin the address.
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  /// Process-wide shared unlimited context (the default for every solver).
  static const RunContext& Unlimited();

  // --- setup (call before handing the context to a solver) ---------------

  /// Trips with kDeadline once `Clock::now()` passes now + duration.
  template <class Rep, class Period>
  void SetDeadline(std::chrono::duration<Rep, Period> duration) {
    SetDeadlineAt(Clock::now() +
                  std::chrono::duration_cast<Clock::duration>(duration));
  }
  void SetDeadlineAt(Clock::time_point when);

  /// Trips with kBudget after `n` engine element-recounts (one unit per
  /// element visited while recomputing a set's marginal benefit).
  void SetRecountBudget(std::uint64_t n);

  /// Trips with kBudget after `n` node expansions (branch-and-bound nodes,
  /// lattice children, enumerated patterns).
  void SetNodeBudget(std::uint64_t n);

  /// Test-only: trips with kCancel on the (n+1)-th Check() call. n = 0
  /// trips the very first check, simulating cancellation before any work.
  void FailAfter(std::uint64_t n);

  /// Test-only: each Check() trips with kCancel with probability `p`,
  /// decided by a deterministic hash of (seed, check index) so runs are
  /// reproducible for a fixed seed on a single thread.
  void FailWithProbability(double p, std::uint64_t seed);

  // --- runtime (safe from any thread) ------------------------------------

  /// Requests cooperative cancellation. Async-signal-safe (plain atomic
  /// stores), so it may be called from a SIGINT handler.
  void RequestCancel();

  /// True once any limit is configured (or cancel requested). Unlimited
  /// contexts stay on this single-load fast path forever.
  bool limited() const { return limited_.load(std::memory_order_relaxed); }

  /// Evaluates all interruption sources; returns the sticky first trip, or
  /// kNone. Cheap when !limited().
  TripKind Check() const;

  /// Charges `n` element recounts against the recount budget, then behaves
  /// like Check(). Call from metered engine loops.
  TripKind ChargeRecounts(std::uint64_t n) const;

  /// Charges `n` node expansions against the node budget, then behaves like
  /// Check(). Call from search / enumeration loops.
  TripKind ChargeNodes(std::uint64_t n) const;

  /// The sticky trip recorded so far, without re-evaluating any source.
  TripKind tripped() const {
    return static_cast<TripKind>(tripped_.load(std::memory_order_acquire));
  }

 private:
  static constexpr std::int64_t kNoBudget =
      std::numeric_limits<std::int64_t>::max();

  // Records `kind` as the first trip if none is set yet; returns the winner.
  TripKind Trip(TripKind kind) const;
  TripKind Evaluate() const;

  std::atomic<bool> limited_{false};
  std::atomic<bool> cancel_{false};
  std::atomic<bool> has_deadline_{false};
  // Deadline as nanoseconds since the steady clock's epoch (time_point is
  // not atomic-friendly).
  std::atomic<std::int64_t> deadline_ns_{0};
  // Remaining budgets; fetch_sub below zero means "tripped". kNoBudget means
  // the budget is not configured.
  mutable std::atomic<std::int64_t> recounts_left_{kNoBudget};
  mutable std::atomic<std::int64_t> nodes_left_{kNoBudget};
  // Fault injection: checks_ counts Check() calls; fail_after_ is the count
  // after which checks trip (kNoFail = disabled).
  static constexpr std::int64_t kNoFail =
      std::numeric_limits<std::int64_t>::max();
  mutable std::atomic<std::int64_t> checks_{0};
  std::atomic<std::int64_t> fail_after_{kNoFail};
  std::atomic<std::uint64_t> fail_prob_bits_{0};  // 0 = disabled
  std::atomic<std::uint64_t> fail_seed_{0};
  // Sticky first trip (TripKind as raw byte); 0 = none.
  mutable std::atomic<unsigned char> tripped_{0};
};

}  // namespace scwsc

#endif  // SCWSC_COMMON_RUN_CONTEXT_H_
