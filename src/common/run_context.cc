#include "src/common/run_context.h"

#include <string>

namespace scwsc {
namespace {

// splitmix64 (Steele et al.): a cheap, well-mixed 64-bit hash used for the
// probabilistic fault-injection decision. Deterministic in (seed, index).
std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* TripKindToString(TripKind kind) {
  switch (kind) {
    case TripKind::kNone:
      return "none";
    case TripKind::kDeadline:
      return "deadline";
    case TripKind::kCancel:
      return "cancel";
    case TripKind::kBudget:
      return "budget";
  }
  return "unknown";
}

Status TripStatus(TripKind kind, const char* what) {
  std::string msg(what);
  switch (kind) {
    case TripKind::kDeadline:
      return Status::DeadlineExceeded(msg + ": deadline exceeded");
    case TripKind::kCancel:
      return Status::Cancelled(msg + ": cancelled");
    case TripKind::kBudget:
      return Status::ResourceExhausted(msg + ": work budget exhausted");
    case TripKind::kNone:
      break;
  }
  return Status::Internal(msg + ": TripStatus called with TripKind::kNone");
}

const RunContext& RunContext::Unlimited() {
  static const RunContext* const kUnlimited = new RunContext();
  return *kUnlimited;
}

void RunContext::SetDeadlineAt(Clock::time_point when) {
  deadline_ns_.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          when.time_since_epoch())
          .count(),
      std::memory_order_relaxed);
  has_deadline_.store(true, std::memory_order_relaxed);
  limited_.store(true, std::memory_order_release);
}

void RunContext::SetRecountBudget(std::uint64_t n) {
  recounts_left_.store(
      n >= static_cast<std::uint64_t>(kNoBudget)
          ? kNoBudget
          : static_cast<std::int64_t>(n),
      std::memory_order_relaxed);
  limited_.store(true, std::memory_order_release);
}

void RunContext::SetNodeBudget(std::uint64_t n) {
  nodes_left_.store(n >= static_cast<std::uint64_t>(kNoBudget)
                        ? kNoBudget
                        : static_cast<std::int64_t>(n),
                    std::memory_order_relaxed);
  limited_.store(true, std::memory_order_release);
}

void RunContext::FailAfter(std::uint64_t n) {
  fail_after_.store(n >= static_cast<std::uint64_t>(kNoFail)
                        ? kNoFail
                        : static_cast<std::int64_t>(n),
                    std::memory_order_relaxed);
  limited_.store(true, std::memory_order_release);
}

void RunContext::FailWithProbability(double p, std::uint64_t seed) {
  // Store p as a threshold on a uniform 64-bit hash: trip iff hash < p*2^64.
  std::uint64_t threshold = 0;
  if (p >= 1.0) {
    threshold = std::numeric_limits<std::uint64_t>::max();
  } else if (p > 0.0) {
    threshold = static_cast<std::uint64_t>(
        p * 18446744073709551616.0 /* 2^64 */);
  }
  fail_seed_.store(seed, std::memory_order_relaxed);
  fail_prob_bits_.store(threshold, std::memory_order_relaxed);
  limited_.store(true, std::memory_order_release);
}

void RunContext::RequestCancel() {
  // Plain lock-free stores only: callable from a signal handler.
  cancel_.store(true, std::memory_order_relaxed);
  limited_.store(true, std::memory_order_release);
}

TripKind RunContext::Trip(TripKind kind) const {
  unsigned char expected = 0;
  unsigned char desired = static_cast<unsigned char>(kind);
  if (tripped_.compare_exchange_strong(expected, desired,
                                       std::memory_order_acq_rel)) {
    return kind;
  }
  return static_cast<TripKind>(expected);  // an earlier trip won the race
}

TripKind RunContext::Evaluate() const {
  // Fault injection first so tests can deterministically pre-empt real
  // sources. Both flavours count Check() calls through checks_.
  const std::int64_t fail_after = fail_after_.load(std::memory_order_relaxed);
  const std::uint64_t prob = fail_prob_bits_.load(std::memory_order_relaxed);
  if (fail_after != kNoFail || prob != 0) {
    const std::int64_t idx = checks_.fetch_add(1, std::memory_order_relaxed);
    if (fail_after != kNoFail && idx >= fail_after) {
      return Trip(TripKind::kCancel);
    }
    if (prob != 0) {
      const std::uint64_t seed = fail_seed_.load(std::memory_order_relaxed);
      if (SplitMix64(seed ^ static_cast<std::uint64_t>(idx)) < prob) {
        return Trip(TripKind::kCancel);
      }
    }
  }
  if (cancel_.load(std::memory_order_relaxed)) {
    return Trip(TripKind::kCancel);
  }
  if (has_deadline_.load(std::memory_order_relaxed)) {
    const std::int64_t now_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now().time_since_epoch())
            .count();
    if (now_ns >= deadline_ns_.load(std::memory_order_relaxed)) {
      return Trip(TripKind::kDeadline);
    }
  }
  return TripKind::kNone;
}

TripKind RunContext::Check() const {
  if (!limited()) return TripKind::kNone;
  const TripKind prior = tripped();
  if (prior != TripKind::kNone) return prior;
  return Evaluate();
}

TripKind RunContext::ChargeRecounts(std::uint64_t n) const {
  if (!limited()) return TripKind::kNone;
  const TripKind prior = tripped();
  if (prior != TripKind::kNone) return prior;
  if (recounts_left_.load(std::memory_order_relaxed) != kNoBudget) {
    const std::int64_t left = recounts_left_.fetch_sub(
        static_cast<std::int64_t>(n), std::memory_order_relaxed);
    if (left < static_cast<std::int64_t>(n)) {
      return Trip(TripKind::kBudget);
    }
  }
  return Evaluate();
}

TripKind RunContext::ChargeNodes(std::uint64_t n) const {
  if (!limited()) return TripKind::kNone;
  const TripKind prior = tripped();
  if (prior != TripKind::kNone) return prior;
  if (nodes_left_.load(std::memory_order_relaxed) != kNoBudget) {
    const std::int64_t left = nodes_left_.fetch_sub(
        static_cast<std::int64_t>(n), std::memory_order_relaxed);
    if (left < static_cast<std::int64_t>(n)) {
      return Trip(TripKind::kBudget);
    }
  }
  return Evaluate();
}

}  // namespace scwsc
