// FaultPlan: seedable, process-wide fault injection for chaos testing.
//
// PR 2 gave RunContext two test-only hooks (FailAfter / FailWithProbability)
// so timeout paths could be exercised deterministically inside one solver.
// This generalizes that idea to the whole serve path: a FaultPlan names a
// set of *registered injection points* — solver error/throw/slow-down,
// snapshot materialization failure, allocation failure at snapshot build,
// result-cache corruption, ThreadPool task loss — each armed with an
// independent probability, and every decision is a pure function of
// (seed, point, per-point draw index). Replaying the same plan against the
// same single-threaded call sequence reproduces the same fault sequence
// bit-for-bit; under concurrency the per-point *set* of fired draws is
// still deterministic even though threads race for draw indices.
//
// Cost when disabled: no plan is installed by default, and every site
// guards with FaultFires(), whose fast path is a single relaxed atomic
// load of a null pointer. Defining SCWSC_NO_FAULT_INJECTION compiles every
// site down to a constant `false` for builds that want the guarantee
// rather than the measurement.
//
// Ownership: Install() does NOT take ownership — the installer keeps the
// plan alive until Uninstall(). ScopedFaultPlan is the RAII form tests, the
// CLI batch front end and the chaos bench use.

#ifndef SCWSC_COMMON_FAULT_H_
#define SCWSC_COMMON_FAULT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "src/common/result.h"

namespace scwsc {

/// Every place the library can be told to misbehave. Keep in sync with
/// FaultPointToString / FaultPointFromString (the batch JSON spelling).
enum class FaultPoint : int {
  kSolverError = 0,      // registry solve replaced by Status::Internal
  kSolverThrow,          // solver call site throws (scheduler must contain it)
  kSolverDelay,          // solver call site sleeps solver_delay_ms first
  kSnapshotMaterialize,  // lazy set-system view access fails transiently
  kSnapshotAlloc,        // snapshot construction fails as if out of memory
  kResultCacheCorrupt,   // a freshly inserted result entry is bit-flipped
  kPoolTaskLoss,         // ThreadPool::Submit silently drops the task
  kShardWorkerLoss,      // a sharded-engine batch worker drops its shard
                         // (the engine recovers it inline; counts stay exact)
  kCount,                // sentinel; not a point
};

constexpr int kNumFaultPoints = static_cast<int>(FaultPoint::kCount);

/// Stable lowercase name, the spelling the batch JSON `"faults"` object
/// uses ("solver_error", "pool_task_loss", ...).
const char* FaultPointToString(FaultPoint point);

/// Inverse of FaultPointToString; InvalidArgument naming the accepted
/// spellings on an unknown name.
Result<FaultPoint> FaultPointFromString(const std::string& name);

class FaultPlan {
 public:
  /// All probabilities start at zero: an installed-but-empty plan injects
  /// nothing.
  explicit FaultPlan(std::uint64_t seed = 0);

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  /// Arms `point` to fire with probability `p` in [0, 1] per draw.
  void Arm(FaultPoint point, double p);

  /// Milliseconds a fired kSolverDelay sleeps (default 5).
  void set_solver_delay_ms(std::uint64_t ms) {
    solver_delay_ms_.store(ms, std::memory_order_relaxed);
  }
  std::uint64_t solver_delay_ms() const {
    return solver_delay_ms_.load(std::memory_order_relaxed);
  }

  std::uint64_t seed() const { return seed_; }
  double probability(FaultPoint point) const;

  /// One fault decision: hash(seed, point, draw index) < threshold. Each
  /// call consumes one draw index for `point` and counts draws/fires.
  bool ShouldFire(FaultPoint point);

  /// Draws / fires recorded so far for `point` (for reports and gates).
  std::uint64_t draws(FaultPoint point) const;
  std::uint64_t fires(FaultPoint point) const;

  // --- process-wide installation ------------------------------------------

  /// The installed plan, or nullptr (the default). One relaxed load.
  static FaultPlan* Active() {
#ifdef SCWSC_NO_FAULT_INJECTION
    return nullptr;
#else
    return active_.load(std::memory_order_acquire);
#endif
  }

  /// Installs `plan` process-wide (nullptr uninstalls). The caller keeps
  /// ownership and must keep the plan alive until it is uninstalled.
  static void Install(FaultPlan* plan);
  static void Uninstall() { Install(nullptr); }

 private:
  struct PointState {
    std::atomic<std::uint64_t> threshold{0};  // fire iff hash < threshold
    std::atomic<std::uint64_t> draws{0};
    std::atomic<std::uint64_t> fires{0};
  };

  const std::uint64_t seed_;
  std::array<PointState, kNumFaultPoints> points_;
  std::atomic<std::uint64_t> solver_delay_ms_{5};

  static std::atomic<FaultPlan*> active_;
};

/// True when an installed plan fires `point` right now. The one-liner every
/// injection site guards with; compiles to `false` when fault injection is
/// compiled out.
inline bool FaultFires(FaultPoint point) {
#ifdef SCWSC_NO_FAULT_INJECTION
  (void)point;
  return false;
#else
  FaultPlan* plan = FaultPlan::Active();
  return plan != nullptr && plan->ShouldFire(point);
#endif
}

/// RAII installation: installs the owned plan on construction, uninstalls
/// on destruction. Only one plan may be installed at a time (checked).
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(std::uint64_t seed = 0) : plan_(seed) {
    FaultPlan::Install(&plan_);
  }
  ~ScopedFaultPlan() { FaultPlan::Uninstall(); }

  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

  FaultPlan& plan() { return plan_; }

 private:
  FaultPlan plan_;
};

}  // namespace scwsc

#endif  // SCWSC_COMMON_FAULT_H_
