// Deterministic pseudo-random number generation for data synthesis and
// property tests.
//
// All randomness in this library flows through Rng so that every experiment
// and test is reproducible from a single seed. The core generator is
// xoshiro256**, seeded via splitmix64 (the combination recommended by the
// xoshiro authors); distributions (uniform, Zipf, log-normal) are implemented
// here rather than with <random> so results are identical across standard
// library implementations.

#ifndef SCWSC_COMMON_RNG_H_
#define SCWSC_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace scwsc {

/// splitmix64 step; used for seeding and hashing.
std::uint64_t SplitMix64(std::uint64_t& state);

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xC0FFEE);

  /// Uniform 64-bit value.
  std::uint64_t NextU64();

  /// Uniform in [0, bound). bound must be > 0. Uses Lemire rejection to
  /// avoid modulo bias.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double NextGaussian();

  /// Log-normal with the given parameters of the underlying normal.
  double NextLogNormal(double mu, double sigma);

  /// Bernoulli with success probability p.
  bool NextBool(double p);

  /// Fisher-Yates shuffles v in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBounded(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

/// Samples from a Zipf(s) distribution over {0, ..., n-1} using the inverse
/// CDF over precomputed cumulative weights. Exact (no rejection), O(log n)
/// per sample. Skew s = 0 degenerates to uniform.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double skew);

  std::size_t Sample(Rng& rng) const;

  std::size_t domain_size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // normalized cumulative probabilities
};

}  // namespace scwsc

#endif  // SCWSC_COMMON_RNG_H_
