#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace scwsc {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

void VLog(LogLevel level, const char* file, int line, const char* fmt,
          va_list args) {
  std::fprintf(stderr, "[%s %s:%d] ", LevelName(level), Basename(file), line);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void LogMessage(LogLevel level, const char* file, int line, const char* fmt,
                ...) {
  if (static_cast<int>(level) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  va_list args;
  va_start(args, fmt);
  VLog(level, file, line, fmt, args);
  va_end(args);
}

void LogFatal(const char* file, int line, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::fprintf(stderr, "[FATAL %s:%d] ", Basename(file), line);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
  va_end(args);
  std::abort();
}

}  // namespace scwsc
