#include "src/common/logging.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

namespace scwsc {
namespace {

/// Parses SCWSC_LOG_LEVEL (debug/info/warn/error, case-sensitive lowercase,
/// or a bare digit 0-3). Unset or unparsable keeps the kInfo default;
/// SetLogLevel still overrides at runtime.
int InitialLevel() {
  const char* env = std::getenv("SCWSC_LOG_LEVEL");
  if (env == nullptr || env[0] == '\0') {
    return static_cast<int>(LogLevel::kInfo);
  }
  if (std::strcmp(env, "debug") == 0) return static_cast<int>(LogLevel::kDebug);
  if (std::strcmp(env, "info") == 0) return static_cast<int>(LogLevel::kInfo);
  if (std::strcmp(env, "warn") == 0) return static_cast<int>(LogLevel::kWarn);
  if (std::strcmp(env, "error") == 0) return static_cast<int>(LogLevel::kError);
  if (env[0] >= '0' && env[0] <= '3' && env[1] == '\0') return env[0] - '0';
  return static_cast<int>(LogLevel::kInfo);
}

std::atomic<int> g_min_level{InitialLevel()};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

/// Formats the current wall clock as ISO-8601 UTC with millisecond
/// precision, e.g. "2015-04-13T09:26:53.123Z". `out` must hold >= 25 bytes.
void FormatTimestamp(char* out, std::size_t size) {
  std::timespec ts{};
  std::timespec_get(&ts, TIME_UTC);
  std::tm tm{};
  gmtime_r(&ts.tv_sec, &tm);
  char date[20];
  std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%S", &tm);
  const int millis = static_cast<int>(ts.tv_nsec / 1'000'000) % 1000;
  std::snprintf(out, size, "%s.%03dZ", date, millis);
}

/// A short stable id for the calling thread (hash of std::thread::id).
unsigned long ThreadTag() {
  return static_cast<unsigned long>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % 100000);
}

void VLog(LogLevel level, const char* file, int line, const char* fmt,
          va_list args) {
  char stamp[32];
  FormatTimestamp(stamp, sizeof(stamp));
  std::fprintf(stderr, "[%s %s t%05lu %s:%d] ", stamp, LevelName(level),
               ThreadTag(), Basename(file), line);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}

// --- Warn rate limiting ----------------------------------------------------
// One token bucket per warn call site (file pointer + line; __FILE__
// literals are stable addresses). The warn path is not hot — a global mutex
// around the site map is fine, and a chaos storm hammering one site pays
// one short critical section per suppressed message instead of a stderr
// write.

constexpr double kWarnBurst = 10.0;
constexpr double kWarnTokensPerSecond = 5.0;

struct WarnSite {
  double tokens = kWarnBurst;
  std::chrono::steady_clock::time_point last_refill;
  std::uint64_t suppressed_since_emit = 0;
};

std::mutex g_warn_sites_mu;
std::map<std::pair<const char*, int>, WarnSite>& WarnSites() {
  static auto* sites = new std::map<std::pair<const char*, int>, WarnSite>();
  return *sites;
}
std::atomic<std::uint64_t> g_suppressed_total{0};

/// Returns whether the warning at (file, line) may be emitted now; when it
/// may and earlier messages from the site were suppressed, their count is
/// returned via `suppressed_before` (and reset) so the caller can say so.
bool AdmitWarn(const char* file, int line, std::uint64_t* suppressed_before) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(g_warn_sites_mu);
  auto [it, inserted] = WarnSites().try_emplace(std::make_pair(file, line));
  WarnSite& site = it->second;
  if (inserted) {
    site.last_refill = now;
  } else {
    const double elapsed =
        std::chrono::duration<double>(now - site.last_refill).count();
    site.tokens = std::min(kWarnBurst,
                           site.tokens + elapsed * kWarnTokensPerSecond);
    site.last_refill = now;
  }
  if (site.tokens < 1.0) {
    ++site.suppressed_since_emit;
    g_suppressed_total.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  site.tokens -= 1.0;
  *suppressed_before = site.suppressed_since_emit;
  site.suppressed_since_emit = 0;
  return true;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void LogMessage(LogLevel level, const char* file, int line, const char* fmt,
                ...) {
  if (static_cast<int>(level) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::uint64_t suppressed_before = 0;
  if (level == LogLevel::kWarn &&
      !AdmitWarn(file, line, &suppressed_before)) {
    return;
  }
  va_list args;
  va_start(args, fmt);
  VLog(level, file, line, fmt, args);
  va_end(args);
  if (suppressed_before > 0) {
    char stamp[32];
    FormatTimestamp(stamp, sizeof(stamp));
    std::fprintf(stderr,
                 "[%s WARN t%05lu %s:%d] (rate limit: %llu similar warnings"
                 " suppressed)\n",
                 stamp, ThreadTag(), Basename(file), line,
                 static_cast<unsigned long long>(suppressed_before));
  }
}

std::uint64_t LogSuppressedCount() {
  return g_suppressed_total.load(std::memory_order_relaxed);
}

void LogFatal(const char* file, int line, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char stamp[32];
  FormatTimestamp(stamp, sizeof(stamp));
  std::fprintf(stderr, "[%s FATAL t%05lu %s:%d] ", stamp, ThreadTag(),
               Basename(file), line);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
  va_end(args);
  std::abort();
}

}  // namespace scwsc
