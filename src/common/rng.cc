#include "src/common/rng.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace scwsc {

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

std::uint64_t Rng::NextU64() {
  // xoshiro256**
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  SCWSC_DCHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  SCWSC_DCHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  // Box-Muller; u must be in (0,1].
  double u = 1.0 - NextDouble();
  double v = NextDouble();
  return std::sqrt(-2.0 * std::log(u)) * std::cos(2.0 * M_PI * v);
}

double Rng::NextLogNormal(double mu, double sigma) {
  return std::exp(mu + sigma * NextGaussian());
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

ZipfSampler::ZipfSampler(std::size_t n, double skew) {
  SCWSC_CHECK(n > 0, "ZipfSampler needs a non-empty domain");
  cdf_.resize(n);
  double total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace scwsc
