// ThreadPool: a small fixed-size worker pool for deterministic data-parallel
// scans and asynchronous task submission.
//
// Two primitives share one FIFO queue of workers:
//
//   - ParallelFor: "evaluate f over the index range [0, n) in chunks, with
//     every chunk writing to its own output slots" — candidate
//     marginal-benefit re-evaluation, posting-list refiltering. That shape is
//     deterministic by construction: chunk boundaries depend only on n and
//     the chunk size, never on scheduling, so a 1-thread and an N-thread run
//     produce byte-identical results. Each call tracks its own batch, so
//     concurrent ParallelFor calls (and Submit tasks) never wait on each
//     other's work.
//
//   - Submit: fire-and-forget asynchronous tasks, the primitive the serve
//     layer's SolveScheduler dispatches whole solve jobs through. Completion
//     is the caller's business (the scheduler uses promises/futures).
//
// A pool constructed with num_threads <= 1 spawns no threads at all and runs
// every ParallelFor — and every Submit — inline on the calling thread;
// callers can therefore create one unconditionally and let configuration
// decide whether parallelism happens.

#ifndef SCWSC_COMMON_THREAD_POOL_H_
#define SCWSC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/status.h"

namespace scwsc {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (itself clamped to at least 1). A pool of size 1 spawns no workers.
  explicit ThreadPool(unsigned num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains every queued task (Submit and in-flight ParallelFor chunks
  /// alike), then joins the workers.
  ~ThreadPool();

  /// Number of execution lanes (workers, or 1 for the inline pool).
  unsigned size() const { return size_; }

  /// Resolves the num_threads convention (0 = hardware concurrency) without
  /// constructing a pool.
  static unsigned ResolveThreads(unsigned num_threads);

  /// Splits [0, n) into contiguous chunks of at least `min_chunk` indices and
  /// runs fn(chunk_begin, chunk_end) for each, blocking until all chunks are
  /// done. Chunks must be independent: fn may only write state owned by its
  /// own index range. Runs inline when the pool has one lane or n is small.
  ///
  /// An exception escaping fn (on any lane, including the inline path) is
  /// captured and surfaced as Status::Internal carrying the first exception's
  /// what(); the remaining chunks of the batch still run to completion, the
  /// pool stays usable, and no exception ever reaches a worker's top frame.
  Status ParallelFor(std::size_t n, std::size_t min_chunk,
                     const std::function<void(std::size_t, std::size_t)>& fn);

  /// Enqueues one asynchronous task; workers pick tasks up in FIFO order.
  /// On a pool with no workers (size() <= 1) the task runs inline before
  /// Submit returns, so serial configurations stay deterministic. The task
  /// must not throw — wrap fallible work in its own Status plumbing (the
  /// scheduler routes errors through per-job promises).
  ///
  /// Chaos: an installed FaultPlan arming FaultPoint::kPoolTaskLoss makes
  /// Submit silently drop tasks; callers that rely on every task running
  /// must pair Submit with their own liveness recovery (the serve
  /// scheduler's watchdog re-dispatches).
  void Submit(std::function<void()> task);

 private:
  void WorkerLoop();

  unsigned size_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for tasks
  std::deque<std::function<void()>> tasks_;
  bool stopping_ = false;
};

}  // namespace scwsc

#endif  // SCWSC_COMMON_THREAD_POOL_H_
