#include "src/common/fault.h"

#include <limits>

#include "src/common/logging.h"

namespace scwsc {
namespace {

// splitmix64 (Steele et al.), the same mixer RunContext's probabilistic
// fault hook uses: cheap, well distributed, deterministic in its input.
std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t ProbabilityToThreshold(double p) {
  if (p >= 1.0) return std::numeric_limits<std::uint64_t>::max();
  if (p <= 0.0) return 0;
  return static_cast<std::uint64_t>(p * 18446744073709551616.0 /* 2^64 */);
}

constexpr const char* kPointNames[kNumFaultPoints] = {
    "solver_error",         // kSolverError
    "solver_throw",         // kSolverThrow
    "solver_delay",         // kSolverDelay
    "snapshot_materialize", // kSnapshotMaterialize
    "snapshot_alloc",       // kSnapshotAlloc
    "result_cache_corrupt", // kResultCacheCorrupt
    "pool_task_loss",       // kPoolTaskLoss
    "shard_worker_loss",    // kShardWorkerLoss
};

}  // namespace

std::atomic<FaultPlan*> FaultPlan::active_{nullptr};

const char* FaultPointToString(FaultPoint point) {
  const int index = static_cast<int>(point);
  if (index < 0 || index >= kNumFaultPoints) return "unknown";
  return kPointNames[index];
}

Result<FaultPoint> FaultPointFromString(const std::string& name) {
  for (int i = 0; i < kNumFaultPoints; ++i) {
    if (name == kPointNames[i]) return static_cast<FaultPoint>(i);
  }
  std::string accepted;
  for (int i = 0; i < kNumFaultPoints; ++i) {
    if (!accepted.empty()) accepted += ", ";
    accepted += kPointNames[i];
  }
  return Status::InvalidArgument("unknown fault point '" + name +
                                 "'; accepted: " + accepted);
}

FaultPlan::FaultPlan(std::uint64_t seed) : seed_(seed) {}

void FaultPlan::Arm(FaultPoint point, double p) {
  const int index = static_cast<int>(point);
  SCWSC_CHECK(index >= 0 && index < kNumFaultPoints,
              "FaultPlan::Arm: fault point out of range");
  points_[static_cast<std::size_t>(index)].threshold.store(
      ProbabilityToThreshold(p), std::memory_order_relaxed);
}

double FaultPlan::probability(FaultPoint point) const {
  const int index = static_cast<int>(point);
  if (index < 0 || index >= kNumFaultPoints) return 0.0;
  const std::uint64_t threshold =
      points_[static_cast<std::size_t>(index)].threshold.load(
          std::memory_order_relaxed);
  return static_cast<double>(threshold) / 18446744073709551616.0;
}

bool FaultPlan::ShouldFire(FaultPoint point) {
  const int index = static_cast<int>(point);
  if (index < 0 || index >= kNumFaultPoints) return false;
  PointState& state = points_[static_cast<std::size_t>(index)];
  const std::uint64_t threshold =
      state.threshold.load(std::memory_order_relaxed);
  if (threshold == 0) return false;  // disarmed points never count draws
  const std::uint64_t draw =
      state.draws.fetch_add(1, std::memory_order_relaxed);
  // Domain-separate points so arming one point never shifts another's
  // sequence: the decision stream for (seed, point) is fixed.
  const std::uint64_t h =
      SplitMix64(seed_ ^ (static_cast<std::uint64_t>(index) << 56) ^ draw);
  if (h < threshold) {
    state.fires.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

std::uint64_t FaultPlan::draws(FaultPoint point) const {
  const int index = static_cast<int>(point);
  if (index < 0 || index >= kNumFaultPoints) return 0;
  return points_[static_cast<std::size_t>(index)].draws.load(
      std::memory_order_relaxed);
}

std::uint64_t FaultPlan::fires(FaultPoint point) const {
  const int index = static_cast<int>(point);
  if (index < 0 || index >= kNumFaultPoints) return 0;
  return points_[static_cast<std::size_t>(index)].fires.load(
      std::memory_order_relaxed);
}

void FaultPlan::Install(FaultPlan* plan) {
  if (plan != nullptr) {
    FaultPlan* expected = nullptr;
    SCWSC_CHECK(active_.compare_exchange_strong(expected, plan,
                                                std::memory_order_acq_rel),
                "FaultPlan::Install: another plan is already installed");
  } else {
    active_.store(nullptr, std::memory_order_release);
  }
}

}  // namespace scwsc
