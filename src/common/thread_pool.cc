#include "src/common/thread_pool.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/common/fault.h"

namespace scwsc {

unsigned ThreadPool::ResolveThreads(unsigned num_threads) {
  if (num_threads != 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned num_threads)
    : size_(ResolveThreads(num_threads)) {
  if (size_ <= 1) return;
  workers_.reserve(size_);
  for (unsigned t = 0; t < size_; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping with no work left
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  // Chaos hook: a "lost" task is enqueued nowhere and runs never, modeling
  // a wedged or crashed worker. Callers that must survive this (the serve
  // scheduler) pair Submit with a watchdog that re-dispatches; ParallelFor
  // is exempt because its completion accounting would genuinely deadlock.
  if (FaultFires(FaultPoint::kPoolTaskLoss)) return;
  if (workers_.empty()) {  // inline pool: run now, deterministically
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

namespace {

/// Runs fn(begin, end), converting any escaping exception into the error
/// string the batch reports. Returns true on success.
bool RunChunk(const std::function<void(std::size_t, std::size_t)>& fn,
              std::size_t begin, std::size_t end, std::string& error) {
  try {
    fn(begin, end);
    return true;
  } catch (const std::exception& e) {
    error = std::string("ParallelFor task threw: ") + e.what();
  } catch (...) {
    error = "ParallelFor task threw a non-standard exception";
  }
  return false;
}

}  // namespace

Status ThreadPool::ParallelFor(
    std::size_t n, std::size_t min_chunk,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return Status::OK();
  min_chunk = std::max<std::size_t>(min_chunk, 1);
  // Inline when there is nothing to gain: one lane, or too little work to
  // fill two chunks.
  if (size_ <= 1 || n < 2 * min_chunk) {
    std::string error;
    if (!RunChunk(fn, 0, n, error)) return Status::Internal(std::move(error));
    return Status::OK();
  }
  // Aim for a few chunks per lane so uneven chunk costs still balance, but
  // never below min_chunk indices per chunk.
  const std::size_t target_chunks =
      std::min<std::size_t>(static_cast<std::size_t>(size_) * 4,
                            (n + min_chunk - 1) / min_chunk);
  const std::size_t chunk = (n + target_chunks - 1) / target_chunks;

  // Per-call batch bookkeeping: ParallelFor blocks until its own chunks
  // drain, so these locals outlive every task referencing them — and a
  // concurrent Submit task or second ParallelFor never perturbs the wait.
  struct Batch {
    std::mutex mu;
    std::condition_variable done_cv;
    std::size_t remaining = 0;
    std::string first_error;
  } batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t begin = 0; begin < n; begin += chunk) {
      const std::size_t end = std::min(begin + chunk, n);
      tasks_.push_back([&fn, begin, end, &batch] {
        std::string error;
        const bool ok = RunChunk(fn, begin, end, error);
        std::lock_guard<std::mutex> batch_lock(batch.mu);
        if (!ok && batch.first_error.empty()) {
          batch.first_error = std::move(error);
        }
        if (--batch.remaining == 0) batch.done_cv.notify_all();
      });
      ++batch.remaining;
    }
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(batch.mu);
  batch.done_cv.wait(lock, [&batch] { return batch.remaining == 0; });
  if (!batch.first_error.empty()) {
    return Status::Internal(std::move(batch.first_error));
  }
  return Status::OK();
}

}  // namespace scwsc
