#include "src/common/thread_pool.h"

#include <algorithm>

namespace scwsc {

unsigned ThreadPool::ResolveThreads(unsigned num_threads) {
  if (num_threads != 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned num_threads)
    : size_(ResolveThreads(num_threads)) {
  if (size_ <= 1) return;
  workers_.reserve(size_);
  for (unsigned t = 0; t < size_; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping with no work left
      task = std::move(tasks_.back());
      tasks_.pop_back();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

namespace {

/// Runs fn(begin, end), converting any escaping exception into the error
/// string the batch reports. Returns true on success.
bool RunChunk(const std::function<void(std::size_t, std::size_t)>& fn,
              std::size_t begin, std::size_t end, std::string& error) {
  try {
    fn(begin, end);
    return true;
  } catch (const std::exception& e) {
    error = std::string("ParallelFor task threw: ") + e.what();
  } catch (...) {
    error = "ParallelFor task threw a non-standard exception";
  }
  return false;
}

}  // namespace

Status ThreadPool::ParallelFor(
    std::size_t n, std::size_t min_chunk,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return Status::OK();
  min_chunk = std::max<std::size_t>(min_chunk, 1);
  // Inline when there is nothing to gain: one lane, or too little work to
  // fill two chunks.
  if (size_ <= 1 || n < 2 * min_chunk) {
    std::string error;
    if (!RunChunk(fn, 0, n, error)) return Status::Internal(std::move(error));
    return Status::OK();
  }
  // Aim for a few chunks per lane so uneven chunk costs still balance, but
  // never below min_chunk indices per chunk.
  const std::size_t target_chunks =
      std::min<std::size_t>(static_cast<std::size_t>(size_) * 4,
                            (n + min_chunk - 1) / min_chunk);
  const std::size_t chunk = (n + target_chunks - 1) / target_chunks;

  // Shared by the chunk closures; ParallelFor blocks until the whole batch
  // drains, so these locals outlive every task that references them.
  std::string first_error;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t begin = 0; begin < n; begin += chunk) {
      const std::size_t end = std::min(begin + chunk, n);
      tasks_.push_back([this, &fn, begin, end, &first_error] {
        std::string error;
        if (!RunChunk(fn, begin, end, error)) {
          std::lock_guard<std::mutex> error_lock(mu_);
          if (first_error.empty()) first_error = std::move(error);
        }
      });
      ++pending_;
    }
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  if (!first_error.empty()) return Status::Internal(std::move(first_error));
  return Status::OK();
}

}  // namespace scwsc
