#include "src/common/hash.h"

namespace scwsc {

std::uint64_t Fnv1a64(const void* data, std::size_t len) {
  std::uint64_t h = kFnv64Offset;
  HashBytes(data, len, h);
  return h;
}

}  // namespace scwsc
