#include "src/core/greedy_state.h"

#include <limits>

namespace scwsc {

CoverState::CoverState(const SetSystem& system)
    : system_(system), covered_(system.num_elements()) {
  marginal_.reserve(system.num_sets());
  for (const auto& s : system.sets()) marginal_.push_back(s.elements.size());
  system.InvertedIndex();  // force construction up front
}

void CoverState::Reset() {
  covered_.clear();
  marginal_.clear();
  for (const auto& s : system_.sets()) marginal_.push_back(s.elements.size());
}

std::size_t CoverState::Select(SetId id) {
  const auto& inverted = system_.InvertedIndex();
  std::size_t newly = 0;
  for (ElementId e : system_.set(id).elements) {
    if (covered_.set(e)) {
      ++newly;
      for (SetId other : inverted[e]) {
        --marginal_[other];
      }
    }
  }
  return newly;
}

SelectionKey MakeBenefitKey(std::size_t count, double cost, SetId id) {
  return SelectionKey{static_cast<double>(count), count, cost, id};
}

SelectionKey MakeGainKey(std::size_t count, double cost, SetId id) {
  double gain;
  if (cost == 0.0) {
    // Zero-cost sets have unbounded gain; order them among themselves by
    // count via the key's secondary field.
    gain = count > 0 ? std::numeric_limits<double>::infinity() : 0.0;
  } else {
    gain = static_cast<double>(count) / cost;
  }
  return SelectionKey{gain, count, cost, id};
}

}  // namespace scwsc
