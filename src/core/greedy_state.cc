#include "src/core/greedy_state.h"

namespace scwsc {

bool BetterByGain(std::size_t count_a, double cost_a, SetId id_a,
                  std::size_t count_b, double cost_b, SetId id_b) {
  if (BetterGain(count_a, cost_a, count_b, cost_b)) return true;
  if (BetterGain(count_b, cost_b, count_a, cost_a)) return false;
  if (count_a != count_b) return count_a > count_b;
  if (cost_a != cost_b) return cost_a < cost_b;
  return id_a < id_b;
}

bool BetterByBenefit(std::size_t count_a, double cost_a, SetId id_a,
                     std::size_t count_b, double cost_b, SetId id_b) {
  if (count_a != count_b) return count_a > count_b;
  if (cost_a != cost_b) return cost_a < cost_b;
  return id_a < id_b;
}

SelectionKey MakeBenefitKey(std::size_t count, double cost, SetId id) {
  return SelectionKey{SelectionKey::Kind::kBenefit, count, cost, id};
}

SelectionKey MakeGainKey(std::size_t count, double cost, SetId id) {
  return SelectionKey{SelectionKey::Kind::kGain, count, cost, id};
}

}  // namespace scwsc
