#include "src/core/nonoverlap.h"

#include "src/common/bitset.h"
#include "src/core/greedy_state.h"
#include "src/obs/trace.h"

namespace scwsc {

Result<Solution> RunNonOverlappingGreedy(const SetSystem& system,
                                         const NonOverlapOptions& options,
                                         ScanStats* stats) {
  if (options.k == 0) return Status::InvalidArgument("k must be positive");
  if (options.coverage_fraction < 0.0 || options.coverage_fraction > 1.0) {
    return Status::InvalidArgument("coverage_fraction must be in [0, 1]");
  }
  std::size_t rem = SetSystem::CoverageTarget(options.coverage_fraction,
                                              system.num_elements());
  Solution solution;
  if (rem == 0) return solution;

  ScanStats local_stats;
  ScanStats& tally = stats != nullptr ? *stats : local_stats;
  DynamicBitset covered(system.num_elements());
  std::vector<bool> alive(system.num_sets(), true);

  obs::Span span(options.trace, "nonoverlap");
  while (solution.sets.size() < options.k) {
    // Argmax gain among sets fully disjoint from the current coverage.
    // Disjointness is not monotone-decaying in a heap-friendly way (a set
    // flips from eligible to ineligible exactly once, but its key does not
    // change), so a scan with cached invalidation is the simplest sound
    // choice at this module's scale.
    SetId best = kInvalidSet;
    std::size_t best_count = 0;
    for (SetId id = 0; id < system.num_sets(); ++id) {
      if (!alive[id]) continue;
      ++tally.sets_considered;
      const WeightedSet& s = system.set(id);
      if (s.elements.empty()) {
        alive[id] = false;
        continue;
      }
      bool disjoint = true;
      for (ElementId e : s.elements) {
        if (covered.test(e)) {
          disjoint = false;
          break;
        }
      }
      if (!disjoint) {
        alive[id] = false;  // can never become disjoint again
        continue;
      }
      const std::size_t count = s.elements.size();
      bool wins;
      if (best == kInvalidSet) {
        wins = true;
      } else if (options.rule == NonOverlapOptions::Rule::kGain) {
        const double best_cost = system.set(best).cost;
        wins = BetterGain(count, s.cost, best_count, best_cost) ||
               (!BetterGain(best_count, best_cost, count, s.cost) &&
                (count > best_count ||
                 (count == best_count &&
                  (s.cost < best_cost || (s.cost == best_cost && id < best)))));
      } else {
        const double best_cost = system.set(best).cost;
        wins = count > best_count ||
               (count == best_count &&
                (s.cost < best_cost || (s.cost == best_cost && id < best)));
      }
      if (wins) {
        best = id;
        best_count = count;
      }
    }
    if (best == kInvalidSet) {
      if (options.best_effort) {
        solution.covered = covered.count();
        return solution;
      }
      return Status::Infeasible(
          "non-overlapping greedy: no disjoint set extends the selection");
    }
    alive[best] = false;
    const WeightedSet& s = system.set(best);
    for (ElementId e : s.elements) covered.set(e);
    solution.sets.push_back(best);
    solution.total_cost += s.cost;
    rem = s.elements.size() >= rem ? 0 : rem - s.elements.size();
    if (rem == 0) {
      solution.covered = covered.count();
      return solution;
    }
  }
  if (options.best_effort) {
    solution.covered = covered.count();
    return solution;
  }
  return Status::Infeasible(
      "non-overlapping greedy: k sets selected before reaching the target");
}

}  // namespace scwsc
