// Baseline heuristics from prior work, reimplemented for the paper's
// comparisons (§III and §VI-C):
//
//  - greedy partial weighted set cover (optimizes cost + coverage; its
//    solution-size blow-up motivates the paper, Table VI),
//  - greedy partial maximum coverage [10] (optimizes coverage + size; its
//    cost blow-up is measured in §VI-C),
//  - greedy budgeted maximum coverage [11] (optimizes coverage + cost; §III
//    constructs an instance where its coverage is arbitrarily poor even when
//    allowed c·k sets).

#ifndef SCWSC_CORE_BASELINES_H_
#define SCWSC_CORE_BASELINES_H_

#include <cstddef>
#include <limits>

#include "src/common/result.h"
#include "src/core/engine_options.h"
#include "src/core/solution.h"

namespace scwsc {

struct GreedyWscOptions {
  /// Desired coverage fraction ŝ.
  double coverage_fraction = 0.3;
  /// Optional cap on solution size (defaults to unbounded — the point of
  /// the baseline is that it does not limit the number of sets).
  std::size_t max_sets = std::numeric_limits<std::size_t>::max();
  /// Marginal-evaluation strategy (identical output for every config).
  EngineOptions engine;
  /// Deadline / cancellation / work-budget context; nullptr = unlimited.
  /// On a trip the partial selection travels as the error Status payload.
  const RunContext* run_context = nullptr;
  /// Optional trace/metrics session (src/obs); nullptr = observability off.
  /// Propagated into the engine (options.engine.trace) when that is unset.
  obs::TraceSession* trace = nullptr;
};

/// Greedy partial weighted set cover: repeatedly select the set with the
/// highest marginal gain |MBen(s)|/Cost(s) until the coverage target is met.
/// Infeasible when the target cannot be met within max_sets (or at all).
/// `stats` (optional) receives the candidate-evaluation tally.
Result<Solution> RunGreedyWeightedSetCover(const SetSystem& system,
                                           const GreedyWscOptions& options,
                                           ScanStats* stats = nullptr);

struct GreedyMaxCoverageOptions {
  /// Number of sets to select.
  std::size_t k = 10;
  /// Optional early stop once this coverage fraction is reached (1.0 means
  /// "pick all k sets or exhaust positive-benefit sets").
  double stop_coverage_fraction = 1.0;
  /// Marginal-evaluation strategy (identical output for every config).
  EngineOptions engine;
  /// Deadline / cancellation / work-budget context; nullptr = unlimited.
  const RunContext* run_context = nullptr;
  /// Optional trace/metrics session (src/obs); nullptr = observability off.
  obs::TraceSession* trace = nullptr;
};

/// Greedy partial maximum coverage: select up to k sets with the highest
/// marginal benefit, ignoring cost entirely.
/// `stats` (optional) receives the candidate-evaluation tally.
Result<Solution> RunGreedyMaxCoverage(const SetSystem& system,
                                      const GreedyMaxCoverageOptions& options,
                                      ScanStats* stats = nullptr);

struct BudgetedMaxCoverageOptions {
  /// Total cost budget W.
  double budget = 0.0;
  /// Optional cap on the number of selected sets (§III discusses allowing
  /// c·k sets).
  std::size_t max_sets = std::numeric_limits<std::size_t>::max();
  /// Marginal-evaluation strategy (identical output for every config).
  EngineOptions engine;
  /// Deadline / cancellation / work-budget context; nullptr = unlimited.
  const RunContext* run_context = nullptr;
  /// Optional trace/metrics session (src/obs); nullptr = observability off.
  obs::TraceSession* trace = nullptr;
};

/// Greedy budgeted maximum coverage [11]: select by marginal gain among sets
/// whose cost still fits in the remaining budget. Never fails; returns the
/// (possibly low-coverage) selection, which is exactly the §III critique.
/// `stats` (optional) receives the candidate-evaluation tally.
Result<Solution> RunBudgetedMaxCoverage(
    const SetSystem& system, const BudgetedMaxCoverageOptions& options,
    ScanStats* stats = nullptr);

}  // namespace scwsc

#endif  // SCWSC_CORE_BASELINES_H_
