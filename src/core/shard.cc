#include "src/core/shard.h"

#include <algorithm>

namespace scwsc {

std::size_t EffectiveShards(std::size_t n, std::size_t requested,
                            std::size_t min_elements) {
  if (requested <= 1 || n == 0) return 1;
  const std::size_t words = (n + 63) / 64;
  std::size_t max_shards = std::min(requested, words);
  if (min_elements > 0) {
    max_shards = std::min(max_shards, std::max<std::size_t>(1, n / min_elements));
  }
  return std::max<std::size_t>(1, max_shards);
}

std::vector<std::size_t> ShardBounds(std::size_t n, std::size_t num_shards) {
  const std::size_t shards = EffectiveShards(n, num_shards);
  const std::size_t words = (n + 63) / 64;
  std::vector<std::size_t> bounds;
  bounds.reserve(shards + 1);
  bounds.push_back(0);
  for (std::size_t s = 1; s < shards; ++s) {
    // Even split in words, rounded so the remainder spreads over the front
    // shards; interior boundaries land on word edges by construction.
    const std::size_t word_boundary = (words * s) / shards;
    bounds.push_back(word_boundary * 64);
  }
  bounds.push_back(n);
  return bounds;
}

}  // namespace scwsc
