// Constructed and random set-system instances.
//
//  - MakeBudgetedCounterexample reproduces the §III construction showing
//    that the budgeted-max-coverage greedy [11], even when allowed c·k sets,
//    achieves arbitrarily poor coverage relative to an optimal k-set
//    solution.
//  - RandomSetSystem generates reproducible random instances for property
//    tests and micro-benchmarks.

#ifndef SCWSC_CORE_INSTANCES_H_
#define SCWSC_CORE_INSTANCES_H_

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/core/set_system.h"

namespace scwsc {

struct CounterexampleSpec {
  /// Size of each of the k "good" sets (C in §III); the universe has C*k
  /// elements. Must satisfy big_set_size > small_set_multiplier.
  std::size_t big_set_size = 100;  // C
  /// The adversary allows the baseline c*k sets (c in §III, c << C).
  std::size_t small_set_multiplier = 3;  // c
  /// Number of sets in the optimal solution (k in §III).
  std::size_t k = 10;
  /// Also add an all-covering set of very large weight, so that Definition
  /// 1's feasibility requirement holds for our algorithms.
  bool add_universe_set = false;
  double universe_cost = 0.0;  // used when add_universe_set
};

/// Builds the §III instance: elements {0,...,C·k-1}; c·k singleton sets
/// {0},...,{c·k-1} of weight 1; k "block" sets of C consecutive elements,
/// each of weight C+1. An optimal solution picks the k blocks (full
/// coverage, cost k(C+1)); the budgeted greedy prefers the singletons
/// (gain 1 vs C/(C+1) < 1) and covers only c·k elements.
Result<SetSystem> MakeBudgetedCounterexample(const CounterexampleSpec& spec);

struct RandomSystemSpec {
  std::size_t num_elements = 100;
  std::size_t num_sets = 50;
  /// Each set's size is uniform in [1, max_set_size].
  std::size_t max_set_size = 10;
  /// Costs are uniform in [min_cost, max_cost].
  double min_cost = 1.0;
  double max_cost = 100.0;
  /// Force a universe set (cost max_cost) so every instance is feasible.
  bool ensure_universe = true;
  /// Probability that a set's cost is exactly equal to some earlier set's
  /// cost (exercises tie-breaking paths).
  double duplicate_cost_probability = 0.0;
};

/// Generates a reproducible random weighted set system.
Result<SetSystem> RandomSetSystem(const RandomSystemSpec& spec, Rng& rng);

}  // namespace scwsc

#endif  // SCWSC_CORE_INSTANCES_H_
