// Instance-specific accuracy estimate for set covers, after Prolubnikov
// (arXiv 1811.04037): instead of quoting the worst-case H_n bound, certify
// the solution actually produced on the instance actually solved.
//
// Replay the selection order and price each newly covered element at
// cost(S_t) / |newly covered by S_t| — the classic dual-fitting prices.
// The selection's total cost equals the sum of all prices. For any set S,
// gamma(S) = (sum of prices of S's elements) / cost(S) measures how far the
// prices overshoot the dual constraint sum_{e in S} y_e <= cost(S);
// dividing every price by gamma = max_S gamma(S) makes them dual feasible,
// so by LP weak duality
//
//   cost(selection) = sum of prices <= gamma * OPT
//
// where OPT is the cheapest cover of the same elements. The argument only
// needs the selection order, not greediness, so the estimate is valid for
// every set-backed solver in the registry. gamma is often far below the
// worst-case logarithmic bound — that gap is the point of exporting it as
// telemetry next to latency.

#ifndef SCWSC_CORE_ACCURACY_H_
#define SCWSC_CORE_ACCURACY_H_

#include <vector>

#include "src/core/set_system.h"

namespace scwsc {

/// The certified approximation ratio gamma (>= 1) for covering the elements
/// the selection covers, or 0.0 when no estimate applies (empty selection,
/// or no priced element touches a positive-cost set). Sets with cost <= 0
/// are skipped in the maximization: a zero-cost set admits no finite price
/// scaling, and charging OPT for free sets would be meaningless anyway.
/// O(total set sizes) time, O(num_elements) space.
double EstimateAccuracyRatio(const SetSystem& system,
                             const std::vector<SetId>& selection_order);

}  // namespace scwsc

#endif  // SCWSC_CORE_ACCURACY_H_
