#include "src/core/cwsc.h"

#include "src/core/benefit_engine.h"
#include "src/core/greedy_state.h"
#include "src/obs/trace.h"

namespace scwsc {
namespace {

/// The engine inherits the solver's trace session unless the caller wired
/// its own.
EngineOptions EngineWithTrace(const CwscOptions& options) {
  EngineOptions engine = options.engine;
  if (engine.trace == nullptr) engine.trace = options.trace;
  return engine;
}

/// Fig. 2 line 06 by exhaustive scan: argmax gain over unselected sets with
/// |MBen| * i >= rem, under the shared selection order. Used by the eager
/// engine, whose marginal reads are O(1).
Result<Solution> RunCwscEager(const SetSystem& system,
                              const CwscOptions& options, std::size_t rem,
                              const RunContext& ctx, ScanStats& stats) {
  BenefitEngine engine(system, EngineWithTrace(options), &ctx);
  DynamicBitset selected(system.num_sets() == 0 ? 1 : system.num_sets());
  Solution solution;

  obs::Span select_span(options.trace, "cwsc.select");
  for (std::size_t i = options.k; i >= 1; --i) {
    if (const TripKind trip = ctx.Check(); trip != TripKind::kNone) {
      return InterruptedStatus(trip, "cwsc", std::move(solution));
    }
    SetId best = kInvalidSet;
    std::size_t best_count = 0;
    for (SetId id = 0; id < system.num_sets(); ++id) {
      if (selected.test(id)) continue;
      ++stats.sets_considered;
      const std::size_t count = engine.MarginalCount(id);
      if (count == 0 || count * i < rem) continue;
      if (best == kInvalidSet ||
          BetterByGain(count, system.set(id).cost, id, best_count,
                       system.set(best).cost, best)) {
        best = id;
        best_count = count;
      }
    }
    if (best == kInvalidSet) {
      return Status::Infeasible(
          "CWSC: no set with marginal benefit >= rem/i (Fig. 2 line 07)");
    }

    selected.set(best);
    const std::size_t newly = engine.Select(best);
    select_span.Event("pick");
    solution.sets.push_back(best);
    solution.total_cost += system.set(best).cost;
    solution.covered = engine.covered_count();
    rem = newly >= rem ? 0 : rem - newly;
    if (rem == 0) return solution;
  }

  // The loop ran k iterations without reaching the target: with exact
  // integer thresholds this cannot happen (each pick covers >= ceil(rem/i)),
  // so reaching here indicates an internal error.
  return Status::Internal("CWSC exhausted k picks without meeting coverage");
}

/// Fig. 2 line 06 by lazy (CELF) selection: one gain-ordered heap across all
/// iterations. Each iteration pops until the first *fresh* key that meets
/// the threshold |MBen| * i >= rem — every entry still queued has a current
/// key no better (heap order plus monotone decay), so that key is the
/// qualified argmax. Fresh-but-unqualified pops are parked and re-pushed for
/// later iterations: the threshold rem/i is not monotone across iterations
/// (a large pick can lower it), so a set rejected now may qualify later.
/// Zero-marginal sets are dropped permanently (counts never grow).
Result<Solution> RunCwscLazy(const SetSystem& system,
                             const CwscOptions& options, std::size_t rem,
                             const RunContext& ctx, ScanStats& stats) {
  BenefitEngine engine(system, EngineWithTrace(options), &ctx);
  Solution solution;

  LazySelector selector;
  {
    // Seed in one deterministic batch (chunk- or shard-parallel under the
    // engine's options) instead of one-at-a-time reads. At epoch zero every
    // count is the cached set size, so an interruption here only means the
    // context was tripped before we started: seed anyway with the exact
    // cached counts and let the selection loop's Check() surface the trip.
    obs::Span seed_span(options.trace, "cwsc.seed");
    std::vector<SetId> all_ids(system.num_sets());
    for (SetId id = 0; id < system.num_sets(); ++id) all_ids[id] = id;
    std::vector<std::size_t> seed_counts;
    const Status batch = engine.BatchMarginals(all_ids, seed_counts);
    if (!batch.ok() && !batch.IsInterruption()) return batch;
    stats.sets_considered += system.num_sets();
    for (SetId id = 0; id < system.num_sets(); ++id) {
      if (seed_counts[id] > 0) {
        selector.Push(MakeGainKey(seed_counts[id], system.set(id).cost, id));
      }
    }
  }

  std::vector<SelectionKey> parked;
  auto refresh = [&](SetId id) -> std::optional<SelectionKey> {
    ++stats.sets_considered;
    const std::size_t count = engine.MarginalCount(id);
    if (count == 0) return std::nullopt;
    return MakeGainKey(count, system.set(id).cost, id);
  };

  obs::Span select_span(options.trace, "cwsc.select");
  for (std::size_t i = options.k; i >= 1; --i) {
    if (const TripKind trip = ctx.Check(); trip != TripKind::kNone) {
      return InterruptedStatus(trip, "cwsc", std::move(solution));
    }
    parked.clear();
    std::optional<SelectionKey> chosen;
    while (true) {
      auto key = selector.Pop(refresh);
      if (!key.has_value()) break;
      if (key->count * i >= rem) {
        chosen = key;
        break;
      }
      parked.push_back(*key);  // fresh but below this iteration's threshold
    }
    for (const SelectionKey& key : parked) selector.Push(key);
    if (!chosen.has_value()) {
      return Status::Infeasible(
          "CWSC: no set with marginal benefit >= rem/i (Fig. 2 line 07)");
    }

    // The chosen key was popped and is not re-pushed, so the set leaves the
    // candidate pool exactly like the eager path's `selected` mask.
    const std::size_t newly = engine.Select(chosen->id);
    select_span.Event("pick");
    solution.sets.push_back(chosen->id);
    solution.total_cost += system.set(chosen->id).cost;
    solution.covered = engine.covered_count();
    rem = newly >= rem ? 0 : rem - newly;
    if (rem == 0) return solution;
  }

  return Status::Internal("CWSC exhausted k picks without meeting coverage");
}

}  // namespace

Result<Solution> RunCwsc(const SetSystem& system, const CwscOptions& options,
                         ScanStats* stats) {
  if (options.k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  if (options.coverage_fraction < 0.0 || options.coverage_fraction > 1.0) {
    return Status::InvalidArgument("coverage_fraction must be in [0, 1]");
  }

  const std::size_t n = system.num_elements();
  const std::size_t rem = SetSystem::CoverageTarget(options.coverage_fraction, n);
  if (rem == 0) return Solution{};  // nothing to cover

  ScanStats local_stats;
  ScanStats& tally = stats != nullptr ? *stats : local_stats;
  const RunContext& ctx =
      options.run_context ? *options.run_context : RunContext::Unlimited();
  obs::Span span(options.trace, "cwsc");
  Result<Solution> solution =
      options.engine.marginal_mode == MarginalMode::kEager
          ? RunCwscEager(system, options, rem, ctx, tally)
          : RunCwscLazy(system, options, rem, ctx, tally);
  if (options.trace != nullptr) {
    options.trace->metrics()
        .counter("cwsc.sets_considered")
        .Increment(tally.sets_considered);
  }
  return solution;
}

}  // namespace scwsc
