#include "src/core/cwsc.h"

#include "src/core/greedy_state.h"

namespace scwsc {

Result<Solution> RunCwsc(const SetSystem& system, const CwscOptions& options) {
  if (options.k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  if (options.coverage_fraction < 0.0 || options.coverage_fraction > 1.0) {
    return Status::InvalidArgument("coverage_fraction must be in [0, 1]");
  }

  const std::size_t n = system.num_elements();
  std::size_t rem = SetSystem::CoverageTarget(options.coverage_fraction, n);

  Solution solution;
  if (rem == 0) return solution;  // nothing to cover

  CoverState state(system);
  DynamicBitset selected(system.num_sets() == 0 ? 1 : system.num_sets());

  for (std::size_t i = options.k; i >= 1; --i) {
    // Fig. 2 line 06: argmax MGain over sets with |MBen| >= rem / i. The
    // threshold is evaluated exactly in integers: |MBen| * i >= rem.
    SetId best = kInvalidSet;
    std::size_t best_count = 0;
    for (SetId id = 0; id < system.num_sets(); ++id) {
      if (selected.test(id)) continue;
      const std::size_t count = state.MarginalCount(id);
      if (count == 0 || count * i < rem) continue;
      const double cost = system.set(id).cost;
      if (best == kInvalidSet ||
          BetterGain(count, cost, best_count, system.set(best).cost)) {
        best = id;
        best_count = count;
      } else if (!BetterGain(best_count, system.set(best).cost, count, cost)) {
        // Equal gain: break ties by higher marginal benefit, then lower
        // cost, then lower set id (ids are canonical pattern order in the
        // patterned case, making opt/unopt runs comparable).
        const double best_cost = system.set(best).cost;
        if (count > best_count ||
            (count == best_count && (cost < best_cost || (cost == best_cost &&
                                                          id < best)))) {
          best = id;
          best_count = count;
        }
      }
    }
    if (best == kInvalidSet) {
      return Status::Infeasible(
          "CWSC: no set with marginal benefit >= rem/i (Fig. 2 line 07)");
    }

    selected.set(best);
    const std::size_t newly = state.Select(best);
    solution.sets.push_back(best);
    solution.total_cost += system.set(best).cost;
    solution.covered = state.covered_count();
    rem = newly >= rem ? 0 : rem - newly;
    if (rem == 0) return solution;
  }

  // The loop ran k iterations without reaching the target: with exact
  // integer thresholds this cannot happen (each pick covers >= ceil(rem/i)),
  // so reaching here indicates an internal error.
  return Status::Internal("CWSC exhausted k picks without meeting coverage");
}

}  // namespace scwsc
