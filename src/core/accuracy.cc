#include "src/core/accuracy.h"

#include <algorithm>

namespace scwsc {

double EstimateAccuracyRatio(const SetSystem& system,
                             const std::vector<SetId>& selection_order) {
  if (selection_order.empty()) return 0.0;
  const std::size_t n = system.num_elements();
  std::vector<double> price(n, 0.0);
  std::vector<char> covered(n, 0);

  // Dual-fitting prices: each element is charged when first covered, at the
  // covering set's cost split across everything it newly covers.
  for (const SetId id : selection_order) {
    if (id >= system.num_sets()) continue;  // defensive: foreign id
    const WeightedSet& s = system.set(id);
    std::size_t newly = 0;
    for (const ElementId e : s.elements) {
      if (e < n && covered[e] == 0) ++newly;
    }
    if (newly == 0) continue;
    const double per_element = s.cost / static_cast<double>(newly);
    for (const ElementId e : s.elements) {
      if (e < n && covered[e] == 0) {
        covered[e] = 1;
        price[e] = per_element;
      }
    }
  }

  // gamma = the largest factor by which any positive-cost set's price mass
  // overshoots its cost; scaling prices down by gamma is dual feasible.
  double gamma = 0.0;
  bool any_priced = false;
  for (SetId id = 0; id < system.num_sets(); ++id) {
    const WeightedSet& s = system.set(id);
    if (!(s.cost > 0.0)) continue;
    double mass = 0.0;
    for (const ElementId e : s.elements) {
      if (e < n) mass += price[e];
    }
    if (mass > 0.0) any_priced = true;
    gamma = std::max(gamma, mass / s.cost);
  }
  if (!any_priced) return 0.0;
  return std::max(gamma, 1.0);
}

}  // namespace scwsc
