// CMC — Cheap Max Coverage (paper Fig. 1, §V-A).
//
// CMC guesses the optimal cost B (starting at the sum of the k cheapest
// sets, growing geometrically by 1+b), partitions the sets at or below B
// into cost levels, and greedily max-covers level by level with a per-level
// pick allowance. With the original levels (epsilon = 0) it selects at most
// 5k sets; with the merged-level variant (§V-A3, epsilon > 0) at most
// (1+epsilon)k sets. The generalized variant (§V-A2 closing paragraph) uses
// geometric base (1+l) instead of 2.
//
// Guarantees (Theorems 4/5): coverage at least (1 - 1/e)·ŝ·|T| and cost at
// most (1+b)(2·log k + 1)·OPT, resp. O(((1+b)/ε)·log k·OPT).

#ifndef SCWSC_CORE_CMC_H_
#define SCWSC_CORE_CMC_H_

#include <vector>

#include "src/common/result.h"
#include "src/core/engine_options.h"
#include "src/core/solution.h"

namespace scwsc {

struct CmcOptions {
  /// Maximum solution size the caller asked for (k in the paper). The
  /// algorithm may use up to 5k sets (epsilon = 0) or (1+epsilon)k sets.
  std::size_t k = 10;
  /// Desired coverage fraction ŝ in [0, 1].
  double coverage_fraction = 0.3;
  /// Budget growth factor: B is multiplied by (1 + b) each round.
  double b = 1.0;
  /// 0 = original Fig. 1 level structure (up to 5k sets);
  /// > 0 = merged levels targeting at most (1 + epsilon)k sets (§V-A3).
  double epsilon = 0.0;
  /// Generalized level base 1+l (§V-A2): l = 1 reproduces powers of two.
  unsigned l = 1;
  /// Fig. 1 line 06 targets only (1 - 1/e)·ŝ·|T| elements, matching the
  /// greedy max-coverage guarantee. Set false to target the full ŝ·|T|
  /// (still sound: the budget keeps growing until the universe set fits).
  bool relax_coverage = true;
  /// Safety valve on the number of budget-doubling rounds.
  std::size_t max_budget_rounds = 256;
  /// Marginal-evaluation strategy (lazy/bitset fast path by default; every
  /// configuration returns the identical solution).
  EngineOptions engine;
  /// Deadline / cancellation / work-budget context; nullptr = unlimited.
  /// On a trip the solver returns the matching error Status carrying a
  /// partial CmcResult payload: the in-progress round's solution (or the
  /// last completed round's, for a trip between rounds) with
  /// provenance.budget_level = the budget B being explored.
  const RunContext* run_context = nullptr;
  /// Optional trace/metrics session (src/obs); nullptr = observability off.
  /// Propagated into the engine (options.engine.trace) when that is unset.
  obs::TraceSession* trace = nullptr;
};

/// One CMC cost level: sets with Cost in (lo, hi] — except the cheapest
/// level, which is closed at zero ([0, hi]) so zero-cost sets are usable —
/// from which at most `capacity` sets may be chosen.
struct CostLevel {
  double lo = 0.0;
  double hi = 0.0;
  std::size_t capacity = 0;
  bool closed_at_lo = false;  // true only for the cheapest level
};

/// Builds the level structure for budget B (Fig. 1 lines 07-10, or the
/// merged variant when epsilon > 0, with geometric base 1+l). Levels are
/// ordered from most expensive (index 0) to cheapest, partitioning [0, B].
std::vector<CostLevel> BuildCmcLevels(double budget, std::size_t k,
                                      double epsilon, unsigned l);

/// Index into `levels` of the level containing `cost`, or -1 when cost
/// exceeds the budget (levels[0].hi).
int LevelOf(const std::vector<CostLevel>& levels, double cost);

/// Maximum number of sets a CMC run with these options may select
/// (Σ level capacities): 5k - 2 for epsilon = 0, at most (1+epsilon)k
/// otherwise.
std::size_t CmcMaxSelectable(std::size_t k, double epsilon, unsigned l);

/// The coverage target a CMC-family run aims for: the least integer
/// reaching (1 - 1/e)·fraction·n when `relax` is set (Fig. 1 line 06),
/// fraction·n otherwise. Shared by every CMC variant (generic, literal,
/// lattice-optimized, hierarchical) so they chase the same bar.
std::size_t CmcCoverageTarget(double fraction, std::size_t n, bool relax);

/// The initial budget of the Fig. 1 schedule: the cost of the k cheapest
/// sets, bumped to the smallest positive cost when that sum is zero (so a
/// geometric schedule can grow). Shared by RunCmc and RunCmcLiteral so the
/// two explore identical budget sequences.
double CmcInitialBudget(const SetSystem& system, std::size_t k);

struct CmcResult {
  Solution solution;
  /// Number of budget values tried (Fig. 1 repeat rounds).
  std::size_t budget_rounds = 0;
  /// The budget B of the successful round.
  double final_budget = 0.0;
  /// Total candidate evaluations across rounds; in the patterned-unoptimized
  /// setting this is the "patterns considered" series of Fig. 6.
  std::size_t sets_considered = 0;
};

/// Runs CMC. Returns Infeasible when even the final budget round (B >= total
/// cost of all sets) cannot meet the (possibly relaxed) coverage target —
/// impossible when the system contains a universe set.
Result<CmcResult> RunCmc(const SetSystem& system, const CmcOptions& options);

}  // namespace scwsc

#endif  // SCWSC_CORE_CMC_H_
