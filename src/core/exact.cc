#include "src/core/exact.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/bitset.h"
#include "src/core/cwsc.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace scwsc {
namespace {

struct SearchContext {
  const SetSystem& system;
  const std::vector<SetId>& order;        // sets sorted by cost ascending
  const std::vector<std::size_t>& suffix_max_size;
  const ExactOptions& options;
  const RunContext& run_ctx;

  DynamicBitset covered;
  std::vector<SetId> chosen = {};         // original ids, in pick order
  double cost = 0.0;

  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<SetId> best_sets = {};
  bool found = false;

  std::uint64_t nodes = 0;
  bool exhausted = false;
  TripKind trip = TripKind::kNone;

  obs::Span* span = nullptr;                     // "exact.search" when tracing
  obs::MetricCounter* incumbents_metric = nullptr;
};

void Dfs(SearchContext& ctx, std::size_t idx, std::size_t picks_left,
         std::size_t rem) {
  if (ctx.exhausted || ctx.trip != TripKind::kNone) return;
  if (++ctx.nodes > ctx.options.max_nodes) {
    ctx.exhausted = true;
    return;
  }
  // Charging per node keeps a node budget of 1 exact; unlimited contexts
  // skip everything after one relaxed load.
  if (const TripKind t = ctx.run_ctx.ChargeNodes(1); t != TripKind::kNone) {
    ctx.trip = t;
    return;
  }
  if (rem == 0) {
    if (ctx.cost < ctx.best_cost ||
        (ctx.cost == ctx.best_cost &&
         (!ctx.found || ctx.chosen.size() < ctx.best_sets.size()))) {
      ctx.best_cost = ctx.cost;
      ctx.best_sets = ctx.chosen;
      ctx.found = true;
      if (ctx.span != nullptr) ctx.span->Event("incumbent");
      if (ctx.incumbents_metric != nullptr) ctx.incumbents_metric->Increment();
    }
    return;
  }
  if (idx >= ctx.order.size() || picks_left == 0) return;

  const std::size_t max_size = ctx.suffix_max_size[idx];
  if (max_size == 0) return;
  // Even picks_left sets of the largest remaining static size cannot close
  // the gap.
  const std::size_t need_picks = (rem + max_size - 1) / max_size;
  if (need_picks > picks_left) return;
  // Sets are cost-sorted, so every future pick costs at least
  // cost(order[idx]); prune on the implied cost lower bound.
  const double min_extra =
      static_cast<double>(need_picks) * ctx.system.set(ctx.order[idx]).cost;
  if (ctx.cost + min_extra >= ctx.best_cost) return;

  const SetId id = ctx.order[idx];
  const WeightedSet& s = ctx.system.set(id);

  // Branch 1: take this set (builds cheap incumbents early).
  std::vector<ElementId> newly;
  newly.reserve(s.elements.size());
  for (ElementId e : s.elements) {
    if (ctx.covered.set(e)) newly.push_back(e);
  }
  if (!newly.empty()) {  // a set adding nothing can never help
    ctx.chosen.push_back(id);
    ctx.cost += s.cost;
    const std::size_t gained = newly.size();
    Dfs(ctx, idx + 1, picks_left - 1, gained >= rem ? 0 : rem - gained);
    ctx.cost -= s.cost;
    ctx.chosen.pop_back();
  }
  for (ElementId e : newly) ctx.covered.reset(e);

  // Branch 2: skip this set.
  Dfs(ctx, idx + 1, picks_left, rem);
}

}  // namespace

Result<ExactResult> SolveExact(const SetSystem& system,
                               const ExactOptions& options) {
  if (options.k == 0) return Status::InvalidArgument("k must be positive");
  if (options.coverage_fraction < 0.0 || options.coverage_fraction > 1.0) {
    return Status::InvalidArgument("coverage_fraction must be in [0, 1]");
  }
  const std::size_t target =
      SetSystem::CoverageTarget(options.coverage_fraction,
                                system.num_elements());

  ExactResult result;
  if (target == 0) return result;

  // Preprocessing: a set is useless when another set covers a superset of
  // its elements at a cost that is no higher (ties broken towards the
  // earlier id). Pattern systems are full of such dominated sets — every
  // pattern's benefit set is contained in each parent's — so this shrinks
  // the search space dramatically without affecting the optimum.
  std::vector<SetId> order;
  {
    std::vector<SetId> candidates(system.num_sets());
    std::iota(candidates.begin(), candidates.end(), SetId{0});
    // Exact-duplicate elimination first (cheap): keep the cheapest set per
    // distinct element list.
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&](SetId a, SetId b) {
                       const auto& ea = system.set(a).elements;
                       const auto& eb = system.set(b).elements;
                       if (ea != eb) return ea < eb;
                       return system.set(a).cost < system.set(b).cost;
                     });
    std::vector<SetId> unique;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (i == 0 || system.set(candidates[i]).elements !=
                        system.set(candidates[i - 1]).elements) {
        unique.push_back(candidates[i]);
      }
    }
    // Pairwise dominance for modest instance sizes.
    std::vector<bool> dominated(unique.size(), false);
    if (unique.size() <= 4096) {
      for (std::size_t i = 0; i < unique.size(); ++i) {
        if (dominated[i]) continue;
        const WeightedSet& si = system.set(unique[i]);
        for (std::size_t j = 0; j < unique.size(); ++j) {
          if (i == j || dominated[j]) continue;
          const WeightedSet& sj = system.set(unique[j]);
          if (sj.cost <= si.cost && sj.elements.size() >= si.elements.size() &&
              !(sj.cost == si.cost && sj.elements == si.elements) &&
              std::includes(sj.elements.begin(), sj.elements.end(),
                            si.elements.begin(), si.elements.end())) {
            dominated[i] = true;
            break;
          }
        }
      }
    }
    for (std::size_t i = 0; i < unique.size(); ++i) {
      if (!dominated[i]) order.push_back(unique[i]);
    }
  }
  std::stable_sort(order.begin(), order.end(), [&](SetId a, SetId b) {
    return system.set(a).cost < system.set(b).cost;
  });

  std::vector<std::size_t> suffix_max(order.size() + 1, 0);
  for (std::size_t i = order.size(); i-- > 0;) {
    suffix_max[i] =
        std::max(suffix_max[i + 1], system.set(order[i]).elements.size());
  }

  const RunContext& run_ctx =
      options.run_context ? *options.run_context : RunContext::Unlimited();
  SearchContext ctx{.system = system,
                    .order = order,
                    .suffix_max_size = suffix_max,
                    .options = options,
                    .run_ctx = run_ctx,
                    .covered = DynamicBitset(system.num_elements())};

  // Seed the incumbent with the greedy CWSC solution when one exists; it
  // prunes the search dramatically and the final answer can only improve.
  {
    obs::Span seed_span(options.trace, "exact.seed");
    CwscOptions greedy_opts;
    greedy_opts.k = options.k;
    greedy_opts.coverage_fraction = options.coverage_fraction;
    greedy_opts.run_context = options.run_context;
    greedy_opts.trace = options.trace;
    if (auto greedy = RunCwsc(system, greedy_opts); greedy.ok()) {
      ctx.best_cost = greedy->total_cost;
      ctx.best_sets = greedy->sets;
      ctx.found = true;
    }
  }

  obs::Span search_span(options.trace, "exact.search");
  if (options.trace != nullptr) {
    ctx.span = &search_span;
    ctx.incumbents_metric = &options.trace->metrics().counter("exact.incumbents");
  }
  Dfs(ctx, 0, options.k, target);
  search_span.End();
  result.nodes = ctx.nodes;
  if (options.trace != nullptr) {
    options.trace->metrics().counter("exact.nodes").Increment(ctx.nodes);
  }

  auto fill_best = [&](Solution& out) {
    out.sets = ctx.best_sets;
    out.total_cost = ctx.best_cost;
    DynamicBitset covered(system.num_elements());
    for (SetId id : ctx.best_sets) {
      for (ElementId e : system.set(id).elements) covered.set(e);
    }
    out.covered = covered.count();
  };

  if (ctx.trip != TripKind::kNone || ctx.exhausted) {
    // Interrupted (or out of nodes): surrender the incumbent — it is a
    // feasible solution of the full problem whenever one was found, just
    // not proven optimal.
    ExactResult partial;
    partial.nodes = ctx.nodes;
    if (ctx.found) fill_best(partial.solution);
    Provenance& prov = partial.solution.provenance;
    prov.trip = ctx.trip != TripKind::kNone ? ctx.trip : TripKind::kBudget;
    prov.sets_chosen = partial.solution.sets.size();
    prov.coverage_reached = partial.solution.covered;
    const Status status =
        ctx.trip != TripKind::kNone
            ? TripStatus(ctx.trip, "exact")
            : Status::ResourceExhausted("exact solver exceeded max_nodes");
    return status.WithPayload(std::move(partial));
  }
  if (!ctx.found) {
    return Status::Infeasible("no feasible solution with at most k sets");
  }
  fill_best(result.solution);
  return result;
}

}  // namespace scwsc
