#include "src/core/solution.h"

#include <cmath>
#include <unordered_set>

#include "src/common/bitset.h"
#include "src/common/strings.h"

namespace scwsc {

Result<SolutionAudit> AuditSolution(const SetSystem& system,
                                    const Solution& solution) {
  SolutionAudit audit;
  audit.num_sets = solution.sets.size();
  DynamicBitset covered(system.num_elements());
  std::unordered_set<SetId> seen;
  for (SetId id : solution.sets) {
    if (id >= system.num_sets()) {
      return Status::InvalidArgument("solution references unknown set id " +
                                     std::to_string(id));
    }
    if (!seen.insert(id).second) {
      return Status::InvalidArgument("solution contains duplicate set id " +
                                     std::to_string(id));
    }
    const WeightedSet& s = system.set(id);
    audit.total_cost += s.cost;
    for (ElementId e : s.elements) covered.set(e);
  }
  audit.covered = covered.count();
  audit.bookkeeping_consistent =
      audit.covered == solution.covered &&
      std::abs(audit.total_cost - solution.total_cost) <=
          1e-9 * std::max(1.0, std::abs(audit.total_cost));
  return audit;
}

bool SatisfiesConstraints(const SetSystem& system, const Solution& solution,
                          std::size_t k, double coverage_fraction) {
  auto audit = AuditSolution(system, solution);
  if (!audit.ok()) return false;
  const std::size_t target =
      SetSystem::CoverageTarget(coverage_fraction, system.num_elements());
  return audit->num_sets <= k && audit->covered >= target;
}

std::string SolutionToString(const SetSystem& system,
                             const Solution& solution) {
  std::string out = "{";
  for (std::size_t i = 0; i < solution.sets.size(); ++i) {
    if (i) out += ", ";
    const WeightedSet& s = system.set(solution.sets[i]);
    out += s.label.empty() ? "S" + std::to_string(solution.sets[i]) : s.label;
  }
  out += StrFormat("} cost=%s covered=%zu/%zu",
                   FormatNumber(solution.total_cost).c_str(), solution.covered,
                   system.num_elements());
  return out;
}

Status InterruptedStatus(TripKind trip, const char* what, Solution partial,
                         double budget_level) {
  partial.provenance.trip = trip;
  partial.provenance.sets_chosen = partial.sets.size();
  partial.provenance.coverage_reached = partial.covered;
  partial.provenance.budget_level = budget_level;
  return TripStatus(trip, what).WithPayload(std::move(partial));
}

}  // namespace scwsc
