// BenefitEngine: the single marginal-benefit substrate behind every greedy
// solver (CMC, CWSC, the baselines, LP rounding repair).
//
// The engine owns the covered-element state of one greedy run and answers
// |MBen(s, S)| — the number of elements of s not yet covered by the current
// selection S — under the strategy chosen by EngineOptions:
//
//  * eager mode maintains every count by inverted-index decrements at
//    selection time (the seed CoverState behaviour);
//  * lazy mode recomputes a count only when it is read and its cached value
//    predates the current coverage epoch. Coverage only grows and counts
//    only shrink (submodularity), so a cached value is always an upper
//    bound — exactly the invariant CELF/lazy-greedy selection needs.
//
// Membership is stored per set either as the SetSystem's sorted element
// list or as a packed uint64 row (chosen per set by a density heuristic in
// kAuto mode): a recount is then a word-wise AND-NOT popcount against the
// covered words instead of an element-by-element bit-test walk, and a
// selection ORs the row into the covered words.
//
// BatchMarginals re-evaluates a candidate vector in parallel chunks on a
// ThreadPool. Each chunk writes only its own output slots and the cache
// commit happens serially afterwards, so results are bit-identical for any
// thread count.
//
// Every strategy computes the same exact integer counts; with the shared
// selection comparators (greedy_state.h) this makes whole solver runs
// bit-identical across all configurations.

#ifndef SCWSC_CORE_BENEFIT_ENGINE_H_
#define SCWSC_CORE_BENEFIT_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/bitset.h"
#include "src/common/run_context.h"
#include "src/common/thread_pool.h"
#include "src/core/engine_options.h"
#include "src/core/set_system.h"

namespace scwsc {

namespace obs {
class MetricCounter;
}  // namespace obs

class BenefitEngine {
 public:
  /// `run_context` (nullptr = unlimited) meters lazy recounts against the
  /// element-recount budget and lets BatchMarginals observe deadlines and
  /// cancellation between parallel chunks. Counts returned while untripped
  /// are always exact, so an unlimited context changes no behaviour.
  explicit BenefitEngine(const SetSystem& system,
                         const EngineOptions& options = EngineOptions(),
                         const RunContext* run_context = nullptr);

  /// Resets to the empty selection (all marginals back to |Ben(s)|).
  void Reset();

  /// Exact |MBen(s, S)| for the current selection S. Lazy mode may recompute
  /// and cache; eager mode is a read.
  std::size_t MarginalCount(SetId id);

  /// Marks `id` selected: covers its elements and (eager mode) updates every
  /// other marginal count. Returns the number of newly covered elements.
  std::size_t Select(SetId id);

  /// Exact marginal counts for ids[0..n), evaluated in deterministic
  /// parallel chunks when the engine has threads. out[i] corresponds to
  /// ids[i]. Duplicate ids are allowed.
  ///
  /// On a RunContext trip (before or during the batch) the remaining slots
  /// are filled from the cached counts — still valid CELF upper bounds —
  /// the cache commit is skipped so no stale value is stamped fresh, and
  /// the matching interruption Status is returned; callers should stop
  /// selecting and surrender their partial solution. Also propagates
  /// Status::Internal if a pool task throws.
  Status BatchMarginals(const std::vector<SetId>& ids,
                        std::vector<std::size_t>& out);

  std::size_t covered_count() const { return covered_.count(); }
  bool IsCovered(ElementId e) const { return covered_.test(e); }
  const DynamicBitset& covered() const { return covered_; }

  const EngineOptions& options() const { return options_; }

  /// True when `id`'s membership is materialized as a packed bitset row
  /// (introspection for tests and the density-heuristic bench).
  bool UsesBitsetRow(SetId id) const {
    return row_of_[id] != kNoRow;
  }

  /// The pool used for batch evaluation (size 1 when serial); shared with
  /// callers that have their own independent chunked scans.
  ThreadPool& pool();

 private:
  static constexpr std::uint32_t kNoRow = 0xFFFFFFFFu;

  /// Recomputes |MBen(id)| against the covered words (no cache access).
  std::size_t Recount(SetId id) const;

  const SetSystem& system_;
  EngineOptions options_;
  const RunContext* ctx_;  // never null; defaults to RunContext::Unlimited()
  DynamicBitset covered_;

  /// Eager: exact live counts. Lazy: cached counts, valid iff the set's
  /// stamp equals the current coverage epoch (covered_.count(); a selection
  /// that covers nothing new changes no marginal, so the epoch is sound).
  std::vector<std::size_t> count_;
  std::vector<std::size_t> stamp_;  // lazy only

  /// Packed membership rows for dense sets, kNoRow-indexed via row_of_.
  std::size_t words_per_row_ = 0;
  std::vector<std::uint32_t> row_of_;
  std::vector<std::uint64_t> rows_;

  std::unique_ptr<ThreadPool> pool_;  // created on first use

  /// Metric instruments resolved once at construction when
  /// options.trace != nullptr; hot paths then update lock-free atomics
  /// behind one pointer branch.
  obs::MetricCounter* celf_hits_ = nullptr;
  obs::MetricCounter* celf_misses_ = nullptr;
  obs::MetricCounter* batch_scans_ = nullptr;
  obs::MetricCounter* batch_shards_ = nullptr;
};

/// Removes every id whose bit is set in `covered` from each list, preserving
/// relative order — the posting-list form of marginal-benefit revalidation
/// used by the lattice-optimized algorithms (Fig. 3/4 lines "update MBen").
/// Lists are filtered independently, chunk-parallel on `pool` when it has
/// more than one lane, so results are identical for any thread count.
///
/// `run_context` (nullptr = unlimited) is observed between chunks: once
/// tripped, remaining lists are left unfiltered — an unfiltered list is a
/// stale-but-valid superset, so callers that bail out on the returned
/// interruption Status never act on it. Also propagates Status::Internal
/// from a throwing pool task.
Status FilterCoveredIds(const DynamicBitset& covered,
                        const std::vector<std::vector<std::uint32_t>*>& lists,
                        ThreadPool* pool,
                        const RunContext* run_context = nullptr);

}  // namespace scwsc

#endif  // SCWSC_CORE_BENEFIT_ENGINE_H_
