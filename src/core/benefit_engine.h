// BenefitEngine: the single marginal-benefit substrate behind every greedy
// solver (CMC, CWSC, the baselines, LP rounding repair).
//
// The engine owns the covered-element state of one greedy run and answers
// |MBen(s, S)| — the number of elements of s not yet covered by the current
// selection S — under the strategy chosen by EngineOptions:
//
//  * eager mode maintains every count by inverted-index decrements at
//    selection time (the seed CoverState behaviour);
//  * lazy mode recomputes a count only when it is read and its cached value
//    predates the current coverage epoch. Coverage only grows and counts
//    only shrink (submodularity), so a cached value is always an upper
//    bound — exactly the invariant CELF/lazy-greedy selection needs.
//
// Sharded mode (EngineOptions::num_shards > 1) refines the lazy cache from
// one global coverage epoch to one epoch per element-range shard
// (ShardBounds over the universe, word-aligned). Counts, stamps and
// recounts then live per (set, shard):
//
//  * a selection bumps only the epochs of shards it covered new elements
//    in;
//  * a CELF revalidation recounts only the candidate's slices in those
//    dirtied shards — a candidate disjoint from all recent picks
//    revalidates in O(num_shards) with no element walk at all;
//  * BatchMarginals fans out one task per shard on the pool (each task
//    writes a disjoint output stripe; the cache commit stays serial), so
//    the batch path parallelizes by shard instead of by candidate chunk.
//
// A global pop from a solver's lazy selector therefore "merges" per-shard
// state: the popped candidate's total is the sum of its per-shard counts,
// and only the shards owning recently covered elements are revalidated.
// Every shard count computes the same exact integer totals as the flat
// path, so solver runs stay bit-identical for every num_shards.
//
// Membership is stored per set either as the SetSystem's sorted element
// list or as a packed uint64 row (chosen per set by a density heuristic in
// kAuto mode): a recount is then a word-wise AND-NOT popcount against the
// covered words instead of an element-by-element bit-test walk, and a
// selection ORs the row into the covered words. Word-aligned shard
// boundaries mean a packed row splits into per-shard word ranges exactly.
//
// Chaos: FaultPoint::kShardWorkerLoss models a shard batch worker dying
// mid-scan. A lost shard's stripe is recomputed inline after the fan-out,
// so every BatchMarginals call still returns exact counts — the fault costs
// latency, never correctness (tests/resilience_test.cc proves a storm
// leaves solutions bit-identical).

#ifndef SCWSC_CORE_BENEFIT_ENGINE_H_
#define SCWSC_CORE_BENEFIT_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/bitset.h"
#include "src/common/run_context.h"
#include "src/common/thread_pool.h"
#include "src/core/engine_options.h"
#include "src/core/set_system.h"
#include "src/core/shard.h"

namespace scwsc {

namespace obs {
class MetricCounter;
}  // namespace obs

class BenefitEngine {
 public:
  /// `run_context` (nullptr = unlimited) meters lazy recounts against the
  /// element-recount budget and lets BatchMarginals observe deadlines and
  /// cancellation between parallel chunks. Counts returned while untripped
  /// are always exact, so an unlimited context changes no behaviour.
  explicit BenefitEngine(const SetSystem& system,
                         const EngineOptions& options = EngineOptions(),
                         const RunContext* run_context = nullptr);

  /// Resets to the empty selection (all marginals back to |Ben(s)|).
  void Reset();

  /// Exact |MBen(s, S)| for the current selection S. Lazy mode may recompute
  /// and cache; eager mode is a read. Sharded mode recounts only the set's
  /// slices in shards whose coverage moved since the last read.
  std::size_t MarginalCount(SetId id);

  /// Marks `id` selected: covers its elements and (eager mode) updates every
  /// other marginal count. Returns the number of newly covered elements.
  /// Sharded mode additionally bumps the coverage epoch of exactly the
  /// shards that gained elements.
  std::size_t Select(SetId id);

  /// Exact marginal counts for ids[0..n), evaluated in deterministic
  /// parallel chunks (flat) or per-shard stripes (sharded) when the engine
  /// has threads. out[i] corresponds to ids[i]. Duplicate ids are allowed.
  ///
  /// On a RunContext trip (before or during the batch) the remaining slots
  /// are filled from the cached counts — still valid CELF upper bounds —
  /// the cache commit is skipped so no stale value is stamped fresh, and
  /// the matching interruption Status is returned; callers should stop
  /// selecting and surrender their partial solution. Also propagates
  /// Status::Internal if a pool task throws.
  Status BatchMarginals(const std::vector<SetId>& ids,
                        std::vector<std::size_t>& out);

  std::size_t covered_count() const { return covered_.count(); }
  bool IsCovered(ElementId e) const { return covered_.test(e); }
  const DynamicBitset& covered() const { return covered_; }

  const EngineOptions& options() const { return options_; }

  /// Effective shard count (1 = flat; requests are clamped by ShardBounds).
  std::size_t num_shards() const { return num_shards_; }

  /// Covered elements within shard s — the shard's coverage epoch. With a
  /// flat engine the single "shard" is the whole universe.
  std::size_t shard_covered(std::size_t s) const {
    return num_shards_ > 1 ? shard_covered_[s] : covered_.count();
  }

  /// True when `id`'s membership is materialized as a packed bitset row
  /// (introspection for tests and the density-heuristic bench).
  bool UsesBitsetRow(SetId id) const {
    return !row_of_.empty() && row_of_[id] != kNoRow;
  }

  /// The pool used for batch evaluation (size 1 when serial); shared with
  /// callers that have their own independent chunked scans.
  ThreadPool& pool();

 private:
  static constexpr std::uint32_t kNoRow = 0xFFFFFFFFu;

  bool sharded() const { return num_shards_ > 1; }

  /// Recomputes |MBen(id)| against the covered words (no cache access).
  std::size_t Recount(SetId id) const;

  /// Recomputes set `id`'s marginal within shard s only: the packed row's
  /// word subrange, or the sorted element list's slice.
  std::size_t RecountSlice(SetId id, std::size_t s) const;

  /// Slice boundaries of set `id` in shard s: offsets into its sorted
  /// element list.
  std::size_t SliceBegin(SetId id, std::size_t s) const {
    return slice_begin_[id * (num_shards_ + 1) + s];
  }

  /// Evaluates shard s of a batch into stripe[i] for every i: cached value
  /// when fresh, recount when stale (charged against `aborted`). Runs on a
  /// pool worker during the fan-out and inline for lost-shard recovery.
  void ComputeShardStripe(std::size_t s, const std::vector<SetId>& ids,
                          std::size_t* stripe, std::atomic<bool>& aborted);

  const SetSystem& system_;
  EngineOptions options_;
  const RunContext* ctx_;  // never null; defaults to RunContext::Unlimited()
  DynamicBitset covered_;

  /// Eager: exact live counts. Lazy: cached counts, valid iff the set's
  /// stamp equals the current coverage epoch (covered_.count(); a selection
  /// that covers nothing new changes no marginal, so the epoch is sound).
  /// Sharded: the last committed per-shard sum — an upper bound used for
  /// trip fallbacks and the zero short-circuit; freshness lives in the
  /// per-shard stamps.
  std::vector<std::size_t> count_;
  std::vector<std::size_t> stamp_;  // flat lazy only

  /// Sharding state (lazy mode with num_shards_ > 1 only). Element bounds
  /// come from ShardBounds (word-aligned); word_bounds_ is the same cut in
  /// packed-row words.
  std::size_t num_shards_ = 1;
  std::vector<std::size_t> bounds_;       // element bounds, size S+1
  std::vector<std::size_t> word_bounds_;  // word bounds, size S+1
  std::vector<std::size_t> shard_covered_;       // per-shard epochs, size S
  std::vector<std::uint32_t> slice_begin_;       // m*(S+1) offsets
  std::vector<std::size_t> shard_count_;         // m*S cached slice counts
  std::vector<std::size_t> shard_stamp_;         // m*S epoch stamps
  std::vector<std::size_t> stripe_scratch_;      // S*|batch| fan-out buffer

  /// Packed membership rows for dense sets, kNoRow-indexed via row_of_.
  std::size_t words_per_row_ = 0;
  std::vector<std::uint32_t> row_of_;
  std::vector<std::uint64_t> rows_;

  std::unique_ptr<ThreadPool> pool_;  // created on first use

  /// Metric instruments resolved once at construction when
  /// options.trace != nullptr; hot paths then update lock-free atomics
  /// behind one pointer branch.
  obs::MetricCounter* celf_hits_ = nullptr;
  obs::MetricCounter* celf_misses_ = nullptr;
  obs::MetricCounter* batch_scans_ = nullptr;
  obs::MetricCounter* batch_shards_ = nullptr;
  obs::MetricCounter* shard_recoveries_ = nullptr;
};

/// Removes every id whose bit is set in `covered` from each list, preserving
/// relative order — the posting-list form of marginal-benefit revalidation
/// used by the lattice-optimized algorithms (Fig. 3/4 lines "update MBen").
/// Lists are filtered independently, chunk-parallel on `pool` when it has
/// more than one lane, so results are identical for any thread count.
///
/// `run_context` (nullptr = unlimited) is observed between chunks: once
/// tripped, remaining lists are left unfiltered — an unfiltered list is a
/// stale-but-valid superset, so callers that bail out on the returned
/// interruption Status never act on it. Also propagates Status::Internal
/// from a throwing pool task.
Status FilterCoveredIds(const DynamicBitset& covered,
                        const std::vector<std::vector<std::uint32_t>*>& lists,
                        ThreadPool* pool,
                        const RunContext* run_context = nullptr);

}  // namespace scwsc

#endif  // SCWSC_CORE_BENEFIT_ENGINE_H_
