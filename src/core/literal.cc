#include "src/core/literal.h"

#include <algorithm>
#include <cmath>

#include "src/common/bitset.h"
#include "src/core/greedy_state.h"
#include "src/obs/trace.h"

namespace scwsc {
namespace {

/// Fig. 1 lines 24-27 / Fig. 2 lines 12-15: subtract the selected set's
/// marginal benefit from every remaining set by an explicit scan, dropping
/// sets whose marginal benefit becomes empty.
void SubtractEverywhere(const std::vector<ElementId>& chosen_mben,
                        std::size_t num_elements,
                        std::vector<std::vector<ElementId>>& mben,
                        std::vector<bool>& alive) {
  DynamicBitset removed(num_elements);
  for (ElementId e : chosen_mben) removed.set(e);
  for (SetId s = 0; s < mben.size(); ++s) {
    if (!alive[s]) continue;
    auto& m = mben[s];
    m.erase(std::remove_if(m.begin(), m.end(),
                           [&](ElementId e) { return removed.test(e); }),
            m.end());
    if (m.empty()) alive[s] = false;
  }
}

}  // namespace

Result<Solution> RunCwscLiteral(const SetSystem& system,
                                const CwscOptions& options, ScanStats* stats) {
  if (options.k == 0) return Status::InvalidArgument("k must be positive");
  if (options.coverage_fraction < 0.0 || options.coverage_fraction > 1.0) {
    return Status::InvalidArgument("coverage_fraction must be in [0, 1]");
  }
  std::size_t rem = SetSystem::CoverageTarget(options.coverage_fraction,
                                              system.num_elements());
  Solution solution;
  if (rem == 0) return solution;

  // Lines 03-04: compute MBen(s) for every set.
  std::vector<std::vector<ElementId>> mben;
  mben.reserve(system.num_sets());
  for (const auto& s : system.sets()) mben.push_back(s.elements);
  std::vector<bool> alive(system.num_sets(), true);

  ScanStats local_stats;
  ScanStats& tally = stats != nullptr ? *stats : local_stats;
  const RunContext& ctx =
      options.run_context ? *options.run_context : RunContext::Unlimited();
  obs::Span span(options.trace, "cwsc.literal");
  for (std::size_t i = options.k; i >= 1; --i) {
    if (const TripKind trip = ctx.Check(); trip != TripKind::kNone) {
      return InterruptedStatus(trip, "cwsc (literal)", std::move(solution));
    }
    // Line 06: argmax gain among sets with |MBen| >= rem / i.
    SetId best = kInvalidSet;
    for (SetId s = 0; s < system.num_sets(); ++s) {
      if (!alive[s]) continue;
      ++tally.sets_considered;
      if (mben[s].size() * i < rem) continue;
      if (best == kInvalidSet ||
          BetterByGain(mben[s].size(), system.set(s).cost, s,
                       mben[best].size(), system.set(best).cost, best)) {
        best = s;
      }
    }
    if (best == kInvalidSet) {
      return Status::Infeasible("CWSC (literal): no qualified set");
    }
    const std::size_t newly = mben[best].size();
    solution.sets.push_back(best);
    solution.total_cost += system.set(best).cost;
    solution.covered += newly;
    alive[best] = false;
    rem = newly >= rem ? 0 : rem - newly;
    if (rem == 0) return solution;
    SubtractEverywhere(mben[best], system.num_elements(), mben, alive);
  }
  return Status::Internal("CWSC (literal) exhausted k picks");
}

Result<CmcResult> RunCmcLiteral(const SetSystem& system,
                                const CmcOptions& options) {
  if (options.k == 0) return Status::InvalidArgument("k must be positive");
  if (options.l == 0) return Status::InvalidArgument("l must be positive");
  if (options.coverage_fraction < 0.0 || options.coverage_fraction > 1.0) {
    return Status::InvalidArgument("coverage_fraction must be in [0, 1]");
  }
  if (options.b <= 0.0) {
    return Status::InvalidArgument("budget growth b must be positive");
  }
  if (options.epsilon < 0.0) {
    return Status::InvalidArgument("epsilon must be >= 0");
  }

  const std::size_t target = CmcCoverageTarget(
      options.coverage_fraction, system.num_elements(), options.relax_coverage);

  CmcResult result;
  if (target == 0) return result;
  if (system.num_sets() == 0) {
    return Status::Infeasible("CMC (literal): empty set collection");
  }

  const double total_cost = system.TotalCost();
  double budget = CmcInitialBudget(system, options.k);
  bool final_round = budget >= total_cost;

  const RunContext& ctx =
      options.run_context ? *options.run_context : RunContext::Unlimited();
  auto interrupted = [&](TripKind trip, Solution partial) -> Status {
    partial.provenance.trip = trip;
    partial.provenance.sets_chosen = partial.sets.size();
    partial.provenance.coverage_reached = partial.covered;
    partial.provenance.budget_level = budget;
    CmcResult partial_result = result;
    partial_result.solution = std::move(partial);
    partial_result.final_budget = budget;
    return TripStatus(trip, "cmc (literal)").WithPayload(
        std::move(partial_result));
  };
  Solution last_round;

  obs::Span span(options.trace, "cmc.literal");
  for (std::size_t round = 1; round <= options.max_budget_rounds; ++round) {
    if (const TripKind trip = ctx.Check(); trip != TripKind::kNone) {
      return interrupted(trip, std::move(last_round));
    }
    result.budget_rounds = round;
    result.sets_considered += system.num_sets();

    // Lines 04-05: recompute every marginal benefit from scratch.
    std::vector<std::vector<ElementId>> mben;
    mben.reserve(system.num_sets());
    for (const auto& s : system.sets()) mben.push_back(s.elements);
    std::vector<bool> alive(system.num_sets(), true);

    const auto levels =
        BuildCmcLevels(budget, options.k, options.epsilon, options.l);
    std::vector<int> level_of(system.num_sets());
    for (SetId s = 0; s < system.num_sets(); ++s) {
      level_of[s] = LevelOf(levels, system.set(s).cost);
    }

    Solution solution;
    std::size_t rem = target;

    for (std::size_t li = 0; li < levels.size() && rem > 0; ++li) {
      for (std::size_t picks = 0; picks < levels[li].capacity && rem > 0;
           ++picks) {
        if (const TripKind trip = ctx.Check(); trip != TripKind::kNone) {
          return interrupted(trip, std::move(solution));
        }
        // Line 17: argmax |MBen| within this level.
        SetId best = kInvalidSet;
        for (SetId s = 0; s < system.num_sets(); ++s) {
          if (!alive[s] || level_of[s] != static_cast<int>(li) ||
              mben[s].empty()) {
            continue;
          }
          if (best == kInvalidSet ||
              BetterByBenefit(mben[s].size(), system.set(s).cost, s,
                              mben[best].size(), system.set(best).cost,
                              best)) {
            best = s;
          }
        }
        if (best == kInvalidSet) break;  // line 18
        const std::size_t newly = mben[best].size();
        solution.sets.push_back(best);
        solution.total_cost += system.set(best).cost;
        solution.covered += newly;
        alive[best] = false;
        rem = newly >= rem ? 0 : rem - newly;
        if (rem == 0) break;
        SubtractEverywhere(mben[best], system.num_elements(), mben, alive);
      }
    }

    if (rem == 0) {
      result.solution = std::move(solution);
      result.final_budget = budget;
      return result;
    }
    last_round = std::move(solution);
    if (final_round) {
      return Status::Infeasible(
          "CMC (literal): coverage target unreachable even with budget = "
          "total cost");
    }
    budget *= (1.0 + options.b);
    if (budget == 0.0) {
      return Status::Infeasible("CMC (literal): zero-cost system");
    }
    if (budget >= total_cost) {
      budget = total_cost;
      final_round = true;
    }
  }
  return Status::ResourceExhausted("CMC (literal): max_budget_rounds exceeded");
}

}  // namespace scwsc
