#include "src/core/set_system.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace scwsc {

SetSystem::SetSystem(std::size_t num_elements) : num_elements_(num_elements) {}

SetSystem SetSystem::Clone() const {
  SetSystem copy(num_elements_);
  copy.sets_ = sets_;
  copy.total_cost_ = total_cost_;
  // The lazy inverted index is rebuilt on demand; no need to copy it.
  return copy;
}

Result<SetId> SetSystem::AddSet(std::vector<ElementId> elements, double cost,
                                std::string label) {
  if (!(cost >= 0.0) || !std::isfinite(cost)) {
    return Status::InvalidArgument("set cost must be finite and >= 0");
  }
  if (!std::isfinite(total_cost_ + cost)) {
    return Status::InvalidArgument(
        "set cost overflows the total cost of the system");
  }
  std::sort(elements.begin(), elements.end());
  elements.erase(std::unique(elements.begin(), elements.end()),
                 elements.end());
  if (!elements.empty() && elements.back() >= num_elements_) {
    return Status::InvalidArgument("element id out of universe");
  }
  if (sets_.size() >= kInvalidSet) {
    return Status::ResourceExhausted("too many sets");
  }
  sets_.push_back(WeightedSet{std::move(elements), cost, std::move(label)});
  total_cost_ += cost;
  inverted_valid_ = false;
  return static_cast<SetId>(sets_.size() - 1);
}

double SetSystem::TotalCost() const { return total_cost_; }

double SetSystem::KCheapestCost(std::size_t k) const {
  std::vector<double> costs;
  costs.reserve(sets_.size());
  for (const auto& s : sets_) costs.push_back(s.cost);
  k = std::min(k, costs.size());
  std::partial_sort(costs.begin(), costs.begin() + static_cast<std::ptrdiff_t>(k),
                    costs.end());
  double total = 0.0;
  for (std::size_t i = 0; i < k; ++i) total += costs[i];
  return total;
}

bool SetSystem::HasUniverseSet() const {
  for (const auto& s : sets_) {
    if (s.elements.size() == num_elements_) return true;
  }
  return false;
}

const std::vector<std::vector<SetId>>& SetSystem::InvertedIndex() const {
  if (!inverted_valid_) {
    inverted_.assign(num_elements_, {});
    for (SetId id = 0; id < sets_.size(); ++id) {
      for (ElementId e : sets_[id].elements) {
        inverted_[e].push_back(id);
      }
    }
    inverted_valid_ = true;
  }
  return inverted_;
}

std::size_t SetSystem::CoverageTarget(double fraction, std::size_t n) {
  SCWSC_CHECK(fraction >= 0.0 && fraction <= 1.0,
              "coverage fraction outside [0,1]");
  const double x = fraction * static_cast<double>(n);
  // Tolerate relative floating-point dust so fraction = p/n targets exactly p.
  const double eps = 1e-9 * std::max(1.0, x);
  const double target = std::ceil(x - eps);
  return static_cast<std::size_t>(std::max(0.0, target));
}

bool BetterGain(std::size_t count_a, double cost_a, std::size_t count_b,
                double cost_b) {
  // gain = count / cost; compare count_a/cost_a > count_b/cost_b via
  // count_a * cost_b > count_b * cost_a (costs are >= 0).
  if (cost_a == 0.0 && cost_b == 0.0) return count_a > count_b;
  if (cost_a == 0.0) return count_a > 0;   // infinite gain beats finite
  if (cost_b == 0.0) return false;
  return static_cast<double>(count_a) * cost_b >
         static_cast<double>(count_b) * cost_a;
}

}  // namespace scwsc
