// EngineOptions: how marginal benefits are represented and re-evaluated.
//
// Every greedy solver in this library spends its time in one primitive —
// "what is |MBen(s, S)| for candidate s against the covered state S" — and
// EngineOptions selects the strategy the BenefitEngine uses for it. All
// strategies compute the exact same integer counts, so every combination
// produces bit-identical solutions (tests/benefit_engine_test.cc proves it);
// only the work profile changes.

#ifndef SCWSC_CORE_ENGINE_OPTIONS_H_
#define SCWSC_CORE_ENGINE_OPTIONS_H_

#include <cstddef>

namespace scwsc {

namespace obs {
class TraceSession;
}  // namespace obs

/// When marginal counts are brought up to date.
enum class MarginalMode : unsigned char {
  /// Selecting a set immediately decrements the marginal count of every
  /// other set containing a newly covered element (inverted-index walk).
  /// Reads are O(1); each selection pays the full decrement storm. This is
  /// the seed implementation's behaviour and the reference configuration.
  kEager,
  /// Selecting a set only marks its elements covered; a set's count is
  /// recomputed against the covered state on demand and cached until the
  /// coverage epoch moves. By submodularity counts only decrease, so CELF-
  /// style lazy revalidation in the selectors stays exact.
  kLazy,
};

/// How a set's element membership is stored for recomputation.
enum class MembershipRepr : unsigned char {
  /// Sorted element-id list; a count is a per-element bit-test walk.
  kList,
  /// Packed uint64 rows; a count is a word-wise AND-NOT popcount.
  kBitset,
  /// Per set by density: bitset when |elements| * 64 >= |universe| (the
  /// word walk is then no longer than the list walk), list otherwise.
  kAuto,
};

struct EngineOptions {
  MarginalMode marginal_mode = MarginalMode::kLazy;
  MembershipRepr membership = MembershipRepr::kAuto;
  /// Element-range shards for the lazy engine (ShardBounds over the
  /// universe). With S > 1 the engine keeps per-(set, shard) cached counts
  /// stamped against per-shard coverage epochs: a selection only dirties
  /// the shards it covered new elements in, so CELF revalidation of a
  /// candidate recounts only its slices in dirtied shards — candidates
  /// disjoint from recent picks revalidate in O(S) with no element walk —
  /// and batch scans fan out per shard on the pool. Counts are exact for
  /// every value, so solutions are bit-identical to the flat path (= 1).
  /// Eager mode ignores sharding (its counts are already maintained live).
  std::size_t num_shards = 1;
  /// Lanes for batch marginal re-evaluation: 1 = serial (default),
  /// 0 = hardware concurrency, N = exactly N threads. Results are identical
  /// for every value (deterministic chunked reduction).
  unsigned num_threads = 1;
  /// Batches below this size are evaluated serially even with threads.
  std::size_t min_parallel_batch = 2048;
  /// Optional observability sink (src/obs): the engine publishes CELF cache
  /// hit/miss and batch-shard metrics into it. nullptr = off; every
  /// instrumentation point then costs a single pointer branch. Solvers
  /// propagate their own trace pointer here, so frontends set it once.
  obs::TraceSession* trace = nullptr;
};

/// The seed implementation's configuration: eager inverted-index decrements
/// over element lists, serial. Equivalence tests and the engine-comparison
/// bench use this as the reference point.
inline EngineOptions SeedReferenceEngine() {
  EngineOptions options;
  options.marginal_mode = MarginalMode::kEager;
  options.membership = MembershipRepr::kList;
  options.num_threads = 1;
  return options;
}

}  // namespace scwsc

#endif  // SCWSC_CORE_ENGINE_OPTIONS_H_
