// Exact solver for size-constrained weighted set cover on small instances.
//
// §VI-D of the paper compares the greedy algorithms against the optimum
// found by exhaustive search on small samples. This module implements a
// branch-and-bound search over subsets of at most k sets that is exact and
// substantially faster than naive enumeration:
//
//  - sets are explored in non-decreasing cost order, so the running cost of
//    a partial selection is a valid lower bound;
//  - a partial selection is pruned when even the remaining allowance of
//    picks, each covering as much as the largest remaining set, cannot reach
//    the coverage target;
//  - the cost lower bound is tightened by the minimum number of additional
//    picks times the cheapest remaining cost.
//
// The search is bounded by max_nodes; exceeding it yields ResourceExhausted
// rather than a silently suboptimal answer.

#ifndef SCWSC_CORE_EXACT_H_
#define SCWSC_CORE_EXACT_H_

#include <cstdint>

#include "src/common/result.h"
#include "src/core/solution.h"

namespace scwsc {

namespace obs {
class TraceSession;
}  // namespace obs

struct ExactOptions {
  std::size_t k = 5;
  double coverage_fraction = 0.5;
  /// Node budget for the branch-and-bound search.
  std::uint64_t max_nodes = 200'000'000;
  /// Deadline / cancellation / work-budget context; nullptr = unlimited.
  /// The search charges one node expansion per DFS node. On a trip (and on
  /// max_nodes exhaustion) the returned error Status carries a partial
  /// ExactResult payload holding the incumbent found so far, if any.
  const RunContext* run_context = nullptr;
  /// Optional trace/metrics session (src/obs): the search publishes node and
  /// incumbent counters and marks each incumbent improvement with a span
  /// event. nullptr = observability off.
  obs::TraceSession* trace = nullptr;
};

struct ExactResult {
  Solution solution;
  /// Number of search nodes expanded.
  std::uint64_t nodes = 0;
};

/// Finds a minimum-cost sub-collection of at most k sets meeting the
/// coverage target, or Infeasible when none exists.
Result<ExactResult> SolveExact(const SetSystem& system,
                               const ExactOptions& options);

}  // namespace scwsc

#endif  // SCWSC_CORE_EXACT_H_
