// SetSystem: the generic input of size-constrained weighted set cover.
//
// A SetSystem is a universe of n elements plus a collection of weighted sets
// over them (paper §II, Definition 1). Sets are immutable once added;
// element lists are stored sorted and deduplicated so that benefit counting
// and auditing are deterministic. The patterned special case materializes a
// SetSystem via pattern::PatternSystem; the generic algorithms (CMC, CWSC,
// baselines, exact solver) all consume this type.

#ifndef SCWSC_CORE_SET_SYSTEM_H_
#define SCWSC_CORE_SET_SYSTEM_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace scwsc {

using ElementId = std::uint32_t;
using SetId = std::uint32_t;

inline constexpr SetId kInvalidSet = std::numeric_limits<SetId>::max();

/// One weighted set: its covered elements (Ben(s)) and its cost.
struct WeightedSet {
  std::vector<ElementId> elements;  // sorted, unique
  double cost = 0.0;
  std::string label;  // optional human-readable name ("P16", a pattern, ...)
};

class SetSystem {
 public:
  /// Creates a system over universe {0, ..., num_elements-1}.
  explicit SetSystem(std::size_t num_elements);

  // Move-only: a SetSystem can hold millions of element ids plus the lazy
  // inverted index, and every accidental copy of one used to be a silent
  // multi-megabyte clone. Share one instance via api::InstanceSnapshot, or
  // Clone() explicitly in the rare place that really wants a duplicate.
  SetSystem(const SetSystem&) = delete;
  SetSystem& operator=(const SetSystem&) = delete;
  SetSystem(SetSystem&&) = default;
  SetSystem& operator=(SetSystem&&) = default;

  /// An explicit deep copy, for the call sites (mutation experiments,
  /// perturbation harnesses) that genuinely need their own instance.
  SetSystem Clone() const;

  /// Adds a set; elements are sorted/deduplicated, must be < num_elements(),
  /// and cost must be non-negative and finite — NaN, negative, and infinite
  /// costs are rejected with InvalidArgument, as is a (finite) cost that
  /// would overflow the running Σ-cost to infinity (TotalCost() anchors the
  /// CMC budget schedule and must stay finite). Returns the new SetId.
  Result<SetId> AddSet(std::vector<ElementId> elements, double cost,
                       std::string label = "");

  std::size_t num_elements() const { return num_elements_; }
  std::size_t num_sets() const { return sets_.size(); }

  const WeightedSet& set(SetId id) const { return sets_[id]; }
  const std::vector<WeightedSet>& sets() const { return sets_; }

  /// Sum of all set costs (the CMC budget loop's termination bound).
  double TotalCost() const;

  /// Sum of the costs of the k cheapest sets (the CMC initial budget,
  /// Fig. 1 line 01). k is clamped to num_sets().
  double KCheapestCost(std::size_t k) const;

  /// True if some single set covers every element (Definition 1 requires one
  /// so a feasible solution always exists).
  bool HasUniverseSet() const;

  /// element -> ids of sets containing it. Built lazily on first call and
  /// cached; the cache is invalidated by AddSet.
  const std::vector<std::vector<SetId>>& InvertedIndex() const;

  /// Number of elements that must be covered to reach coverage fraction
  /// `fraction` over `n` elements: the least integer m with m >= fraction*n,
  /// computed robustly against floating-point dust (so 9/16 of 16 is 9, not
  /// 10).
  static std::size_t CoverageTarget(double fraction, std::size_t n);

 private:
  std::size_t num_elements_;
  std::vector<WeightedSet> sets_;
  double total_cost_ = 0.0;  // running Σ-cost, kept finite by AddSet
  mutable std::vector<std::vector<SetId>> inverted_;  // lazy
  mutable bool inverted_valid_ = false;
};

/// True when gain a (= count_a / cost_a) beats gain b, compared exactly by
/// cross-multiplication so zero costs and ties are handled without
/// divisions or infinities. Zero-cost sets have infinite gain; two zero-cost
/// sets compare by count.
bool BetterGain(std::size_t count_a, double cost_a, std::size_t count_b,
                double cost_b);

}  // namespace scwsc

#endif  // SCWSC_CORE_SET_SYSTEM_H_
