// CWSC — Concise Weighted Set Cover (paper Fig. 2).
//
// Greedy partial weighted set cover with a per-iteration qualification
// threshold: with i picks remaining and rem elements still to cover, only
// sets with |MBen(s)| >= rem / i are considered, and among those the one with
// the highest marginal gain |MBen(s)| / Cost(s) is chosen. The algorithm
// returns at most k sets and always meets the coverage requirement when it
// returns a solution; it carries no cost guarantee (paper §V-B) but is the
// recommended solver in practice (paper §VI).

#ifndef SCWSC_CORE_CWSC_H_
#define SCWSC_CORE_CWSC_H_

#include "src/common/result.h"
#include "src/core/engine_options.h"
#include "src/core/solution.h"

namespace scwsc {

struct CwscOptions {
  CwscOptions() = default;
  CwscOptions(std::size_t k_in, double coverage)
      : k(k_in), coverage_fraction(coverage) {}

  /// Maximum number of sets in the solution (k in the paper).
  std::size_t k = 10;
  /// Desired coverage fraction (ŝ in the paper); in [0, 1].
  double coverage_fraction = 0.3;
  /// Marginal-evaluation strategy (lazy/bitset fast path by default; every
  /// configuration returns the identical solution).
  EngineOptions engine;
  /// Deadline / cancellation / work-budget context; nullptr = unlimited.
  /// On a trip the solver returns the matching error Status carrying the
  /// partial solution built so far as a payload (see Provenance).
  const RunContext* run_context = nullptr;
  /// Optional trace/metrics session (src/obs); nullptr = observability off.
  /// Propagated into the engine (options.engine.trace) when that is unset.
  obs::TraceSession* trace = nullptr;
};

/// Runs CWSC over an explicit set system. Returns:
///  - a Solution meeting the constraints, or
///  - Status::Infeasible when no qualified set exists in some iteration
///    (Fig. 2 line 07, "No solution"), or
///  - Status::InvalidArgument for out-of-domain options.
/// `stats` (optional) receives the candidate-evaluation tally.
Result<Solution> RunCwsc(const SetSystem& system, const CwscOptions& options,
                         ScanStats* stats = nullptr);

}  // namespace scwsc

#endif  // SCWSC_CORE_CWSC_H_
