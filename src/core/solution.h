// Solution: the output of every solver, plus an independent auditor.

#ifndef SCWSC_CORE_SOLUTION_H_
#define SCWSC_CORE_SOLUTION_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/run_context.h"
#include "src/core/set_system.h"

namespace scwsc {

/// Where a solution came from: complete run, or interrupted by a RunContext
/// trip (deadline / cancellation / work budget). Solvers fill this on every
/// partial (best-so-far) solution they surrender via a Status payload, so
/// callers can tell how far the run got before the trip.
struct Provenance {
  TripKind trip = TripKind::kNone;  // kNone for a complete, untripped run
  std::size_t sets_chosen = 0;      // selections committed before the trip
  std::size_t coverage_reached = 0;  // elements (or rows) covered at the trip
  /// CMC-family only: the budget level being explored when the trip fired
  /// (0 when the algorithm has no budget schedule).
  double budget_level = 0.0;

  bool interrupted() const { return trip != TripKind::kNone; }
};

/// A sub-collection of sets chosen by a solver, with the solver's own
/// bookkeeping of cost and coverage (audited independently by AuditSolution).
struct Solution {
  std::vector<SetId> sets;   // in selection order
  double total_cost = 0.0;   // Σ Cost(s) over the selection
  std::size_t covered = 0;   // |∪ Ben(s)|
  Provenance provenance;     // interruption record; default = complete run
};

/// Candidate-evaluation tally of one greedy run (the "sets/patterns
/// considered" series of Fig. 6). Solvers that return a bare Solution take
/// an optional `ScanStats*` out-parameter so the registry adapters can fill
/// SolveCounters::sets_considered; solvers with a richer result struct
/// (CmcResult, PatternStats) carry the tally there instead.
struct ScanStats {
  std::size_t sets_considered = 0;
};

/// Facts about a Solution recomputed from scratch against the SetSystem;
/// used by tests and by the benchmark harness to guard against solver
/// bookkeeping bugs.
struct SolutionAudit {
  std::size_t num_sets = 0;
  double total_cost = 0.0;
  std::size_t covered = 0;
  /// True when the recomputed cost/coverage match the Solution's own fields.
  bool bookkeeping_consistent = false;
};

/// Recomputes cost and coverage of `solution` over `system`. Fails if any
/// SetId is out of range or duplicated.
Result<SolutionAudit> AuditSolution(const SetSystem& system,
                                    const Solution& solution);

/// True when the solution meets the size-constrained weighted set cover
/// constraints: at most `k` sets covering at least CoverageTarget(fraction,n)
/// elements.
bool SatisfiesConstraints(const SetSystem& system, const Solution& solution,
                          std::size_t k, double coverage_fraction);

/// Human-readable one-line summary: "{P6, P16} cost=27 covered=9/16".
std::string SolutionToString(const SetSystem& system,
                             const Solution& solution);

/// Stamps `partial` with an interruption Provenance record for `trip` and
/// returns the matching error Status (DeadlineExceeded / Cancelled /
/// ResourceExhausted, see TripStatus) carrying the stamped solution as its
/// payload, retrievable via `status.payload<Solution>()`. `budget_level` is
/// the CMC-family budget being explored at the trip (0 elsewhere).
Status InterruptedStatus(TripKind trip, const char* what, Solution partial,
                         double budget_level = 0.0);

}  // namespace scwsc

#endif  // SCWSC_CORE_SOLUTION_H_
