#include "src/core/instances.h"

#include <numeric>

namespace scwsc {

Result<SetSystem> MakeBudgetedCounterexample(const CounterexampleSpec& spec) {
  const std::size_t C = spec.big_set_size;
  const std::size_t c = spec.small_set_multiplier;
  const std::size_t k = spec.k;
  if (C == 0 || c == 0 || k == 0) {
    return Status::InvalidArgument("C, c and k must be positive");
  }
  if (c >= C) {
    return Status::InvalidArgument(
        "the construction needs c << C (at least c < C)");
  }
  const std::size_t n = C * k;
  if (c * k > n) {
    return Status::InvalidArgument("c*k singletons exceed the universe C*k");
  }

  SetSystem system(n);
  // c*k singletons of weight 1: {0}, {1}, ..., {c*k - 1}.
  for (std::size_t i = 0; i < c * k; ++i) {
    SCWSC_ASSIGN_OR_RETURN(
        SetId unused,
        system.AddSet({static_cast<ElementId>(i)}, 1.0,
                      "single" + std::to_string(i)));
    (void)unused;
  }
  // k blocks of C consecutive elements, weight C + 1.
  for (std::size_t j = 0; j < k; ++j) {
    std::vector<ElementId> block(C);
    std::iota(block.begin(), block.end(), static_cast<ElementId>(j * C));
    SCWSC_ASSIGN_OR_RETURN(
        SetId unused,
        system.AddSet(std::move(block), static_cast<double>(C) + 1.0,
                      "block" + std::to_string(j)));
    (void)unused;
  }
  if (spec.add_universe_set) {
    std::vector<ElementId> all(n);
    std::iota(all.begin(), all.end(), ElementId{0});
    SCWSC_ASSIGN_OR_RETURN(
        SetId unused,
        system.AddSet(std::move(all), spec.universe_cost, "universe"));
    (void)unused;
  }
  return system;
}

Result<SetSystem> RandomSetSystem(const RandomSystemSpec& spec, Rng& rng) {
  if (spec.num_elements == 0) {
    return Status::InvalidArgument("need at least one element");
  }
  if (spec.max_set_size == 0) {
    return Status::InvalidArgument("max_set_size must be positive");
  }
  if (spec.min_cost < 0.0 || spec.max_cost < spec.min_cost) {
    return Status::InvalidArgument("need 0 <= min_cost <= max_cost");
  }
  SetSystem system(spec.num_elements);
  std::vector<double> used_costs;
  for (std::size_t s = 0; s < spec.num_sets; ++s) {
    const std::size_t size =
        1 + static_cast<std::size_t>(rng.NextBounded(spec.max_set_size));
    std::vector<ElementId> elements;
    elements.reserve(size);
    for (std::size_t i = 0; i < size; ++i) {
      elements.push_back(
          static_cast<ElementId>(rng.NextBounded(spec.num_elements)));
    }
    double cost;
    if (!used_costs.empty() && rng.NextBool(spec.duplicate_cost_probability)) {
      cost = used_costs[static_cast<std::size_t>(
          rng.NextBounded(used_costs.size()))];
    } else {
      cost = rng.NextDouble(spec.min_cost, spec.max_cost);
    }
    used_costs.push_back(cost);
    SCWSC_ASSIGN_OR_RETURN(SetId unused,
                           system.AddSet(std::move(elements), cost));
    (void)unused;
  }
  if (spec.ensure_universe) {
    std::vector<ElementId> all(spec.num_elements);
    std::iota(all.begin(), all.end(), ElementId{0});
    SCWSC_ASSIGN_OR_RETURN(
        SetId unused, system.AddSet(std::move(all), spec.max_cost, "universe"));
    (void)unused;
  }
  return system;
}

}  // namespace scwsc
