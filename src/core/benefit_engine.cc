#include "src/core/benefit_engine.h"

#include <algorithm>
#include <atomic>

#include "src/obs/trace.h"

namespace scwsc {
namespace {

/// Density heuristic for kAuto: a packed row costs ~n/64 word ops per
/// recount, the sorted list costs ~|elements| bit tests, so the row wins
/// once the set holds at least one element per word of the universe.
bool DenseEnoughForRow(std::size_t set_size, std::size_t num_elements) {
  return set_size * 64 >= num_elements;
}

}  // namespace

BenefitEngine::BenefitEngine(const SetSystem& system,
                             const EngineOptions& options,
                             const RunContext* run_context)
    : system_(system),
      options_(options),
      ctx_(run_context != nullptr ? run_context : &RunContext::Unlimited()),
      covered_(system.num_elements()),
      words_per_row_(covered_.num_words()) {
  if (options_.trace != nullptr) {
    obs::MetricRegistry& metrics = options_.trace->metrics();
    celf_hits_ = &metrics.counter("engine.celf_hits");
    celf_misses_ = &metrics.counter("engine.celf_misses");
    batch_scans_ = &metrics.counter("engine.batch_scans");
    batch_shards_ = &metrics.counter("engine.batch_shards");
  }
  const std::size_t m = system.num_sets();
  count_.reserve(m);
  for (const auto& s : system.sets()) count_.push_back(s.elements.size());

  if (options_.marginal_mode == MarginalMode::kEager) {
    system.InvertedIndex();  // force construction up front
    return;
  }

  stamp_.assign(m, 0);
  row_of_.assign(m, kNoRow);
  if (options_.membership == MembershipRepr::kList) return;

  // Materialize packed rows for every set the representation picks.
  std::size_t num_rows = 0;
  for (SetId id = 0; id < m; ++id) {
    const std::size_t size = system.set(id).elements.size();
    if (options_.membership == MembershipRepr::kBitset ||
        DenseEnoughForRow(size, system.num_elements())) {
      row_of_[id] = static_cast<std::uint32_t>(num_rows++);
    }
  }
  rows_.assign(num_rows * words_per_row_, 0);
  for (SetId id = 0; id < m; ++id) {
    if (row_of_[id] == kNoRow) continue;
    std::uint64_t* row = rows_.data() + row_of_[id] * words_per_row_;
    for (ElementId e : system.set(id).elements) {
      row[e >> 6] |= std::uint64_t{1} << (e & 63);
    }
  }
}

void BenefitEngine::Reset() {
  covered_.clear();
  for (SetId id = 0; id < count_.size(); ++id) {
    count_[id] = system_.set(id).elements.size();
  }
  if (!stamp_.empty()) std::fill(stamp_.begin(), stamp_.end(), 0);
}

std::size_t BenefitEngine::Recount(SetId id) const {
  if (row_of_.empty() || row_of_[id] == kNoRow) {
    return covered_.CountClear(system_.set(id).elements);
  }
  return covered_.AndNotCount(rows_.data() + row_of_[id] * words_per_row_,
                              words_per_row_);
}

std::size_t BenefitEngine::MarginalCount(SetId id) {
  if (options_.marginal_mode == MarginalMode::kEager) return count_[id];
  const std::size_t epoch = covered_.count();
  if (stamp_[id] == epoch || count_[id] == 0) {
    if (celf_hits_ != nullptr) celf_hits_->Increment();
    return count_[id];
  }
  if (celf_misses_ != nullptr) celf_misses_->Increment();
  // The recount itself stays exact; the charge only decrements the budget
  // and latches a trip for the caller's next Check().
  ctx_->ChargeRecounts(system_.set(id).elements.size());
  count_[id] = Recount(id);
  stamp_[id] = epoch;
  return count_[id];
}

std::size_t BenefitEngine::Select(SetId id) {
  if (options_.marginal_mode == MarginalMode::kEager) {
    const auto& inverted = system_.InvertedIndex();
    std::size_t newly = 0;
    for (ElementId e : system_.set(id).elements) {
      if (covered_.set(e)) {
        ++newly;
        for (SetId other : inverted[e]) --count_[other];
      }
    }
    return newly;
  }

  std::size_t newly;
  if (!row_of_.empty() && row_of_[id] != kNoRow) {
    newly = covered_.UnionWith(rows_.data() + row_of_[id] * words_per_row_,
                               words_per_row_);
  } else {
    newly = 0;
    for (ElementId e : system_.set(id).elements) {
      if (covered_.set(e)) ++newly;
    }
  }
  // The selected set itself is exhausted; pin its count so zero-count
  // short-circuits without a recount.
  count_[id] = 0;
  stamp_[id] = covered_.count();
  return newly;
}

Status BenefitEngine::BatchMarginals(const std::vector<SetId>& ids,
                                     std::vector<std::size_t>& out) {
  out.resize(ids.size());
  if (options_.marginal_mode == MarginalMode::kEager) {
    for (std::size_t i = 0; i < ids.size(); ++i) out[i] = count_[ids[i]];
    return Status::OK();
  }
  const std::size_t epoch = covered_.count();
  if (const TripKind trip = ctx_->Check(); trip != TripKind::kNone) {
    // Already interrupted: hand back the cached counts (valid CELF upper
    // bounds) without recounting or committing anything.
    for (std::size_t i = 0; i < ids.size(); ++i) out[i] = count_[ids[i]];
    return TripStatus(trip, "BatchMarginals");
  }
  ThreadPool& p = pool();
  if (batch_scans_ != nullptr) batch_scans_->Increment();
  // Parallel batches are the engine's only multi-threaded phase; give them
  // a span so the shard fan-out is visible in the trace.
  obs::Span batch_span;
  if (options_.trace != nullptr && p.size() > 1 &&
      ids.size() >= options_.min_parallel_batch) {
    batch_span = obs::Span(options_.trace, "engine.batch");
  }
  // Chunks write disjoint out slots; the cache commit below is serial, so
  // duplicate ids and any thread count yield identical results. Once any
  // chunk observes a trip, later indices fall back to the cached counts.
  std::atomic<bool> aborted{false};
  const Status pool_status = p.ParallelFor(
      ids.size(), options_.min_parallel_batch,
      [&](std::size_t begin, std::size_t end) {
        if (batch_shards_ != nullptr) batch_shards_->Increment();
        for (std::size_t i = begin; i < end; ++i) {
          const SetId id = ids[i];
          if (stamp_[id] == epoch || count_[id] == 0) {
            out[i] = count_[id];
            continue;
          }
          if (aborted.load(std::memory_order_relaxed) ||
              ctx_->ChargeRecounts(system_.set(id).elements.size()) !=
                  TripKind::kNone) {
            aborted.store(true, std::memory_order_relaxed);
            out[i] = count_[id];
            continue;
          }
          out[i] = Recount(id);
        }
      });
  SCWSC_RETURN_NOT_OK(pool_status);
  if (aborted.load(std::memory_order_relaxed)) {
    // Mixed fresh/stale results: skip the commit entirely so the cache is
    // never poisoned with a stale count stamped at the current epoch.
    return TripStatus(ctx_->tripped(), "BatchMarginals");
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    count_[ids[i]] = out[i];
    stamp_[ids[i]] = epoch;
  }
  return Status::OK();
}

ThreadPool& BenefitEngine::pool() {
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  return *pool_;
}

Status FilterCoveredIds(const DynamicBitset& covered,
                        const std::vector<std::vector<std::uint32_t>*>& lists,
                        ThreadPool* pool, const RunContext* run_context) {
  const RunContext& ctx =
      run_context != nullptr ? *run_context : RunContext::Unlimited();
  std::atomic<bool> aborted{false};
  auto filter_range = [&](std::size_t begin, std::size_t end) {
    // One trip check per chunk: a skipped list stays a valid superset of
    // the filtered one, and callers bail out on the returned status.
    if (aborted.load(std::memory_order_relaxed) ||
        ctx.Check() != TripKind::kNone) {
      aborted.store(true, std::memory_order_relaxed);
      return;
    }
    for (std::size_t i = begin; i < end; ++i) {
      auto& list = *lists[i];
      list.erase(std::remove_if(
                     list.begin(), list.end(),
                     [&](std::uint32_t id) { return covered.test(id); }),
                 list.end());
    }
  };
  if (pool != nullptr && pool->size() > 1) {
    SCWSC_RETURN_NOT_OK(pool->ParallelFor(lists.size(), 16, filter_range));
  } else {
    filter_range(0, lists.size());
  }
  if (aborted.load(std::memory_order_relaxed)) {
    return TripStatus(ctx.tripped(), "FilterCoveredIds");
  }
  return Status::OK();
}

}  // namespace scwsc
