#include "src/core/benefit_engine.h"

#include <algorithm>
#include <atomic>

#include "src/common/fault.h"
#include "src/obs/recorder.h"
#include "src/obs/trace.h"

namespace scwsc {
namespace {

/// Density heuristic for kAuto: a packed row costs ~n/64 word ops per
/// recount, the sorted list costs ~|elements| bit tests, so the row wins
/// once the set holds at least one element per word of the universe.
bool DenseEnoughForRow(std::size_t set_size, std::size_t num_elements) {
  return set_size * 64 >= num_elements;
}

}  // namespace

BenefitEngine::BenefitEngine(const SetSystem& system,
                             const EngineOptions& options,
                             const RunContext* run_context)
    : system_(system),
      options_(options),
      ctx_(run_context != nullptr ? run_context : &RunContext::Unlimited()),
      covered_(system.num_elements()),
      words_per_row_(covered_.num_words()) {
  if (options_.trace != nullptr) {
    obs::MetricRegistry& metrics = options_.trace->metrics();
    celf_hits_ = &metrics.counter("engine.celf_hits");
    celf_misses_ = &metrics.counter("engine.celf_misses");
    batch_scans_ = &metrics.counter("engine.batch_scans");
    batch_shards_ = &metrics.counter("engine.batch_shards");
    shard_recoveries_ = &metrics.counter("engine.shard_recoveries");
  }
  const std::size_t m = system.num_sets();
  count_.reserve(m);
  for (const auto& s : system.sets()) count_.push_back(s.elements.size());

  if (options_.marginal_mode == MarginalMode::kEager) {
    system.InvertedIndex();  // force construction up front
    return;
  }

  row_of_.assign(m, kNoRow);
  if (options_.membership != MembershipRepr::kList) {
    // Materialize packed rows for every set the representation picks.
    std::size_t num_rows = 0;
    for (SetId id = 0; id < m; ++id) {
      const std::size_t size = system.set(id).elements.size();
      if (options_.membership == MembershipRepr::kBitset ||
          DenseEnoughForRow(size, system.num_elements())) {
        row_of_[id] = static_cast<std::uint32_t>(num_rows++);
      }
    }
    rows_.assign(num_rows * words_per_row_, 0);
    for (SetId id = 0; id < m; ++id) {
      if (row_of_[id] == kNoRow) continue;
      std::uint64_t* row = rows_.data() + row_of_[id] * words_per_row_;
      for (ElementId e : system.set(id).elements) {
        row[e >> 6] |= std::uint64_t{1} << (e & 63);
      }
    }
  }

  if (options_.num_shards > 1) {
    bounds_ = ShardBounds(system.num_elements(), options_.num_shards);
    num_shards_ = bounds_.size() - 1;
  }
  if (!sharded()) {
    stamp_.assign(m, 0);
    return;
  }

  const std::size_t S = num_shards_;
  word_bounds_.resize(S + 1);
  for (std::size_t s = 0; s < S; ++s) word_bounds_[s] = bounds_[s] / 64;
  word_bounds_[S] = covered_.num_words();  // last bound may be mid-word
  shard_covered_.assign(S, 0);
  slice_begin_.assign(m * (S + 1), 0);
  shard_count_.assign(m * S, 0);
  shard_stamp_.assign(m * S, 0);
  for (SetId id = 0; id < m; ++id) {
    const auto& elems = system.set(id).elements;
    const std::size_t pos = id * (S + 1);
    // Sorted elements cut at the shard bounds; slice s is
    // elems[slice_begin[s] .. slice_begin[s+1]).
    for (std::size_t s = 1; s <= S; ++s) {
      slice_begin_[pos + s] = static_cast<std::uint32_t>(
          std::lower_bound(elems.begin(), elems.end(),
                           static_cast<ElementId>(bounds_[s])) -
          elems.begin());
    }
    for (std::size_t s = 0; s < S; ++s) {
      shard_count_[id * S + s] =
          slice_begin_[pos + s + 1] - slice_begin_[pos + s];
    }
  }
}

void BenefitEngine::Reset() {
  covered_.clear();
  for (SetId id = 0; id < count_.size(); ++id) {
    count_[id] = system_.set(id).elements.size();
  }
  if (!stamp_.empty()) std::fill(stamp_.begin(), stamp_.end(), 0);
  if (sharded()) {
    std::fill(shard_covered_.begin(), shard_covered_.end(), 0);
    std::fill(shard_stamp_.begin(), shard_stamp_.end(), 0);
    const std::size_t S = num_shards_;
    for (SetId id = 0; id < count_.size(); ++id) {
      const std::size_t pos = id * (S + 1);
      for (std::size_t s = 0; s < S; ++s) {
        shard_count_[id * S + s] =
            slice_begin_[pos + s + 1] - slice_begin_[pos + s];
      }
    }
  }
}

std::size_t BenefitEngine::Recount(SetId id) const {
  if (row_of_.empty() || row_of_[id] == kNoRow) {
    return covered_.CountClear(system_.set(id).elements);
  }
  return covered_.AndNotCount(rows_.data() + row_of_[id] * words_per_row_,
                              words_per_row_);
}

std::size_t BenefitEngine::RecountSlice(SetId id, std::size_t s) const {
  if (!row_of_.empty() && row_of_[id] != kNoRow) {
    return covered_.AndNotCountWords(
        rows_.data() + row_of_[id] * words_per_row_, word_bounds_[s],
        word_bounds_[s + 1]);
  }
  const auto& elems = system_.set(id).elements;
  return covered_.CountClear(elems.data() + SliceBegin(id, s),
                             elems.data() + SliceBegin(id, s + 1));
}

std::size_t BenefitEngine::MarginalCount(SetId id) {
  if (options_.marginal_mode == MarginalMode::kEager) return count_[id];

  if (sharded()) {
    if (count_[id] == 0) {
      if (celf_hits_ != nullptr) celf_hits_->Increment();
      return 0;
    }
    // Recount only the slices whose shard coverage moved; fresh slices —
    // including every shard untouched since the last read — contribute
    // their cached count in O(1). A zero slice can never grow, so it is
    // fresh at any epoch.
    bool stale = false;
    std::size_t total = 0;
    const std::size_t S = num_shards_;
    for (std::size_t s = 0; s < S; ++s) {
      const std::size_t idx = id * S + s;
      if (shard_count_[idx] != 0 &&
          shard_stamp_[idx] != shard_covered_[s]) {
        stale = true;
        ctx_->ChargeRecounts(SliceBegin(id, s + 1) - SliceBegin(id, s));
        shard_count_[idx] = RecountSlice(id, s);
        shard_stamp_[idx] = shard_covered_[s];
      }
      total += shard_count_[idx];
    }
    count_[id] = total;
    if (stale) {
      if (celf_misses_ != nullptr) celf_misses_->Increment();
    } else {
      if (celf_hits_ != nullptr) celf_hits_->Increment();
    }
    return total;
  }

  const std::size_t epoch = covered_.count();
  if (stamp_[id] == epoch || count_[id] == 0) {
    if (celf_hits_ != nullptr) celf_hits_->Increment();
    return count_[id];
  }
  if (celf_misses_ != nullptr) celf_misses_->Increment();
  // The recount itself stays exact; the charge only decrements the budget
  // and latches a trip for the caller's next Check().
  ctx_->ChargeRecounts(system_.set(id).elements.size());
  count_[id] = Recount(id);
  stamp_[id] = epoch;
  return count_[id];
}

std::size_t BenefitEngine::Select(SetId id) {
  if (options_.marginal_mode == MarginalMode::kEager) {
    const auto& inverted = system_.InvertedIndex();
    std::size_t newly = 0;
    for (ElementId e : system_.set(id).elements) {
      if (covered_.set(e)) {
        ++newly;
        for (SetId other : inverted[e]) --count_[other];
      }
    }
    return newly;
  }

  if (sharded()) {
    // Cover shard by shard so exactly the shards that gained elements have
    // their epochs bumped; shards where the set has no elements are skipped
    // outright (their rows words are zero there anyway).
    const std::size_t S = num_shards_;
    const bool has_row = !row_of_.empty() && row_of_[id] != kNoRow;
    const std::uint64_t* row =
        has_row ? rows_.data() + row_of_[id] * words_per_row_ : nullptr;
    const auto& elems = system_.set(id).elements;
    std::size_t newly = 0;
    for (std::size_t s = 0; s < S; ++s) {
      const std::size_t b = SliceBegin(id, s);
      const std::size_t e = SliceBegin(id, s + 1);
      if (b == e) continue;
      std::size_t newly_s;
      if (has_row) {
        newly_s =
            covered_.UnionWithWords(row, word_bounds_[s], word_bounds_[s + 1]);
      } else {
        newly_s = 0;
        for (std::size_t j = b; j < e; ++j) {
          if (covered_.set(elems[j])) ++newly_s;
        }
      }
      if (newly_s != 0) {
        shard_covered_[s] += newly_s;
        newly += newly_s;
      }
    }
    // The selected set is exhausted in every shard; pin its slices at the
    // now-current epochs so zero-count short-circuits without recounts.
    for (std::size_t s = 0; s < S; ++s) {
      shard_count_[id * S + s] = 0;
      shard_stamp_[id * S + s] = shard_covered_[s];
    }
    count_[id] = 0;
    return newly;
  }

  std::size_t newly;
  if (!row_of_.empty() && row_of_[id] != kNoRow) {
    newly = covered_.UnionWith(rows_.data() + row_of_[id] * words_per_row_,
                               words_per_row_);
  } else {
    newly = 0;
    for (ElementId e : system_.set(id).elements) {
      if (covered_.set(e)) ++newly;
    }
  }
  // The selected set itself is exhausted; pin its count so zero-count
  // short-circuits without a recount.
  count_[id] = 0;
  stamp_[id] = covered_.count();
  return newly;
}

void BenefitEngine::ComputeShardStripe(std::size_t s,
                                       const std::vector<SetId>& ids,
                                       std::size_t* stripe,
                                       std::atomic<bool>& aborted) {
  const std::size_t S = num_shards_;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const SetId id = ids[i];
    const std::size_t idx = id * S + s;
    const std::size_t b = SliceBegin(id, s);
    const std::size_t e = SliceBegin(id, s + 1);
    if (b == e) {
      stripe[i] = 0;
      continue;
    }
    if (shard_count_[idx] == 0 || shard_stamp_[idx] == shard_covered_[s]) {
      stripe[i] = shard_count_[idx];
      continue;
    }
    if (aborted.load(std::memory_order_relaxed) ||
        ctx_->ChargeRecounts(e - b) != TripKind::kNone) {
      aborted.store(true, std::memory_order_relaxed);
      stripe[i] = shard_count_[idx];
      continue;
    }
    stripe[i] = RecountSlice(id, s);
  }
}

Status BenefitEngine::BatchMarginals(const std::vector<SetId>& ids,
                                     std::vector<std::size_t>& out) {
  out.resize(ids.size());
  if (options_.marginal_mode == MarginalMode::kEager) {
    for (std::size_t i = 0; i < ids.size(); ++i) out[i] = count_[ids[i]];
    return Status::OK();
  }
  if (const TripKind trip = ctx_->Check(); trip != TripKind::kNone) {
    // Already interrupted: hand back the cached counts (valid CELF upper
    // bounds) without recounting or committing anything.
    for (std::size_t i = 0; i < ids.size(); ++i) out[i] = count_[ids[i]];
    return TripStatus(trip, "BatchMarginals");
  }
  ThreadPool& p = pool();
  if (batch_scans_ != nullptr) batch_scans_->Increment();

  if (sharded()) {
    // Fan out one task per shard: each task reads only immutable batch
    // state (covered words, caches, epochs) and writes its own disjoint
    // stripe of the scratch buffer; the cache commit below stays serial.
    const std::size_t n = ids.size();
    const std::size_t S = num_shards_;
    stripe_scratch_.assign(S * n, 0);
    std::vector<unsigned char> lost(S, 0);
    std::atomic<bool> aborted{false};
    obs::Span batch_span;
    if (options_.trace != nullptr && p.size() > 1) {
      batch_span = obs::Span(options_.trace, "engine.batch");
    }
    // Per-stripe wall time goes two places: the always-on flight recorder
    // (as engine.stripe/<s> complete events, for post-hoc skew forensics)
    // and — when a trace session is attached — a per-shard quantile sketch
    // the telemetry pump merges into an engine.stripe_seconds aggregate.
    obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
    auto timed_stripe = [&](std::size_t s) {
      const std::int64_t t0 = recorder.NowNs();
      ComputeShardStripe(s, ids, stripe_scratch_.data() + s * n, aborted);
      const std::int64_t t1 = recorder.NowNs();
      recorder.RecordComplete("engine.stripe/" + std::to_string(s), t0, t1);
      if (options_.trace != nullptr) {
        options_.trace->metrics()
            .sketch("engine.stripe_seconds#" + std::to_string(s))
            .Observe(static_cast<double>(t1 - t0) * 1e-9);
      }
    };
    const Status pool_status =
        p.ParallelFor(S, 1, [&](std::size_t begin, std::size_t end) {
          for (std::size_t s = begin; s < end; ++s) {
            if (batch_shards_ != nullptr) batch_shards_->Increment();
            if (FaultFires(FaultPoint::kShardWorkerLoss)) {
              lost[s] = 1;  // dropped before scanning anything
              continue;
            }
            timed_stripe(s);
          }
        });
    SCWSC_RETURN_NOT_OK(pool_status);
    // Recover lost shards inline: recomputing a stripe serially yields the
    // same values a surviving worker would have produced, so a fault costs
    // latency but never changes a count.
    for (std::size_t s = 0; s < S; ++s) {
      if (!lost[s]) continue;
      if (shard_recoveries_ != nullptr) shard_recoveries_->Increment();
      timed_stripe(s);
    }
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t total = 0;
      for (std::size_t s = 0; s < S; ++s) total += stripe_scratch_[s * n + i];
      out[i] = total;
    }
    if (aborted.load(std::memory_order_relaxed)) {
      // Mixed fresh/stale stripes are still upper bounds; skip the commit
      // so no stale slice is stamped at the current epoch.
      return TripStatus(ctx_->tripped(), "BatchMarginals");
    }
    for (std::size_t i = 0; i < n; ++i) {
      const SetId id = ids[i];
      for (std::size_t s = 0; s < S; ++s) {
        shard_count_[id * S + s] = stripe_scratch_[s * n + i];
        shard_stamp_[id * S + s] = shard_covered_[s];
      }
      count_[id] = out[i];
    }
    return Status::OK();
  }

  const std::size_t epoch = covered_.count();
  // Parallel batches are the engine's only multi-threaded phase; give them
  // a span so the chunk fan-out is visible in the trace.
  obs::Span batch_span;
  if (options_.trace != nullptr && p.size() > 1 &&
      ids.size() >= options_.min_parallel_batch) {
    batch_span = obs::Span(options_.trace, "engine.batch");
  }
  // Chunks write disjoint out slots; the cache commit below is serial, so
  // duplicate ids and any thread count yield identical results. Once any
  // chunk observes a trip, later indices fall back to the cached counts.
  std::atomic<bool> aborted{false};
  const Status pool_status = p.ParallelFor(
      ids.size(), options_.min_parallel_batch,
      [&](std::size_t begin, std::size_t end) {
        if (batch_shards_ != nullptr) batch_shards_->Increment();
        for (std::size_t i = begin; i < end; ++i) {
          const SetId id = ids[i];
          if (stamp_[id] == epoch || count_[id] == 0) {
            out[i] = count_[id];
            continue;
          }
          if (aborted.load(std::memory_order_relaxed) ||
              ctx_->ChargeRecounts(system_.set(id).elements.size()) !=
                  TripKind::kNone) {
            aborted.store(true, std::memory_order_relaxed);
            out[i] = count_[id];
            continue;
          }
          out[i] = Recount(id);
        }
      });
  SCWSC_RETURN_NOT_OK(pool_status);
  if (aborted.load(std::memory_order_relaxed)) {
    // Mixed fresh/stale results: skip the commit entirely so the cache is
    // never poisoned with a stale count stamped at the current epoch.
    return TripStatus(ctx_->tripped(), "BatchMarginals");
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    count_[ids[i]] = out[i];
    stamp_[ids[i]] = epoch;
  }
  return Status::OK();
}

ThreadPool& BenefitEngine::pool() {
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  return *pool_;
}

Status FilterCoveredIds(const DynamicBitset& covered,
                        const std::vector<std::vector<std::uint32_t>*>& lists,
                        ThreadPool* pool, const RunContext* run_context) {
  const RunContext& ctx =
      run_context != nullptr ? *run_context : RunContext::Unlimited();
  std::atomic<bool> aborted{false};
  auto filter_range = [&](std::size_t begin, std::size_t end) {
    // One trip check per chunk: a skipped list stays a valid superset of
    // the filtered one, and callers bail out on the returned status.
    if (aborted.load(std::memory_order_relaxed) ||
        ctx.Check() != TripKind::kNone) {
      aborted.store(true, std::memory_order_relaxed);
      return;
    }
    for (std::size_t i = begin; i < end; ++i) {
      auto& list = *lists[i];
      list.erase(std::remove_if(
                     list.begin(), list.end(),
                     [&](std::uint32_t id) { return covered.test(id); }),
                 list.end());
    }
  };
  if (pool != nullptr && pool->size() > 1) {
    SCWSC_RETURN_NOT_OK(pool->ParallelFor(lists.size(), 16, filter_range));
  } else {
    filter_range(0, lists.size());
  }
  if (aborted.load(std::memory_order_relaxed)) {
    return TripStatus(ctx.tripped(), "FilterCoveredIds");
  }
  return Status::OK();
}

}  // namespace scwsc
