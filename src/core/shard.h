// Element-range sharding of a set-cover universe.
//
// A shard plan cuts the universe {0, ..., n-1} into contiguous element
// ranges. Boundaries are aligned to 64-element words so that a packed
// bitset row splits into per-shard word ranges with no partial words: a
// shard's recount is then a word-subrange AND-NOT popcount and a shard's
// covered-epoch is exactly the popcount of its own words.
//
// The same plan function is used by api::InstanceSnapshot (which stamps the
// plan and the per-shard content hashes into the snapshot) and by the
// BenefitEngine (which keys its per-shard marginal caches on it), so the two
// layers can never disagree about where a shard begins.
//
// Sharding is a work-partitioning choice, not a semantic one: every shard
// count yields bit-identical marginal counts and therefore bit-identical
// solver outputs (tests/sharded_snapshot_test.cc holds this over every
// registered solver).

#ifndef SCWSC_CORE_SHARD_H_
#define SCWSC_CORE_SHARD_H_

#include <cstddef>
#include <vector>

namespace scwsc {

/// How an instance's universe is partitioned. Passed to
/// api::InstanceSnapshot::FromTable / FromSetSystem; the effective shard
/// count (after clamping) propagates into EngineOptions::num_shards.
struct ShardingOptions {
  /// Requested number of element-range shards. 1 (the default) is the flat
  /// path: no per-shard state, no behaviour change anywhere.
  std::size_t num_shards = 1;
  /// Floor on elements per shard: the effective shard count is reduced so
  /// no shard is smaller than this (tiny shards cost per-shard bookkeeping
  /// without amortizing it). The universe itself may be smaller.
  std::size_t min_shard_elements = 4096;
};

/// The effective shard count for a universe of n elements: `requested`
/// clamped so every shard spans at least one 64-element word and at least
/// `min_elements` elements. Always >= 1.
std::size_t EffectiveShards(std::size_t n, std::size_t requested,
                            std::size_t min_elements = 1);

/// Word-aligned shard boundaries for `num_shards` shards over n elements:
/// bounds[s] .. bounds[s+1] is shard s's element range, bounds.front() == 0,
/// bounds.back() == n, and every interior boundary is a multiple of 64.
/// `num_shards` is re-clamped via EffectiveShards, so the result always has
/// between 2 and num_shards+1 entries.
std::vector<std::size_t> ShardBounds(std::size_t n, std::size_t num_shards);

}  // namespace scwsc

#endif  // SCWSC_CORE_SHARD_H_
