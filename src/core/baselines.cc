#include "src/core/baselines.h"

#include "src/core/benefit_engine.h"
#include "src/core/greedy_state.h"
#include "src/obs/trace.h"

namespace scwsc {
namespace {

/// The engine inherits the baseline's trace session unless the caller wired
/// its own.
template <typename Options>
EngineOptions EngineWithTrace(const Options& options) {
  EngineOptions engine = options.engine;
  if (engine.trace == nullptr) engine.trace = options.trace;
  return engine;
}

/// Seeds `selector` with every set's epoch-zero marginal in one
/// deterministic batch (chunk- or shard-parallel under the engine's
/// options). An interruption from the batch only means the context was
/// tripped before the run began — the cached counts are still exact at
/// epoch zero — so seeding proceeds and the caller's next Check() surfaces
/// the trip; any other error is returned.
template <typename KeyMaker>
Status SeedSelector(const SetSystem& system, BenefitEngine& state,
                    LazySelector& selector, ScanStats& tally,
                    KeyMaker&& make_key) {
  std::vector<SetId> all_ids(system.num_sets());
  for (SetId id = 0; id < system.num_sets(); ++id) all_ids[id] = id;
  std::vector<std::size_t> counts;
  const Status batch = state.BatchMarginals(all_ids, counts);
  if (!batch.ok() && !batch.IsInterruption()) return batch;
  tally.sets_considered += system.num_sets();
  for (SetId id = 0; id < system.num_sets(); ++id) {
    if (counts[id] > 0) {
      selector.Push(make_key(counts[id], system.set(id).cost, id));
    }
  }
  return Status::OK();
}

}  // namespace

Result<Solution> RunGreedyWeightedSetCover(const SetSystem& system,
                                           const GreedyWscOptions& options,
                                           ScanStats* stats) {
  if (options.coverage_fraction < 0.0 || options.coverage_fraction > 1.0) {
    return Status::InvalidArgument("coverage_fraction must be in [0, 1]");
  }
  std::size_t rem =
      SetSystem::CoverageTarget(options.coverage_fraction,
                                system.num_elements());
  Solution solution;
  if (rem == 0) return solution;

  ScanStats local_stats;
  ScanStats& tally = stats != nullptr ? *stats : local_stats;
  const RunContext& ctx =
      options.run_context ? *options.run_context : RunContext::Unlimited();
  BenefitEngine state(system, EngineWithTrace(options), &ctx);
  obs::Span span(options.trace, "greedy_wsc");
  LazySelector selector;
  SCWSC_RETURN_NOT_OK(
      SeedSelector(system, state, selector, tally, MakeGainKey));

  while (rem > 0) {
    if (const TripKind trip = ctx.Check(); trip != TripKind::kNone) {
      solution.covered = state.covered_count();
      return InterruptedStatus(trip, "greedy WSC", std::move(solution));
    }
    if (solution.sets.size() >= options.max_sets) {
      return Status::Infeasible("greedy WSC: max_sets reached before target");
    }
    auto key = selector.Pop([&](SetId id) -> std::optional<SelectionKey> {
      ++tally.sets_considered;
      const std::size_t count = state.MarginalCount(id);
      if (count == 0) return std::nullopt;
      return MakeGainKey(count, system.set(id).cost, id);
    });
    if (!key.has_value()) {
      return Status::Infeasible("greedy WSC: sets exhausted before target");
    }
    const std::size_t newly = state.Select(key->id);
    solution.sets.push_back(key->id);
    solution.total_cost += system.set(key->id).cost;
    rem = newly >= rem ? 0 : rem - newly;
  }
  solution.covered = state.covered_count();
  return solution;
}

Result<Solution> RunGreedyMaxCoverage(
    const SetSystem& system, const GreedyMaxCoverageOptions& options,
    ScanStats* stats) {
  if (options.k == 0) return Status::InvalidArgument("k must be positive");
  if (options.stop_coverage_fraction < 0.0 ||
      options.stop_coverage_fraction > 1.0) {
    return Status::InvalidArgument("stop_coverage_fraction must be in [0, 1]");
  }
  const std::size_t stop_at = SetSystem::CoverageTarget(
      options.stop_coverage_fraction, system.num_elements());

  Solution solution;
  ScanStats local_stats;
  ScanStats& tally = stats != nullptr ? *stats : local_stats;
  const RunContext& ctx =
      options.run_context ? *options.run_context : RunContext::Unlimited();
  BenefitEngine state(system, EngineWithTrace(options), &ctx);
  obs::Span span(options.trace, "greedy_max_coverage");
  LazySelector selector;
  SCWSC_RETURN_NOT_OK(
      SeedSelector(system, state, selector, tally, MakeBenefitKey));

  while (solution.sets.size() < options.k && state.covered_count() < stop_at) {
    if (const TripKind trip = ctx.Check(); trip != TripKind::kNone) {
      solution.covered = state.covered_count();
      return InterruptedStatus(trip, "greedy max-coverage",
                               std::move(solution));
    }
    auto key = selector.Pop([&](SetId id) -> std::optional<SelectionKey> {
      ++tally.sets_considered;
      const std::size_t count = state.MarginalCount(id);
      if (count == 0) return std::nullopt;
      return MakeBenefitKey(count, system.set(id).cost, id);
    });
    if (!key.has_value()) break;  // nothing adds coverage
    state.Select(key->id);
    solution.sets.push_back(key->id);
    solution.total_cost += system.set(key->id).cost;
  }
  solution.covered = state.covered_count();
  return solution;
}

Result<Solution> RunBudgetedMaxCoverage(
    const SetSystem& system, const BudgetedMaxCoverageOptions& options,
    ScanStats* stats) {
  if (options.budget < 0.0) {
    return Status::InvalidArgument("budget must be >= 0");
  }
  Solution solution;
  ScanStats local_stats;
  ScanStats& tally = stats != nullptr ? *stats : local_stats;
  const RunContext& ctx =
      options.run_context ? *options.run_context : RunContext::Unlimited();
  BenefitEngine state(system, EngineWithTrace(options), &ctx);
  obs::Span span(options.trace, "budgeted_max_coverage");
  double remaining = options.budget;

  // The greedy of [11] considers, in each step, only sets that still fit in
  // the remaining budget. Both filters decay monotonically — gains shrink
  // with coverage and the remaining budget only decreases, so a set that no
  // longer fits can be discarded permanently — which keeps the lazy
  // selector sound.
  LazySelector selector;
  SCWSC_RETURN_NOT_OK(
      SeedSelector(system, state, selector, tally, MakeGainKey));

  while (solution.sets.size() < options.max_sets) {
    if (const TripKind trip = ctx.Check(); trip != TripKind::kNone) {
      solution.covered = state.covered_count();
      return InterruptedStatus(trip, "budgeted max-coverage",
                               std::move(solution));
    }
    auto key = selector.Pop([&](SetId id) -> std::optional<SelectionKey> {
      ++tally.sets_considered;
      const std::size_t count = state.MarginalCount(id);
      if (count == 0) return std::nullopt;
      if (system.set(id).cost > remaining) return std::nullopt;  // never fits again
      return MakeGainKey(count, system.set(id).cost, id);
    });
    if (!key.has_value()) break;
    const double cost = system.set(key->id).cost;
    state.Select(key->id);
    remaining -= cost;
    solution.sets.push_back(key->id);
    solution.total_cost += cost;
  }
  solution.covered = state.covered_count();
  return solution;
}

}  // namespace scwsc
