// Literal reference implementations of Figs. 1 and 2.
//
// These follow the paper's pseudocode line by line: each budget round of
// CMC recomputes the marginal benefit of every set (Fig. 1 lines 04-05),
// every selection subtracts the chosen set's marginal benefit from every
// remaining set by an explicit scan (Fig. 1 lines 24-27, Fig. 2 lines
// 12-15), and each pick is a linear argmax over the whole collection.
//
// They exist for two reasons:
//  - they are the *unoptimized baseline* of the paper's Figs. 5-9 (the
//    tuned engines in cwsc.h / cmc.h use inverted indexes and lazy heaps,
//    which the 2015 baseline did not);
//  - they cross-validate the tuned engines: with identical tie-breaking
//    both must produce identical selections, which the test suite asserts.

#ifndef SCWSC_CORE_LITERAL_H_
#define SCWSC_CORE_LITERAL_H_

#include "src/common/result.h"
#include "src/core/cmc.h"
#include "src/core/cwsc.h"

namespace scwsc {

/// Fig. 2 verbatim. Produces exactly the same Solution as RunCwsc.
/// `stats` (optional) receives the candidate-evaluation tally.
Result<Solution> RunCwscLiteral(const SetSystem& system,
                                const CwscOptions& options,
                                ScanStats* stats = nullptr);

/// Fig. 1 verbatim (plus the shared epsilon/l level generalizations).
/// Produces exactly the same CmcResult as RunCmc.
Result<CmcResult> RunCmcLiteral(const SetSystem& system,
                                const CmcOptions& options);

}  // namespace scwsc

#endif  // SCWSC_CORE_LITERAL_H_
