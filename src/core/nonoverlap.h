// Non-overlapping summarization — the related-work constraint of
// AlphaSum [5] (§III): "a summary with k non-overlapping patterns".
//
// SCWSC deliberately allows overlapping sets; AlphaSum-style summaries
// forbid it. This module implements the natural greedy under the
// disjointness constraint so the difference can be measured: a set is
// eligible only when its *entire* benefit set is disjoint from everything
// already selected (not merely its marginal benefit). Disjointness shrinks
// the feasible space drastically — with few sets the coverage target is
// often unreachable at all, which is the paper's §III argument for not
// adopting the constraint.

#ifndef SCWSC_CORE_NONOVERLAP_H_
#define SCWSC_CORE_NONOVERLAP_H_

#include "src/common/result.h"
#include "src/core/solution.h"

namespace scwsc {

namespace obs {
class TraceSession;
}  // namespace obs

struct NonOverlapOptions {
  std::size_t k = 10;
  double coverage_fraction = 1.0;  // AlphaSum covers the entire data set
  /// When true, a selection that stalls (or exhausts k) below the coverage
  /// target is returned as a partial solution instead of Infeasible, so
  /// callers can report how far disjointness got.
  bool best_effort = false;
  /// Greedy selection rule: by gain (|Ben|/cost, the weighted-set-cover
  /// instinct) or by benefit (|Ben|, the max-coverage instinct, which
  /// fares better under disjointness because it does not chase cheap
  /// specks that fragment the remaining space).
  enum class Rule { kGain, kBenefit };
  Rule rule = Rule::kGain;
  /// Optional trace/metrics session (src/obs); nullptr = observability off.
  obs::TraceSession* trace = nullptr;
};

/// Greedy gain-driven selection of pairwise-disjoint sets. Returns
/// Infeasible when no disjoint set can extend the selection before the
/// coverage target is met (a frequent outcome — that is the point of the
/// comparison). `stats` (optional) receives the candidate-evaluation tally.
Result<Solution> RunNonOverlappingGreedy(const SetSystem& system,
                                         const NonOverlapOptions& options,
                                         ScanStats* stats = nullptr);

}  // namespace scwsc

#endif  // SCWSC_CORE_NONOVERLAP_H_
