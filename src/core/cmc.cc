#include "src/core/cmc.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/core/benefit_engine.h"
#include "src/core/greedy_state.h"
#include "src/obs/trace.h"

namespace scwsc {

std::size_t CmcCoverageTarget(double fraction, std::size_t n, bool relax) {
  const double eff = relax ? (1.0 - 1.0 / M_E) * fraction : fraction;
  return SetSystem::CoverageTarget(eff, n);
}

double CmcInitialBudget(const SetSystem& system, std::size_t k) {
  double budget = system.KCheapestCost(k);
  if (budget <= 0.0) {
    // All of the k cheapest sets are free. Seed the schedule with the
    // smallest positive cost so the budget can grow; if every set is free
    // the single B = 0 round already has all sets in its cheap level.
    double min_positive = 0.0;
    for (const auto& s : system.sets()) {
      if (s.cost > 0.0 && (min_positive == 0.0 || s.cost < min_positive)) {
        min_positive = s.cost;
      }
    }
    budget = min_positive;  // stays 0 when every set is free
  }
  return budget;
}

std::vector<CostLevel> BuildCmcLevels(double budget, std::size_t k,
                                      double epsilon, unsigned l) {
  SCWSC_CHECK(k >= 1, "k must be positive");
  SCWSC_CHECK(l >= 1, "l must be positive");
  const double base = 1.0 + static_cast<double>(l);
  std::vector<CostLevel> levels;

  if (epsilon == 0.0) {
    // Original structure (Fig. 1 lines 07-10): geometric levels with
    // capacities base^i down to cost B/k, then one cheap level with
    // capacity k. L = ceil(log_base k) geometric levels.
    double hi = budget;
    double capacity = base;
    // Level i spans (B/base^i, B/base^{i-1}], clamped below at B/k.
    const double floor_cost = budget / static_cast<double>(k);
    while (hi > floor_cost &&
           hi > 0.0) {  // hi == floor_cost means geometric levels are done
      double lo = std::max(hi / base, floor_cost);
      levels.push_back(CostLevel{lo, hi, static_cast<std::size_t>(capacity),
                                 /*closed_at_lo=*/false});
      hi = lo;
      capacity *= base;
    }
    levels.push_back(CostLevel{0.0, hi, k, /*closed_at_lo=*/true});
    return levels;
  }

  // Merged-level variant (§V-A3): create geometric levels while their total
  // capacity stays within epsilon * k, then one cheap level with capacity k.
  const double allowance = epsilon * static_cast<double>(k);
  double hi = budget;
  double capacity = base;
  double used = 0.0;
  while (used + capacity <= allowance && hi > 0.0) {
    levels.push_back(CostLevel{hi / base, hi, static_cast<std::size_t>(capacity),
                               /*closed_at_lo=*/false});
    used += capacity;
    hi /= base;
    capacity *= base;
  }
  levels.push_back(CostLevel{0.0, hi, k, /*closed_at_lo=*/true});
  return levels;
}

int LevelOf(const std::vector<CostLevel>& levels, double cost) {
  if (levels.empty() || cost > levels.front().hi) return -1;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const CostLevel& lv = levels[i];
    if (cost <= lv.hi && (cost > lv.lo || (lv.closed_at_lo && cost >= 0.0))) {
      return static_cast<int>(i);
    }
  }
  return -1;  // unreachable for cost in [0, budget]
}

std::size_t CmcMaxSelectable(std::size_t k, double epsilon, unsigned l) {
  // Budget value does not affect capacities; any positive budget works.
  auto levels = BuildCmcLevels(1.0, k, epsilon, l);
  std::size_t total = 0;
  for (const auto& lv : levels) total += lv.capacity;
  return total;
}

Result<CmcResult> RunCmc(const SetSystem& system, const CmcOptions& options) {
  if (options.k == 0) return Status::InvalidArgument("k must be positive");
  if (options.l == 0) return Status::InvalidArgument("l must be positive");
  if (options.coverage_fraction < 0.0 || options.coverage_fraction > 1.0) {
    return Status::InvalidArgument("coverage_fraction must be in [0, 1]");
  }
  if (options.b <= 0.0) {
    return Status::InvalidArgument("budget growth b must be positive");
  }
  if (options.epsilon < 0.0) {
    return Status::InvalidArgument("epsilon must be >= 0");
  }

  const std::size_t target = CmcCoverageTarget(
      options.coverage_fraction, system.num_elements(), options.relax_coverage);

  CmcResult result;
  if (target == 0) {
    result.budget_rounds = 0;
    return result;
  }
  if (system.num_sets() == 0) {
    return Status::Infeasible("CMC: empty set collection");
  }

  const double total_cost = system.TotalCost();
  double budget = CmcInitialBudget(system, options.k);

  const RunContext& ctx =
      options.run_context ? *options.run_context : RunContext::Unlimited();
  EngineOptions engine_options = options.engine;
  if (engine_options.trace == nullptr) engine_options.trace = options.trace;
  BenefitEngine engine(system, engine_options, &ctx);

  obs::Span cmc_span(options.trace, "cmc");
  obs::MetricCounter* picks_metric = nullptr;
  obs::MetricCounter* levels_metric = nullptr;
  if (options.trace != nullptr) {
    picks_metric = &options.trace->metrics().counter("cmc.picks");
    levels_metric = &options.trace->metrics().counter("cmc.levels");
  }

  // `partial` must arrive with `covered` already correct (the engine may be
  // mid-round or reset, so the helper cannot recompute it).
  auto interrupted = [&](TripKind trip, Solution partial) -> Status {
    partial.provenance.trip = trip;
    partial.provenance.sets_chosen = partial.sets.size();
    partial.provenance.coverage_reached = partial.covered;
    partial.provenance.budget_level = budget;
    CmcResult partial_result = result;  // rounds / considered counts so far
    partial_result.solution = std::move(partial);
    partial_result.final_budget = budget;
    return TripStatus(trip, "cmc").WithPayload(std::move(partial_result));
  };

  // Each round restarts from the empty selection, so the previous round's
  // (insufficient) cover is the best-so-far for a trip between rounds.
  Solution last_round;
  std::vector<std::size_t> level_counts;
  bool final_round = budget >= total_cost;
  for (std::size_t round = 1; round <= options.max_budget_rounds; ++round) {
    if (const TripKind trip = ctx.Check(); trip != TripKind::kNone) {
      return interrupted(trip, std::move(last_round));
    }
    result.budget_rounds = round;
    // Fig. 1 lines 04-05 recompute the marginal benefit of every set at the
    // start of each round; that is the unoptimized "patterns considered"
    // accounting of Fig. 6.
    result.sets_considered += system.num_sets();
    obs::Span round_span(options.trace, "cmc.round");

    const auto levels =
        BuildCmcLevels(budget, options.k, options.epsilon, options.l);
    if (levels_metric != nullptr) levels_metric->Increment(levels.size());

    // Bucket the sets at or below budget into their levels.
    std::vector<std::vector<SetId>> members(levels.size());
    for (SetId id = 0; id < system.num_sets(); ++id) {
      const int lv = LevelOf(levels, system.set(id).cost);
      if (lv >= 0) members[static_cast<std::size_t>(lv)].push_back(id);
    }

    engine.Reset();
    Solution solution;
    std::size_t rem = target;

    for (std::size_t li = 0; li < levels.size() && rem > 0; ++li) {
      // Rebucketing scan: (re-)evaluate every member's marginal in one
      // deterministic batch (chunk-parallel under the engine's thread
      // options) instead of one-at-a-time heap seeding.
      const Status batch = engine.BatchMarginals(members[li], level_counts);
      if (!batch.ok()) {
        if (!batch.IsInterruption()) return batch;  // pool task threw
        solution.covered = engine.covered_count();
        return interrupted(ctx.tripped(), std::move(solution));
      }
      LazySelector selector;
      for (std::size_t j = 0; j < members[li].size(); ++j) {
        if (level_counts[j] > 0) {
          const SetId id = members[li][j];
          selector.Push(MakeBenefitKey(level_counts[j], system.set(id).cost,
                                       id));
        }
      }
      for (std::size_t picks = 0; picks < levels[li].capacity && rem > 0;
           ++picks) {
        if (const TripKind trip = ctx.Check(); trip != TripKind::kNone) {
          solution.covered = engine.covered_count();
          return interrupted(trip, std::move(solution));
        }
        auto key = selector.Pop([&](SetId id) -> std::optional<SelectionKey> {
          const std::size_t count = engine.MarginalCount(id);
          if (count == 0) return std::nullopt;
          return MakeBenefitKey(count, system.set(id).cost, id);
        });
        if (!key.has_value()) break;  // Fig. 1 line 18
        const std::size_t newly = engine.Select(key->id);
        if (picks_metric != nullptr) picks_metric->Increment();
        solution.sets.push_back(key->id);
        solution.total_cost += system.set(key->id).cost;
        rem = newly >= rem ? 0 : rem - newly;
      }
    }

    if (rem == 0) {
      solution.covered = engine.covered_count();
      result.solution = std::move(solution);
      result.final_budget = budget;
      return result;
    }
    solution.covered = engine.covered_count();
    last_round = std::move(solution);

    if (final_round) {
      return Status::Infeasible(
          "CMC: coverage target unreachable even with budget = total cost");
    }
    budget *= (1.0 + options.b);
    if (budget == 0.0) {
      // Degenerate all-free system that still failed: no growth possible.
      return Status::Infeasible("CMC: zero-cost system cannot reach target");
    }
    if (budget >= total_cost) {
      // Clamp the last round so that every set is eligible; the paper's
      // loop condition ("until B > total cost") can otherwise end one round
      // short of admitting an expensive universe set.
      budget = total_cost;
      final_round = true;
    }
  }
  return Status::ResourceExhausted("CMC: max_budget_rounds exceeded");
}

}  // namespace scwsc
