// Shared machinery for the greedy solvers.
//
// The selection comparators BetterByGain / BetterByBenefit define the one
// deterministic candidate order used everywhere: by the literal Fig. 1/2
// reference implementations, by CWSC's qualified-argmax, and by the
// SelectionKey heap keys of the lazy selectors. Gains are compared exactly
// (cross-multiplied, via BetterGain), never as rounded doubles, so every
// engine configuration resolves ties identically.
//
// LazySelector implements the classic lazy-greedy (CELF) trick for argmax
// selection under keys that only decrease over time (marginal benefit
// counts and marginal gains are both non-increasing as coverage grows, by
// submodularity): keys are heap-ordered as of their push time, and a popped
// entry is re-pushed when its key has decayed.
//
// CoverState is the eager marginal-maintenance facade kept for callers that
// want the seed semantics unconditionally (literal engines, LP rounding
// repair); it is a thin wrapper over BenefitEngine in its eager/list
// reference configuration.

#ifndef SCWSC_CORE_GREEDY_STATE_H_
#define SCWSC_CORE_GREEDY_STATE_H_

#include <optional>
#include <queue>
#include <vector>

#include "src/common/bitset.h"
#include "src/core/benefit_engine.h"
#include "src/core/set_system.h"

namespace scwsc {

/// True when candidate a = (count_a, cost_a, id_a) precedes candidate b in
/// the gain-driven selection order shared by CWSC, the weighted baselines
/// and the literal Fig. 2 engine: higher marginal gain count/cost (compared
/// exactly by cross-multiplication; zero cost = infinite gain), then higher
/// marginal benefit, then lower cost, then lower id.
bool BetterByGain(std::size_t count_a, double cost_a, SetId id_a,
                  std::size_t count_b, double cost_b, SetId id_b);

/// True when a precedes b in the benefit-driven order used by CMC's
/// per-level argmax and max coverage: higher marginal benefit, then lower
/// cost, then lower id.
bool BetterByBenefit(std::size_t count_a, double cost_a, SetId id_a,
                     std::size_t count_b, double cost_b, SetId id_b);

/// Priority key for greedy selection. A key carries the candidate's current
/// marginal count, its (fixed) cost and id, and which of the two shared
/// selection orders applies; operator< delegates to that order, so a heap
/// of keys pops candidates exactly as the linear-scan argmax would visit
/// them.
struct SelectionKey {
  enum class Kind : unsigned char { kBenefit, kGain };

  Kind kind = Kind::kBenefit;
  std::size_t count = 0;
  double cost = 0.0;
  SetId id = kInvalidSet;

  bool operator<(const SelectionKey& other) const {
    // a < b iff b is the better candidate; both orders end on the id
    // tie-break, so this is a strict total order per kind.
    if (kind == Kind::kGain) {
      return BetterByGain(other.count, other.cost, other.id, count, cost, id);
    }
    return BetterByBenefit(other.count, other.cost, other.id, count, cost,
                           id);
  }
  bool operator==(const SelectionKey& other) const {
    return kind == other.kind && count == other.count && cost == other.cost &&
           id == other.id;
  }
};

/// Key for benefit-maximizing selection (CMC levels, max coverage).
SelectionKey MakeBenefitKey(std::size_t count, double cost, SetId id);

/// Key for gain-maximizing selection (weighted set cover, budgeted MC).
SelectionKey MakeGainKey(std::size_t count, double cost, SetId id);

/// Lazy-greedy max selector. Push every candidate once with its initial key;
/// Pop() returns the candidate whose *current* key (as told by `refresh`) is
/// maximal. `refresh` must never report a key greater than any previously
/// reported key for the same id (monotone decay), which all marginal-benefit
/// style keys satisfy.
class LazySelector {
 public:
  void Push(SelectionKey key) { heap_.push(key); }

  bool empty() const { return heap_.empty(); }

  /// Pops the candidate with the maximal current key. `refresh(id)` returns
  /// the candidate's current key, or nullopt when the candidate is no longer
  /// eligible (e.g. zero marginal benefit) and should be discarded.
  template <typename RefreshFn>
  std::optional<SelectionKey> Pop(RefreshFn&& refresh) {
    while (!heap_.empty()) {
      SelectionKey top = heap_.top();
      heap_.pop();
      std::optional<SelectionKey> current = refresh(top.id);
      if (!current.has_value()) continue;  // dropped
      if (*current == top) return top;     // key is fresh: true argmax
      // Key decayed; re-queue at its current value. By monotone decay the
      // re-queued key is <= top, so the heap order stays consistent.
      heap_.push(*current);
    }
    return std::nullopt;
  }

 private:
  std::priority_queue<SelectionKey> heap_;
};

/// Eager covered-state + live-marginal tracker (the seed reference
/// behaviour). New code should take a BenefitEngine with explicit
/// EngineOptions instead; CoverState remains for callers that depend on
/// eager O(1) marginal reads.
class CoverState {
 public:
  explicit CoverState(const SetSystem& system)
      : engine_(system, SeedReferenceEngine()) {}

  /// Resets to the empty selection.
  void Reset() { engine_.Reset(); }

  /// |MBen(s, S)| for the current selection S.
  std::size_t MarginalCount(SetId id) const {
    return engine_.MarginalCount(id);
  }

  /// Number of covered elements.
  std::size_t covered_count() const { return engine_.covered_count(); }

  bool IsCovered(ElementId e) const { return engine_.IsCovered(e); }

  const DynamicBitset& covered() const { return engine_.covered(); }

  /// Marks `id` selected: covers its elements and updates every marginal
  /// count. Returns the number of newly covered elements (the marginal
  /// benefit the selection realized).
  std::size_t Select(SetId id) { return engine_.Select(id); }

 private:
  mutable BenefitEngine engine_;
};

}  // namespace scwsc

#endif  // SCWSC_CORE_GREEDY_STATE_H_
