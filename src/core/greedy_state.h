// Shared machinery for the greedy solvers.
//
// CoverState maintains, for one run of a greedy algorithm, the covered-
// element bitset and the *live marginal benefit count* of every set
// (|MBen(s, S)| in the paper's notation). Selecting a set marks its newly
// covered elements and decrements the marginal counts of every other set
// containing them via the system's inverted index; total update work over a
// whole run is bounded by Σ_e degree(e) — each element is newly covered at
// most once.
//
// LazySelector implements the classic lazy-greedy trick for argmax selection
// under keys that only decrease over time (marginal benefit counts and
// marginal gains are both non-increasing as coverage grows, by
// submodularity): keys are heap-ordered as of their push time, and a popped
// entry is re-pushed when its key has decayed.

#ifndef SCWSC_CORE_GREEDY_STATE_H_
#define SCWSC_CORE_GREEDY_STATE_H_

#include <optional>
#include <queue>
#include <vector>

#include "src/common/bitset.h"
#include "src/core/set_system.h"

namespace scwsc {

class CoverState {
 public:
  explicit CoverState(const SetSystem& system);

  /// Resets to the empty selection.
  void Reset();

  /// |MBen(s, S)| for the current selection S.
  std::size_t MarginalCount(SetId id) const { return marginal_[id]; }

  /// Number of covered elements.
  std::size_t covered_count() const { return covered_.count(); }

  bool IsCovered(ElementId e) const { return covered_.test(e); }

  const DynamicBitset& covered() const { return covered_; }

  /// Marks `id` selected: covers its elements and updates every marginal
  /// count. Returns the number of newly covered elements (the marginal
  /// benefit the selection realized).
  std::size_t Select(SetId id);

 private:
  const SetSystem& system_;
  DynamicBitset covered_;
  std::vector<std::size_t> marginal_;
};

/// Priority key for greedy selection with deterministic tie-breaking:
/// higher `primary` wins, then higher `count`, then lower `cost`, then lower
/// set id. For benefit-driven selection pass primary = count; for gain-driven
/// selection the caller encodes gain comparisons via MakeGainKey.
struct SelectionKey {
  double primary = 0.0;
  std::size_t count = 0;
  double cost = 0.0;
  SetId id = kInvalidSet;

  bool operator<(const SelectionKey& other) const {
    if (primary != other.primary) return primary < other.primary;
    if (count != other.count) return count < other.count;
    if (cost != other.cost) return cost > other.cost;
    return id > other.id;  // lower id preferred => "less" when id greater
  }
  bool operator==(const SelectionKey& other) const {
    return primary == other.primary && count == other.count &&
           cost == other.cost && id == other.id;
  }
};

/// Key for benefit-maximizing selection (CMC levels, max coverage).
SelectionKey MakeBenefitKey(std::size_t count, double cost, SetId id);

/// Key for gain-maximizing selection (weighted set cover, budgeted MC).
/// Gain = count / cost with cost 0 treated as the strongest possible gain;
/// the double primary is count/cost which is monotone with the exact
/// cross-multiplied comparison for the magnitudes arising here.
SelectionKey MakeGainKey(std::size_t count, double cost, SetId id);

/// Lazy-greedy max selector. Push every candidate once with its initial key;
/// Pop() returns the candidate whose *current* key (as told by `refresh`) is
/// maximal. `refresh` must never report a key greater than any previously
/// reported key for the same id (monotone decay), which all marginal-benefit
/// style keys satisfy.
class LazySelector {
 public:
  void Push(SelectionKey key) { heap_.push(key); }

  bool empty() const { return heap_.empty(); }

  /// Pops the candidate with the maximal current key. `refresh(id)` returns
  /// the candidate's current key, or nullopt when the candidate is no longer
  /// eligible (e.g. zero marginal benefit) and should be discarded.
  template <typename RefreshFn>
  std::optional<SelectionKey> Pop(RefreshFn&& refresh) {
    while (!heap_.empty()) {
      SelectionKey top = heap_.top();
      heap_.pop();
      std::optional<SelectionKey> current = refresh(top.id);
      if (!current.has_value()) continue;  // dropped
      if (*current == top) return top;     // key is fresh: true argmax
      // Key decayed; re-queue at its current value. By monotone decay the
      // re-queued key is <= top, so the heap order stays consistent.
      heap_.push(*current);
    }
    return std::nullopt;
  }

 private:
  std::priority_queue<SelectionKey> heap_;
};

}  // namespace scwsc

#endif  // SCWSC_CORE_GREEDY_STATE_H_
