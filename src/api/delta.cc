#include "src/api/delta.h"

#include <algorithm>
#include <string_view>
#include <utility>

#include "src/common/fault.h"
#include "src/table/builder.h"

namespace scwsc {
namespace api {

/// Friend of InstanceSnapshot: builds a child snapshot through the same
/// code path as the public factories, but threads the parent's ShardHashHint
/// into ComputeShardPlan and stamps the child's delta_version.
struct DeltaBuilderAccess {
  static Result<InstancePtr> FromSetSystemChained(SetSystem system,
                                                  ShardingOptions sharding,
                                                  const ShardHashHint& hint,
                                                  std::size_t child_version) {
    if (system.num_elements() == 0) {
      return Status::InvalidArgument("instance snapshot: empty universe");
    }
    if (FaultFires(FaultPoint::kSnapshotAlloc)) {
      return Status::ResourceExhausted(
          "injected fault: snapshot allocation failed (FaultPoint "
          "snapshot_alloc)");
    }
    system.InvertedIndex();
    auto snapshot = std::shared_ptr<InstanceSnapshot>(new InstanceSnapshot());
    snapshot->system_.emplace(std::move(system));
    snapshot->delta_version_ = child_version;
    snapshot->ComputeShardPlan(sharding, &hint);
    return InstancePtr(std::move(snapshot));
  }

  static Result<InstancePtr> FromTableChained(
      Table table, pattern::CostFunction cost_fn,
      pattern::EnumerateOptions enumerate_options, ShardingOptions sharding,
      const ShardHashHint& hint, std::size_t child_version) {
    if (table.num_rows() == 0) {
      return Status::InvalidArgument("instance snapshot: empty table");
    }
    if (FaultFires(FaultPoint::kSnapshotAlloc)) {
      return Status::ResourceExhausted(
          "injected fault: snapshot allocation failed (FaultPoint "
          "snapshot_alloc)");
    }
    auto snapshot = std::shared_ptr<InstanceSnapshot>(new InstanceSnapshot());
    snapshot->table_.emplace(std::move(table));
    snapshot->cost_fn_.emplace(std::move(cost_fn));
    snapshot->enumerate_options_ = enumerate_options;
    snapshot->delta_version_ = child_version;
    snapshot->ComputeShardPlan(sharding, &hint);
    return InstancePtr(std::move(snapshot));
  }

  static pattern::EnumerateOptions EnumerateOptionsOf(
      const InstanceSnapshot& parent) {
    return parent.enumerate_options_;
  }
};

namespace {

/// Shard index covering element/row `e` under `bounds` (bounds[0] = 0,
/// bounds.back() = n, e < n).
std::size_t ShardOf(const std::vector<std::size_t>& bounds, std::size_t e) {
  const auto it = std::upper_bound(bounds.begin(), bounds.end(), e);
  return static_cast<std::size_t>(it - bounds.begin()) - 1;
}

/// Sorted, deduplicated copy of `ids`; InvalidArgument on duplicates or an
/// id outside [0, limit).
Result<std::vector<std::size_t>> CheckedSortedIds(
    const std::vector<std::size_t>& ids, std::size_t limit,
    const char* what) {
  std::vector<std::size_t> sorted(ids.begin(), ids.end());
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] >= limit) {
      return Status::InvalidArgument(
          std::string("delta ") + what + " index " +
          std::to_string(sorted[i]) + " is out of range (parent has " +
          std::to_string(limit) + ")");
    }
    if (i > 0 && sorted[i] == sorted[i - 1]) {
      return Status::InvalidArgument(std::string("delta ") + what +
                                     " index " + std::to_string(sorted[i]) +
                                     " given more than once");
    }
  }
  return sorted;
}

Result<AppliedDelta> ApplyToTable(const InstancePtr& parent,
                                  const SnapshotDelta& delta) {
  if (!delta.add_sets.empty() || !delta.remove_sets.empty()) {
    return Status::InvalidArgument(
        "delta carries set operations, but the parent snapshot wraps a "
        "patterned table (use append_rows/retract_rows)");
  }
  if (parent->has_hierarchy()) {
    return Status::NotSupported(
        "deltas on snapshots with attribute hierarchies are not supported "
        "(hierarchies are bound to the parent's rows)");
  }
  const Table& table = parent->table();
  const std::size_t n = table.num_rows();
  SCWSC_ASSIGN_OR_RETURN(
      std::vector<std::size_t> retract,
      CheckedSortedIds(delta.retract_rows, n, "retract_rows"));
  for (const SnapshotDelta::RowAppend& row : delta.append_rows) {
    if (row.values.size() != table.num_attributes()) {
      return Status::InvalidArgument(
          "delta append_rows row has " + std::to_string(row.values.size()) +
          " values; the table has " + std::to_string(table.num_attributes()) +
          " attributes");
    }
  }
  const std::size_t new_n = n - retract.size() + delta.append_rows.size();
  if (new_n == 0) {
    return Status::InvalidArgument(
        "delta retracts every row and appends none; snapshots cannot be "
        "empty");
  }

  // Rebuild through TableBuilder in surviving-row order, exactly as a
  // from-scratch load of the mutated row sequence would: dictionary ids are
  // assigned first-seen, so the rebuilt columns (and hashes) match a
  // rebuild bit-for-bit.
  std::vector<std::string> attribute_names;
  attribute_names.reserve(table.num_attributes());
  for (std::size_t a = 0; a < table.num_attributes(); ++a) {
    attribute_names.push_back(table.schema().attribute_name(a));
  }
  TableBuilder builder(attribute_names, table.schema().measure_name());
  std::size_t next_retract = 0;
  std::vector<std::string_view> views(table.num_attributes());
  for (RowId r = 0; r < n; ++r) {
    if (next_retract < retract.size() && retract[next_retract] == r) {
      ++next_retract;
      continue;
    }
    for (std::size_t a = 0; a < table.num_attributes(); ++a) {
      views[a] = table.value_name(r, a);
    }
    SCWSC_RETURN_NOT_OK(builder.AddRow(views, table.measure(r)));
  }
  for (const SnapshotDelta::RowAppend& row : delta.append_rows) {
    views.assign(row.values.begin(), row.values.end());
    SCWSC_RETURN_NOT_OK(builder.AddRow(views, row.measure));
  }

  // Chaining: with the row count unchanged, every row below the first
  // retracted index keeps its position, encoding and measure, so shards
  // entirely below it are untouched. A changed row count moves the shard
  // bounds — mark everything dirty and let the child rehash in full.
  ShardHashHint hint;
  hint.bounds = parent->shard_bounds();
  hint.hashes = parent->shard_hashes();
  hint.parent_version = parent->delta_version();
  const std::size_t num_shards = parent->num_shards();
  hint.dirty.assign(num_shards, true);
  if (new_n == n) {
    const std::size_t first_touched = retract.empty() ? n : retract.front();
    for (std::size_t s = 0; s < num_shards; ++s) {
      hint.dirty[s] = hint.bounds[s + 1] > first_touched;
    }
  }

  SCWSC_ASSIGN_OR_RETURN(
      InstancePtr child,
      DeltaBuilderAccess::FromTableChained(
          std::move(builder).Build(), parent->cost_fn(),
          DeltaBuilderAccess::EnumerateOptionsOf(*parent),
          parent->sharding(), hint, parent->delta_version() + 1));

  AppliedDelta applied;
  applied.snapshot = std::move(child);
  applied.stats.child_version = parent->delta_version() + 1;
  applied.stats.shards_total = applied.snapshot->num_shards();
  applied.stats.shards_chained = hint.chained;
  applied.stats.shards_rehashed =
      applied.stats.shards_total - hint.chained;
  applied.stats.rows_appended = delta.append_rows.size();
  applied.stats.rows_retracted = retract.size();
  return applied;
}

Result<AppliedDelta> ApplyToSetSystem(const InstancePtr& parent,
                                      const SnapshotDelta& delta) {
  if (!delta.append_rows.empty() || !delta.retract_rows.empty()) {
    return Status::InvalidArgument(
        "delta carries row operations, but the parent snapshot wraps an "
        "explicit SetSystem (use add_sets/remove_sets)");
  }
  SCWSC_ASSIGN_OR_RETURN(const SetSystem* parent_system,
                         parent->set_system());
  const std::size_t n = parent_system->num_elements();
  const std::size_t num_parent_sets = parent_system->num_sets();
  std::vector<std::size_t> remove_ids(delta.remove_sets.begin(),
                                      delta.remove_sets.end());
  SCWSC_ASSIGN_OR_RETURN(
      std::vector<std::size_t> removed,
      CheckedSortedIds(remove_ids, num_parent_sets, "remove_sets"));

  SetSystem child_system(n);
  std::size_t next_removed = 0;
  for (SetId id = 0; id < num_parent_sets; ++id) {
    if (next_removed < removed.size() && removed[next_removed] == id) {
      ++next_removed;
      continue;
    }
    const WeightedSet& s = parent_system->set(id);
    SCWSC_RETURN_NOT_OK(
        child_system.AddSet(s.elements, s.cost, s.label).status());
  }
  for (const SnapshotDelta::SetAdd& add : delta.add_sets) {
    auto added = child_system.AddSet(add.elements, add.cost, add.label);
    if (!added.ok()) {
      return Status::InvalidArgument("delta add_sets entry rejected: " +
                                     std::string(added.status().message()));
    }
  }

  // Chaining: the universe (and therefore every shard bound) is unchanged.
  // Dirty shards are those holding elements of added or removed sets, plus
  // — when anything was removed — elements of every surviving set whose id
  // shifts down (the shard hashes tag slices with SetIds).
  ShardHashHint hint;
  hint.bounds = parent->shard_bounds();
  hint.hashes = parent->shard_hashes();
  hint.parent_version = parent->delta_version();
  const std::size_t num_shards = parent->num_shards();
  hint.dirty.assign(num_shards, false);
  auto mark_elements = [&](const std::vector<ElementId>& elements) {
    for (const ElementId e : elements) {
      if (e < n) hint.dirty[ShardOf(hint.bounds, e)] = true;
    }
  };
  for (const SnapshotDelta::SetAdd& add : delta.add_sets) {
    mark_elements(add.elements);
  }
  if (!removed.empty()) {
    const std::size_t min_removed = removed.front();
    for (SetId id = static_cast<SetId>(min_removed); id < num_parent_sets;
         ++id) {
      mark_elements(parent_system->set(id).elements);
    }
  }

  SCWSC_ASSIGN_OR_RETURN(
      InstancePtr child,
      DeltaBuilderAccess::FromSetSystemChained(std::move(child_system),
                                               parent->sharding(), hint,
                                               parent->delta_version() + 1));

  AppliedDelta applied;
  applied.snapshot = std::move(child);
  applied.stats.child_version = parent->delta_version() + 1;
  applied.stats.shards_total = applied.snapshot->num_shards();
  applied.stats.shards_chained = hint.chained;
  applied.stats.shards_rehashed =
      applied.stats.shards_total - hint.chained;
  applied.stats.sets_added = delta.add_sets.size();
  applied.stats.sets_removed = removed.size();
  return applied;
}

}  // namespace

Result<AppliedDelta> ApplyDelta(const InstancePtr& parent,
                                const SnapshotDelta& delta) {
  if (parent == nullptr) {
    return Status::InvalidArgument("ApplyDelta: null parent snapshot");
  }
  return parent->has_table() ? ApplyToTable(parent, delta)
                             : ApplyToSetSystem(parent, delta);
}

}  // namespace api
}  // namespace scwsc
