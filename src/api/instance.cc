#include "src/api/instance.h"

#include <algorithm>
#include <utility>

#include "src/common/fault.h"
#include "src/common/hash.h"

namespace scwsc {
namespace api {
namespace {

/// Chaos hook shared by both builders: a fired kSnapshotAlloc models the
/// allocation of the snapshot's tables failing under memory pressure.
Status InjectedAllocFailure() {
  return Status::ResourceExhausted(
      "injected fault: snapshot allocation failed (FaultPoint "
      "snapshot_alloc)");
}

/// Hash of rows [begin, end) of a table: each attribute's encoded column
/// slice plus the measure slice. Schema and dictionaries are global
/// metadata, hashed once outside the shard loop.
std::uint64_t HashTableShard(const Table& table, std::size_t begin,
                             std::size_t end) {
  std::uint64_t h = kFnv64Offset;
  HashU64(begin, h);
  HashU64(end, h);
  for (std::size_t attr = 0; attr < table.num_attributes(); ++attr) {
    const std::vector<ValueId>& column = table.column(attr);
    HashBytes(column.data() + begin, (end - begin) * sizeof(ValueId), h);
  }
  if (table.has_measure()) {
    const std::vector<double>& m = table.measures();
    HashBytes(m.data() + begin, (end - begin) * sizeof(double), h);
  }
  return h;
}

/// Hash of elements [begin, end) of a set system: every set's sorted
/// element slice that falls in the range, tagged with its SetId. Costs,
/// labels and sizes are global metadata. Sets with no elements in the range
/// contribute nothing, so a delta that only adds sets confined to one shard
/// changes exactly that shard's hash — the localization property the serve
/// cache's cross-version shard sharing relies on (api/delta.h).
std::uint64_t HashSetSystemShard(const SetSystem& system, std::size_t begin,
                                 std::size_t end) {
  std::uint64_t h = kFnv64Offset;
  HashU64(begin, h);
  HashU64(end, h);
  for (SetId id = 0; id < system.num_sets(); ++id) {
    const auto& elems = system.set(id).elements;
    const auto lo = std::lower_bound(elems.begin(), elems.end(),
                                     static_cast<ElementId>(begin));
    const auto hi = std::lower_bound(lo, elems.end(),
                                     static_cast<ElementId>(end));
    if (lo == hi) continue;
    // The id disambiguates *which* set covers the slice: without it two
    // systems differing only in set membership of identical slices would
    // collide shard-wise.
    HashU64(id, h);
    HashU64(static_cast<std::uint64_t>(hi - lo), h);
    HashBytes(elems.data() + (lo - elems.begin()),
              static_cast<std::size_t>(hi - lo) * sizeof(ElementId), h);
  }
  return h;
}

}  // namespace

Result<InstancePtr> InstanceSnapshot::FromSetSystem(SetSystem system,
                                                    ShardingOptions sharding) {
  if (system.num_elements() == 0) {
    return Status::InvalidArgument("instance snapshot: empty universe");
  }
  if (FaultFires(FaultPoint::kSnapshotAlloc)) return InjectedAllocFailure();
  // Warm the lazy inverted index now, while we are still the only owner:
  // afterwards every access through the snapshot is a pure read.
  system.InvertedIndex();
  auto snapshot = std::shared_ptr<InstanceSnapshot>(new InstanceSnapshot());
  snapshot->system_.emplace(std::move(system));
  snapshot->ComputeShardPlan(sharding);
  return InstancePtr(std::move(snapshot));
}

Result<InstancePtr> InstanceSnapshot::FromTable(
    Table table, pattern::CostFunction cost_fn,
    std::optional<hierarchy::TableHierarchy> hierarchy,
    pattern::EnumerateOptions enumerate_options, ShardingOptions sharding) {
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("instance snapshot: empty table");
  }
  if (!table.has_measure()) {
    return Status::InvalidArgument(
        "instance snapshot: table has no measure column to weight patterns");
  }
  if (FaultFires(FaultPoint::kSnapshotAlloc)) return InjectedAllocFailure();
  auto snapshot = std::shared_ptr<InstanceSnapshot>(new InstanceSnapshot());
  snapshot->table_.emplace(std::move(table));
  snapshot->cost_fn_.emplace(std::move(cost_fn));
  snapshot->hierarchy_ = std::move(hierarchy);
  snapshot->enumerate_options_ = enumerate_options;
  snapshot->ComputeShardPlan(sharding);
  return InstancePtr(std::move(snapshot));
}

void InstanceSnapshot::ComputeShardPlan(ShardingOptions sharding,
                                        const ShardHashHint* hint) {
  sharding_ = sharding;
  const std::size_t n = num_elements();
  const std::size_t effective =
      EffectiveShards(n, sharding.num_shards, sharding.min_shard_elements);
  shard_bounds_ = ShardBounds(n, effective);
  const std::size_t S = shard_bounds_.size() - 1;
  shard_hashes_.reserve(S);
  for (std::size_t s = 0; s < S; ++s) {
    // Chain from the delta parent when this shard's bounds match and the
    // delta left its data untouched: the slice bytes are identical, so the
    // copied hash equals what rehashing would produce.
    if (hint != nullptr && s + 1 < hint->bounds.size() &&
        s < hint->dirty.size() && !hint->dirty[s] &&
        hint->bounds[s] == shard_bounds_[s] &&
        hint->bounds[s + 1] == shard_bounds_[s + 1]) {
      shard_hashes_.push_back(hint->hashes[s]);
      ++hint->chained;
      continue;
    }
    shard_hashes_.push_back(
        table_.has_value()
            ? HashTableShard(*table_, shard_bounds_[s], shard_bounds_[s + 1])
            : HashSetSystemShard(*system_, shard_bounds_[s],
                                 shard_bounds_[s + 1]));
  }

  // Whole-content hash: a domain tag and the global metadata the shard
  // hashes leave out, then the shard plan chained with every shard hash.
  // Snapshots over identical data with identical plans hash identically,
  // so a restarted client reconnects to the same serve-cache entries.
  std::uint64_t h = kFnv64Offset;
  if (table_.has_value()) {
    HashU64(1, h);  // domain-separate the two snapshot shapes
    const Table& table = *table_;
    HashU64(table.num_rows(), h);
    HashU64(table.num_attributes(), h);
    for (std::size_t attr = 0; attr < table.num_attributes(); ++attr) {
      HashString(table.schema().attribute_name(attr), h);
      const Dictionary& dict = table.dictionary(attr);
      HashU64(dict.size(), h);
      for (ValueId v = 0; v < dict.size(); ++v) HashString(dict.Name(v), h);
    }
    HashU64(static_cast<std::uint64_t>(cost_fn_->kind()), h);
    HashDouble(cost_fn_->p(), h);
    HashU64(hierarchy_.has_value() ? 1 : 0, h);
  } else {
    HashU64(2, h);
    const SetSystem& system = *system_;
    HashU64(system.num_elements(), h);
    HashU64(system.num_sets(), h);
    for (SetId id = 0; id < system.num_sets(); ++id) {
      const WeightedSet& s = system.set(id);
      HashU64(s.elements.size(), h);
      HashDouble(s.cost, h);
      HashString(s.label, h);
    }
  }
  HashU64(S, h);
  for (const std::uint64_t sh : shard_hashes_) HashU64(sh, h);
  content_hash_ = h;
}

std::size_t InstanceSnapshot::num_elements() const {
  return table_.has_value() ? table_->num_rows() : system_->num_elements();
}

void InstanceSnapshot::MaterializePatterns() const {
  std::call_once(once_, [this] {
    lazy_.emplace(
        pattern::PatternSystem::Build(*table_, *cost_fn_, enumerate_options_));
    if (lazy_->ok()) {
      // Warm every lazy cache inside the once-block so later concurrent
      // solves never write.
      lazy_->value().set_system().InvertedIndex();
    }
    materialized_.store(true, std::memory_order_release);
  });
}

Result<const SetSystem*> InstanceSnapshot::set_system() const {
  // Chaos hook at the *access* seam, not inside MaterializePatterns: a
  // call_once failure would poison the snapshot forever, whereas a
  // transient materialize fault must be retryable.
  if (FaultFires(FaultPoint::kSnapshotMaterialize)) {
    return Status::Internal(
        "injected fault: snapshot materialization failed (FaultPoint "
        "snapshot_materialize)");
  }
  if (system_.has_value()) return &*system_;
  MaterializePatterns();
  if (!lazy_->ok()) return lazy_->status();
  return &lazy_->value().set_system();
}

Result<const pattern::PatternSystem*> InstanceSnapshot::pattern_system()
    const {
  if (!table_.has_value()) {
    return Status::NotSupported(
        "instance snapshot: pattern metadata requires a patterned table "
        "instance (this snapshot wraps an explicit SetSystem)");
  }
  MaterializePatterns();
  if (!lazy_->ok()) return lazy_->status();
  return &lazy_->value();
}

bool InstanceSnapshot::set_system_materialized() const {
  if (system_.has_value()) return true;
  return materialized_.load(std::memory_order_acquire);
}

}  // namespace api
}  // namespace scwsc
