#include "src/api/instance.h"

#include <utility>

#include "src/common/fault.h"

namespace scwsc {
namespace api {
namespace {

/// Chaos hook shared by both builders: a fired kSnapshotAlloc models the
/// allocation of the snapshot's tables failing under memory pressure.
Status InjectedAllocFailure() {
  return Status::ResourceExhausted(
      "injected fault: snapshot allocation failed (FaultPoint "
      "snapshot_alloc)");
}

}  // namespace

Result<InstancePtr> InstanceSnapshot::FromSetSystem(SetSystem system) {
  if (system.num_elements() == 0) {
    return Status::InvalidArgument("instance snapshot: empty universe");
  }
  if (FaultFires(FaultPoint::kSnapshotAlloc)) return InjectedAllocFailure();
  // Warm the lazy inverted index now, while we are still the only owner:
  // afterwards every access through the snapshot is a pure read.
  system.InvertedIndex();
  auto snapshot = std::shared_ptr<InstanceSnapshot>(new InstanceSnapshot());
  snapshot->system_.emplace(std::move(system));
  return InstancePtr(std::move(snapshot));
}

Result<InstancePtr> InstanceSnapshot::FromTable(
    Table table, pattern::CostFunction cost_fn,
    std::optional<hierarchy::TableHierarchy> hierarchy,
    pattern::EnumerateOptions enumerate_options) {
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("instance snapshot: empty table");
  }
  if (!table.has_measure()) {
    return Status::InvalidArgument(
        "instance snapshot: table has no measure column to weight patterns");
  }
  if (FaultFires(FaultPoint::kSnapshotAlloc)) return InjectedAllocFailure();
  auto snapshot = std::shared_ptr<InstanceSnapshot>(new InstanceSnapshot());
  snapshot->table_.emplace(std::move(table));
  snapshot->cost_fn_.emplace(std::move(cost_fn));
  snapshot->hierarchy_ = std::move(hierarchy);
  snapshot->enumerate_options_ = enumerate_options;
  return InstancePtr(std::move(snapshot));
}

std::size_t InstanceSnapshot::num_elements() const {
  return table_.has_value() ? table_->num_rows() : system_->num_elements();
}

void InstanceSnapshot::MaterializePatterns() const {
  std::call_once(once_, [this] {
    lazy_.emplace(
        pattern::PatternSystem::Build(*table_, *cost_fn_, enumerate_options_));
    if (lazy_->ok()) {
      // Warm every lazy cache inside the once-block so later concurrent
      // solves never write.
      lazy_->value().set_system().InvertedIndex();
    }
    materialized_.store(true, std::memory_order_release);
  });
}

Result<const SetSystem*> InstanceSnapshot::set_system() const {
  // Chaos hook at the *access* seam, not inside MaterializePatterns: a
  // call_once failure would poison the snapshot forever, whereas a
  // transient materialize fault must be retryable.
  if (FaultFires(FaultPoint::kSnapshotMaterialize)) {
    return Status::Internal(
        "injected fault: snapshot materialization failed (FaultPoint "
        "snapshot_materialize)");
  }
  if (system_.has_value()) return &*system_;
  MaterializePatterns();
  if (!lazy_->ok()) return lazy_->status();
  return &lazy_->value().set_system();
}

Result<const pattern::PatternSystem*> InstanceSnapshot::pattern_system()
    const {
  if (!table_.has_value()) {
    return Status::NotSupported(
        "instance snapshot: pattern metadata requires a patterned table "
        "instance (this snapshot wraps an explicit SetSystem)");
  }
  MaterializePatterns();
  if (!lazy_->ok()) return lazy_->status();
  return &lazy_->value();
}

bool InstanceSnapshot::set_system_materialized() const {
  if (system_.has_value()) return true;
  return materialized_.load(std::memory_order_acquire);
}

}  // namespace api
}  // namespace scwsc
