// InstanceSnapshot: one immutable, shareable handle on an SCWSC instance.
//
// Every solver frontend (CLI, bench harness, tests, a future RPC server)
// used to rebuild the same substrate ad hoc — a SetSystem here, a
// PatternSystem there, a TableHierarchy for the hierarchical solvers — once
// per call site and often once per figure point. An InstanceSnapshot is
// built exactly once and then shared by `std::shared_ptr` across concurrent
// solves: it owns the Table (for patterned instances), the cost function,
// the optional attribute hierarchies, and the generic SetSystem view.
//
// For patterned instances the SetSystem view requires enumerating every
// pattern, which the optimized solvers exist to avoid; it is therefore
// materialized lazily, on the first solver that asks for it, under a
// std::call_once, and cached for every later solve. All lazy caches
// (including SetSystem's inverted index) are warmed inside that once-block,
// so concurrent reads of a snapshot are race-free.

#ifndef SCWSC_API_INSTANCE_H_
#define SCWSC_API_INSTANCE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "src/common/result.h"
#include "src/core/set_system.h"
#include "src/core/shard.h"
#include "src/hierarchy/hierarchy.h"
#include "src/pattern/cost.h"
#include "src/pattern/enumerate.h"
#include "src/pattern/pattern_system.h"
#include "src/table/table.h"

namespace scwsc {
namespace api {

class InstanceSnapshot;

/// The one handle frontends pass around. Copying the pointer shares the
/// snapshot; the underlying data is never copied.
using InstancePtr = std::shared_ptr<const InstanceSnapshot>;

/// Parent-chaining information for an incremental snapshot build (see
/// api/delta.h). When a delta leaves a shard's data untouched, the child
/// snapshot copies that shard's hash from the parent instead of rehashing
/// the slice — provably equal to recomputation, so the child's content hash
/// is bit-identical to a from-scratch build over the same data. `dirty[s]`
/// marks parent shards the delta touched; chaining only applies while the
/// child's shard bounds match the parent's (same universe size and
/// ShardingOptions), which ApplyDelta verifies per shard.
struct ShardHashHint {
  std::vector<std::size_t> bounds;    // parent shard bounds
  std::vector<std::uint64_t> hashes;  // parent per-shard hashes
  std::vector<bool> dirty;            // parent shards the delta touched
  std::size_t parent_version = 0;     // parent's delta_version()
  /// Out-parameter: shards whose hash was reused from the parent.
  mutable std::size_t chained = 0;
};

class InstanceSnapshot {
 public:
  /// Wraps an explicit weighted set system (the generic, non-patterned
  /// input). The inverted index is pre-built so concurrent solves only
  /// read. `sharding` partitions the element universe (ShardBounds); the
  /// effective plan is stamped into the snapshot together with per-shard
  /// content hashes, and solvers run their benefit engines per-shard. The
  /// default (1 shard) is the flat path.
  static Result<InstancePtr> FromSetSystem(SetSystem system,
                                           ShardingOptions sharding = {});

  /// Wraps a patterned table instance. The snapshot owns the table; the
  /// generic SetSystem view (full pattern enumeration) is materialized
  /// lazily on first use and then shared. `hierarchy`, when present,
  /// additionally enables the hierarchical solvers. `sharding` partitions
  /// the row universe, exactly as in FromSetSystem.
  static Result<InstancePtr> FromTable(
      Table table, pattern::CostFunction cost_fn,
      std::optional<hierarchy::TableHierarchy> hierarchy = std::nullopt,
      pattern::EnumerateOptions enumerate_options = {},
      ShardingOptions sharding = {});

  // Not copyable or movable: a snapshot's address is its identity (solvers
  // and caches hold pointers into it); sharing goes through InstancePtr.
  InstanceSnapshot(const InstanceSnapshot&) = delete;
  InstanceSnapshot& operator=(const InstanceSnapshot&) = delete;

  bool has_table() const { return table_.has_value(); }
  bool has_hierarchy() const { return hierarchy_.has_value(); }

  /// The patterned table. Requires has_table().
  const Table& table() const { return *table_; }
  /// The pattern cost function. Requires has_table().
  const pattern::CostFunction& cost_fn() const { return *cost_fn_; }
  /// The attribute hierarchies. Requires has_hierarchy().
  const hierarchy::TableHierarchy& hierarchy() const { return *hierarchy_; }

  /// Universe size: rows for table instances, elements otherwise.
  std::size_t num_elements() const;

  /// The generic SetSystem view every set-based solver consumes. For table
  /// instances this enumerates all patterns on first call (thread-safe,
  /// cached); pattern/hierarchy solvers never trigger it. The pointer stays
  /// valid and stable for the snapshot's lifetime.
  Result<const SetSystem*> set_system() const;

  /// The pattern metadata parallel to set_system()'s SetIds. Table
  /// instances only (NotSupported otherwise); same lazy materialization.
  Result<const pattern::PatternSystem*> pattern_system() const;

  /// True once set_system() has materialized (always true for
  /// FromSetSystem snapshots). Benches use this to time enumeration
  /// separately from solving.
  bool set_system_materialized() const;

  // --- sharding -------------------------------------------------------------

  /// The sharding options the snapshot was built with (as requested).
  const ShardingOptions& sharding() const { return sharding_; }

  /// Effective shard count after clamping (1 = flat). Solver adapters copy
  /// this into EngineOptions::num_shards so every engine over this snapshot
  /// uses the snapshot's plan.
  std::size_t num_shards() const { return shard_bounds_.size() - 1; }

  /// Word-aligned element bounds of the shard plan (ShardBounds), size
  /// num_shards() + 1.
  const std::vector<std::size_t>& shard_bounds() const {
    return shard_bounds_;
  }

  /// FNV-1a hash of each shard's slice of the underlying data (table rows
  /// or per-set element slices), size num_shards(). Two snapshots sharing a
  /// shard's data produce equal hashes for it, which is what lets the serve
  /// cache detect unchanged shards across snapshot versions.
  const std::vector<std::uint64_t>& shard_hashes() const {
    return shard_hashes_;
  }

  /// Whole-content hash: global metadata (schema, dictionaries, cost
  /// function, hierarchy presence / set costs and labels) chained with the
  /// shard plan and every per-shard hash. Computed once at construction;
  /// serve::ContentHash returns this.
  std::uint64_t content_hash() const { return content_hash_; }

  /// How many deltas separate this snapshot from its from-scratch root:
  /// 0 for snapshots built by FromSetSystem/FromTable, parent + 1 for
  /// snapshots produced by ApplyDelta (api/delta.h).
  std::size_t delta_version() const { return delta_version_; }

 private:
  friend struct DeltaBuilderAccess;  // api/delta.cc: chained child builds

  InstanceSnapshot() = default;

  void MaterializePatterns() const;

  /// Stamps the effective shard plan, the per-shard data hashes and the
  /// whole-content hash. Called once by each builder after the data is in
  /// place. `hint` (nullable) chains untouched shard hashes from a delta
  /// parent instead of rehashing them.
  void ComputeShardPlan(ShardingOptions sharding,
                        const ShardHashHint* hint = nullptr);

  // Exactly one of system_ (FromSetSystem) or table_ (FromTable) is set.
  std::optional<SetSystem> system_;
  std::optional<Table> table_;
  std::optional<pattern::CostFunction> cost_fn_;
  std::optional<hierarchy::TableHierarchy> hierarchy_;
  pattern::EnumerateOptions enumerate_options_;

  // The effective shard plan and content hashes, immutable after build.
  ShardingOptions sharding_;
  std::vector<std::size_t> shard_bounds_;
  std::vector<std::uint64_t> shard_hashes_;
  std::uint64_t content_hash_ = 0;
  std::size_t delta_version_ = 0;  // set by DeltaBuilderAccess only

  // Lazily materialized pattern view of a table instance. Guarded by
  // once_: after the call_once returns, lazy_ is immutable.
  mutable std::once_flag once_;
  mutable std::optional<Result<pattern::PatternSystem>> lazy_;
  mutable std::atomic<bool> materialized_{false};
};

}  // namespace api
}  // namespace scwsc

#endif  // SCWSC_API_INSTANCE_H_
