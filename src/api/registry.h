// SolverRegistry: name -> Solver factory, with capability flags.
//
// Algorithms register themselves with static registrars (the
// SCWSC_REGISTER_SOLVER macro) so adding a solver is one self-contained
// translation unit — no central switch statement to extend. The registry is
// the seam every frontend dispatches through:
//
//   api::SolveRequest req;
//   req.instance = snapshot;           // shared, immutable (instance.h)
//   req.k = 10; req.coverage_fraction = 0.3;
//   auto result = api::SolverRegistry::Global().Solve("cwsc", req, &ctx);
//
// Registry::Solve validates the solver's capabilities against the instance
// first, so "this solver needs attribute hierarchies the input lacks" is a
// typed, actionable error rather than a crash deep inside an algorithm.

#ifndef SCWSC_API_REGISTRY_H_
#define SCWSC_API_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/api/solver.h"

namespace scwsc {
namespace api {

/// Everything a frontend needs to list or validate a solver without
/// instantiating it.
struct SolverInfo {
  std::string name;       // registry key, canonical lowercase, e.g. "opt-cwsc"
  std::string summary;    // one line for --list-solvers
  unsigned capabilities = 0;  // SolverCapability bits
  /// Accepted options: canonical snake_case key, type, default, help and
  /// (optionally) a deprecated alias per entry. Registry::Solve
  /// canonicalizes every request's bag against this table, --list-solvers
  /// renders it, and the round-trip property test re-parses its defaults.
  OptionsSpec options;
};

class SolverRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Solver>()>;

  /// The process-wide registry all built-in solvers register into.
  static SolverRegistry& Global();

  /// Registers a solver. InvalidArgument on an empty or duplicate name.
  Status Register(SolverInfo info, Factory factory);

  /// Info for `name` (matched ASCII-case-insensitively; registered names
  /// are canonical lowercase), or nullptr. The pointer stays valid for the
  /// registry's lifetime (registrations never remove entries).
  const SolverInfo* Find(const std::string& name) const;

  /// Instantiates the named solver (case-insensitive); NotFound listing the
  /// known canonical names when it is not registered.
  Result<std::unique_ptr<Solver>> Create(const std::string& name) const;

  /// All registered solvers, sorted by name.
  std::vector<SolverInfo> List() const;

  /// InvalidArgument with a capability-aware message when `instance` lacks
  /// something `info` requires (a patterned table, hierarchies).
  static Status CheckCapabilities(const SolverInfo& info,
                                  const InstanceSnapshot& instance);

  /// Lookup (case-insensitive) + capability check + options
  /// canonicalization + Solve, in one call. This is the seam the CLI, the
  /// bench harness, the serve scheduler and the tests all go through. A
  /// non-zero request.deadline is applied through an internal RunContext;
  /// combining it with an explicit `run_context` is an InvalidArgument
  /// (two deadline authorities would race).
  Result<SolveResult> Solve(const std::string& name,
                            const SolveRequest& request,
                            const RunContext* run_context = nullptr) const;

 private:
  struct Entry {
    SolverInfo info;
    Factory factory;
  };

  mutable std::mutex mu_;  // registration runs during static init
  std::map<std::string, Entry> entries_;
};

/// Static registrar: constructing one registers a solver into the global
/// registry. Use through SCWSC_REGISTER_SOLVER.
class SolverRegistrar {
 public:
  SolverRegistrar(SolverInfo info, SolverRegistry::Factory factory);
};

/// Registers `SolverClass` (default-constructible Solver subclass) under
/// `info` at static-initialization time:
///
///   SCWSC_REGISTER_SOLVER(MySolver, SolverInfo{.name = "my-solver", ...});
#define SCWSC_REGISTER_SOLVER(SolverClass, ...)                            \
  static const ::scwsc::api::SolverRegistrar                               \
      scwsc_solver_registrar_##SolverClass(                                \
          __VA_ARGS__, []() -> std::unique_ptr<::scwsc::api::Solver> {     \
            return std::make_unique<SolverClass>();                        \
          })

}  // namespace api
}  // namespace scwsc

#endif  // SCWSC_API_REGISTRY_H_
