// SnapshotDelta: incremental mutation of an immutable InstanceSnapshot.
//
// Snapshots never change in place — live serving instead derives a *new*
// version by applying a delta (append/retract rows for table snapshots,
// add/remove sets for set-system snapshots) to a parent. The child is built
// over the mutated data exactly as a from-scratch FromTable/FromSetSystem
// would build it, so its content hash is bit-identical to a rebuild — the
// property bench/serve_soak gates at every version. What makes application
// *incremental* is per-shard hash chaining: shards whose data the delta
// provably left untouched copy their hash from the parent (ShardHashHint,
// instance.h) instead of rehashing, which is also what lets the serve
// layer's SnapshotCache recognize the unchanged shards across versions
// (ResidentShardOverlap > 0) and the ResultCache invalidate precisely —
// only keys whose snapshot hash changed.
//
// Localization rules (which shards a delta dirties):
//  - Set-system snapshots keep their universe, so shard bounds never move.
//    Adding a set dirties exactly the shards its elements fall in; removing
//    a set additionally dirties every shard holding elements of a set with
//    a larger id (removal renumbers the ids the shard hashes are tagged
//    with). Append-only deltas are the fully local case.
//  - Table snapshots: rows before the first retracted index are byte-stable
//    across the rebuild, so when the row count is unchanged (retract k rows,
//    append k rows) every shard entirely below that index chains. A delta
//    that changes the row count moves every shard bound and rehashes all.
//
// The solver-side complement is ext::WarmStartSolve (ext/incremental.h),
// which re-evaluates a parent solution on the child and repairs it on the
// residual instead of solving from scratch.

#ifndef SCWSC_API_DELTA_H_
#define SCWSC_API_DELTA_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/api/instance.h"
#include "src/common/result.h"
#include "src/core/set_system.h"

namespace scwsc {
namespace api {

/// One batch of mutations against a parent snapshot. Row operations apply
/// to table snapshots, set operations to set-system snapshots; mixing the
/// two families (or using the wrong family for the snapshot kind) is an
/// InvalidArgument from ApplyDelta.
struct SnapshotDelta {
  struct RowAppend {
    std::vector<std::string> values;  // one per pattern attribute, in order
    double measure = 0.0;
  };
  struct SetAdd {
    std::vector<ElementId> elements;  // deduplicated/sorted by AddSet
    double cost = 0.0;
    std::string label;
  };

  /// Rows appended after the surviving parent rows (table snapshots).
  std::vector<RowAppend> append_rows;
  /// Parent row indices to drop; order preserved among survivors.
  std::vector<std::size_t> retract_rows;

  /// Sets appended after the surviving parent sets (set-system snapshots).
  std::vector<SetAdd> add_sets;
  /// Parent SetIds to drop; survivors are renumbered densely in order.
  std::vector<SetId> remove_sets;

  bool empty() const {
    return append_rows.empty() && retract_rows.empty() && add_sets.empty() &&
           remove_sets.empty();
  }
};

/// What one application did, for telemetry and the soak bench's gates.
struct DeltaStats {
  std::size_t child_version = 0;  // parent delta_version() + 1
  std::size_t shards_total = 0;
  std::size_t shards_chained = 0;   // hashes copied from the parent
  std::size_t shards_rehashed = 0;  // shards_total - shards_chained
  std::size_t rows_appended = 0;
  std::size_t rows_retracted = 0;
  std::size_t sets_added = 0;
  std::size_t sets_removed = 0;
};

struct AppliedDelta {
  InstancePtr snapshot;  // the child version
  DeltaStats stats;
};

/// Applies `delta` to `parent`, returning the child snapshot. The child
/// shares nothing mutable with the parent (both stay independently usable
/// and cacheable); an empty delta yields a child with the parent's content
/// hash and every shard chained. Table snapshots carrying attribute
/// hierarchies are NotSupported (hierarchies are bound to the parent's
/// rows).
Result<AppliedDelta> ApplyDelta(const InstancePtr& parent,
                                const SnapshotDelta& delta);

}  // namespace api
}  // namespace scwsc

#endif  // SCWSC_API_DELTA_H_
