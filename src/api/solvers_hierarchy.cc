// Registry adapters for the hierarchical solvers — Figs. 3-4 generalized to
// the lattice induced by attribute hierarchies.

#include <utility>

#include "src/api/adapter_util.h"
#include "src/api/registry.h"
#include "src/common/stopwatch.h"
#include "src/hierarchy/hcmc.h"
#include "src/hierarchy/hcwsc.h"

namespace scwsc {
namespace api {
namespace internal {

void LinkHierarchySolvers() {}  // anchor referenced by SolverRegistry::Global()

}  // namespace internal

namespace {

using internal::CmcContract;
using internal::CmcOptionsFromRequest;
using internal::FinishHierarchyBacked;
using internal::Rewrap;

SolveCounters CountersFromStats(const pattern::PatternStats& stats) {
  SolveCounters counters;
  counters.sets_considered = stats.patterns_considered;
  counters.budget_rounds = stats.budget_rounds;
  counters.final_budget = stats.final_budget;
  return counters;
}

class HcwscSolver : public Solver {
 public:
  Result<SolveResult> Solve(const SolveRequest& request,
                            const RunContext* run_context) const override {
    const Table& table = request.instance->table();
    CwscOptions options(request.k, request.coverage_fraction);
    options.run_context = run_context;
    options.trace = request.trace;
    const SolveContract contract{
        request.k,
        SetSystem::CoverageTarget(request.coverage_fraction,
                                  table.num_rows())};

    pattern::PatternStats stats;
    Stopwatch timer;
    Result<hierarchy::HSolution> solution = hierarchy::RunHierarchicalCwsc(
        table, request.instance->hierarchy(), request.instance->cost_fn(),
        options, &stats);
    const double seconds = timer.ElapsedSeconds();
    if (!solution.ok()) {
      const Status& status = solution.status();
      if (const auto* partial = status.payload<hierarchy::HSolution>()) {
        return Rewrap(status, FinishHierarchyBacked(request, *partial, seconds,
                                                    contract,
                                                    CountersFromStats(stats)));
      }
      return status;
    }
    return FinishHierarchyBacked(request, std::move(*solution), seconds,
                                 contract, CountersFromStats(stats));
  }
};
SCWSC_REGISTER_SOLVER(
    HcwscSolver,
    SolverInfo{"hcwsc",
               "Hierarchical lattice-optimized CWSC (needs hierarchies)",
               kNeedsTable | kNeedsHierarchy | kSupportsAnytime,
               {}});

class HcmcSolver : public Solver {
 public:
  Result<SolveResult> Solve(const SolveRequest& request,
                            const RunContext* run_context) const override {
    const Table& table = request.instance->table();
    SCWSC_ASSIGN_OR_RETURN(CmcOptions options,
                           CmcOptionsFromRequest(request, run_context));
    options.trace = request.trace;
    const SolveContract contract = CmcContract(options, table.num_rows());

    pattern::PatternStats stats;
    Stopwatch timer;
    Result<hierarchy::HSolution> solution = hierarchy::RunHierarchicalCmc(
        table, request.instance->hierarchy(), request.instance->cost_fn(),
        options, &stats);
    const double seconds = timer.ElapsedSeconds();
    if (!solution.ok()) {
      const Status& status = solution.status();
      if (const auto* partial = status.payload<hierarchy::HSolution>()) {
        return Rewrap(status, FinishHierarchyBacked(request, *partial, seconds,
                                                    contract,
                                                    CountersFromStats(stats)));
      }
      return status;
    }
    return FinishHierarchyBacked(request, std::move(*solution), seconds,
                                 contract, CountersFromStats(stats));
  }
};
SCWSC_REGISTER_SOLVER(
    HcmcSolver,
    SolverInfo{"hcmc",
               "Hierarchical lattice-optimized CMC (needs hierarchies)",
               kNeedsTable | kNeedsHierarchy | kSupportsAnytime,
               internal::CmcOptionsSpec()});

}  // namespace
}  // namespace api
}  // namespace scwsc
