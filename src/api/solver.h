// The one request/response seam of the library: every algorithm — core
// CWSC/CMC and their literal references, the three baselines, the exact
// branch-and-bound, LP rounding, the lattice-optimized pattern solvers and
// the hierarchical variants — is invocable through the polymorphic Solver
// interface with a typed SolveRequest and SolveResult. Frontends (CLI,
// bench harness, tests, a future RPC server) talk to this seam only; they
// never wire up an algorithm by hand.
//
// Solvers are looked up by name in the SolverRegistry (registry.h), which
// also carries capability flags so a frontend can report *why* a solver
// cannot run on a given instance before calling it.

#ifndef SCWSC_API_SOLVER_H_
#define SCWSC_API_SOLVER_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/api/instance.h"
#include "src/common/result.h"
#include "src/common/run_context.h"
#include "src/core/solution.h"
#include "src/pattern/pattern.h"

namespace scwsc {
namespace obs {
class TraceSession;
}  // namespace obs
namespace api {

// --- capabilities ---------------------------------------------------------

/// What a solver consumes / guarantees; used for capability-aware errors
/// ("hcwsc needs a hierarchy the input lacks") and for frontend listings.
enum SolverCapability : unsigned {
  /// Consumes the generic SetSystem view. On a table-only instance this
  /// materializes the full pattern enumeration (once, shared).
  kNeedsSetSystem = 1u << 0,
  /// Consumes the patterned Table directly (lattice solvers); cannot run on
  /// an instance built from an explicit SetSystem.
  kNeedsTable = 1u << 1,
  /// Additionally needs attribute hierarchies on the instance.
  kNeedsHierarchy = 1u << 2,
  /// Surrenders a best-so-far partial SolveResult as the Status payload
  /// when a RunContext trips.
  kSupportsAnytime = 1u << 3,
  /// Result is provably optimal (not a heuristic).
  kExact = 1u << 4,
};

/// "set-system,anytime" — stable comma-separated listing for --list-solvers.
std::string CapabilitiesToString(unsigned capabilities);

// --- options spec ---------------------------------------------------------

/// Value type of one solver option; used to render defaults in
/// --list-solvers and to round-trip them through the CLI parsing path.
enum class OptionType { kDouble, kU64, kBool, kString };

/// "double" / "u64" / "bool" / "string".
std::string_view OptionTypeToString(OptionType type);

/// One accepted option of a solver: the canonical snake_case key, its type,
/// the rendered default, a one-line help string, and (optionally) the old
/// spelling kept as a deprecated alias. Every solver registers exactly one
/// OptionsSpec; the registry canonicalizes incoming bags against it, the CLI
/// prints it, and the round-trip property test re-parses its defaults.
struct OptionSpec {
  std::string name;  // canonical snake_case key, e.g. "max_budget_rounds"
  OptionType type = OptionType::kString;
  /// Rendered default, bit-identical under the matching OptionsBag getter
  /// ("256", "false", "gain"). Empty for required options.
  std::string default_value;
  std::string help;  // one line for --list-solvers
  /// Old spelling ("max-budget-rounds") accepted with a once-per-process
  /// deprecation warning; empty = no alias.
  std::string deprecated_alias;
  /// True when the option must be supplied (no usable default); the
  /// registry rejects a request missing it before instantiating the solver.
  bool required = false;
};

using OptionsSpec = std::vector<OptionSpec>;

/// The spec entry whose canonical name or deprecated alias matches `key`,
/// ASCII-case-insensitively; nullptr when none does.
const OptionSpec* FindOption(const OptionsSpec& spec, const std::string& key);

// --- options bag ----------------------------------------------------------

/// Per-algorithm options as string key/value pairs, so one CLI flag
/// (--opt key=value) and one RPC field can parameterize any solver. Typed
/// getters parse on access; the registry canonicalizes every bag against
/// the solver's OptionsSpec first, so a typo ("espilon=2") is an
/// InvalidArgument naming the accepted keys, not a silent default.
class OptionsBag {
 public:
  OptionsBag() = default;

  /// Parses "key=value" items (the CLI's repeated --opt flag).
  static Result<OptionsBag> Parse(const std::vector<std::string>& items);

  OptionsBag& Set(std::string key, std::string value);

  bool Has(const std::string& key) const { return kv_.count(key) != 0; }
  bool empty() const { return kv_.empty(); }

  /// Typed lookup with a default for missing keys; parse failures are
  /// InvalidArgument naming the key.
  Result<double> GetDouble(const std::string& key, double fallback) const;
  Result<std::uint64_t> GetU64(const std::string& key,
                               std::uint64_t fallback) const;
  Result<bool> GetBool(const std::string& key, bool fallback) const;
  Result<std::string> GetString(const std::string& key,
                                std::string fallback) const;

  /// InvalidArgument when the bag contains a key not in `known` (listing
  /// the accepted keys). Kept for direct adapter use; registry dispatch
  /// goes through Canonicalize instead.
  Status ExpectKnown(const std::vector<std::string>& known) const;

  /// Maps every key onto its canonical spelling per `spec`: exact names
  /// pass through, case variants and deprecated aliases are rewritten (with
  /// a once-per-process deprecation warning naming old and new key), and a
  /// key matching no spec entry is an InvalidArgument listing the accepted
  /// canonical keys. Also rejects a missing `required` option.
  /// `solver_name` is the canonical solver spelling echoed in errors.
  Result<OptionsBag> Canonicalize(const OptionsSpec& spec,
                                  const std::string& solver_name) const;

  /// "k1=v1,k2=v2" over the (sorted) items — the canonical serialization
  /// the serve layer's ResultCache keys memoized solves by.
  std::string CanonicalString() const;

  const std::map<std::string, std::string>& items() const { return kv_; }

 private:
  std::map<std::string, std::string> kv_;
};

// --- request / response ---------------------------------------------------

/// One solve call. The instance handle is shared, never copied; k and ŝ are
/// the universal SCWSC constraints; everything algorithm-specific rides in
/// the options bag (see each solver's OptionsSpec in the registry).
struct SolveRequest {
  InstancePtr instance;
  std::size_t k = 10;
  double coverage_fraction = 0.3;
  OptionsBag options;

  /// Optional tracing/metrics sink (src/obs). nullptr = observability off;
  /// every instrumentation point then costs one pointer branch. When set,
  /// the registry opens a root span "solve/<name>" and each adapter and
  /// algorithm records phase child spans and metrics into the session.
  obs::TraceSession* trace = nullptr;

  /// Wall-clock budget for this solve; zero = unlimited. The registry
  /// applies it through an internal RunContext when the caller passes no
  /// explicit context, and rejects the ambiguous combination (non-zero
  /// deadline AND an explicit RunContext) as InvalidArgument. The serve
  /// scheduler instead moves it onto its own per-job context.
  std::chrono::milliseconds deadline{0};

  /// Frontend tag (batch job name, bench arm) carried into scheduler
  /// output and batch reports; never interpreted by solvers.
  std::string label;

  /// Multi-tenant serving identity: which tenant this request is billed to.
  /// Empty means the anonymous "default" tenant. The serve scheduler uses it
  /// for admission quotas and weighted-fair dequeue, and stamps it into the
  /// per-tenant serve.tenant.* counters, the serve.tenant.latency_seconds
  /// sketch family, trace span events and flight-recorder entries. Never
  /// interpreted by solvers.
  std::string tenant;

  class Builder;
};

/// Fluent construction of a SolveRequest, replacing the hand-rolled
/// field-by-field setup the CLI, bench harness and tests used to duplicate:
///
///   SCWSC_ASSIGN_OR_RETURN(
///       auto request, api::SolveRequest::Builder(instance)
///                         .WithK(10).WithCoverage(0.3)
///                         .WithOption("b", "2")
///                         .WithDeadline(std::chrono::milliseconds(50))
///                         .Build());
///
/// Build() surfaces the first recorded error (malformed "key=value" item).
class SolveRequest::Builder {
 public:
  explicit Builder(InstancePtr instance) {
    request_.instance = std::move(instance);
  }

  Builder& WithK(std::size_t k) {
    request_.k = k;
    return *this;
  }
  Builder& WithCoverage(double fraction) {
    request_.coverage_fraction = fraction;
    return *this;
  }
  Builder& WithOption(std::string key, std::string value) {
    request_.options.Set(std::move(key), std::move(value));
    return *this;
  }
  /// Adds parsed "key=value" items (the CLI's repeated --opt flag); a
  /// malformed item is reported by Build().
  Builder& WithOptions(const std::vector<std::string>& items);
  Builder& WithDeadline(std::chrono::milliseconds deadline) {
    request_.deadline = deadline;
    return *this;
  }
  Builder& WithTrace(obs::TraceSession* trace) {
    request_.trace = trace;
    return *this;
  }
  Builder& WithLabel(std::string label) {
    request_.label = std::move(label);
    return *this;
  }
  Builder& WithTenant(std::string tenant) {
    request_.tenant = std::move(tenant);
    return *this;
  }

  /// The assembled request, or the first error recorded by a With* call.
  Result<SolveRequest> Build() const;

 private:
  SolveRequest request_;
  Status deferred_;  // first WithOptions parse error; OK when clean
};

/// The constraint envelope this particular run promised: |S| <= max_sets
/// and covered >= coverage_target. Filled by the adapter from its
/// algorithm's contract (k for CWSC, CmcMaxSelectable for CMC, the relaxed
/// (1-1/e)·ŝ·n target when CMC relaxes coverage, 0 for baselines that
/// guarantee nothing on that axis) so callers and tests can audit any
/// solver without knowing which algorithm ran.
struct SolveContract {
  std::size_t max_sets = 0;
  std::size_t coverage_target = 0;
};

/// Algorithm-specific instrumentation, zero where not applicable.
struct SolveCounters {
  std::size_t budget_rounds = 0;       // CMC family
  double final_budget = 0.0;           // CMC family
  std::uint64_t nodes = 0;             // exact B&B
  std::size_t sets_considered = 0;     // candidate evaluations / Fig. 6
  double lp_lower_bound = 0.0;         // LP rounding
  std::size_t cardinality_violation = 0;  // LP rounding (§III caveat)
  std::size_t feasible_trials = 0;     // LP rounding
};

/// The uniform response. `solution.sets` carries SetIds only for solvers
/// that ran over the SetSystem view; `patterns` only for flat-pattern
/// solvers; `labels` is always filled (one printable name per selection)
/// so frontends can render any solver's output identically.
struct SolveResult {
  Solution solution;
  std::vector<std::string> labels;
  std::vector<pattern::Pattern> patterns;

  double total_cost = 0.0;
  std::size_t covered = 0;
  Provenance provenance;

  /// Independently recomputed cost/coverage (against the SetSystem for
  /// set-backed runs, by re-matching patterns against the table
  /// otherwise). bookkeeping_consistent is a hard invariant.
  SolutionAudit audit;

  SolveContract contract;
  SolveCounters counters;

  /// Wall-clock seconds inside the underlying algorithm (excludes snapshot
  /// materialization and audit).
  double seconds = 0.0;

  /// Instance-specific approximation-ratio certificate (Prolubnikov, arXiv
  /// 1811.04037) computed by dual fitting over the selection order: the
  /// solution's cost is at most this factor times the optimum covering the
  /// same elements. >= 1 when estimable (set-backed solves with positive
  /// set costs); 0 when no estimate applies (pattern-backed payloads,
  /// empty selections). See core/accuracy.h.
  double accuracy_ratio = 0.0;

  /// Serving provenance: when the serve layer degraded the job onto a
  /// cheaper solver (queue pressure, open circuit breaker), this is the
  /// canonical name of the solver *originally requested*; empty whenever
  /// the requested solver itself produced the result. Never set by solvers
  /// or the registry — only the scheduler stamps it, and never on the copy
  /// it memoizes in the result cache.
  std::string degraded_from;
};

// --- the interface --------------------------------------------------------

class Solver {
 public:
  virtual ~Solver() = default;

  /// Runs the algorithm on `request.instance`. `run_context` (nullable =
  /// unlimited) carries deadline/cancellation/work budgets; on a trip,
  /// anytime solvers return the interruption Status carrying a partial
  /// SolveResult payload (status.payload<SolveResult>()), so every
  /// frontend handles best-so-far output uniformly.
  virtual Result<SolveResult> Solve(const SolveRequest& request,
                                    const RunContext* run_context) const = 0;
};

}  // namespace api
}  // namespace scwsc

#endif  // SCWSC_API_SOLVER_H_
