#include "src/api/registry.h"

#include <cctype>
#include <utility>

#include "src/common/run_context.h"
#include "src/obs/trace.h"

namespace scwsc {
namespace api {
namespace {

/// Registered names are canonical lowercase; lookups fold the query so
/// "CWSC" and "Opt-CWSC" resolve, with the canonical spelling echoed in
/// errors and results.
std::string CanonicalName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

/// Folds the per-solve SolveCounters snapshot (and the headline outcome)
/// into the session's metric registry under "solve.<name>.*", so the fixed
/// struct stays the typed API view while the registry generalizes it.
void RecordSolveMetrics(obs::MetricRegistry& metrics, const std::string& name,
                        const SolveResult& result) {
  const std::string p = "solve." + name + ".";
  metrics.counter(p + "solves").Increment();
  metrics.counter(p + "budget_rounds")
      .Increment(result.counters.budget_rounds);
  metrics.counter(p + "nodes").Increment(result.counters.nodes);
  metrics.counter(p + "sets_considered")
      .Increment(result.counters.sets_considered);
  metrics.counter(p + "cardinality_violation")
      .Increment(result.counters.cardinality_violation);
  metrics.counter(p + "feasible_trials")
      .Increment(result.counters.feasible_trials);
  metrics.gauge(p + "final_budget").Set(result.counters.final_budget);
  metrics.gauge(p + "lp_lower_bound").Set(result.counters.lp_lower_bound);
  metrics.gauge(p + "total_cost").Set(result.total_cost);
  metrics.gauge(p + "covered").Set(static_cast<double>(result.covered));
  metrics.gauge(p + "seconds").Set(result.seconds);
  if (result.accuracy_ratio > 0.0) {
    // The Prolubnikov instance-specific certificate: solution cost is
    // within this factor of OPT on this very instance (core/accuracy.h).
    metrics.gauge(p + "accuracy_ratio").Set(result.accuracy_ratio);
  }
  // Latency distribution as a mergeable per-solver sketch (obs/sketch.h);
  // the '#'-family convention lets the telemetry pump aggregate an overall
  // "solve.seconds" quantile across solvers, which fixed-bucket histograms
  // could not offer.
  metrics.sketch("solve.seconds#" + name).Observe(result.seconds);
}

}  // namespace
namespace internal {

// Defined in the adapter translation units (solvers_*.cc). Referencing
// them from Global() forces the linker to keep those objects — and
// therefore their static registrars — even though nothing else references
// them: the classic static-library dead-stripping hazard of
// self-registration.
void LinkCoreSolvers();
void LinkPatternSolvers();
void LinkHierarchySolvers();
void LinkLpSolvers();

}  // namespace internal

SolverRegistry& SolverRegistry::Global() {
  static SolverRegistry* registry = new SolverRegistry();
  static std::once_flag link_once;
  std::call_once(link_once, [] {
    internal::LinkCoreSolvers();
    internal::LinkPatternSolvers();
    internal::LinkHierarchySolvers();
    internal::LinkLpSolvers();
  });
  return *registry;
}

Status SolverRegistry::Register(SolverInfo info, Factory factory) {
  if (info.name.empty()) {
    return Status::InvalidArgument("solver registration: empty name");
  }
  if (factory == nullptr) {
    return Status::InvalidArgument("solver registration: null factory for '" +
                                   info.name + "'");
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Registered names are the canonical lowercase spelling; lookups fold
  // queries to the same form.
  info.name = CanonicalName(info.name);
  // Take the key first: argument evaluation order is unspecified, so
  // emplace(info.name, {std::move(info), ...}) may read a moved-from name.
  std::string name = info.name;
  auto [it, inserted] = entries_.emplace(
      std::move(name), Entry{std::move(info), std::move(factory)});
  if (!inserted) {
    return Status::InvalidArgument("solver '" + it->first +
                                   "' is already registered");
  }
  return Status::OK();
}

const SolverInfo* SolverRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(CanonicalName(name));
  return it == entries_.end() ? nullptr : &it->second.info;
}

Result<std::unique_ptr<Solver>> SolverRegistry::Create(
    const std::string& name) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(CanonicalName(name));
    if (it == entries_.end()) {
      std::string known;
      for (const auto& [key, entry] : entries_) {
        if (!known.empty()) known += ", ";
        known += key;
      }
      return Status::NotFound("no solver named '" + name +
                              "'; registered solvers: " + known);
    }
    factory = it->second.factory;
  }
  auto solver = factory();
  if (solver == nullptr) {
    return Status::Internal("factory for solver '" + name +
                            "' returned null");
  }
  return solver;
}

std::vector<SolverInfo> SolverRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SolverInfo> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(entry.info);
  return out;  // std::map iteration order is already sorted by name
}

Status SolverRegistry::CheckCapabilities(const SolverInfo& info,
                                         const InstanceSnapshot& instance) {
  if ((info.capabilities & kNeedsTable) != 0 && !instance.has_table()) {
    return Status::InvalidArgument(
        "solver '" + info.name +
        "' descends the pattern lattice of a table, but this instance wraps "
        "an explicit SetSystem; build the snapshot with "
        "InstanceSnapshot::FromTable or use a set-system solver such as "
        "'cwsc'");
  }
  if ((info.capabilities & kNeedsHierarchy) != 0 &&
      !instance.has_hierarchy()) {
    return Status::InvalidArgument(
        "solver '" + info.name +
        "' needs attribute hierarchies, but this instance has none; pass a "
        "TableHierarchy to InstanceSnapshot::FromTable (TableHierarchy::Flat "
        "reproduces the flat solvers) or use '" +
        (info.name == "hcmc" ? "opt-cmc" : "opt-cwsc") + "'");
  }
  return Status::OK();
}

Result<SolveResult> SolverRegistry::Solve(const std::string& name,
                                          const SolveRequest& request,
                                          const RunContext* run_context) const {
  if (request.instance == nullptr) {
    return Status::InvalidArgument("SolveRequest has no instance snapshot");
  }
  const SolverInfo* info = Find(name);
  if (info == nullptr) {
    return Create(name).status();  // NotFound listing the known names
  }
  SCWSC_RETURN_NOT_OK(CheckCapabilities(*info, *request.instance));
  // Rewrite the bag onto canonical snake_case keys (deprecated aliases warn
  // once, unknown keys are InvalidArgument naming the accepted spellings),
  // so adapters only ever read canonical keys.
  SCWSC_ASSIGN_OR_RETURN(
      auto canonical_options,
      request.options.Canonicalize(info->options, info->name));
  SolveRequest canonical = request;  // shares the snapshot, copies the bag
  canonical.options = std::move(canonical_options);

  // A request-carried deadline becomes an internal RunContext. Both a
  // deadline and an explicit context would mean two racing deadline
  // authorities, so that combination is rejected rather than guessed at.
  RunContext deadline_context;
  if (request.deadline.count() > 0) {
    if (run_context != nullptr) {
      return Status::InvalidArgument(
          "SolveRequest.deadline and an explicit RunContext were both "
          "supplied; set the deadline on the RunContext instead");
    }
    deadline_context.SetDeadline(request.deadline);
    run_context = &deadline_context;
  }
  canonical.deadline = std::chrono::milliseconds{0};

  SCWSC_ASSIGN_OR_RETURN(auto solver, Create(info->name));
  if (canonical.trace == nullptr) return solver->Solve(canonical, run_context);

  // Tracing on: one root span per dispatch; enumeration (lazy set-system
  // materialization) gets its own phase span so "enumerate vs. solve" in
  // the figures comes from a single clock source.
  obs::Span root(canonical.trace, "solve/" + info->name);
  if ((info->capabilities & kNeedsSetSystem) != 0 &&
      !canonical.instance->set_system_materialized()) {
    obs::Span materialize(canonical.trace, "materialize");
    (void)canonical.instance->set_system();  // errors resurface in the solver
  }
  Result<SolveResult> result = solver->Solve(canonical, run_context);
  const SolveResult* outcome = nullptr;
  if (result.ok()) {
    outcome = &*result;
  } else if (const auto* partial = result.status().payload<SolveResult>()) {
    outcome = partial;
    // A RunContext trip surrendered a partial: make the anytime staircase
    // visible in the trace.
    root.Event(std::string("trip/") +
               TripKindToString(partial->provenance.trip));
  }
  if (outcome != nullptr) {
    RecordSolveMetrics(canonical.trace->metrics(), info->name, *outcome);
  }
  return result;
}

SolverRegistrar::SolverRegistrar(SolverInfo info,
                                 SolverRegistry::Factory factory) {
  const Status status =
      SolverRegistry::Global().Register(std::move(info), std::move(factory));
  SCWSC_CHECK(status.ok(), "solver registration failed: %s",
              status.ToString().c_str());
}

}  // namespace api
}  // namespace scwsc
