// Shared plumbing of the built-in solver adapters (solvers_*.cc): turning
// each algorithm's native output (Solution / PatternSolution / HSolution)
// into the uniform SolveResult, and re-issuing interruption Statuses with a
// SolveResult payload so every frontend handles best-so-far output through
// one type.

#ifndef SCWSC_API_ADAPTER_UTIL_H_
#define SCWSC_API_ADAPTER_UTIL_H_

#include "src/api/solver.h"
#include "src/core/cmc.h"
#include "src/hierarchy/hcwsc.h"
#include "src/pattern/stats.h"

namespace scwsc {
namespace api {
namespace internal {

/// Builds the SolveResult for a SetId-backed solution: labels from the set
/// system (pattern strings when the instance is a patterned table), audit
/// independently recomputed via AuditSolution.
Result<SolveResult> FinishSetBacked(const SolveRequest& request,
                                    Solution solution, double seconds,
                                    SolveContract contract,
                                    SolveCounters counters);

/// Builds the SolveResult for a flat-pattern solution (the lattice solvers
/// never materialize SetIds): audit recomputed by re-matching every pattern
/// against the table and re-deriving costs from the cost function.
Result<SolveResult> FinishPatternBacked(const SolveRequest& request,
                                        pattern::PatternSolution solution,
                                        double seconds, SolveContract contract,
                                        SolveCounters counters);

/// Same for a hierarchical-pattern solution.
Result<SolveResult> FinishHierarchyBacked(const SolveRequest& request,
                                          hierarchy::HSolution solution,
                                          double seconds,
                                          SolveContract contract,
                                          SolveCounters counters);

/// Re-issues the interruption `status` carrying `finished` (the converted
/// partial) as a SolveResult payload; falls back to the original status when
/// the conversion itself failed.
Status Rewrap(const Status& status, Result<SolveResult> finished);

/// CmcOptions from the request's universal fields plus the shared CMC
/// option keys: b, epsilon, l, strict, max_budget_rounds.
Result<CmcOptions> CmcOptionsFromRequest(const SolveRequest& request,
                                         const RunContext* run_context);

/// The shared CMC options table (b, epsilon, l, strict, max_budget_rounds
/// with the old hyphenated spelling as a deprecated alias), for SolverInfo.
OptionsSpec CmcOptionsSpec();

/// The CMC contract: at most CmcMaxSelectable sets covering at least the
/// (possibly relaxed) CmcCoverageTarget of `num_elements`.
SolveContract CmcContract(const CmcOptions& options, std::size_t num_elements);

/// Copies the request snapshot's effective shard plan into `engine`, so
/// every BenefitEngine built for this solve partitions the universe exactly
/// as the snapshot does (shard counts come from
/// InstanceSnapshot::num_shards(); 1 = flat, no behaviour change). Every
/// set-backed adapter calls this right after building its options.
void ApplyInstanceSharding(const SolveRequest& request, EngineOptions& engine);

}  // namespace internal
}  // namespace api
}  // namespace scwsc

#endif  // SCWSC_API_ADAPTER_UTIL_H_
