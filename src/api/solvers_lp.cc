// Registry adapter for LP relaxation + randomized rounding (the §III
// integer-programming route, with its certified lower bound and soft
// cardinality constraint).

#include <utility>

#include "src/api/adapter_util.h"
#include "src/api/registry.h"
#include "src/common/stopwatch.h"
#include "src/lp/lp_rounding.h"

namespace scwsc {
namespace api {
namespace internal {

void LinkLpSolvers() {}  // anchor referenced by SolverRegistry::Global()

}  // namespace internal

namespace {

using internal::FinishSetBacked;
using internal::Rewrap;

SolveCounters CountersFromLp(const lp::LpRoundingResult& result) {
  SolveCounters counters;
  counters.lp_lower_bound = result.lp_lower_bound;
  counters.cardinality_violation = result.cardinality_violation;
  counters.feasible_trials = result.feasible_trials;
  counters.sets_considered = result.sets_considered;
  return counters;
}

class LpRoundingSolver : public Solver {
 public:
  Result<SolveResult> Solve(const SolveRequest& request,
                            const RunContext* run_context) const override {
    SCWSC_ASSIGN_OR_RETURN(const SetSystem* system,
                           request.instance->set_system());
    lp::LpScwscOptions options;
    options.k = request.k;
    options.coverage_fraction = request.coverage_fraction;
    SCWSC_ASSIGN_OR_RETURN(options.alpha,
                           request.options.GetDouble("alpha", options.alpha));
    SCWSC_ASSIGN_OR_RETURN(options.trials,
                           request.options.GetU64("trials", options.trials));
    SCWSC_ASSIGN_OR_RETURN(options.seed,
                           request.options.GetU64("seed", options.seed));
    options.run_context = run_context;
    options.trace = request.trace;
    // Coverage is guaranteed (greedy repair); the size bound is soft — the
    // §III caveat this solver exists to measure — so max_sets stays 0.
    SolveContract contract;
    contract.coverage_target = SetSystem::CoverageTarget(
        request.coverage_fraction, system->num_elements());

    Stopwatch timer;
    Result<lp::LpRoundingResult> result =
        lp::SolveByLpRounding(*system, options);
    const double seconds = timer.ElapsedSeconds();
    if (!result.ok()) {
      const Status& status = result.status();
      if (const auto* partial = status.payload<lp::LpRoundingResult>()) {
        return Rewrap(status,
                      FinishSetBacked(request, partial->solution, seconds,
                                      contract, CountersFromLp(*partial)));
      }
      return status;
    }
    const SolveCounters counters = CountersFromLp(*result);
    return FinishSetBacked(request, std::move(result->solution), seconds,
                           contract, counters);
  }
};
SCWSC_REGISTER_SOLVER(
    LpRoundingSolver,
    SolverInfo{"lp-rounding",
               "LP relaxation + randomized rounding with certified bound",
               kNeedsSetSystem | kSupportsAnytime,
               {{"alpha", OptionType::kDouble, "0",
                 "overlap penalty weight in the LP objective", "", false},
                {"trials", OptionType::kU64, "64",
                 "independent randomized rounding trials", "", false},
                {"seed", OptionType::kU64, "2015",
                 "PRNG seed for the rounding trials", "", false}}});

}  // namespace
}  // namespace api
}  // namespace scwsc
