#include "src/api/adapter_util.h"

#include <cmath>
#include <unordered_set>
#include <utility>

#include "src/common/bitset.h"
#include "src/core/accuracy.h"
#include "src/obs/trace.h"
#include "src/pattern/pattern_system.h"

namespace scwsc {
namespace api {
namespace internal {
namespace {

/// The shared bookkeeping-consistency rule of AuditSolution: exact coverage
/// match, cost match up to relative rounding noise.
bool CostsMatch(double recomputed, double claimed) {
  return std::abs(recomputed - claimed) <=
         1e-9 * std::max(1.0, std::abs(recomputed));
}

}  // namespace

Result<SolveResult> FinishSetBacked(const SolveRequest& request,
                                    Solution solution, double seconds,
                                    SolveContract contract,
                                    SolveCounters counters) {
  obs::Span finish_span(request.trace, "finish");
  SCWSC_ASSIGN_OR_RETURN(const SetSystem* system,
                         request.instance->set_system());
  SolveResult out;
  out.total_cost = solution.total_cost;
  out.covered = solution.covered;
  out.provenance = solution.provenance;
  SCWSC_ASSIGN_OR_RETURN(out.audit, AuditSolution(*system, solution));

  const pattern::PatternSystem* patterns = nullptr;
  if (request.instance->has_table()) {
    SCWSC_ASSIGN_OR_RETURN(patterns, request.instance->pattern_system());
  }
  out.labels.reserve(solution.sets.size());
  for (SetId id : solution.sets) {
    if (patterns != nullptr) {
      out.patterns.push_back(patterns->pattern(id));
      out.labels.push_back(patterns->pattern(id).ToString(patterns->table()));
    } else {
      const WeightedSet& s = system->set(id);
      out.labels.push_back(s.label.empty() ? "S" + std::to_string(id)
                                           : s.label);
    }
  }
  // Solution.sets is in selection order, which is exactly what the
  // dual-fitting certificate replays; pattern-/hierarchy-backed payloads
  // have no SetSystem in scope and keep the 0.0 "no estimate" default.
  out.accuracy_ratio = EstimateAccuracyRatio(*system, solution.sets);
  out.solution = std::move(solution);
  out.contract = contract;
  out.counters = counters;
  out.seconds = seconds;
  return out;
}

Result<SolveResult> FinishPatternBacked(const SolveRequest& request,
                                        pattern::PatternSolution solution,
                                        double seconds, SolveContract contract,
                                        SolveCounters counters) {
  obs::Span finish_span(request.trace, "finish");
  const Table& table = request.instance->table();
  const pattern::CostFunction& cost_fn = request.instance->cost_fn();

  SolveResult out;
  out.total_cost = solution.total_cost;
  out.covered = solution.covered;
  out.provenance = solution.provenance;

  DynamicBitset covered(table.num_rows());
  double recomputed_cost = 0.0;
  std::unordered_set<pattern::Pattern, pattern::PatternHash> seen;
  out.labels.reserve(solution.patterns.size());
  for (const pattern::Pattern& p : solution.patterns) {
    if (!seen.insert(p).second) {
      return Status::InvalidArgument("solution contains duplicate pattern " +
                                     p.ToString(table));
    }
    std::vector<RowId> rows;
    for (RowId r = 0; r < table.num_rows(); ++r) {
      if (p.Matches(table, r)) {
        rows.push_back(r);
        covered.set(r);
      }
    }
    recomputed_cost += cost_fn.Compute(table, rows);
    out.labels.push_back(p.ToString(table));
  }
  out.audit.num_sets = solution.patterns.size();
  out.audit.total_cost = recomputed_cost;
  out.audit.covered = covered.count();
  out.audit.bookkeeping_consistent =
      out.audit.covered == solution.covered &&
      CostsMatch(recomputed_cost, solution.total_cost);

  // Mirror the bookkeeping into the uniform Solution shell (sets stays
  // empty: lattice solvers have no SetIds).
  out.solution.total_cost = solution.total_cost;
  out.solution.covered = solution.covered;
  out.solution.provenance = solution.provenance;
  out.patterns = std::move(solution.patterns);
  out.contract = contract;
  out.counters = counters;
  out.seconds = seconds;
  return out;
}

Result<SolveResult> FinishHierarchyBacked(const SolveRequest& request,
                                          hierarchy::HSolution solution,
                                          double seconds,
                                          SolveContract contract,
                                          SolveCounters counters) {
  obs::Span finish_span(request.trace, "finish");
  const Table& table = request.instance->table();
  const hierarchy::TableHierarchy& hier = request.instance->hierarchy();
  const pattern::CostFunction& cost_fn = request.instance->cost_fn();

  SolveResult out;
  out.total_cost = solution.total_cost;
  out.covered = solution.covered;
  out.provenance = solution.provenance;

  DynamicBitset covered(table.num_rows());
  double recomputed_cost = 0.0;
  out.labels.reserve(solution.patterns.size());
  for (const hierarchy::HPattern& p : solution.patterns) {
    std::vector<RowId> rows;
    for (RowId r = 0; r < table.num_rows(); ++r) {
      if (p.Matches(table, hier, r)) {
        rows.push_back(r);
        covered.set(r);
      }
    }
    recomputed_cost += cost_fn.Compute(table, rows);
    out.labels.push_back(p.ToString(table, hier));
  }
  out.audit.num_sets = solution.patterns.size();
  out.audit.total_cost = recomputed_cost;
  out.audit.covered = covered.count();
  out.audit.bookkeeping_consistent =
      out.audit.covered == solution.covered &&
      CostsMatch(recomputed_cost, solution.total_cost);

  out.solution.total_cost = solution.total_cost;
  out.solution.covered = solution.covered;
  out.solution.provenance = solution.provenance;
  out.contract = contract;
  out.counters = counters;
  out.seconds = seconds;
  return out;
}

Status Rewrap(const Status& status, Result<SolveResult> finished) {
  if (!finished.ok()) return status;
  return Status(status.code(), std::string(status.message()))
      .WithPayload(std::move(finished).value());
}

Result<CmcOptions> CmcOptionsFromRequest(const SolveRequest& request,
                                         const RunContext* run_context) {
  CmcOptions options;
  options.k = request.k;
  options.coverage_fraction = request.coverage_fraction;
  SCWSC_ASSIGN_OR_RETURN(options.b, request.options.GetDouble("b", options.b));
  SCWSC_ASSIGN_OR_RETURN(options.epsilon,
                         request.options.GetDouble("epsilon", options.epsilon));
  SCWSC_ASSIGN_OR_RETURN(std::uint64_t l,
                         request.options.GetU64("l", options.l));
  options.l = static_cast<unsigned>(l);
  SCWSC_ASSIGN_OR_RETURN(bool strict,
                         request.options.GetBool("strict", false));
  options.relax_coverage = !strict;
  SCWSC_ASSIGN_OR_RETURN(
      options.max_budget_rounds,
      request.options.GetU64("max_budget_rounds", options.max_budget_rounds));
  options.run_context = run_context;
  ApplyInstanceSharding(request, options.engine);
  return options;
}

void ApplyInstanceSharding(const SolveRequest& request,
                           EngineOptions& engine) {
  if (request.instance != nullptr) {
    engine.num_shards = request.instance->num_shards();
  }
}

OptionsSpec CmcOptionsSpec() {
  return {
      {"b", OptionType::kDouble, "1", "initial budget multiplier", "", false},
      {"epsilon", OptionType::kDouble, "0",
       "budget relaxation epsilon (>=0 widens the selectable-set bound)", "",
       false},
      {"l", OptionType::kU64, "1", "budget doubling exponent base", "",
       false},
      {"strict", OptionType::kBool, "false",
       "require the unrelaxed coverage target (no (1-1/e) relaxation)", "",
       false},
      {"max_budget_rounds", OptionType::kU64, "256",
       "cap on budget-doubling rounds before giving up",
       "max-budget-rounds", false},
  };
}

SolveContract CmcContract(const CmcOptions& options,
                          std::size_t num_elements) {
  SolveContract contract;
  contract.max_sets = CmcMaxSelectable(options.k, options.epsilon, options.l);
  contract.coverage_target = CmcCoverageTarget(
      options.coverage_fraction, num_elements, options.relax_coverage);
  return contract;
}

}  // namespace internal
}  // namespace api
}  // namespace scwsc
