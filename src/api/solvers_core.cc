// Registry adapters for the core set-system algorithms: CWSC/CMC (tuned and
// literal), the three prior-work baselines, the exact branch-and-bound and
// the non-overlapping (AlphaSum-style) greedy.

#include <limits>
#include <utility>

#include "src/api/adapter_util.h"
#include "src/api/registry.h"
#include "src/common/stopwatch.h"
#include "src/core/baselines.h"
#include "src/core/cmc.h"
#include "src/core/cwsc.h"
#include "src/core/exact.h"
#include "src/core/literal.h"
#include "src/core/nonoverlap.h"

namespace scwsc {
namespace api {
namespace internal {

void LinkCoreSolvers() {}  // anchor referenced by SolverRegistry::Global()

}  // namespace internal

namespace {

using internal::CmcContract;
using internal::CmcOptionsFromRequest;
using internal::CmcOptionsSpec;
using internal::FinishSetBacked;
using internal::Rewrap;

/// The strict (unrelaxed) CWSC contract: at most k sets, at least ŝ·n.
SolveContract CwscContract(const SolveRequest& request, std::size_t n) {
  return SolveContract{
      request.k, SetSystem::CoverageTarget(request.coverage_fraction, n)};
}

// --- CWSC (Fig. 2), tuned and literal -------------------------------------

template <typename Runner>
Result<SolveResult> SolveCwscLike(const SolveRequest& request,
                                  const RunContext* run_context,
                                  Runner runner) {
  SCWSC_ASSIGN_OR_RETURN(const SetSystem* system,
                         request.instance->set_system());
  CwscOptions options(request.k, request.coverage_fraction);
  options.run_context = run_context;
  options.trace = request.trace;
  internal::ApplyInstanceSharding(request, options.engine);
  const SolveContract contract =
      CwscContract(request, system->num_elements());

  Stopwatch timer;
  ScanStats stats;
  Result<Solution> solution = runner(*system, options, &stats);
  const double seconds = timer.ElapsedSeconds();
  SolveCounters counters;
  counters.sets_considered = stats.sets_considered;
  if (!solution.ok()) {
    const Status& status = solution.status();
    if (const Solution* partial = status.payload<Solution>()) {
      return Rewrap(status, FinishSetBacked(request, *partial, seconds,
                                            contract, counters));
    }
    return status;
  }
  return FinishSetBacked(request, std::move(*solution), seconds, contract,
                         counters);
}

class CwscSolver : public Solver {
 public:
  Result<SolveResult> Solve(const SolveRequest& request,
                            const RunContext* run_context) const override {
    return SolveCwscLike(request, run_context, RunCwsc);
  }
};
SCWSC_REGISTER_SOLVER(
    CwscSolver,
    SolverInfo{"cwsc",
               "Concise Weighted Set Cover (Fig. 2), tuned engine",
               kNeedsSetSystem | kSupportsAnytime,
               {}});

class CwscLiteralSolver : public Solver {
 public:
  Result<SolveResult> Solve(const SolveRequest& request,
                            const RunContext* run_context) const override {
    return SolveCwscLike(request, run_context, RunCwscLiteral);
  }
};
SCWSC_REGISTER_SOLVER(
    CwscLiteralSolver,
    SolverInfo{"cwsc-literal",
               "CWSC, paper-verbatim reference (Fig. 2 line by line)",
               kNeedsSetSystem | kSupportsAnytime,
               {}});

// --- CMC (Fig. 1), tuned and literal --------------------------------------

template <typename Runner>
Result<SolveResult> SolveCmcLike(const SolveRequest& request,
                                 const RunContext* run_context,
                                 Runner runner) {
  SCWSC_ASSIGN_OR_RETURN(const SetSystem* system,
                         request.instance->set_system());
  SCWSC_ASSIGN_OR_RETURN(CmcOptions options,
                         CmcOptionsFromRequest(request, run_context));
  options.trace = request.trace;
  const SolveContract contract =
      CmcContract(options, system->num_elements());

  Stopwatch timer;
  Result<CmcResult> result = runner(*system, options);
  const double seconds = timer.ElapsedSeconds();
  if (!result.ok()) {
    const Status& status = result.status();
    if (const CmcResult* partial = status.payload<CmcResult>()) {
      SolveCounters counters;
      counters.budget_rounds = partial->budget_rounds;
      counters.final_budget = partial->final_budget;
      counters.sets_considered = partial->sets_considered;
      return Rewrap(status, FinishSetBacked(request, partial->solution,
                                            seconds, contract, counters));
    }
    return status;
  }
  SolveCounters counters;
  counters.budget_rounds = result->budget_rounds;
  counters.final_budget = result->final_budget;
  counters.sets_considered = result->sets_considered;
  return FinishSetBacked(request, std::move(result->solution), seconds,
                         contract, counters);
}

class CmcSolver : public Solver {
 public:
  Result<SolveResult> Solve(const SolveRequest& request,
                            const RunContext* run_context) const override {
    return SolveCmcLike(request, run_context, RunCmc);
  }
};
SCWSC_REGISTER_SOLVER(CmcSolver,
                      SolverInfo{"cmc",
                                 "Cheap Max Coverage (Fig. 1), tuned engine",
                                 kNeedsSetSystem | kSupportsAnytime,
                                 CmcOptionsSpec()});

class CmcLiteralSolver : public Solver {
 public:
  Result<SolveResult> Solve(const SolveRequest& request,
                            const RunContext* run_context) const override {
    return SolveCmcLike(request, run_context, RunCmcLiteral);
  }
};
SCWSC_REGISTER_SOLVER(
    CmcLiteralSolver,
    SolverInfo{"cmc-literal",
               "CMC, paper-verbatim reference (Fig. 1 line by line)",
               kNeedsSetSystem | kSupportsAnytime,
               CmcOptionsSpec()});

// --- prior-work baselines (§III, §VI-C) -----------------------------------

/// Shared tail of the three baselines: time, rewrap, finish. The runner
/// receives a ScanStats sink whose tally lands in counters.sets_considered.
template <typename Runner>
Result<SolveResult> SolveBaseline(const SolveRequest& request,
                                  SolveContract contract, Runner runner) {
  Stopwatch timer;
  ScanStats stats;
  Result<Solution> solution = runner(&stats);
  const double seconds = timer.ElapsedSeconds();
  SolveCounters counters;
  counters.sets_considered = stats.sets_considered;
  if (!solution.ok()) {
    const Status& status = solution.status();
    if (const Solution* partial = status.payload<Solution>()) {
      return Rewrap(status, FinishSetBacked(request, *partial, seconds,
                                            contract, counters));
    }
    return status;
  }
  return FinishSetBacked(request, std::move(*solution), seconds, contract,
                         counters);
}

class GreedyWscSolver : public Solver {
 public:
  Result<SolveResult> Solve(const SolveRequest& request,
                            const RunContext* run_context) const override {
    SCWSC_ASSIGN_OR_RETURN(const SetSystem* system,
                           request.instance->set_system());
    GreedyWscOptions options;
    options.coverage_fraction = request.coverage_fraction;
    // Deliberately ignores request.k: the baseline's point is that it does
    // not bound the solution size (Table VI). An explicit cap is opt-in.
    SCWSC_ASSIGN_OR_RETURN(options.max_sets,
                           request.options.GetU64("max_sets",
                                                  options.max_sets));
    options.run_context = run_context;
    options.trace = request.trace;
    internal::ApplyInstanceSharding(request, options.engine);
    SolveContract contract;
    contract.max_sets =
        options.max_sets == std::numeric_limits<std::size_t>::max()
            ? 0  // unbounded: no size promise
            : options.max_sets;
    contract.coverage_target = SetSystem::CoverageTarget(
        request.coverage_fraction, system->num_elements());
    return SolveBaseline(request, contract, [&](ScanStats* stats) {
      return RunGreedyWeightedSetCover(*system, options, stats);
    });
  }
};
SCWSC_REGISTER_SOLVER(
    GreedyWscSolver,
    SolverInfo{"greedy-wsc",
               "Greedy partial weighted set cover baseline (unbounded size)",
               kNeedsSetSystem | kSupportsAnytime,
               {{"max_sets", OptionType::kU64, "18446744073709551615",
                 "opt-in cap on selected sets (default: unbounded)",
                 "max-sets", false}}});

class GreedyMaxCoverageSolver : public Solver {
 public:
  Result<SolveResult> Solve(const SolveRequest& request,
                            const RunContext* run_context) const override {
    SCWSC_ASSIGN_OR_RETURN(const SetSystem* system,
                           request.instance->set_system());
    GreedyMaxCoverageOptions options;
    options.k = request.k;
    SCWSC_ASSIGN_OR_RETURN(
        options.stop_coverage_fraction,
        request.options.GetDouble("stop_coverage",
                                  options.stop_coverage_fraction));
    options.run_context = run_context;
    options.trace = request.trace;
    internal::ApplyInstanceSharding(request, options.engine);
    // Bounded size, no coverage promise: that cost/coverage blow-up is the
    // §VI-C comparison.
    SolveContract contract{request.k, 0};
    return SolveBaseline(request, contract, [&](ScanStats* stats) {
      return RunGreedyMaxCoverage(*system, options, stats);
    });
  }
};
SCWSC_REGISTER_SOLVER(
    GreedyMaxCoverageSolver,
    SolverInfo{"greedy-max-coverage",
               "Greedy partial maximum coverage baseline (cost-blind)",
               kNeedsSetSystem | kSupportsAnytime,
               {{"stop_coverage", OptionType::kDouble, "1",
                 "coverage fraction at which to stop early",
                 "stop-coverage", false}}});

class BudgetedMaxCoverageSolver : public Solver {
 public:
  Result<SolveResult> Solve(const SolveRequest& request,
                            const RunContext* run_context) const override {
    SCWSC_ASSIGN_OR_RETURN(const SetSystem* system,
                           request.instance->set_system());
    if (!request.options.Has("budget")) {
      return Status::InvalidArgument(
          "solver 'budgeted-max-coverage' requires the option budget=<W> "
          "(total cost budget)");
    }
    BudgetedMaxCoverageOptions options;
    SCWSC_ASSIGN_OR_RETURN(options.budget,
                           request.options.GetDouble("budget", 0.0));
    SCWSC_ASSIGN_OR_RETURN(options.max_sets,
                           request.options.GetU64("max_sets",
                                                  options.max_sets));
    options.run_context = run_context;
    options.trace = request.trace;
    internal::ApplyInstanceSharding(request, options.engine);
    SolveContract contract;
    contract.max_sets =
        options.max_sets == std::numeric_limits<std::size_t>::max()
            ? 0
            : options.max_sets;
    return SolveBaseline(request, contract, [&](ScanStats* stats) {
      return RunBudgetedMaxCoverage(*system, options, stats);
    });
  }
};
SCWSC_REGISTER_SOLVER(
    BudgetedMaxCoverageSolver,
    SolverInfo{"budgeted-max-coverage",
               "Greedy budgeted maximum coverage baseline (needs budget=W)",
               kNeedsSetSystem | kSupportsAnytime,
               {{"budget", OptionType::kDouble, "",
                 "total cost budget W (required)", "", true},
                {"max_sets", OptionType::kU64, "18446744073709551615",
                 "opt-in cap on selected sets (default: unbounded)",
                 "max-sets", false}}});

// --- exact branch-and-bound (§VI-D) ---------------------------------------

class ExactSolver : public Solver {
 public:
  Result<SolveResult> Solve(const SolveRequest& request,
                            const RunContext* run_context) const override {
    SCWSC_ASSIGN_OR_RETURN(const SetSystem* system,
                           request.instance->set_system());
    ExactOptions options;
    options.k = request.k;
    options.coverage_fraction = request.coverage_fraction;
    SCWSC_ASSIGN_OR_RETURN(options.max_nodes,
                           request.options.GetU64("max_nodes",
                                                  options.max_nodes));
    options.run_context = run_context;
    options.trace = request.trace;
    const SolveContract contract =
        CwscContract(request, system->num_elements());

    Stopwatch timer;
    Result<ExactResult> result = SolveExact(*system, options);
    const double seconds = timer.ElapsedSeconds();
    if (!result.ok()) {
      const Status& status = result.status();
      if (const ExactResult* partial = status.payload<ExactResult>()) {
        SolveCounters counters;
        counters.nodes = partial->nodes;
        // Each expanded node weighs exactly one candidate set.
        counters.sets_considered =
            static_cast<std::size_t>(partial->nodes);
        return Rewrap(status, FinishSetBacked(request, partial->solution,
                                              seconds, contract, counters));
      }
      return status;
    }
    SolveCounters counters;
    counters.nodes = result->nodes;
    counters.sets_considered = static_cast<std::size_t>(result->nodes);
    return FinishSetBacked(request, std::move(result->solution), seconds,
                           contract, counters);
  }
};
SCWSC_REGISTER_SOLVER(
    ExactSolver,
    SolverInfo{"exact",
               "Exact branch-and-bound (optimal; small instances only)",
               kNeedsSetSystem | kSupportsAnytime | kExact,
               {{"max_nodes", OptionType::kU64, "200000000",
                 "node budget for the branch-and-bound search",
                 "max-nodes", false}}});

// --- non-overlapping greedy (§III, AlphaSum constraint) -------------------

class NonOverlapSolver : public Solver {
 public:
  Result<SolveResult> Solve(const SolveRequest& request,
                            const RunContext* run_context) const override {
    (void)run_context;  // the disjoint greedy has no interruption points
    SCWSC_ASSIGN_OR_RETURN(const SetSystem* system,
                           request.instance->set_system());
    NonOverlapOptions options;
    options.k = request.k;
    options.coverage_fraction = request.coverage_fraction;
    SCWSC_ASSIGN_OR_RETURN(options.best_effort,
                           request.options.GetBool("best_effort",
                                                   options.best_effort));
    SCWSC_ASSIGN_OR_RETURN(std::string rule,
                           request.options.GetString("rule", "gain"));
    if (rule == "gain") {
      options.rule = NonOverlapOptions::Rule::kGain;
    } else if (rule == "benefit") {
      options.rule = NonOverlapOptions::Rule::kBenefit;
    } else {
      return Status::InvalidArgument("option rule='" + rule +
                                     "' is neither 'gain' nor 'benefit'");
    }
    options.trace = request.trace;
    SolveContract contract;
    contract.max_sets = request.k;
    contract.coverage_target =
        options.best_effort ? 0
                            : SetSystem::CoverageTarget(
                                  request.coverage_fraction,
                                  system->num_elements());

    Stopwatch timer;
    ScanStats stats;
    Result<Solution> solution =
        RunNonOverlappingGreedy(*system, options, &stats);
    const double seconds = timer.ElapsedSeconds();
    if (!solution.ok()) return solution.status();
    SolveCounters counters;
    counters.sets_considered = stats.sets_considered;
    return FinishSetBacked(request, std::move(*solution), seconds, contract,
                           counters);
  }
};
SCWSC_REGISTER_SOLVER(
    NonOverlapSolver,
    SolverInfo{"nonoverlap",
               "Greedy under the AlphaSum disjointness constraint (§III)",
               kNeedsSetSystem,
               {{"best_effort", OptionType::kBool, "false",
                 "return the best disjoint cover found even if infeasible",
                 "best-effort", false},
                {"rule", OptionType::kString, "gain",
                 "selection rule: 'gain' or 'benefit'", "", false}}});

}  // namespace
}  // namespace api
}  // namespace scwsc
