// Registry adapters for the lattice-optimized pattern solvers (Figs. 3-4).
// These run directly over the snapshot's Table and never trigger the full
// pattern enumeration — that is their reason to exist.

#include <utility>

#include "src/api/adapter_util.h"
#include "src/api/registry.h"
#include "src/common/stopwatch.h"
#include "src/pattern/opt_cmc.h"
#include "src/pattern/opt_cwsc.h"

namespace scwsc {
namespace api {
namespace internal {

void LinkPatternSolvers() {}  // anchor referenced by SolverRegistry::Global()

}  // namespace internal

namespace {

using internal::CmcContract;
using internal::CmcOptionsFromRequest;
using internal::FinishPatternBacked;
using internal::Rewrap;

SolveCounters CountersFromStats(const pattern::PatternStats& stats) {
  SolveCounters counters;
  counters.sets_considered = stats.patterns_considered;
  counters.budget_rounds = stats.budget_rounds;
  counters.final_budget = stats.final_budget;
  return counters;
}

class OptCwscSolver : public Solver {
 public:
  Result<SolveResult> Solve(const SolveRequest& request,
                            const RunContext* run_context) const override {
    const Table& table = request.instance->table();
    CwscOptions options(request.k, request.coverage_fraction);
    options.run_context = run_context;
    options.trace = request.trace;
    const SolveContract contract{
        request.k,
        SetSystem::CoverageTarget(request.coverage_fraction,
                                  table.num_rows())};

    pattern::PatternStats stats;
    Stopwatch timer;
    Result<pattern::PatternSolution> solution = pattern::RunOptimizedCwsc(
        table, request.instance->cost_fn(), options, &stats);
    const double seconds = timer.ElapsedSeconds();
    if (!solution.ok()) {
      const Status& status = solution.status();
      if (const auto* partial = status.payload<pattern::PatternSolution>()) {
        return Rewrap(status,
                      FinishPatternBacked(request, *partial, seconds, contract,
                                          CountersFromStats(stats)));
      }
      return status;
    }
    return FinishPatternBacked(request, std::move(*solution), seconds,
                               contract, CountersFromStats(stats));
  }
};
SCWSC_REGISTER_SOLVER(
    OptCwscSolver,
    SolverInfo{"opt-cwsc",
               "Lattice-optimized CWSC over a patterned table (Fig. 3)",
               kNeedsTable | kSupportsAnytime,
               {}});

class OptCmcSolver : public Solver {
 public:
  Result<SolveResult> Solve(const SolveRequest& request,
                            const RunContext* run_context) const override {
    const Table& table = request.instance->table();
    SCWSC_ASSIGN_OR_RETURN(CmcOptions options,
                           CmcOptionsFromRequest(request, run_context));
    options.trace = request.trace;
    const SolveContract contract = CmcContract(options, table.num_rows());

    pattern::PatternStats stats;
    Stopwatch timer;
    Result<pattern::PatternSolution> solution = pattern::RunOptimizedCmc(
        table, request.instance->cost_fn(), options, &stats);
    const double seconds = timer.ElapsedSeconds();
    if (!solution.ok()) {
      const Status& status = solution.status();
      if (const auto* partial = status.payload<pattern::PatternSolution>()) {
        return Rewrap(status,
                      FinishPatternBacked(request, *partial, seconds, contract,
                                          CountersFromStats(stats)));
      }
      return status;
    }
    return FinishPatternBacked(request, std::move(*solution), seconds,
                               contract, CountersFromStats(stats));
  }
};
SCWSC_REGISTER_SOLVER(
    OptCmcSolver,
    SolverInfo{"opt-cmc",
               "Lattice-optimized CMC over a patterned table (Fig. 4)",
               kNeedsTable | kSupportsAnytime,
               internal::CmcOptionsSpec()});

}  // namespace
}  // namespace api
}  // namespace scwsc
