#include "src/api/solver.h"

#include <utility>

#include "src/common/strings.h"

namespace scwsc {
namespace api {

std::string CapabilitiesToString(unsigned capabilities) {
  static constexpr struct {
    unsigned bit;
    const char* name;
  } kNames[] = {
      {kNeedsSetSystem, "set-system"}, {kNeedsTable, "table"},
      {kNeedsHierarchy, "hierarchy"},  {kSupportsAnytime, "anytime"},
      {kExact, "exact"},
  };
  std::string out;
  for (const auto& entry : kNames) {
    if ((capabilities & entry.bit) == 0) continue;
    if (!out.empty()) out += ',';
    out += entry.name;
  }
  return out;
}

Result<OptionsBag> OptionsBag::Parse(const std::vector<std::string>& items) {
  OptionsBag bag;
  for (const std::string& item : items) {
    const std::size_t eq = item.find('=');
    if (eq == 0 || eq == std::string::npos) {
      return Status::InvalidArgument("option '" + item +
                                     "' is not of the form key=value");
    }
    bag.Set(item.substr(0, eq), item.substr(eq + 1));
  }
  return bag;
}

OptionsBag& OptionsBag::Set(std::string key, std::string value) {
  kv_[std::move(key)] = std::move(value);
  return *this;
}

Result<double> OptionsBag::GetDouble(const std::string& key,
                                     double fallback) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  auto parsed = ParseDouble(it->second);
  if (!parsed.ok()) {
    return Status::InvalidArgument("option " + key + "='" + it->second +
                                   "' is not a number");
  }
  return *parsed;
}

Result<std::uint64_t> OptionsBag::GetU64(const std::string& key,
                                         std::uint64_t fallback) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  auto parsed = ParseU64(it->second);
  if (!parsed.ok()) {
    return Status::InvalidArgument("option " + key + "='" + it->second +
                                   "' is not a non-negative integer");
  }
  return *parsed;
}

Result<bool> OptionsBag::GetBool(const std::string& key, bool fallback) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  return Status::InvalidArgument("option " + key + "='" + v +
                                 "' is not a boolean (true/false)");
}

Result<std::string> OptionsBag::GetString(const std::string& key,
                                          std::string fallback) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? std::move(fallback) : it->second;
}

Status OptionsBag::ExpectKnown(const std::vector<std::string>& known) const {
  for (const auto& [key, value] : kv_) {
    bool found = false;
    for (const std::string& k : known) {
      if (key == k) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::string accepted;
      for (const std::string& k : known) {
        if (!accepted.empty()) accepted += ", ";
        accepted += k;
      }
      return Status::InvalidArgument(
          "unknown option '" + key + "'" +
          (known.empty() ? " (this solver takes no options)"
                         : "; accepted options: " + accepted));
    }
  }
  return Status::OK();
}

}  // namespace api
}  // namespace scwsc
