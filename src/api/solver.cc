#include "src/api/solver.h"

#include <cctype>
#include <mutex>
#include <set>
#include <utility>

#include "src/common/logging.h"
#include "src/common/strings.h"

namespace scwsc {
namespace api {

std::string CapabilitiesToString(unsigned capabilities) {
  static constexpr struct {
    unsigned bit;
    const char* name;
  } kNames[] = {
      {kNeedsSetSystem, "set-system"}, {kNeedsTable, "table"},
      {kNeedsHierarchy, "hierarchy"},  {kSupportsAnytime, "anytime"},
      {kExact, "exact"},
  };
  std::string out;
  for (const auto& entry : kNames) {
    if ((capabilities & entry.bit) == 0) continue;
    if (!out.empty()) out += ',';
    out += entry.name;
  }
  return out;
}

std::string_view OptionTypeToString(OptionType type) {
  switch (type) {
    case OptionType::kDouble:
      return "double";
    case OptionType::kU64:
      return "u64";
    case OptionType::kBool:
      return "bool";
    case OptionType::kString:
      return "string";
  }
  return "string";
}

namespace {

std::string AsciiLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

/// Once-per-process guard for deprecated-alias warnings, keyed by
/// "<solver>/<alias>" so each old spelling warns exactly once no matter how
/// many requests use it.
bool ShouldWarnDeprecated(const std::string& key) {
  static std::mutex mu;
  static std::set<std::string>* warned = new std::set<std::string>();
  std::lock_guard<std::mutex> lock(mu);
  return warned->insert(key).second;
}

std::string AcceptedKeysList(const OptionsSpec& spec) {
  std::string accepted;
  for (const OptionSpec& opt : spec) {
    if (!accepted.empty()) accepted += ", ";
    accepted += opt.name;
  }
  return accepted;
}

}  // namespace

const OptionSpec* FindOption(const OptionsSpec& spec, const std::string& key) {
  const std::string lower = AsciiLower(key);
  for (const OptionSpec& opt : spec) {
    if (lower == opt.name) return &opt;
    if (!opt.deprecated_alias.empty() && lower == opt.deprecated_alias) {
      return &opt;
    }
  }
  return nullptr;
}

Result<OptionsBag> OptionsBag::Canonicalize(
    const OptionsSpec& spec, const std::string& solver_name) const {
  OptionsBag canonical;
  for (const auto& [key, value] : kv_) {
    const OptionSpec* opt = FindOption(spec, key);
    if (opt == nullptr) {
      const std::string accepted = AcceptedKeysList(spec);
      return Status::InvalidArgument(
          "unknown option '" + key + "' for solver '" + solver_name + "'" +
          (accepted.empty() ? " (this solver takes no options)"
                            : "; accepted options: " + accepted));
    }
    const std::string lower = AsciiLower(key);
    if (lower != opt->name &&
        ShouldWarnDeprecated(solver_name + "/" + lower)) {
      SCWSC_LOG_WARN("option key '%s' of solver '%s' is deprecated; use '%s'",
                     lower.c_str(), solver_name.c_str(), opt->name.c_str());
    }
    if (canonical.Has(opt->name)) {
      return Status::InvalidArgument(
          "option '" + opt->name + "' of solver '" + solver_name +
          "' given more than once (canonical key and alias together)");
    }
    canonical.Set(opt->name, value);
  }
  for (const OptionSpec& opt : spec) {
    if (opt.required && !canonical.Has(opt.name)) {
      return Status::InvalidArgument("solver '" + solver_name +
                                     "' requires option '" + opt.name + "'");
    }
  }
  return canonical;
}

std::string OptionsBag::CanonicalString() const {
  std::string out;  // kv_ is a std::map: already sorted by key
  for (const auto& [key, value] : kv_) {
    if (!out.empty()) out += ',';
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

Result<OptionsBag> OptionsBag::Parse(const std::vector<std::string>& items) {
  OptionsBag bag;
  for (const std::string& item : items) {
    const std::size_t eq = item.find('=');
    if (eq == 0 || eq == std::string::npos) {
      return Status::InvalidArgument("option '" + item +
                                     "' is not of the form key=value");
    }
    bag.Set(item.substr(0, eq), item.substr(eq + 1));
  }
  return bag;
}

OptionsBag& OptionsBag::Set(std::string key, std::string value) {
  kv_[std::move(key)] = std::move(value);
  return *this;
}

Result<double> OptionsBag::GetDouble(const std::string& key,
                                     double fallback) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  auto parsed = ParseDouble(it->second);
  if (!parsed.ok()) {
    return Status::InvalidArgument("option " + key + "='" + it->second +
                                   "' is not a number");
  }
  return *parsed;
}

Result<std::uint64_t> OptionsBag::GetU64(const std::string& key,
                                         std::uint64_t fallback) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  auto parsed = ParseU64(it->second);
  if (!parsed.ok()) {
    return Status::InvalidArgument("option " + key + "='" + it->second +
                                   "' is not a non-negative integer");
  }
  return *parsed;
}

Result<bool> OptionsBag::GetBool(const std::string& key, bool fallback) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  return Status::InvalidArgument("option " + key + "='" + v +
                                 "' is not a boolean (true/false)");
}

Result<std::string> OptionsBag::GetString(const std::string& key,
                                          std::string fallback) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? std::move(fallback) : it->second;
}

Status OptionsBag::ExpectKnown(const std::vector<std::string>& known) const {
  for (const auto& [key, value] : kv_) {
    bool found = false;
    for (const std::string& k : known) {
      if (key == k) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::string accepted;
      for (const std::string& k : known) {
        if (!accepted.empty()) accepted += ", ";
        accepted += k;
      }
      return Status::InvalidArgument(
          "unknown option '" + key + "'" +
          (known.empty() ? " (this solver takes no options)"
                         : "; accepted options: " + accepted));
    }
  }
  return Status::OK();
}

SolveRequest::Builder& SolveRequest::Builder::WithOptions(
    const std::vector<std::string>& items) {
  auto parsed = OptionsBag::Parse(items);
  if (!parsed.ok()) {
    if (deferred_.ok()) deferred_ = parsed.status();
    return *this;
  }
  for (const auto& [key, value] : parsed->items()) {
    request_.options.Set(key, value);
  }
  return *this;
}

Result<SolveRequest> SolveRequest::Builder::Build() const {
  SCWSC_RETURN_NOT_OK(deferred_);
  return request_;
}

}  // namespace api
}  // namespace scwsc
