#include "src/pattern/lattice.h"

#include <algorithm>
#include <unordered_map>

namespace scwsc {
namespace pattern {

std::vector<Pattern> Parents(const Pattern& p) {
  std::vector<Pattern> parents;
  for (std::size_t a = 0; a < p.num_attributes(); ++a) {
    if (!p.is_wildcard(a)) parents.push_back(p.WithWildcard(a));
  }
  return parents;
}

std::vector<ChildGroup> GroupChildren(const Table& table,
                                      const Pattern& parent,
                                      const std::vector<RowId>& rows) {
  std::vector<ChildGroup> groups;
  for (std::size_t a = 0; a < parent.num_attributes(); ++a) {
    if (!parent.is_wildcard(a)) continue;
    std::unordered_map<ValueId, std::vector<RowId>> by_value;
    for (RowId r : rows) {
      by_value[table.value(r, a)].push_back(r);
    }
    const std::size_t first = groups.size();
    for (auto& [v, grows] : by_value) {
      groups.push_back(ChildGroup{a, v, std::move(grows)});
    }
    // Deterministic order within the attribute: by value id.
    std::sort(groups.begin() + static_cast<std::ptrdiff_t>(first),
              groups.end(),
              [](const ChildGroup& x, const ChildGroup& y) {
                return x.value < y.value;
              });
  }
  return groups;
}

ChildGrouper::ChildGrouper(const Table& table, const RunContext* run_context)
    : table_(table),
      ctx_(run_context != nullptr ? *run_context : RunContext::Unlimited()) {
  scratch_.resize(table.num_attributes());
  for (std::size_t a = 0; a < table.num_attributes(); ++a) {
    scratch_[a].assign(table.domain_size(a), 0);
  }
}

std::vector<ChildGroup> ChildGrouper::operator()(
    const Pattern& parent, const std::vector<RowId>& rows) {
  std::vector<ChildGroup> groups;
  // Tripped contexts get an empty expansion so descent loops unwind right
  // away; the caller's own Check() distinguishes this from a leaf.
  if (ctx_.Check() != TripKind::kNone) return groups;
  for (std::size_t a = 0; a < parent.num_attributes(); ++a) {
    if (!parent.is_wildcard(a)) continue;
    auto& slot = scratch_[a];
    const std::size_t first = groups.size();
    for (RowId r : rows) {
      const ValueId v = table_.value(r, a);
      std::uint32_t& g = slot[v];
      if (g == 0) {
        groups.push_back(ChildGroup{a, v, {}});
        g = static_cast<std::uint32_t>(groups.size() - first);
      }
      groups[first + g - 1].marginal_rows.push_back(r);
    }
    // Deterministic order within the attribute, then reset the scratch.
    std::sort(groups.begin() + static_cast<std::ptrdiff_t>(first),
              groups.end(),
              [](const ChildGroup& x, const ChildGroup& y) {
                return x.value < y.value;
              });
    for (std::size_t g = first; g < groups.size(); ++g) {
      slot[groups[g].value] = 0;
    }
    ctx_.ChargeNodes(groups.size() - first);
  }
  return groups;
}

}  // namespace pattern
}  // namespace scwsc
