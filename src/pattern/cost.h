// Pattern cost functions (paper §II).
//
// The weight of a pattern is computed from the measure attribute of the
// records it covers, in an application-specific way; the paper's running
// example uses max, and Lemma 1 notes the hardness argument extends to sum
// and lp-norms. All three are provided.

#ifndef SCWSC_PATTERN_COST_H_
#define SCWSC_PATTERN_COST_H_

#include <vector>

#include "src/common/result.h"
#include "src/table/table.h"

namespace scwsc {
namespace pattern {

enum class CostKind {
  /// max_{t in Ben(p)} t[measure] — the paper's running example.
  kMax,
  /// Σ_{t in Ben(p)} t[measure].
  kSum,
  /// (Σ |t[measure]|^p)^(1/p).
  kLpNorm,
};

class CostFunction {
 public:
  /// kMax or kSum.
  explicit CostFunction(CostKind kind);

  /// kLpNorm with exponent p >= 1.
  static Result<CostFunction> LpNorm(double p);

  CostKind kind() const { return kind_; }
  double p() const { return p_; }

  /// Cost of a pattern covering exactly `rows` of `table`. Rows must be
  /// non-empty for kMax (a pattern in this library always covers at least
  /// one record); returns 0 on an empty row set otherwise.
  double Compute(const Table& table, const std::vector<RowId>& rows) const;

  std::string Name() const;

 private:
  CostFunction(CostKind kind, double p) : kind_(kind), p_(p) {}
  CostKind kind_;
  double p_ = 2.0;
};

}  // namespace pattern
}  // namespace scwsc

#endif  // SCWSC_PATTERN_COST_H_
