// Optimized CMC for patterned sets (paper Fig. 4, §V-C2).
//
// Per budget round, the search starts at the all-wildcards pattern and
// repeatedly takes the candidate with the highest marginal benefit. A
// candidate whose cost fits the budget and whose cost level still has
// allowance is selected; otherwise it is marked "visited" and its children
// become eligible (admitted once all their parents have been visited).
// Level structure and budget schedule are shared with the generic CMC
// (BuildCmcLevels), including the (1+ε)k merged-level variant and the
// generalized base 1+l.

#ifndef SCWSC_PATTERN_OPT_CMC_H_
#define SCWSC_PATTERN_OPT_CMC_H_

#include "src/common/result.h"
#include "src/core/cmc.h"
#include "src/pattern/cost.h"
#include "src/pattern/stats.h"

namespace scwsc {
namespace pattern {

/// Runs the lattice-optimized CMC directly over `table`. `stats`, when
/// non-null, receives the "patterns considered" instrumentation, summed
/// over budget rounds (Fig. 6).
Result<PatternSolution> RunOptimizedCmc(const Table& table,
                                        const CostFunction& cost_fn,
                                        const CmcOptions& options,
                                        PatternStats* stats = nullptr);

}  // namespace pattern
}  // namespace scwsc

#endif  // SCWSC_PATTERN_OPT_CMC_H_
