#include "src/pattern/pattern.h"

#include "src/common/logging.h"

namespace scwsc {
namespace pattern {

std::size_t Pattern::num_constants() const {
  std::size_t c = 0;
  for (ValueId v : values_) {
    if (v != kAll) ++c;
  }
  return c;
}

Pattern Pattern::WithValue(std::size_t attr, ValueId v) const {
  SCWSC_DCHECK(attr < values_.size());
  std::vector<ValueId> values = values_;
  values[attr] = v;
  return Pattern(std::move(values));
}

Pattern Pattern::WithWildcard(std::size_t attr) const {
  return WithValue(attr, kAll);
}

bool Pattern::Matches(const Table& table, RowId row) const {
  SCWSC_DCHECK(values_.size() == table.num_attributes());
  for (std::size_t a = 0; a < values_.size(); ++a) {
    if (values_[a] != kAll && table.value(row, a) != values_[a]) return false;
  }
  return true;
}

bool Pattern::Generalizes(const Pattern& other) const {
  SCWSC_DCHECK(values_.size() == other.values_.size());
  for (std::size_t a = 0; a < values_.size(); ++a) {
    if (values_[a] != kAll && values_[a] != other.values_[a]) return false;
  }
  return true;
}

std::string Pattern::ToString(const Table& table) const {
  std::string out = "{";
  for (std::size_t a = 0; a < values_.size(); ++a) {
    if (a) out += ", ";
    out += table.schema().attribute_name(a);
    out += '=';
    out += values_[a] == kAll ? "ALL" : table.dictionary(a).Name(values_[a]);
  }
  out += '}';
  return out;
}

bool CanonicalLess(const Pattern& a, const Pattern& b) {
  SCWSC_DCHECK(a.num_attributes() == b.num_attributes());
  for (std::size_t i = 0; i < a.num_attributes(); ++i) {
    const ValueId va = a.value(i);
    const ValueId vb = b.value(i);
    if (va == vb) continue;
    if (va == kAll) return false;  // concrete orders before ALL
    if (vb == kAll) return true;
    return va < vb;
  }
  return false;
}

std::size_t PatternHash::operator()(const Pattern& p) const {
  std::size_t h = 1469598103934665603ull;  // FNV offset basis
  for (ValueId v : p.values()) {
    h ^= v;
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

}  // namespace pattern
}  // namespace scwsc
