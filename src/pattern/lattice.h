// Pattern-lattice navigation (paper §V-C).
//
// Children of p: replace one wildcard with a concrete value; parents of p:
// replace one constant with ALL. Both optimized algorithms rely on the
// anti-monotonicity Ben(child) ⊆ Ben(parent) — and hence MBen(child) ⊆
// MBen(parent) for any covered-set — to admit a child only after all its
// parents qualified.
//
// Children are enumerated *data-driven*: for a parent with marginal benefit
// rows R, the only children with non-zero marginal benefit take, in the
// specialized attribute, a value that occurs in R; grouping R by that
// attribute yields each such child together with its exact marginal benefit
// rows. Children that cover no uncovered record are therefore never
// materialized (they could never pass the benefit threshold anyway).

#ifndef SCWSC_PATTERN_LATTICE_H_
#define SCWSC_PATTERN_LATTICE_H_

#include <vector>

#include "src/common/run_context.h"
#include "src/pattern/pattern.h"

namespace scwsc {
namespace pattern {

/// All parents of p (one per constant attribute, in attribute order).
/// The all-wildcards pattern has no parents.
std::vector<Pattern> Parents(const Pattern& p);

/// One prospective child of `parent`: specialize attribute `attr` to
/// `value`; `marginal_rows` is exactly MBen(child) given that `rows` passed
/// to GroupChildren was MBen(parent).
struct ChildGroup {
  std::size_t attr = 0;
  ValueId value = 0;
  std::vector<RowId> marginal_rows;
};

/// Groups `rows` (the parent's marginal benefit set) by each wildcard
/// attribute of `parent`, producing every child with at least one row in
/// `rows`. Groups are ordered deterministically by (attribute, value id).
std::vector<ChildGroup> GroupChildren(const Table& table,
                                      const Pattern& parent,
                                      const std::vector<RowId>& rows);

/// Allocation-light repeated grouping: keeps per-attribute scratch arrays
/// sized by the active domains, so each GroupChildren call costs
/// O(|rows| * wildcards + groups) with no hashing. Results are identical
/// to the free function. Not thread-safe; one instance per solver run.
class ChildGrouper {
 public:
  /// `run_context` (nullptr = unlimited): each call charges one node
  /// expansion per produced group; once tripped, operator() returns an
  /// empty group vector immediately so descent loops unwind fast (callers
  /// must consult the context before trusting an empty result).
  explicit ChildGrouper(const Table& table,
                        const RunContext* run_context = nullptr);

  std::vector<ChildGroup> operator()(const Pattern& parent,
                                     const std::vector<RowId>& rows);

 private:
  const Table& table_;
  const RunContext& ctx_;
  // scratch_[attr][value] = index into the current call's group vector + 1
  // (0 = unassigned); entries touched per call are reset afterwards.
  std::vector<std::vector<std::uint32_t>> scratch_;
};

}  // namespace pattern
}  // namespace scwsc

#endif  // SCWSC_PATTERN_LATTICE_H_
