#include "src/pattern/enumerate.h"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "src/common/logging.h"
#include "src/obs/trace.h"

namespace scwsc {
namespace pattern {
namespace {

/// Bit layout for packing one pattern into a uint64 key, when possible.
struct PackLayout {
  std::vector<unsigned> shift;
  std::vector<unsigned> bits;
  bool fits = false;
};

PackLayout ComputeLayout(const Table& table) {
  PackLayout layout;
  unsigned total = 0;
  for (std::size_t a = 0; a < table.num_attributes(); ++a) {
    // Encode value+1 (0 reserved for ALL): needs bit_width(domain + 1) bits.
    const unsigned bits = static_cast<unsigned>(
        std::bit_width(static_cast<std::uint64_t>(table.domain_size(a)) + 1));
    layout.shift.push_back(total);
    layout.bits.push_back(bits);
    total += bits;
  }
  layout.fits = total <= 64;
  return layout;
}

Pattern UnpackPattern(std::uint64_t key, const PackLayout& layout) {
  std::vector<ValueId> values(layout.bits.size(), kAll);
  for (std::size_t a = 0; a < layout.bits.size(); ++a) {
    const std::uint64_t mask = (std::uint64_t{1} << layout.bits[a]) - 1;
    const std::uint64_t enc = (key >> layout.shift[a]) & mask;
    values[a] = enc == 0 ? kAll : static_cast<ValueId>(enc - 1);
  }
  return Pattern(std::move(values));
}

Result<std::vector<EnumeratedPattern>> EnumeratePacked(
    const Table& table, const PackLayout& layout,
    const EnumerateOptions& options) {
  const std::size_t j = table.num_attributes();
  const std::size_t num_masks = std::size_t{1} << j;

  std::unordered_map<std::uint64_t, std::uint32_t> index;
  index.reserve(table.num_rows() * 2);
  std::vector<std::uint64_t> keys;
  std::vector<std::vector<RowId>> rows;

  const RunContext& ctx =
      options.run_context ? *options.run_context : RunContext::Unlimited();
  std::vector<std::uint64_t> encoded(j);
  for (RowId r = 0; r < table.num_rows(); ++r) {
    if (const TripKind trip = ctx.Check(); trip != TripKind::kNone) {
      return TripStatus(trip, "pattern enumeration");
    }
    for (std::size_t a = 0; a < j; ++a) {
      encoded[a] = (static_cast<std::uint64_t>(table.value(r, a)) + 1)
                   << layout.shift[a];
    }
    for (std::size_t mask = 0; mask < num_masks; ++mask) {
      std::uint64_t key = 0;
      for (std::size_t a = 0; a < j; ++a) {
        if (mask & (std::size_t{1} << a)) key |= encoded[a];
      }
      auto [it, inserted] =
          index.try_emplace(key, static_cast<std::uint32_t>(keys.size()));
      if (inserted) {
        if (keys.size() >= options.max_patterns) {
          return Status::ResourceExhausted(
              "pattern enumeration exceeded max_patterns");
        }
        if (ctx.ChargeNodes(1) != TripKind::kNone) {
          return TripStatus(ctx.tripped(), "pattern enumeration");
        }
        keys.push_back(key);
        rows.emplace_back();
      }
      rows[it->second].push_back(r);
    }
  }

  std::vector<EnumeratedPattern> out;
  out.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    out.push_back(EnumeratedPattern{UnpackPattern(keys[i], layout),
                                    std::move(rows[i])});
  }
  std::sort(out.begin(), out.end(),
            [](const EnumeratedPattern& a, const EnumeratedPattern& b) {
              return CanonicalLess(a.pattern, b.pattern);
            });
  return out;
}

Result<std::vector<EnumeratedPattern>> EnumerateGeneric(
    const Table& table, const EnumerateOptions& options) {
  const std::size_t j = table.num_attributes();
  const std::size_t num_masks = std::size_t{1} << j;

  std::unordered_map<Pattern, std::uint32_t, PatternHash> index;
  std::vector<EnumeratedPattern> out;

  const RunContext& ctx =
      options.run_context ? *options.run_context : RunContext::Unlimited();
  for (RowId r = 0; r < table.num_rows(); ++r) {
    if (const TripKind trip = ctx.Check(); trip != TripKind::kNone) {
      return TripStatus(trip, "pattern enumeration");
    }
    for (std::size_t mask = 0; mask < num_masks; ++mask) {
      std::vector<ValueId> values(j, kAll);
      for (std::size_t a = 0; a < j; ++a) {
        if (mask & (std::size_t{1} << a)) values[a] = table.value(r, a);
      }
      Pattern p(std::move(values));
      auto [it, inserted] =
          index.try_emplace(std::move(p), static_cast<std::uint32_t>(out.size()));
      if (inserted) {
        if (out.size() >= options.max_patterns) {
          return Status::ResourceExhausted(
              "pattern enumeration exceeded max_patterns");
        }
        if (ctx.ChargeNodes(1) != TripKind::kNone) {
          return TripStatus(ctx.tripped(), "pattern enumeration");
        }
        out.push_back(EnumeratedPattern{it->first, {}});
      }
      out[it->second].rows.push_back(r);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const EnumeratedPattern& a, const EnumeratedPattern& b) {
              return CanonicalLess(a.pattern, b.pattern);
            });
  return out;
}

}  // namespace

Result<std::vector<EnumeratedPattern>> EnumerateAllPatterns(
    const Table& table, const EnumerateOptions& options) {
  if (table.num_attributes() == 0) {
    return Status::InvalidArgument("table has no pattern attributes");
  }
  if (table.num_attributes() > 20) {
    return Status::NotSupported(
        "more than 20 pattern attributes would enumerate 2^j > 1M "
        "generalizations per record; use the optimized algorithms instead");
  }
  const PackLayout layout = ComputeLayout(table);
  obs::Span span(options.trace, "enumerate");
  Result<std::vector<EnumeratedPattern>> out =
      layout.fits ? EnumeratePacked(table, layout, options)
                  : EnumerateGeneric(table, options);
  if (options.trace != nullptr && out.ok()) {
    options.trace->metrics().counter("enumerate.patterns")
        .Increment(out->size());
  }
  return out;
}

}  // namespace pattern
}  // namespace scwsc
