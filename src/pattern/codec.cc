#include "src/pattern/codec.h"

#include <bit>

#include "src/common/logging.h"

namespace scwsc {
namespace pattern {

PatternCodec::PatternCodec(const Table& table) {
  unsigned total = 0;
  for (std::size_t a = 0; a < table.num_attributes(); ++a) {
    const unsigned bits = static_cast<unsigned>(
        std::bit_width(static_cast<std::uint64_t>(table.domain_size(a)) + 1));
    shift_.push_back(total);
    bits_.push_back(bits);
    total += bits;
  }
  fits_ = total <= 64;
}

std::uint64_t PatternCodec::Encode(const Pattern& p) const {
  SCWSC_DCHECK(fits_);
  SCWSC_DCHECK(p.num_attributes() == bits_.size());
  std::uint64_t key = 0;
  for (std::size_t a = 0; a < bits_.size(); ++a) {
    if (!p.is_wildcard(a)) {
      key |= (static_cast<std::uint64_t>(p.value(a)) + 1) << shift_[a];
    }
  }
  return key;
}

Pattern PatternCodec::Decode(std::uint64_t key) const {
  SCWSC_DCHECK(fits_);
  std::vector<ValueId> values(bits_.size(), kAll);
  for (std::size_t a = 0; a < bits_.size(); ++a) {
    const std::uint64_t enc = (key >> shift_[a]) & ((std::uint64_t{1} << bits_[a]) - 1);
    if (enc != 0) values[a] = static_cast<ValueId>(enc - 1);
  }
  return Pattern(std::move(values));
}

}  // namespace pattern
}  // namespace scwsc
