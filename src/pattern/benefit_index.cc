#include "src/pattern/benefit_index.h"

#include <algorithm>
#include <numeric>

#include "src/common/logging.h"

namespace scwsc {
namespace pattern {

BenefitIndex::BenefitIndex(const Table& table) : table_(table) {
  postings_.resize(table.num_attributes());
  for (std::size_t a = 0; a < table.num_attributes(); ++a) {
    postings_[a].resize(table.domain_size(a));
    for (RowId r = 0; r < table.num_rows(); ++r) {
      postings_[a][table.value(r, a)].push_back(r);
    }
  }
  all_rows_.resize(table.num_rows());
  std::iota(all_rows_.begin(), all_rows_.end(), RowId{0});
}

const std::vector<RowId>& BenefitIndex::Postings(std::size_t attr,
                                                 ValueId value) const {
  SCWSC_DCHECK(attr < postings_.size());
  SCWSC_DCHECK(value < postings_[attr].size());
  return postings_[attr][value];
}

std::vector<RowId> BenefitIndex::Ben(const Pattern& p) const {
  SCWSC_DCHECK(p.num_attributes() == table_.num_attributes());
  // Start from the shortest posting list among constants, then filter by the
  // remaining constants directly against the table (cheaper than k-way list
  // intersection for the small attribute counts of patterned data).
  std::ptrdiff_t seed_attr = -1;
  std::size_t seed_size = all_rows_.size() + 1;
  for (std::size_t a = 0; a < p.num_attributes(); ++a) {
    if (p.is_wildcard(a)) continue;
    const std::size_t size = postings_[a][p.value(a)].size();
    if (size < seed_size) {
      seed_size = size;
      seed_attr = static_cast<std::ptrdiff_t>(a);
    }
  }
  if (seed_attr < 0) return all_rows_;  // all-wildcards

  const auto& seed = postings_[static_cast<std::size_t>(seed_attr)]
                              [p.value(static_cast<std::size_t>(seed_attr))];
  std::vector<RowId> out;
  out.reserve(seed.size());
  for (RowId r : seed) {
    bool match = true;
    for (std::size_t a = 0; a < p.num_attributes(); ++a) {
      if (static_cast<std::ptrdiff_t>(a) == seed_attr || p.is_wildcard(a)) {
        continue;
      }
      if (table_.value(r, a) != p.value(a)) {
        match = false;
        break;
      }
    }
    if (match) out.push_back(r);
  }
  return out;
}

std::size_t BenefitIndex::BenefitCount(const Pattern& p) const {
  std::size_t constants = p.num_constants();
  if (constants == 0) return all_rows_.size();
  if (constants == 1) {
    for (std::size_t a = 0; a < p.num_attributes(); ++a) {
      if (!p.is_wildcard(a)) return postings_[a][p.value(a)].size();
    }
  }
  return Ben(p).size();
}

}  // namespace pattern
}  // namespace scwsc
