#include "src/pattern/pattern_system.h"

namespace scwsc {
namespace pattern {

Result<PatternSystem> PatternSystem::Build(const Table& table,
                                           const CostFunction& cost_fn,
                                           const EnumerateOptions& options) {
  if (!table.has_measure()) {
    return Status::InvalidArgument(
        "PatternSystem requires a measure column for pattern costs");
  }
  SCWSC_ASSIGN_OR_RETURN(auto enumerated, EnumerateAllPatterns(table, options));

  SetSystem system(table.num_rows());
  std::vector<Pattern> patterns;
  patterns.reserve(enumerated.size());
  for (auto& ep : enumerated) {
    const double cost = cost_fn.Compute(table, ep.rows);
    std::vector<ElementId> elements(ep.rows.begin(), ep.rows.end());
    SCWSC_ASSIGN_OR_RETURN(SetId id,
                           system.AddSet(std::move(elements), cost));
    (void)id;
    patterns.push_back(std::move(ep.pattern));
  }
  return PatternSystem(table, std::move(system), std::move(patterns));
}

PatternSolution PatternSystem::ToPatternSolution(
    const Solution& solution) const {
  PatternSolution out;
  out.total_cost = solution.total_cost;
  out.covered = solution.covered;
  out.patterns.reserve(solution.sets.size());
  for (SetId id : solution.sets) out.patterns.push_back(patterns_[id]);
  return out;
}

}  // namespace pattern
}  // namespace scwsc
