// Optimized CWSC for patterned sets (paper Fig. 3, §V-C1).
//
// Instead of enumerating every pattern, the candidate set C holds exactly
// the patterns whose current marginal benefit meets the iteration's
// qualification threshold rem/i. C starts with the all-wildcards pattern
// and is maintained by descending the lattice: a child is admitted (and its
// benefit/cost computed) only when all of its parents are currently in C —
// sound because a child's marginal benefit never exceeds any parent's.
// Provided both break ties identically, the optimized algorithm selects
// exactly the same patterns as CWSC over the fully enumerated system; this
// library guarantees that by using one canonical pattern order everywhere
// (a property test re-verifies it on random tables).

#ifndef SCWSC_PATTERN_OPT_CWSC_H_
#define SCWSC_PATTERN_OPT_CWSC_H_

#include "src/common/result.h"
#include "src/core/cwsc.h"
#include "src/pattern/cost.h"
#include "src/pattern/stats.h"

namespace scwsc {
namespace pattern {

/// Runs the lattice-optimized CWSC directly over `table`. `stats`, when
/// non-null, receives the "patterns considered" instrumentation (Fig. 6).
Result<PatternSolution> RunOptimizedCwsc(const Table& table,
                                         const CostFunction& cost_fn,
                                         const CwscOptions& options,
                                         PatternStats* stats = nullptr);

}  // namespace pattern
}  // namespace scwsc

#endif  // SCWSC_PATTERN_OPT_CWSC_H_
