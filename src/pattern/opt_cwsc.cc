#include "src/pattern/opt_cwsc.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "src/common/bitset.h"
#include "src/common/thread_pool.h"
#include "src/core/benefit_engine.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/pattern/lattice.h"

namespace scwsc {
namespace pattern {
namespace {

struct Candidate {
  Pattern pattern;
  std::vector<RowId> ben;   // Ben(p): all matching rows
  std::vector<RowId> mben;  // MBen(p): matching rows not yet covered
  double cost = 0.0;
  bool processed = false;   // waitlist flag for the current outer iteration
};

using CandidateMap = std::unordered_map<Pattern, Candidate, PatternHash>;

/// Max-heap entry for the waitlist, ordered by marginal benefit with
/// canonical pattern order as the deterministic tie-break (Fig. 3 line 13).
struct WaitEntry {
  std::size_t count;
  const Pattern* pattern;
};
struct WaitLess {
  bool operator()(const WaitEntry& a, const WaitEntry& b) const {
    if (a.count != b.count) return a.count < b.count;
    return CanonicalLess(*b.pattern, *a.pattern);  // smaller canonical first
  }
};

/// True when `cand` beats `best` under the shared selection order: higher
/// marginal gain, then higher marginal benefit, then lower cost, then
/// canonically smaller pattern.
bool BetterCandidate(const Candidate& cand, const Candidate& best) {
  const std::size_t ca = cand.mben.size();
  const std::size_t cb = best.mben.size();
  if (BetterGain(ca, cand.cost, cb, best.cost)) return true;
  if (BetterGain(cb, best.cost, ca, cand.cost)) return false;
  if (ca != cb) return ca > cb;
  if (cand.cost != best.cost) return cand.cost < best.cost;
  return CanonicalLess(cand.pattern, best.pattern);
}

}  // namespace

Result<PatternSolution> RunOptimizedCwsc(const Table& table,
                                         const CostFunction& cost_fn,
                                         const CwscOptions& options,
                                         PatternStats* stats) {
  if (options.k == 0) return Status::InvalidArgument("k must be positive");
  if (options.coverage_fraction < 0.0 || options.coverage_fraction > 1.0) {
    return Status::InvalidArgument("coverage_fraction must be in [0, 1]");
  }
  if (!table.has_measure()) {
    return Status::InvalidArgument("pattern costs require a measure column");
  }

  PatternStats local_stats;
  PatternStats& st = stats ? *stats : local_stats;
  st = PatternStats{};

  const std::size_t n = table.num_rows();
  std::size_t rem = SetSystem::CoverageTarget(options.coverage_fraction, n);
  PatternSolution solution;
  if (rem == 0) return solution;
  if (n == 0) return Status::Infeasible("empty table with positive target");

  DynamicBitset covered(n);
  obs::Span span(options.trace, "opt_cwsc");
  obs::MetricCounter* considered_metric = nullptr;
  obs::MetricCounter* admitted_metric = nullptr;
  if (options.trace != nullptr) {
    considered_metric = &options.trace->metrics().counter("pattern.considered");
    admitted_metric = &options.trace->metrics().counter("pattern.admitted");
  }
  const RunContext& ctx =
      options.run_context ? *options.run_context : RunContext::Unlimited();
  auto interrupted = [&](TripKind trip) -> Status {
    solution.covered = covered.count();
    solution.provenance.trip = trip;
    solution.provenance.sets_chosen = solution.patterns.size();
    solution.provenance.coverage_reached = solution.covered;
    return TripStatus(trip, "optimized cwsc").WithPayload(solution);
  };
  ChildGrouper group_children(table, &ctx);
  CandidateMap candidates;
  std::unordered_set<Pattern, PatternHash> selected;

  // Candidate-scan pool for the per-iteration MBen refresh; each candidate's
  // posting list is filtered independently, so any lane count is
  // bit-identical to serial.
  std::unique_ptr<ThreadPool> pool;
  if (ThreadPool::ResolveThreads(options.engine.num_threads) > 1) {
    pool = std::make_unique<ThreadPool>(options.engine.num_threads);
  }

  // Fig. 3 lines 04-06: seed with the all-wildcards pattern.
  {
    Candidate root;
    root.pattern = Pattern::AllWildcards(table.num_attributes());
    root.ben.resize(n);
    for (RowId r = 0; r < n; ++r) root.ben[r] = r;
    root.mben = root.ben;
    root.cost = cost_fn.Compute(table, root.ben);
    ++st.patterns_considered;
    ++st.candidates_admitted;
    if (considered_metric != nullptr) considered_metric->Increment();
    if (admitted_metric != nullptr) admitted_metric->Increment();
    candidates.emplace(root.pattern, std::move(root));
  }

  for (std::size_t i = options.k; i >= 1; --i) {
    if (const TripKind trip = ctx.Check(); trip != TripKind::kNone) {
      return interrupted(trip);
    }
    obs::Span descend_span(options.trace, "opt_cwsc.descend");
    // Lines 08-10: drop candidates below this iteration's threshold
    // (|MBen| * i >= rem, in exact integers).
    for (auto it = candidates.begin(); it != candidates.end();) {
      if (it->second.mben.size() * i < rem) {
        it = candidates.erase(it);
      } else {
        it->second.processed = false;
        ++it;
      }
    }

    // Lines 11-20: descend the lattice from the surviving candidates.
    std::priority_queue<WaitEntry, std::vector<WaitEntry>, WaitLess> waitlist;
    for (auto& [pat, cand] : candidates) {
      waitlist.push(WaitEntry{cand.mben.size(), &pat});
    }
    while (!waitlist.empty()) {
      if (const TripKind trip = ctx.Check(); trip != TripKind::kNone) {
        return interrupted(trip);
      }
      const WaitEntry top = waitlist.top();
      waitlist.pop();
      auto qit = candidates.find(*top.pattern);
      if (qit == candidates.end() || qit->second.processed) continue;
      Candidate& q = qit->second;
      q.processed = true;

      // Enumerate q's children with non-zero marginal benefit, grouped by
      // (attribute, value); the group rows are exactly MBen(child).
      auto groups = group_children(q.pattern, q.mben);

      // For children that pass the membership + all-parents tests, compute
      // Ben(child) = Ben(q) filtered by the specialized attribute in a
      // single pass per attribute.
      struct Pending {
        std::size_t group_index;
        Pattern child;
      };
      std::vector<Pending> pending;
      for (std::size_t g = 0; g < groups.size(); ++g) {
        Pattern child = q.pattern.WithValue(groups[g].attr, groups[g].value);
        if (candidates.count(child) || selected.count(child)) continue;
        bool parents_ok = true;
        for (const Pattern& parent : Parents(child)) {
          if (!candidates.count(parent)) {
            parents_ok = false;
            break;
          }
        }
        if (!parents_ok) continue;
        pending.push_back(Pending{g, std::move(child)});
      }

      for (auto& pend : pending) {
        const ChildGroup& group = groups[pend.group_index];
        // Line 17: compute MBen and Cost of the child.
        Candidate cand;
        cand.pattern = std::move(pend.child);
        cand.ben.reserve(group.marginal_rows.size());
        for (RowId r : q.ben) {
          if (table.value(r, group.attr) == group.value) {
            cand.ben.push_back(r);
          }
        }
        cand.mben = group.marginal_rows;
        cand.cost = cost_fn.Compute(table, cand.ben);
        ++st.patterns_considered;
        if (considered_metric != nullptr) considered_metric->Increment();
        // Line 18: admit only when the child meets the threshold.
        if (cand.mben.size() * i >= rem) {
          ++st.candidates_admitted;
          if (admitted_metric != nullptr) admitted_metric->Increment();
          auto [it, inserted] =
              candidates.emplace(cand.pattern, std::move(cand));
          SCWSC_CHECK(inserted, "candidate admitted twice");
          waitlist.push(WaitEntry{it->second.mben.size(), &it->first});
        }
      }
    }

    // Line 21: select the candidate with the highest marginal gain.
    const Candidate* best = nullptr;
    for (const auto& [pat, cand] : candidates) {
      if (best == nullptr || BetterCandidate(cand, *best)) best = &cand;
    }
    if (best == nullptr) {
      return Status::Infeasible(
          "optimized CWSC: no qualified candidate (cannot happen when the "
          "all-wildcards pattern is admissible)");
    }

    // Lines 23-26: commit the selection.
    descend_span.Event("pick");
    solution.patterns.push_back(best->pattern);
    solution.total_cost += best->cost;
    const std::size_t newly = best->mben.size();
    for (RowId r : best->mben) covered.set(r);
    selected.insert(best->pattern);
    candidates.erase(best->pattern);
    rem = newly >= rem ? 0 : rem - newly;
    solution.covered = covered.count();
    if (rem == 0) return solution;

    // Lines 27-30: refresh marginal benefit sets against the new coverage
    // and drop exhausted candidates.
    std::vector<std::vector<RowId>*> mben_lists;
    mben_lists.reserve(candidates.size());
    for (auto& [pat, cand] : candidates) mben_lists.push_back(&cand.mben);
    const Status filtered = FilterCoveredIds(covered, mben_lists, pool.get(), &ctx);
    if (!filtered.ok()) {
      if (!filtered.IsInterruption()) return filtered;  // pool task threw
      return interrupted(ctx.tripped());
    }
    for (auto it = candidates.begin(); it != candidates.end();) {
      if (it->second.mben.empty()) {
        it = candidates.erase(it);
      } else {
        ++it;
      }
    }
  }

  return Status::Internal(
      "optimized CWSC exhausted k picks without meeting coverage");
}

}  // namespace pattern
}  // namespace scwsc
