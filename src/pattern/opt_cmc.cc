#include "src/pattern/opt_cmc.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "src/common/bitset.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/pattern/benefit_index.h"
#include "src/pattern/codec.h"
#include "src/pattern/lattice.h"

namespace scwsc {
namespace pattern {
namespace {

/// Key operations for tables whose patterns pack into 64 bits: candidate
/// maps, visited/selected sets and heap entries are all plain integers.
struct PackedOps {
  using Key = std::uint64_t;
  using Hash = PackedKeyHash;
  const PatternCodec* codec;

  Key Root() const { return 0; }
  Key Child(Key key, std::size_t attr, ValueId v) const {
    return codec->WithValue(key, attr, v);
  }
  Key Parent(Key key, std::size_t attr) const {
    return codec->WithWildcard(key, attr);
  }
  bool IsWildcard(Key key, std::size_t attr) const {
    return codec->IsWildcard(key, attr);
  }
  Pattern ToPattern(Key key) const { return codec->Decode(key); }
};

/// Fallback for tables with more than 64 bits of attribute width.
struct GenericOps {
  using Key = Pattern;
  using Hash = PatternHash;
  std::size_t num_attributes;

  Key Root() const { return Pattern::AllWildcards(num_attributes); }
  Key Child(const Key& key, std::size_t attr, ValueId v) const {
    return key.WithValue(attr, v);
  }
  Key Parent(const Key& key, std::size_t attr) const {
    return key.WithWildcard(attr);
  }
  bool IsWildcard(const Key& key, std::size_t attr) const {
    return key.is_wildcard(attr);
  }
  Pattern ToPattern(const Key& key) const { return key; }
};

template <typename Ops>
struct Candidate {
  std::vector<RowId> mben;
  /// Coverage epoch mben was last filtered against; refreshed lazily at pop
  /// time so selections cost O(pops) instead of O(selections x |C|).
  std::size_t epoch = 0;
  /// Cost is computed on first pop (each pattern pops at most once per
  /// round) via the shared BenefitIndex; admission only needs MBen.
  double cost = 0.0;
  bool cost_known = false;
};

template <typename Ops>
struct HeapEntry {
  std::size_t count;
  typename Ops::Key key;
};
template <typename Ops>
struct HeapLess {
  bool operator()(const HeapEntry<Ops>& a, const HeapEntry<Ops>& b) const {
    if (a.count != b.count) return a.count < b.count;
    // Deterministic tie-break: canonical pattern order for Pattern keys, a
    // plain (equally deterministic) integer order for packed keys.
    if constexpr (std::is_same_v<typename Ops::Key, std::uint64_t>) {
      return b.key < a.key;
    } else {
      return CanonicalLess(b.key, a.key);
    }
  }
};

template <typename Ops>
Result<PatternSolution> RunOptimizedCmcImpl(const Table& table,
                                            const CostFunction& cost_fn,
                                            const CmcOptions& options,
                                            PatternStats& st, const Ops& ops) {
  using Key = typename Ops::Key;
  using Hash = typename Ops::Hash;

  const std::size_t n = table.num_rows();
  const std::size_t j = table.num_attributes();
  const std::size_t target =
      CmcCoverageTarget(options.coverage_fraction, n, options.relax_coverage);

  PatternSolution solution;
  if (target == 0) return solution;
  if (n == 0) return Status::Infeasible("empty table with positive target");

  std::vector<RowId> all_rows(n);
  for (RowId r = 0; r < n; ++r) all_rows[r] = r;
  const double root_cost = cost_fn.Compute(table, all_rows);

  // Fig. 4 line 01 seeds B with the cost of the k cheapest patterns, which
  // the lattice-only algorithm cannot know without enumerating. We seed
  // with the lower bound k * (smallest row measure): every pattern covers
  // some row, so under max/sum/lp costs its cost is at least the smallest
  // measure. A lower start only adds cheap early rounds (skipped by the
  // feasibility precheck below); the geometric schedule is unchanged.
  double min_measure = 0.0;
  double min_positive_measure = 0.0;
  bool first = true;
  for (RowId r = 0; r < n; ++r) {
    const double m = table.measure(r);
    if (first || m < min_measure) min_measure = m;
    if (m > 0.0 && (min_positive_measure == 0.0 || m < min_positive_measure)) {
      min_positive_measure = m;
    }
    first = false;
  }
  double budget = static_cast<double>(options.k) * std::max(min_measure, 0.0);
  if (budget <= 0.0) {
    budget = min_positive_measure > 0.0 ? min_positive_measure : 1.0;
  }

  // Round-feasibility precheck. Every pattern covering row r also covers
  // all rows identical to r, so its cost is at least the aggregate of r's
  // duplicate group (exactly for max; a lower bound for sum / lp-norms when
  // measures are non-negative, since those aggregates are monotone under
  // superset). A round with budget B can therefore cover at most
  // |{r : group_aggregate(r) <= B}| rows; when that is below the target the
  // round is provably infeasible and the (expensive) lattice descent is
  // skipped. This mirrors Fig. 4's early rounds, which fail after fruitless
  // work — the outcome is identical, the work is not.
  std::vector<double> coverable_thresholds;
  {
    bool bound_valid = cost_fn.kind() == CostKind::kMax;
    if (!bound_valid) {
      bound_valid = true;
      for (RowId r = 0; r < n; ++r) {
        if (table.measure(r) < 0.0) {
          bound_valid = false;
          break;
        }
      }
    }
    if (bound_valid) {
      std::unordered_map<Pattern, std::vector<RowId>, PatternHash> groups;
      for (RowId r = 0; r < n; ++r) {
        std::vector<ValueId> key(j);
        for (std::size_t a = 0; a < j; ++a) key[a] = table.value(r, a);
        groups[Pattern(std::move(key))].push_back(r);
      }
      coverable_thresholds.reserve(n);
      for (const auto& [pat, rows] : groups) {
        const double aggregate = cost_fn.Compute(table, rows);
        for (std::size_t i = 0; i < rows.size(); ++i) {
          coverable_thresholds.push_back(aggregate);
        }
      }
      std::sort(coverable_thresholds.begin(), coverable_thresholds.end());
    }
  }
  auto coverable_rows = [&](double b) -> std::size_t {
    if (coverable_thresholds.empty()) return n;  // bound unavailable
    return static_cast<std::size_t>(
        std::upper_bound(coverable_thresholds.begin(),
                         coverable_thresholds.end(), b) -
        coverable_thresholds.begin());
  };

  // Shared posting lists: deferred candidate costs are computed from
  // Ben(p) on first pop instead of by filtering the parent's benefit list
  // at admission time.
  const BenefitIndex index(table);
  const RunContext& ctx =
      options.run_context ? *options.run_context : RunContext::Unlimited();
  ChildGrouper group_children(table, &ctx);

  DynamicBitset covered(n);
  bool final_round = budget >= root_cost;

  // Trips surrender the in-progress round's selection (or the previous
  // round's, between rounds) with the budget level recorded in provenance.
  PatternSolution last_round;
  auto interrupted = [&](TripKind trip, PatternSolution partial) -> Status {
    partial.provenance.trip = trip;
    partial.provenance.sets_chosen = partial.patterns.size();
    partial.provenance.coverage_reached = partial.covered;
    partial.provenance.budget_level = budget;
    return TripStatus(trip, "optimized cmc").WithPayload(std::move(partial));
  };

  using CandidateMap = std::unordered_map<Key, Candidate<Ops>, Hash>;
  using KeySet = std::unordered_set<Key, Hash>;
  using Heap = std::priority_queue<HeapEntry<Ops>, std::vector<HeapEntry<Ops>>,
                                   HeapLess<Ops>>;

  obs::Span cmc_span(options.trace, "opt_cmc");
  obs::MetricCounter* considered_metric = nullptr;
  obs::MetricCounter* admitted_metric = nullptr;
  if (options.trace != nullptr) {
    considered_metric = &options.trace->metrics().counter("pattern.considered");
    admitted_metric = &options.trace->metrics().counter("pattern.admitted");
  }

  for (std::size_t round = 1; round <= options.max_budget_rounds; ++round) {
    if (const TripKind trip = ctx.Check(); trip != TripKind::kNone) {
      return interrupted(trip, std::move(last_round));
    }
    st.budget_rounds = round;
    if (coverable_rows(budget) < target) {
      // Provably infeasible budget; skip the descent (see precheck above).
      if (final_round) {
        return Status::Infeasible(
            "optimized CMC: coverage unreachable even at the all-wildcards "
            "pattern's cost");
      }
      budget *= (1.0 + options.b);
      if (budget >= root_cost) {
        budget = root_cost;
        final_round = true;
      }
      continue;
    }

    obs::Span round_span(options.trace, "opt_cmc.round");
    const auto levels =
        BuildCmcLevels(budget, options.k, options.epsilon, options.l);
    std::size_t total_allowance = 0;
    for (const auto& lv : levels) total_allowance += lv.capacity;

    covered.clear();
    std::size_t rem = target;
    CandidateMap candidates;
    KeySet visited;
    KeySet selected;
    std::vector<std::size_t> level_count(levels.size(), 0);
    std::size_t total_count = 0;
    std::size_t epoch = 0;  // bumped on every selection

    PatternSolution round_solution;

    // Lines 11-13: seed with the all-wildcards pattern.
    {
      Candidate<Ops> root;
      root.mben = all_rows;
      root.cost = root_cost;
      root.cost_known = true;
      ++st.patterns_considered;
      ++st.candidates_admitted;
      if (considered_metric != nullptr) considered_metric->Increment();
      if (admitted_metric != nullptr) admitted_metric->Increment();
      candidates.emplace(ops.Root(), std::move(root));
    }
    Heap heap;
    heap.push(HeapEntry<Ops>{n, ops.Root()});

    // Lines 17-35.
    while (!candidates.empty() && total_count <= total_allowance && rem > 0) {
      if (const TripKind trip = ctx.Check(); trip != TripKind::kNone) {
        round_solution.covered = covered.count();
        return interrupted(trip, std::move(round_solution));
      }
      // Line 18: argmax marginal benefit, via the lazy heap.
      if (heap.empty()) break;
      HeapEntry<Ops> top = heap.top();
      heap.pop();
      auto qit = candidates.find(top.key);
      if (qit == candidates.end()) continue;  // candidate was erased
      Candidate<Ops>& cand_ref = qit->second;
      if (cand_ref.epoch != epoch) {
        // Stale coverage: refilter the marginal benefit set lazily.
        auto& m = cand_ref.mben;
        m.erase(std::remove_if(m.begin(), m.end(),
                               [&](RowId r) { return covered.test(r); }),
                m.end());
        cand_ref.epoch = epoch;
        if (m.empty()) {
          candidates.erase(qit);  // lines 28-29
          continue;
        }
      }
      if (cand_ref.mben.size() != top.count) {
        // Stale key; marginal benefit only decreases, so re-queue.
        heap.push(HeapEntry<Ops>{cand_ref.mben.size(), top.key});
        continue;
      }

      const Key q_key = top.key;
      Candidate<Ops> q = std::move(qit->second);
      candidates.erase(qit);  // line 19
      const Pattern q_pattern = ops.ToPattern(q_key);
      if (!q.cost_known) {
        q.cost = cost_fn.Compute(table, index.Ben(q_pattern));
        q.cost_known = true;
      }

      const int level = LevelOf(levels, q.cost);  // line 20 (-1 = over budget)
      bool selected_now = false;
      if (level >= 0) {
        // Line 21: every within-budget pop consumes level allowance,
        // selected or not (the pseudocode's ++count[i] <= ki test).
        std::size_t& cnt = level_count[static_cast<std::size_t>(level)];
        ++cnt;
        ++total_count;
        if (cnt <= levels[static_cast<std::size_t>(level)].capacity) {
          selected_now = true;
        }
      }

      if (selected_now) {
        // Lines 22-29 (candidate refresh happens lazily at pop).
        round_span.Event("pick");
        round_solution.patterns.push_back(q_pattern);
        round_solution.total_cost += q.cost;
        selected.insert(q_key);
        const std::size_t newly = q.mben.size();
        for (RowId r : q.mben) covered.set(r);
        rem = newly >= rem ? 0 : rem - newly;
        ++epoch;
        if (rem == 0) break;
        continue;
      }

      // Lines 30-35: mark visited and expand children whose parents have
      // all been visited.
      visited.insert(q_key);
      auto groups = group_children(q_pattern, q.mben);
      for (auto& group : groups) {
        Key child = ops.Child(q_key, group.attr, group.value);
        if (candidates.count(child) || visited.count(child) ||
            selected.count(child)) {
          continue;
        }
        bool parents_ok = true;
        for (std::size_t a = 0; a < j && parents_ok; ++a) {
          if (a == group.attr || ops.IsWildcard(child, a)) continue;
          if (!visited.count(ops.Parent(child, a))) parents_ok = false;
        }
        if (!parents_ok) continue;
        // Line 35: compute MBen of the admitted child (its cost follows on
        // first pop).
        Candidate<Ops> cand;
        cand.mben = std::move(group.marginal_rows);
        cand.epoch = epoch;
        ++st.patterns_considered;
        ++st.candidates_admitted;
        if (considered_metric != nullptr) considered_metric->Increment();
        if (admitted_metric != nullptr) admitted_metric->Increment();
        const std::size_t count = cand.mben.size();
        candidates.emplace(child, std::move(cand));
        heap.push(HeapEntry<Ops>{count, std::move(child)});
      }
    }

    if (rem == 0) {
      round_solution.covered = covered.count();
      st.final_budget = budget;
      return round_solution;
    }
    round_solution.covered = covered.count();
    last_round = std::move(round_solution);

    if (final_round) {
      return Status::Infeasible(
          "optimized CMC: coverage unreachable even at the all-wildcards "
          "pattern's cost");
    }
    budget *= (1.0 + options.b);  // line 36
    if (budget >= root_cost) {
      // Clamp the last round at the root's cost so the all-wildcards
      // pattern is always eligible in the final attempt.
      budget = root_cost;
      final_round = true;
    }
  }
  return Status::ResourceExhausted("optimized CMC: max_budget_rounds exceeded");
}

}  // namespace

Result<PatternSolution> RunOptimizedCmc(const Table& table,
                                        const CostFunction& cost_fn,
                                        const CmcOptions& options,
                                        PatternStats* stats) {
  if (options.k == 0) return Status::InvalidArgument("k must be positive");
  if (options.l == 0) return Status::InvalidArgument("l must be positive");
  if (options.coverage_fraction < 0.0 || options.coverage_fraction > 1.0) {
    return Status::InvalidArgument("coverage_fraction must be in [0, 1]");
  }
  if (options.b <= 0.0) {
    return Status::InvalidArgument("budget growth b must be positive");
  }
  if (options.epsilon < 0.0) {
    return Status::InvalidArgument("epsilon must be >= 0");
  }
  if (!table.has_measure()) {
    return Status::InvalidArgument("pattern costs require a measure column");
  }

  PatternStats local_stats;
  PatternStats& st = stats ? *stats : local_stats;
  st = PatternStats{};

  const PatternCodec codec(table);
  if (codec.fits()) {
    return RunOptimizedCmcImpl(table, cost_fn, options, st, PackedOps{&codec});
  }
  return RunOptimizedCmcImpl(table, cost_fn, options, st,
                             GenericOps{table.num_attributes()});
}

}  // namespace pattern
}  // namespace scwsc
