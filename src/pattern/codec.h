// PatternCodec: packs a pattern into a single 64-bit key when the table's
// attribute domains are small enough.
//
// Each attribute a gets ceil(log2(|dom(a)| + 2)) bits holding value+1, with
// 0 encoding the ALL wildcard; the all-wildcards pattern is key 0. Packed
// keys make the hash maps and heaps of the lattice algorithms allocation-
// free, and lattice moves (specialize / generalize one attribute) become
// bit operations. Tables whose summed widths exceed 64 bits fall back to
// Pattern-keyed containers (fits() == false).

#ifndef SCWSC_PATTERN_CODEC_H_
#define SCWSC_PATTERN_CODEC_H_

#include <cstdint>

#include "src/pattern/pattern.h"

namespace scwsc {
namespace pattern {

class PatternCodec {
 public:
  explicit PatternCodec(const Table& table);

  /// True when every pattern of this table packs into 64 bits.
  bool fits() const { return fits_; }

  std::size_t num_attributes() const { return bits_.size(); }

  /// Requires fits(). The all-wildcards pattern encodes to 0.
  std::uint64_t Encode(const Pattern& p) const;

  /// Requires fits().
  Pattern Decode(std::uint64_t key) const;

  /// Key of the child obtained by specializing attribute `attr` to `v`.
  std::uint64_t WithValue(std::uint64_t key, std::size_t attr,
                          ValueId v) const {
    return (key & ~FieldMask(attr)) |
           ((static_cast<std::uint64_t>(v) + 1) << shift_[attr]);
  }

  /// Key of the parent obtained by wildcarding attribute `attr`.
  std::uint64_t WithWildcard(std::uint64_t key, std::size_t attr) const {
    return key & ~FieldMask(attr);
  }

  bool IsWildcard(std::uint64_t key, std::size_t attr) const {
    return (key & FieldMask(attr)) == 0;
  }

 private:
  std::uint64_t FieldMask(std::size_t attr) const {
    return ((std::uint64_t{1} << bits_[attr]) - 1) << shift_[attr];
  }

  std::vector<unsigned> shift_;
  std::vector<unsigned> bits_;
  bool fits_ = false;
};

/// Mixes a packed key for unordered containers (splitmix64 finalizer).
struct PackedKeyHash {
  std::size_t operator()(std::uint64_t key) const {
    key ^= key >> 30;
    key *= 0xBF58476D1CE4E5B9ull;
    key ^= key >> 27;
    key *= 0x94D049BB133111EBull;
    key ^= key >> 31;
    return static_cast<std::size_t>(key);
  }
};

}  // namespace pattern
}  // namespace scwsc

#endif  // SCWSC_PATTERN_CODEC_H_
