// BenefitIndex: per-(attribute, value) posting lists over a Table.
//
// Ben(p) — the rows matching pattern p (paper §II) — is computed by
// intersecting the posting lists of p's constant attributes; the
// all-wildcards pattern yields every row. Postings are sorted by row id, so
// every returned benefit set is sorted too.

#ifndef SCWSC_PATTERN_BENEFIT_INDEX_H_
#define SCWSC_PATTERN_BENEFIT_INDEX_H_

#include <vector>

#include "src/pattern/pattern.h"
#include "src/table/table.h"

namespace scwsc {
namespace pattern {

class BenefitIndex {
 public:
  explicit BenefitIndex(const Table& table);

  /// Rows with table.value(row, attr) == value.
  const std::vector<RowId>& Postings(std::size_t attr, ValueId value) const;

  /// Ben(p): rows of the table matching p, sorted ascending.
  std::vector<RowId> Ben(const Pattern& p) const;

  /// |Ben(p)| without materializing the row list when p has <= 1 constant.
  std::size_t BenefitCount(const Pattern& p) const;

  const Table& table() const { return table_; }

 private:
  const Table& table_;
  // postings_[attr][value] = sorted rows.
  std::vector<std::vector<std::vector<RowId>>> postings_;
  std::vector<RowId> all_rows_;
};

}  // namespace pattern
}  // namespace scwsc

#endif  // SCWSC_PATTERN_BENEFIT_INDEX_H_
