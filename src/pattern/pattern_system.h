// PatternSystem: the bridge from a patterned Table to the generic SetSystem
// consumed by the unoptimized algorithms (paper Table II is exactly this
// materialization for the running example).
//
// Pattern ids coincide with SetIds and follow CanonicalLess order, so both
// the unoptimized algorithms (tie-breaking on SetId) and the optimized
// algorithms (tie-breaking on CanonicalLess) make identical choices — the
// equivalence the paper asserts at the end of §V-C1 and that our property
// tests verify.

#ifndef SCWSC_PATTERN_PATTERN_SYSTEM_H_
#define SCWSC_PATTERN_PATTERN_SYSTEM_H_

#include <memory>
#include <vector>

#include "src/common/result.h"
#include "src/core/set_system.h"
#include "src/core/solution.h"
#include "src/pattern/cost.h"
#include "src/pattern/enumerate.h"
#include "src/pattern/stats.h"

namespace scwsc {
namespace pattern {

class PatternSystem {
 public:
  /// Enumerates every non-empty pattern of `table`, weighting each with
  /// `cost_fn`. The table must outlive the PatternSystem.
  static Result<PatternSystem> Build(const Table& table,
                                     const CostFunction& cost_fn,
                                     const EnumerateOptions& options = {});

  // Move-only, like the SetSystem it embeds: enumerations routinely hold
  // hundreds of thousands of patterns. Share one materialization via
  // api::InstanceSnapshot instead of copying.
  PatternSystem(const PatternSystem&) = delete;
  PatternSystem& operator=(const PatternSystem&) = delete;
  PatternSystem(PatternSystem&&) = default;
  PatternSystem& operator=(PatternSystem&&) = default;

  const SetSystem& set_system() const { return system_; }
  const Table& table() const { return *table_; }

  std::size_t num_patterns() const { return patterns_.size(); }
  const Pattern& pattern(SetId id) const { return patterns_[id]; }
  const std::vector<Pattern>& patterns() const { return patterns_; }

  /// Converts a SetId-based solution into the pattern-based form the
  /// optimized algorithms produce, for apples-to-apples comparison.
  PatternSolution ToPatternSolution(const Solution& solution) const;

 private:
  PatternSystem(const Table& table, SetSystem system,
                std::vector<Pattern> patterns)
      : table_(&table),
        system_(std::move(system)),
        patterns_(std::move(patterns)) {}

  const Table* table_;
  SetSystem system_;
  std::vector<Pattern> patterns_;
};

}  // namespace pattern
}  // namespace scwsc

#endif  // SCWSC_PATTERN_PATTERN_SYSTEM_H_
