// Shared output and instrumentation types of the patterned algorithms.

#ifndef SCWSC_PATTERN_STATS_H_
#define SCWSC_PATTERN_STATS_H_

#include <cstddef>
#include <vector>

#include "src/core/solution.h"
#include "src/pattern/pattern.h"

namespace scwsc {
namespace pattern {

/// A solution expressed as patterns (the optimized algorithms never
/// materialize a SetSystem, so they cannot return SetIds).
struct PatternSolution {
  std::vector<Pattern> patterns;  // in selection order
  double total_cost = 0.0;
  std::size_t covered = 0;
  Provenance provenance;          // interruption record; default = complete
};

/// Instrumentation counters; "patterns considered" is the Fig. 6 series:
/// the number of (pattern, benefit/cost computation) events. The
/// unoptimized algorithms consider every enumerated pattern (once per
/// budget round for CMC); the optimized algorithms only consider the
/// lattice frontier they actually descend.
struct PatternStats {
  std::size_t patterns_considered = 0;
  /// Candidates that passed the admission threshold.
  std::size_t candidates_admitted = 0;
  /// Budget rounds tried (CMC only).
  std::size_t budget_rounds = 0;
  /// Budget of the successful round (CMC only).
  double final_budget = 0.0;
};

}  // namespace pattern
}  // namespace scwsc

#endif  // SCWSC_PATTERN_STATS_H_
