#include "src/pattern/cost.h"

#include <cmath>

#include "src/common/logging.h"
#include "src/common/strings.h"

namespace scwsc {
namespace pattern {

CostFunction::CostFunction(CostKind kind) : kind_(kind), p_(2.0) {
  SCWSC_CHECK(kind != CostKind::kLpNorm,
              "use CostFunction::LpNorm to build an lp-norm cost");
}

Result<CostFunction> CostFunction::LpNorm(double p) {
  if (!(p >= 1.0) || !std::isfinite(p)) {
    return Status::InvalidArgument("lp-norm exponent must be finite and >= 1");
  }
  return CostFunction(CostKind::kLpNorm, p);
}

double CostFunction::Compute(const Table& table,
                             const std::vector<RowId>& rows) const {
  SCWSC_CHECK(table.has_measure(), "cost functions require a measure column");
  switch (kind_) {
    case CostKind::kMax: {
      double best = 0.0;
      bool first = true;
      for (RowId r : rows) {
        const double m = table.measure(r);
        if (first || m > best) {
          best = m;
          first = false;
        }
      }
      return best;
    }
    case CostKind::kSum: {
      double total = 0.0;
      for (RowId r : rows) total += table.measure(r);
      return total;
    }
    case CostKind::kLpNorm: {
      double total = 0.0;
      for (RowId r : rows) total += std::pow(std::abs(table.measure(r)), p_);
      return std::pow(total, 1.0 / p_);
    }
  }
  return 0.0;
}

std::string CostFunction::Name() const {
  switch (kind_) {
    case CostKind::kMax:
      return "max";
    case CostKind::kSum:
      return "sum";
    case CostKind::kLpNorm:
      return StrFormat("l%g-norm", p_);
  }
  return "?";
}

}  // namespace pattern
}  // namespace scwsc
