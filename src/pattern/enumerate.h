// Full pattern enumeration — the substrate of the *unoptimized* algorithms.
//
// Every distinct pattern that matches at least one record is a
// generalization of some record: replacing any subset of a record's j
// attribute values with ALL. Enumeration therefore walks each record's 2^j
// generalizations, deduplicating through a hash map and accumulating each
// pattern's benefit rows. Patterns matching nothing are never produced
// (they can never be selected). The result is sorted canonically so that
// pattern ids are stable across runs and across the opt/unopt pair.
//
// When the per-attribute domains fit, pattern keys are packed into a single
// 64-bit word (value+1 in ceil(log2(|dom|+2)) bits per attribute, 0 = ALL);
// otherwise a generic Pattern-keyed map is used.

#ifndef SCWSC_PATTERN_ENUMERATE_H_
#define SCWSC_PATTERN_ENUMERATE_H_

#include <vector>

#include "src/common/result.h"
#include "src/common/run_context.h"
#include "src/pattern/pattern.h"
#include "src/table/table.h"

namespace scwsc {

namespace obs {
class TraceSession;
}  // namespace obs

namespace pattern {

struct EnumeratedPattern {
  Pattern pattern;
  std::vector<RowId> rows;  // Ben(pattern), sorted ascending
};

struct EnumerateOptions {
  /// Refuse to materialize more than this many distinct patterns
  /// (ResourceExhausted) — a guard against accidentally cubing a table with
  /// many attributes.
  std::size_t max_patterns = 200'000'000;
  /// Deadline / cancellation / work-budget context; nullptr = unlimited.
  /// Checked once per source row (each row expands up to 2^j
  /// generalizations, charged as one node expansion per distinct pattern
  /// inserted). A trip aborts the enumeration with the matching Status —
  /// a partially enumerated pattern collection is not a usable substrate,
  /// so no payload is attached.
  const RunContext* run_context = nullptr;
  /// Optional trace/metrics session (src/obs): the walk runs under an
  /// "enumerate" span and publishes the distinct-pattern count.
  obs::TraceSession* trace = nullptr;
};

/// Enumerates all non-empty patterns of `table`, sorted by CanonicalLess.
Result<std::vector<EnumeratedPattern>> EnumerateAllPatterns(
    const Table& table, const EnumerateOptions& options = {});

}  // namespace pattern
}  // namespace scwsc

#endif  // SCWSC_PATTERN_ENUMERATE_H_
