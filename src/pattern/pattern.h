// Pattern: a conjunction of attribute values with ALL wildcards (paper §II).
//
// A pattern p over j pattern attributes assigns each attribute either a
// concrete dictionary-encoded value or the wildcard ALL. A record t matches
// p iff t agrees with p on every non-wildcard attribute. Patterns form a
// lattice under specialization: replacing one wildcard by a concrete value
// yields a child, replacing one concrete value by a wildcard yields a
// parent; a pattern's benefit set is always contained in each parent's.

#ifndef SCWSC_PATTERN_PATTERN_H_
#define SCWSC_PATTERN_PATTERN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/table/table.h"

namespace scwsc {
namespace pattern {

/// Sentinel ValueId for the ALL wildcard.
inline constexpr ValueId kAll = 0xFFFFFFFFu;

class Pattern {
 public:
  Pattern() = default;

  /// Constructs from explicit per-attribute values (kAll for wildcards).
  explicit Pattern(std::vector<ValueId> values) : values_(std::move(values)) {}

  /// The all-wildcards pattern over j attributes (covers every record;
  /// Definition 1's always-feasible set).
  static Pattern AllWildcards(std::size_t j) {
    return Pattern(std::vector<ValueId>(j, kAll));
  }

  std::size_t num_attributes() const { return values_.size(); }

  ValueId value(std::size_t attr) const { return values_[attr]; }
  bool is_wildcard(std::size_t attr) const { return values_[attr] == kAll; }

  /// Number of non-wildcard attributes (0 for the all-wildcards pattern).
  std::size_t num_constants() const;

  /// Returns a copy with attribute `attr` set to `v` (a child when the
  /// attribute was a wildcard).
  Pattern WithValue(std::size_t attr, ValueId v) const;

  /// Returns a copy with attribute `attr` set to ALL (a parent when the
  /// attribute was a constant).
  Pattern WithWildcard(std::size_t attr) const;

  /// True when record `row` of `table` matches this pattern.
  bool Matches(const Table& table, RowId row) const;

  /// True when this pattern is equal to or a generalization of `other`
  /// (every constant of this pattern is matched by `other`); implies
  /// Ben(other) ⊆ Ben(this).
  bool Generalizes(const Pattern& other) const;

  /// "{Type=B, Location=ALL}" using the table's dictionaries.
  std::string ToString(const Table& table) const;

  const std::vector<ValueId>& values() const { return values_; }

  friend bool operator==(const Pattern& a, const Pattern& b) {
    return a.values_ == b.values_;
  }

 private:
  std::vector<ValueId> values_;
};

/// Canonical total order on patterns of equal arity: attribute-wise, with
/// any concrete value ordering before ALL, and concrete values by id. Used
/// for deterministic tie-breaking in both the enumerated (unoptimized) and
/// lattice (optimized) algorithms so that their selections coincide.
bool CanonicalLess(const Pattern& a, const Pattern& b);

/// FNV-style hash usable in unordered containers.
struct PatternHash {
  std::size_t operator()(const Pattern& p) const;
};

}  // namespace pattern
}  // namespace scwsc

#endif  // SCWSC_PATTERN_PATTERN_H_
