// Batch front end over the SolveScheduler: parse a jobs.json file into
// SolveJobs, run them all through a scheduler, and render a report with
// per-job results plus aggregate throughput, latency percentiles and cache
// hit rates. The CLI's --batch flag and the serve smoke in check.sh are the
// two callers.
//
// Batch file format (docs/serving.md documents it in full):
//
//   {"jobs": [
//      {"solver": "cwsc",            // required; case-insensitive
//       "k": 3,                      // default 10
//       "coverage": 0.5,             // default 0.3
//       "options": {"b": "2"},       // values: string, number or bool
//       "deadline_ms": 0,            // default 0 = unlimited
//       "priority": 0,               // default 0; larger = more urgent
//       "label": "warmup",           // default "job-<index>"
//       "repeat": 1}                 // duplicates this job N times
//   ]}
//
// Repeated deterministic jobs are the point: they exercise the result
// cache, which the report's aggregate section makes visible.

#ifndef SCWSC_SERVE_BATCH_H_
#define SCWSC_SERVE_BATCH_H_

#include <string>
#include <vector>

#include "src/serve/json.h"
#include "src/serve/scheduler.h"

namespace scwsc {
namespace serve {

/// Parses a batch file into jobs over `instance` (every job in one batch
/// shares the snapshot the frontend loaded). "repeat" expands here, so the
/// scheduler sees plain jobs.
Result<std::vector<SolveJob>> ParseBatchFile(const std::string& path,
                                             api::InstancePtr instance);

/// Enqueues every job, waits for all futures, and renders the report. Jobs
/// rejected by admission control (queue full) are reported as failed with
/// their Status rather than aborting the batch.
Result<JsonValue> RunBatch(std::vector<SolveJob> jobs,
                           SolveScheduler& scheduler);

}  // namespace serve
}  // namespace scwsc

#endif  // SCWSC_SERVE_BATCH_H_
