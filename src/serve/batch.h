// Batch front end over the SolveScheduler: parse a jobs.json file into
// SolveJobs, run them all through a scheduler, and render a report with
// per-job results plus aggregate throughput, latency percentiles and cache
// hit rates. The CLI's --batch flag and the serve smoke in check.sh are the
// two callers.
//
// Batch file format (docs/serving.md documents it in full):
//
//   {"jobs": [
//      {"solver": "cwsc",            // required; case-insensitive
//       "k": 3,                      // default 10
//       "coverage": 0.5,             // default 0.3
//       "options": {"b": "2"},       // values: string, number or bool
//       "deadline_ms": 0,            // default 0 = unlimited
//       "priority": 0,               // default 0; larger = more urgent
//       "label": "warmup",           // default "job-<index>"
//       "repeat": 1}                 // duplicates this job N times
//   ],
//    "faults": {                     // optional: scripted chaos (fault.h)
//      "seed": 42,                   // default 0; deterministic replay
//      "solver_delay_ms": 5,         // default 5; fired solver_delay stall
//      "points": {"solver_error": 0.1, "pool_task_loss": 0.02}},
//    "slo": {                        // optional: telemetry + SLO rules
//      "rules": ["p99_latency_ms<=250", "error_rate<=0.01"],  // slo.h
//      "interval_ms": 250,           // telemetry tick period
//      "dump_path": "trace.json"}}   // flight-recorder dump on violation
//
// Repeated deterministic jobs are the point: they exercise the result
// cache, which the report's aggregate section makes visible. A "faults"
// object arms a FaultPlan the CLI installs (scoped) around the batch run,
// so chaos storms are scriptable from the same file as the workload. An
// "slo" object turns on the scheduler's TelemetryPump for the run (the CLI
// combines it with --telemetry-out / --slo flags); the report's aggregate
// then carries "slo_violations".

#ifndef SCWSC_SERVE_BATCH_H_
#define SCWSC_SERVE_BATCH_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/fault.h"
#include "src/serve/json.h"
#include "src/serve/scheduler.h"
#include "src/serve/slo.h"

namespace scwsc {
namespace serve {

/// Parsed "faults" object: which points to arm and with what probability.
/// Data-only so a spec can be parsed, inspected and applied separately
/// (the CLI applies it to a ScopedFaultPlan around the batch run).
struct FaultSpec {
  /// True when the batch file carried a "faults" object at all.
  bool configured = false;
  std::uint64_t seed = 0;
  std::uint64_t solver_delay_ms = 5;
  /// Per-point fire probability, indexed by FaultPoint; 0 = disarmed.
  std::array<double, kNumFaultPoints> probabilities{};

  /// Arms `plan` with this spec's probabilities and delay.
  void ApplyTo(FaultPlan& plan) const;
};

/// Parsed "slo" object: telemetry settings for the run. Data-only like
/// FaultSpec — the CLI merges it with its --telemetry-out / --slo flags
/// into the scheduler's TelemetryOptions.
struct SloSpec {
  /// True when the batch file carried an "slo" object at all.
  bool configured = false;
  std::vector<SloRule> rules;
  double interval_ms = 250.0;
  /// Flight-recorder dump destination on violation; empty = derive from
  /// the JSONL path (see TelemetryOptions::slo_dump_path).
  std::string dump_path;
};

/// Everything a batch file describes: the jobs plus the optional fault
/// plan and telemetry/SLO settings to run them under.
struct BatchSpec {
  std::vector<SolveJob> jobs;
  FaultSpec faults;
  SloSpec slo;
  /// Wire version of the file: absent/1 = legacy (accepted with a
  /// once-per-process deprecation warning), 2 = current. See serve/wire.h.
  int version = 1;
  /// Unknown keys collected under version >= 2 ("jobs[3].hint", "notes"),
  /// echoed under "forward" in the report so newer clients' fields
  /// round-trip instead of vanishing. Always empty for v1 files, whose
  /// unknown keys keep the legacy ignore/reject behaviour.
  JsonObject forward;
};

/// Parses a batch file into jobs over `instance` (every job in one batch
/// shares the snapshot the frontend loaded) plus the optional fault spec.
/// "repeat" expands here, so the scheduler sees plain jobs.
Result<BatchSpec> ParseBatchSpec(const std::string& path,
                                 api::InstancePtr instance);

/// Jobs-only convenience over ParseBatchSpec for callers that ignore (and
/// reject) fault scripting.
Result<std::vector<SolveJob>> ParseBatchFile(const std::string& path,
                                             api::InstancePtr instance);

/// Enqueues every job, waits for all futures, and renders the report
/// (root "version" = 2; failed jobs carry the typed "error" envelope of
/// serve/wire.h, never a free-text status). Jobs rejected by admission
/// control (queue full, tenant quota) are reported as failed with their
/// typed error rather than aborting the batch.
Result<JsonValue> RunBatch(std::vector<SolveJob> jobs,
                           SolveScheduler& scheduler);

/// Same, from a parsed spec: additionally echoes the spec's forwarded
/// unknown keys under "forward" (the v2 round-trip contract).
Result<JsonValue> RunBatch(BatchSpec spec, SolveScheduler& scheduler);

}  // namespace serve
}  // namespace scwsc

#endif  // SCWSC_SERVE_BATCH_H_
