#include "src/serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <list>
#include <utility>

#include "src/common/logging.h"
#include "src/serve/json.h"
#include "src/serve/wire.h"

namespace scwsc {
namespace serve {

// --- SnapshotStore ---------------------------------------------------------

Status SnapshotStore::Put(const std::string& name, api::InstancePtr snapshot) {
  if (name.empty()) {
    return Status::InvalidArgument("snapshot name must not be empty");
  }
  if (snapshot == nullptr) {
    return Status::InvalidArgument("snapshot must not be null");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (cache_ != nullptr) {
    (void)cache_->Insert(snapshot->content_hash(), snapshot);
  }
  heads_[name] = std::move(snapshot);
  return Status::OK();
}

Result<api::InstancePtr> SnapshotStore::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = heads_.find(name);
  if (it == heads_.end()) {
    return Status::NotFound("no snapshot named '" + name + "'");
  }
  return it->second;
}

Result<api::AppliedDelta> SnapshotStore::Apply(const std::string& name,
                                               const api::SnapshotDelta& delta) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = heads_.find(name);
  if (it == heads_.end()) {
    return Status::NotFound("no snapshot named '" + name + "'");
  }
  SCWSC_ASSIGN_OR_RETURN(api::AppliedDelta applied,
                         api::ApplyDelta(it->second, delta));
  // Publishing the child into the snapshot cache is what makes the shard
  // sharing across versions observable: Insert's overlap scan counts
  // serve.snapshot_cache.shard_shared for every chained shard already
  // resident from the parent. Cache capacity rejections are non-fatal —
  // the head still advances.
  if (cache_ != nullptr) {
    (void)cache_->Insert(applied.snapshot->content_hash(), applied.snapshot);
  }
  it->second = applied.snapshot;
  return applied;
}

std::vector<std::string> SnapshotStore::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(heads_.size());
  for (const auto& [name, head] : heads_) names.push_back(name);
  return names;
}

// --- SolveServer -----------------------------------------------------------

struct SolveServer::Connection {
  int fd = -1;
  std::uint32_t armed = EPOLLIN;  // events currently registered with epoll
  std::string in;                 // bytes read, not yet a complete line
  std::string out;                // response bytes not yet written
  /// Solves in flight: the future plus the response envelope (version, id,
  /// forward echo) prepared at parse time.
  struct PendingSolve {
    std::future<JobOutcome> future;
    JsonObject envelope;
    std::string solver;
  };
  std::list<PendingSolve> pending;
  bool broken = false;   // unrecoverable I/O error; close on next sweep
  bool closing = false;  // peer done sending; close once out + pending drain
};

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Renders a resolved solve as one response line. The "result" object
/// carries the same per-job fields as a batch report entry, so a client
/// can share its decoding between the two surfaces.
std::string RenderSolveResponse(JsonObject envelope, const std::string& solver,
                                JobOutcome outcome) {
  JsonObject result;
  result["label"] = JsonValue(outcome.label);
  result["solver"] = JsonValue(solver);
  result["from_result_cache"] = JsonValue(outcome.from_result_cache);
  result["queue_seconds"] = JsonValue(outcome.queue_seconds);
  result["run_seconds"] = JsonValue(outcome.run_seconds);
  result["attempts"] = JsonValue(outcome.attempts);
  if (!outcome.degraded_from.empty()) {
    result["degraded_from"] = JsonValue(outcome.degraded_from);
  }
  const api::SolveResult* solve = nullptr;
  if (outcome.result.ok()) {
    envelope["ok"] = JsonValue(true);
    solve = &*outcome.result;
  } else {
    envelope["ok"] = JsonValue(false);
    envelope["error"] = ErrorToJson(ErrorInfoFromStatus(outcome.result.status()));
    // An interruption still surfaces its best-so-far partial.
    solve = outcome.result.status().payload<api::SolveResult>();
  }
  if (solve != nullptr) {
    result["total_cost"] = JsonValue(solve->total_cost);
    result["covered"] = JsonValue(solve->covered);
    result["num_sets"] = JsonValue(solve->labels.size());
    if (solve->accuracy_ratio > 0.0) {
      result["accuracy_ratio"] = JsonValue(solve->accuracy_ratio);
    }
    JsonArray labels;
    for (const std::string& label : solve->labels) {
      labels.push_back(JsonValue(label));
    }
    result["selection"] = JsonValue(std::move(labels));
  }
  envelope["result"] = JsonValue(std::move(result));
  return JsonValue(std::move(envelope)).Dump() + "\n";
}

}  // namespace

SolveServer::SolveServer(SolveScheduler* scheduler, SnapshotStore* store,
                         ServerOptions options)
    : scheduler_(scheduler), store_(store), options_(std::move(options)) {}

SolveServer::~SolveServer() { Stop(); }

Status SolveServer::Start() {
  if (started_) return Status::InvalidArgument("server already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::Unavailable(Errno("socket"));
  const int reuse = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse,
                     sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("invalid listen host '" + options_.host +
                                   "'");
  }
  const auto fail = [this](std::string message) {
    if (wake_fd_ >= 0) ::close(wake_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    ::close(listen_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    return Status::Unavailable(std::move(message));
  };
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return fail(Errno("bind"));
  }
  if (::listen(listen_fd_, 64) != 0) return fail(Errno("listen"));
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return fail(Errno("getsockname"));
  }
  bound_port_ = static_cast<int>(ntohs(bound.sin_port));

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return fail(Errno("epoll_create1"));
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) return fail(Errno("eventfd"));
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return fail(Errno("epoll_ctl(listen)"));
  }
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return fail(Errno("epoll_ctl(wake)"));
  }

  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stopped_ = false;
  }
  started_ = true;
  thread_ = std::thread([this] { Loop(); });
  SCWSC_LOG_INFO("serve: listening on %s:%d", options_.host.c_str(),
                 bound_port_);
  return Status::OK();
}

void SolveServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (!started_ || stopped_) return;
    stopped_ = true;
  }
  const std::uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
  if (thread_.joinable()) thread_.join();
  for (auto& [fd, conn] : connections_) ::close(fd);
  connections_.clear();
  ::close(listen_fd_);
  ::close(epoll_fd_);
  ::close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
  bound_port_ = 0;
  started_ = false;
}

void SolveServer::Loop() {
  epoll_event events[64];
  std::vector<int> dead;
  for (;;) {
    bool have_pending = false;
    for (const auto& [fd, conn] : connections_) {
      if (!conn->pending.empty()) {
        have_pending = true;
        break;
      }
    }
    // With solves in flight the loop doubles as their poller; otherwise it
    // sleeps until a socket or the stop eventfd wakes it.
    const int timeout_ms = have_pending ? 10 : -1;
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      SCWSC_LOG_ERROR("serve: %s", Errno("epoll_wait").c_str());
      return;
    }
    bool stop = false;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        (void)!::read(wake_fd_, &drained, sizeof(drained));
        stop = true;
        continue;
      }
      if (fd == listen_fd_) {
        for (;;) {
          const int client = ::accept4(listen_fd_, nullptr, nullptr,
                                       SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (client < 0) break;
          if (connections_.size() >= options_.max_connections) {
            ::close(client);
            continue;
          }
          auto conn = std::make_unique<Connection>();
          conn->fd = client;
          epoll_event add{};
          add.events = EPOLLIN;
          add.data.fd = client;
          if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, client, &add) != 0) {
            ::close(client);
            continue;
          }
          connections_.emplace(client, std::move(conn));
        }
        continue;
      }
      const auto it = connections_.find(fd);
      if (it == connections_.end()) continue;  // closed earlier this batch
      Connection& conn = *it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        conn.broken = true;
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) {
        char buf[4096];
        for (;;) {
          const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
          if (got > 0) {
            conn.in.append(buf, static_cast<std::size_t>(got));
            continue;
          }
          if (got == 0) {
            conn.closing = true;  // peer finished sending; drain and close
          } else if (errno != EAGAIN && errno != EWOULDBLOCK) {
            conn.broken = true;
          }
          break;
        }
        std::size_t newline;
        while ((newline = conn.in.find('\n')) != std::string::npos) {
          std::string line = conn.in.substr(0, newline);
          conn.in.erase(0, newline + 1);
          HandleLine(conn, line);
        }
        if (conn.in.size() > options_.max_request_bytes) {
          JsonObject envelope;
          envelope["version"] =
              JsonValue(static_cast<std::size_t>(kWireVersion));
          envelope["ok"] = JsonValue(false);
          envelope["error"] = ErrorToJson(
              ErrorInfoFromStatus(Status::InvalidArgument(
                  "request line exceeds " +
                  std::to_string(options_.max_request_bytes) + " bytes")));
          conn.out += JsonValue(std::move(envelope)).Dump() + "\n";
          conn.in.clear();
          conn.closing = true;
        }
      }
      FlushOutput(conn);
    }
    if (stop) return;
    PumpPending();
    dead.clear();
    for (const auto& [fd, conn] : connections_) {
      if (conn->broken ||
          (conn->closing && conn->out.empty() && conn->pending.empty())) {
        dead.push_back(fd);
      }
    }
    for (const int fd : dead) CloseConnection(fd);
  }
}

void SolveServer::HandleLine(Connection& conn, const std::string& line) {
  if (line.find_first_not_of(" \t\r") == std::string::npos) return;

  JsonObject envelope;
  envelope["version"] = JsonValue(static_cast<std::size_t>(kWireVersion));
  const auto respond_error = [&](const Status& status) {
    envelope["ok"] = JsonValue(false);
    envelope["error"] = ErrorToJson(ErrorInfoFromStatus(status));
    conn.out += JsonValue(std::move(envelope)).Dump() + "\n";
  };
  const auto respond_result = [&](JsonValue result) {
    envelope["ok"] = JsonValue(true);
    envelope["result"] = std::move(result);
    conn.out += JsonValue(std::move(envelope)).Dump() + "\n";
  };

  JsonParseLimits limits;
  limits.max_bytes = options_.max_request_bytes;
  const Result<JsonValue> parsed = ParseJson(line, limits);
  if (!parsed.ok()) {
    respond_error(parsed.status());
    return;
  }
  const JsonValue& root = *parsed;
  if (!root.is_object()) {
    respond_error(Status::InvalidArgument("request must be a JSON object"));
    return;
  }
  if (const JsonValue* id = root.Find("id")) envelope["id"] = *id;
  const Result<int> version = CheckWireVersion(root, "socket");
  if (!version.ok()) {
    respond_error(version.status());
    return;
  }
  std::string type = "solve";  // v1 payloads are bare solve objects
  if (const JsonValue* t = root.Find("type")) {
    if (!t->is_string()) {
      respond_error(Status::InvalidArgument("\"type\" must be a string"));
      return;
    }
    type = t->as_string();
  }

  if (type == "ping") {
    JsonObject pong;
    pong["pong"] = JsonValue(true);
    respond_result(JsonValue(std::move(pong)));
    return;
  }
  if (type == "list_solvers") {
    respond_result(SolverListToJson());
    return;
  }
  if (type != "solve" && type != "delta") {
    respond_error(Status::InvalidArgument(
        "unknown request type \"" + type +
        "\" (expected solve, delta, ping or list_solvers)"));
    return;
  }
  const JsonValue* snapshot = root.Find("snapshot");
  if (snapshot == nullptr || !snapshot->is_string()) {
    respond_error(Status::InvalidArgument("\"" + type +
                                          "\" needs a string \"snapshot\""));
    return;
  }

  if (type == "delta") {
    const Result<api::SnapshotDelta> delta = ParseDeltaObject(root, "request");
    if (!delta.ok()) {
      respond_error(delta.status());
      return;
    }
    const Result<api::AppliedDelta> applied =
        store_->Apply(snapshot->as_string(), *delta);
    if (!applied.ok()) {
      respond_error(applied.status());
      return;
    }
    respond_result(DeltaStatsToJson(applied->stats,
                                    applied->snapshot->content_hash()));
    return;
  }

  const Result<api::InstancePtr> instance = store_->Get(snapshot->as_string());
  if (!instance.ok()) {
    respond_error(instance.status());
    return;
  }
  Result<ParsedJob> job = ParseJobObject(root, *instance, "request", *version);
  if (!job.ok()) {
    respond_error(job.status());
    return;
  }
  if (job->repeat != 1) {
    respond_error(Status::InvalidArgument(
        "\"repeat\" is a batch-file feature; send one request per solve"));
    return;
  }
  if (!job->forward.empty()) {
    envelope["forward"] = JsonValue(std::move(job->forward));
  }
  const std::string solver = job->job.solver;
  Result<std::future<JobOutcome>> future =
      scheduler_->Enqueue(std::move(job->job));
  if (!future.ok()) {
    respond_error(future.status());
    return;
  }
  Connection::PendingSolve pending;
  pending.future = std::move(*future);
  pending.envelope = std::move(envelope);
  pending.solver = solver;
  conn.pending.push_back(std::move(pending));
}

bool SolveServer::PumpPending() {
  bool progress = false;
  for (const auto& [fd, conn] : connections_) {
    bool changed = false;
    for (auto it = conn->pending.begin(); it != conn->pending.end();) {
      if (it->future.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
        ++it;
        continue;
      }
      conn->out += RenderSolveResponse(std::move(it->envelope), it->solver,
                                       it->future.get());
      it = conn->pending.erase(it);
      changed = true;
    }
    if (changed) {
      FlushOutput(*conn);
      progress = true;
    }
  }
  return progress;
}

void SolveServer::FlushOutput(Connection& conn) {
  while (!conn.out.empty() && !conn.broken) {
    const ssize_t sent =
        ::send(conn.fd, conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
    if (sent > 0) {
      conn.out.erase(0, static_cast<std::size_t>(sent));
      continue;
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    conn.broken = true;
  }
  const std::uint32_t want =
      EPOLLIN | (conn.out.empty() ? 0u : static_cast<std::uint32_t>(EPOLLOUT));
  if (want != conn.armed && !conn.broken) {
    epoll_event ev{};
    ev.events = want;
    ev.data.fd = conn.fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) == 0) {
      conn.armed = want;
    }
  }
}

void SolveServer::CloseConnection(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  connections_.erase(it);
}

}  // namespace serve
}  // namespace scwsc
