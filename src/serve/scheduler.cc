#include "src/serve/scheduler.h"

#include <utility>

#include "src/common/run_context.h"
#include "src/common/stopwatch.h"

namespace scwsc {
namespace serve {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start,
                    std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double>(now - start).count();
}

}  // namespace

SolveScheduler::SolveScheduler(ThreadPool* pool, SchedulerOptions options)
    : pool_(pool), options_(options) {
  if (options_.trace != nullptr) {
    metrics_ = &options_.trace->metrics();
  } else {
    owned_metrics_ = std::make_unique<obs::MetricRegistry>();
    metrics_ = owned_metrics_.get();
  }
  snapshot_cache_ =
      std::make_unique<SnapshotCache>(options_.snapshot_cache_bytes, metrics_);
  result_cache_ = std::make_unique<ResultCache>(
      options_.result_cache_entries == 0 ? 1 : options_.result_cache_entries,
      metrics_);
}

SolveScheduler::~SolveScheduler() { Drain(); }

Result<std::future<JobOutcome>> SolveScheduler::Enqueue(SolveJob job) {
  obs::Span enqueue_span(options_.trace, "serve.enqueue");
  if (job.request.instance == nullptr) {
    return Status::InvalidArgument("SolveJob has no instance snapshot");
  }
  std::future<JobOutcome> future;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      metrics_->counter("serve.jobs.rejected").Increment();
      return Status::Cancelled(
          "scheduler is draining; new jobs are not admitted");
    }
    if (options_.max_queue_depth > 0 &&
        in_flight_ >= options_.max_queue_depth) {
      metrics_->counter("serve.jobs.rejected").Increment();
      return Status::ResourceExhausted(
          "scheduler queue is full (" +
          std::to_string(options_.max_queue_depth) +
          " jobs in flight); retry after completions drain the queue");
    }
    PendingJob pending;
    pending.job = std::move(job);
    pending.enqueued_at = std::chrono::steady_clock::now();
    future = pending.promise.get_future();
    queue_.push_back(std::move(pending));
    ++in_flight_;
    metrics_->counter("serve.jobs.accepted").Increment();
  }
  // One pool task per admitted job; the task picks the most urgent waiting
  // job at pop time, which is how priority aging takes effect.
  pool_->Submit([this] { RunOneJob(); });
  return future;
}

void SolveScheduler::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  drained_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

std::size_t SolveScheduler::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

std::uint64_t SolveScheduler::SnapshotHashFor(
    const api::InstancePtr& instance) {
  {
    std::lock_guard<std::mutex> lock(hash_mu_);
    auto it = hash_memo_.find(instance.get());
    if (it != hash_memo_.end()) return it->second;
  }
  const std::uint64_t hash = ContentHash(*instance);  // O(data), outside locks
  std::lock_guard<std::mutex> lock(hash_mu_);
  hash_memo_[instance.get()] = hash;
  return hash;
}

void SolveScheduler::RunOneJob() {
  PendingJob pending;
  double queue_seconds = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return;  // defensive: one task per queued job
    // Scan-on-pop for the highest effective priority: static priority plus
    // one level per aging interval waited. O(depth) per pop is fine at the
    // depths admission control allows.
    const auto now = std::chrono::steady_clock::now();
    auto best = queue_.begin();
    double best_effective = 0.0;
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      const double waited = SecondsSince(it->enqueued_at, now);
      const double effective =
          static_cast<double>(it->job.priority) +
          (options_.aging_interval_seconds > 0.0
               ? waited / options_.aging_interval_seconds
               : 0.0);
      if (it == queue_.begin() || effective > best_effective) {
        best = it;
        best_effective = effective;
      }
    }
    pending = std::move(*best);
    queue_.erase(best);
    queue_seconds = SecondsSince(pending.enqueued_at, now);
  }

  obs::Span run_span(options_.trace, "serve.run");
  JobOutcome outcome;
  outcome.queue_seconds = queue_seconds;
  outcome.label = pending.job.request.label;

  api::SolveRequest& request = pending.job.request;
  const api::SolverInfo* info =
      api::SolverRegistry::Global().Find(pending.job.solver);
  // Deadline-free solves are deterministic: memoizable. Keys use the
  // canonical solver spelling so "CWSC" and "cwsc" share one entry.
  const bool cacheable = info != nullptr && request.deadline.count() == 0 &&
                         options_.result_cache_entries > 0;
  ResultKey key;
  if (cacheable) {
    key = MakeResultKey(SnapshotHashFor(request.instance), info->name,
                        request);
    if (std::optional<api::SolveResult> cached = result_cache_->Lookup(key)) {
      run_span.Event("cache.hit");
      outcome.result = *std::move(cached);
      outcome.from_result_cache = true;
      metrics_->counter("serve.jobs.completed").Increment();
      pending.promise.set_value(std::move(outcome));
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) drained_cv_.notify_all();
      return;
    }
    run_span.Event("cache.miss");
  }

  // The job deadline becomes this job's RunContext; the registry would
  // reject a request carrying both.
  RunContext deadline_context;
  const RunContext* run_context = nullptr;
  if (request.deadline.count() > 0) {
    deadline_context.SetDeadline(request.deadline);
    request.deadline = std::chrono::milliseconds{0};
    run_context = &deadline_context;
  }
  if (request.trace == nullptr) {
    request.trace = options_.trace;  // jobs trace into the serve session
  }

  Stopwatch timer;
  outcome.result = api::SolverRegistry::Global().Solve(pending.job.solver,
                                                       request, run_context);
  outcome.run_seconds = timer.ElapsedSeconds();

  if (cacheable && outcome.result.ok()) {
    result_cache_->Insert(key, *outcome.result);
  }
  metrics_
      ->counter(outcome.result.ok() || outcome.result.status().IsInterruption()
                    ? "serve.jobs.completed"
                    : "serve.jobs.failed")
      .Increment();
  pending.promise.set_value(std::move(outcome));
  std::lock_guard<std::mutex> lock(mu_);
  if (--in_flight_ == 0) drained_cv_.notify_all();
}

}  // namespace serve
}  // namespace scwsc
