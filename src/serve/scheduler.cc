#include "src/serve/scheduler.h"

#include <algorithm>
#include <functional>
#include <iterator>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/common/fault.h"
#include "src/common/stopwatch.h"
#include "src/obs/recorder.h"

namespace scwsc {
namespace serve {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start,
                    std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double>(now - start).count();
}

}  // namespace

SolveScheduler::SolveScheduler(ThreadPool* pool, SchedulerOptions options)
    : pool_(pool),
      options_(std::move(options)),
      retry_budget_(options_.resilience.retry_budget) {
  if (options_.trace != nullptr) {
    metrics_ = &options_.trace->metrics();
  } else {
    owned_metrics_ = std::make_unique<obs::MetricRegistry>();
    metrics_ = owned_metrics_.get();
  }
  snapshot_cache_ =
      std::make_unique<SnapshotCache>(options_.snapshot_cache_bytes, metrics_);
  result_cache_ = std::make_unique<ResultCache>(
      options_.result_cache_entries == 0 ? 1 : options_.result_cache_entries,
      metrics_);
  breakers_ =
      std::make_unique<BreakerBank>(options_.resilience.breaker, metrics_);
  tenants_ = std::make_unique<TenantAdmission>(options_.tenant);
  if (options_.resilience.watchdog) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
  if (options_.telemetry.configured()) {
    pump_ = std::make_unique<TelemetryPump>(metrics_, options_.telemetry);
    pump_->SetTickSampler([this] { SampleQueueGauges(); });
  }
}

SolveScheduler::~SolveScheduler() {
  Drain();
  if (watchdog_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_.join();
  }
}

Result<std::future<JobOutcome>> SolveScheduler::Enqueue(SolveJob job) {
  obs::Span enqueue_span(options_.trace, "serve.enqueue");
  if (job.request.instance == nullptr) {
    return Status::InvalidArgument("SolveJob has no instance snapshot");
  }
  // Tenant quota, before the queue lock: the bucket has its own mutex, and
  // a quota rejection must not consume queue bookkeeping. A quota-admitted
  // job can still bounce off a full queue below (it spent a token; the
  // queue-full retry hint covers that window).
  if (tenants_->enabled()) {
    const std::string& tenant = EffectiveTenant(job.request.tenant);
    Status admitted = tenants_->Admit(tenant);
    if (!admitted.ok()) {
      metrics_->counter("serve.jobs.rejected").Increment();
      metrics_->counter("serve.tenant." + tenant + ".rejected").Increment();
      obs::FlightRecorder::Global().RecordInstant("serve.reject/tenant_quota");
      return admitted;
    }
  }
  std::future<JobOutcome> future;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      metrics_->counter("serve.jobs.rejected").Increment();
      obs::FlightRecorder::Global().RecordInstant("serve.reject/draining");
      return Status::Cancelled(
          "scheduler is draining; new jobs are not admitted");
    }
    if (options_.max_queue_depth > 0 &&
        in_flight_ >= options_.max_queue_depth) {
      metrics_->counter("serve.jobs.rejected").Increment();
      obs::FlightRecorder::Global().RecordInstant(
          "serve.reject/queue_full", static_cast<double>(in_flight_));
      // The hint approximates one aging interval — long enough for a worker
      // to pop at least one job, short enough that clients keep the queue
      // warm. Machine-readable so wire frontends emit retry_after_ms.
      return Status::ResourceExhausted(
                 "scheduler queue is full (" +
                 std::to_string(options_.max_queue_depth) +
                 " jobs in flight); retry after completions drain the queue")
          .WithPayload(RetryAfterHint{
              std::max(options_.aging_interval_seconds, 0.05) * 1000.0});
    }
    PendingJob pending;
    pending.job = std::move(job);
    pending.enqueued_at = std::chrono::steady_clock::now();
    future = pending.promise.get_future();
    queue_.push_back(std::move(pending));
    ++in_flight_;
    metrics_->counter("serve.jobs.accepted").Increment();
    metrics_->gauge("serve.queue.depth")
        .Set(static_cast<double>(queue_.size()));
    obs::FlightRecorder::Global().RecordInstant(
        "serve.enqueue", static_cast<double>(queue_.size()));
  }
  // One pool task per admitted job; the task picks the most urgent waiting
  // job at pop time, which is how priority aging takes effect. Under an
  // armed pool_task_loss fault this Submit may silently drop the task —
  // the watchdog's stale-queue sweep re-dispatches.
  pool_->Submit([this] { RunOneJob(); });
  return future;
}

void SolveScheduler::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  drained_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

std::size_t SolveScheduler::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

std::uint64_t SolveScheduler::SnapshotHashFor(
    const api::InstancePtr& instance) {
  {
    std::lock_guard<std::mutex> lock(hash_mu_);
    auto it = hash_memo_.find(instance.get());
    if (it != hash_memo_.end()) return it->second;
  }
  const std::uint64_t hash = ContentHash(*instance);  // O(data), outside locks
  std::lock_guard<std::mutex> lock(hash_mu_);
  hash_memo_[instance.get()] = hash;
  return hash;
}

void SolveScheduler::RunOneJob() {
  PendingJob pending;
  double queue_seconds = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return;  // defensive: one task per queued job
    // Weighted-fair tenant selection (when enabled): dispatch from the
    // tenant with the smallest served / weight among tenants with waiting
    // jobs. Fairness picks the tenant; priority aging (below) orders that
    // tenant's own jobs, so the two mechanisms compose instead of compete.
    std::string fair_tenant;
    if (tenants_->enabled()) {
      bool have = false;
      double best_norm = 0.0;
      for (const PendingJob& waiting : queue_) {
        const std::string& t = EffectiveTenant(waiting.job.request.tenant);
        const double norm = tenant_served_[t] / tenants_->WeightOf(t);
        if (!have || norm < best_norm) {
          have = true;
          best_norm = norm;
          fair_tenant = t;
        }
      }
      tenant_served_[fair_tenant] += 1.0;
    }
    // Scan-on-pop for the highest effective priority: static priority plus
    // one level per aging interval waited. O(depth) per pop is fine at the
    // depths admission control allows.
    const auto now = std::chrono::steady_clock::now();
    auto best = queue_.end();
    double best_effective = 0.0;
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (!fair_tenant.empty() &&
          EffectiveTenant(it->job.request.tenant) != fair_tenant) {
        continue;
      }
      const double waited = SecondsSince(it->enqueued_at, now);
      const double effective =
          static_cast<double>(it->job.priority) +
          (options_.aging_interval_seconds > 0.0
               ? waited / options_.aging_interval_seconds
               : 0.0);
      if (best == queue_.end() || effective > best_effective) {
        best = it;
        best_effective = effective;
      }
    }
    pending = std::move(*best);
    queue_.erase(best);
    queue_seconds = SecondsSince(pending.enqueued_at, now);
    metrics_->gauge("serve.queue.depth")
        .Set(static_cast<double>(queue_.size()));
  }
  ExecuteJob(std::move(pending), queue_seconds);
}

void SolveScheduler::SampleQueueGauges() {
  // Tick-time refresh: depth plus, per static priority, the longest wait
  // currently in the queue. Priorities that emptied since the last tick
  // are zeroed (gauges are last-write-wins, so a vanished priority would
  // otherwise freeze at its final wait forever).
  static constexpr const char* kWaitPrefix = "serve.queue.wait_seconds.p";
  for (const auto& [name, value] : metrics_->GaugeValues()) {
    if (value != 0.0 && name.rfind(kWaitPrefix, 0) == 0) {
      metrics_->gauge(name).Set(0.0);
    }
  }
  const auto now = std::chrono::steady_clock::now();
  std::map<int, double> max_wait;
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    depth = queue_.size();
    for (const PendingJob& pending : queue_) {
      double& wait = max_wait[pending.job.priority];
      wait = std::max(wait, SecondsSince(pending.enqueued_at, now));
    }
  }
  metrics_->gauge("serve.queue.depth").Set(static_cast<double>(depth));
  for (const auto& [priority, wait] : max_wait) {
    metrics_->gauge(kWaitPrefix + std::to_string(priority)).Set(wait);
  }
}

void SolveScheduler::FlushTelemetry() {
  if (pump_ != nullptr) pump_->TickNow();
}

void SolveScheduler::ExecuteJob(PendingJob pending, double queue_seconds) {
  obs::Span run_span(options_.trace, "serve.run");
  JobOutcome outcome;
  outcome.queue_seconds = queue_seconds;
  outcome.label = pending.job.request.label;

  // Tenant identity for accounting. Scoped metrics are stamped whenever the
  // request names a tenant or the policy is on; a tenant-less job under the
  // default policy keeps the legacy metric surface untouched.
  const std::string tenant = EffectiveTenant(pending.job.request.tenant);
  const bool tenant_scoped =
      tenants_->enabled() || !pending.job.request.tenant.empty();

  api::SolveRequest& request = pending.job.request;
  const ResilienceOptions& res = options_.resilience;
  api::SolverRegistry& registry = api::SolverRegistry::Global();

  std::string solver_to_run = pending.job.solver;
  const api::SolverInfo* info = registry.Find(solver_to_run);
  const std::string requested_canonical =
      info != nullptr ? info->name : std::string();

  // Always-on flight-recorder span for this job, named after the solver
  // that was requested (degradation shows up as degrade/* instants inside).
  // Queue wait rides as the span's value, so the dispatch needs no separate
  // instant — the warm path records exactly one span plus the enqueue
  // instant per job, which is what keeps the recorder inside its 3%
  // throughput budget (bench/serve_throughput gates this).
  // Tenant-scoped jobs append "@tenant" to the member, so the recorder's
  // dump groups one tenant's serving history without a separate entry.
  obs::RecorderScope recorder_scope(
      "serve.run/",
      (requested_canonical.empty() ? solver_to_run : requested_canonical) +
          (tenant_scoped ? "@" + tenant : std::string()));
  recorder_scope.set_value(queue_seconds);
  if (tenant_scoped) run_span.Event("tenant/" + tenant);

  auto complete = [&](JobOutcome finished) {
    const bool succeeded =
        finished.result.ok() || finished.result.status().IsInterruption();
    metrics_->counter(succeeded ? "serve.jobs.completed" : "serve.jobs.failed")
        .Increment();
    // Per-solver latency sketch member; the telemetry pump merges the
    // family into the aggregate the latency SLO rules evaluate.
    metrics_
        ->sketch("serve.latency_seconds#" +
                 (info != nullptr ? info->name : std::string("unknown")))
        .Observe(finished.queue_seconds + finished.run_seconds);
    if (tenant_scoped) {
      // The same family#member naming as the solver sketch, so tenant-scoped
      // SLO rules read serve.tenant.latency_seconds#<tenant> and the pump's
      // per-tenant error rate reads the counter deltas.
      metrics_
          ->counter("serve.tenant." + tenant +
                    (succeeded ? ".completed" : ".failed"))
          .Increment();
      metrics_->sketch("serve.tenant.latency_seconds#" + tenant)
          .Observe(finished.queue_seconds + finished.run_seconds);
    }
    pending.promise.set_value(std::move(finished));
    std::lock_guard<std::mutex> lock(mu_);
    if (--in_flight_ == 0) drained_cv_.notify_all();
  };

  auto degrade_to = [&](const api::SolverInfo* fallback, const char* why) {
    if (outcome.degraded_from.empty()) {
      outcome.degraded_from = requested_canonical;
    }
    info = fallback;
    solver_to_run = fallback->name;
    metrics_->counter(std::string("serve.degraded.") + why).Increment();
    metrics_->counter("serve.degraded.jobs").Increment();
    run_span.Event(std::string("degrade/") + why);
    obs::FlightRecorder::Global().RecordInstant(std::string("degrade/") + why);
  };

  // Queue-pressure degradation, decided before any cache interaction so the
  // memo key always names the solver that actually runs.
  if (info != nullptr && res.degrade_on_pressure && !res.ladder.empty() &&
      options_.max_queue_depth > 0) {
    const double pressure =
        static_cast<double>(in_flight()) /
        static_cast<double>(options_.max_queue_depth);
    if (pressure >= res.pressure_fraction) {
      if (const std::string* fb = res.ladder.FallbackFor(info->name)) {
        if (const api::SolverInfo* fb_info = registry.Find(*fb)) {
          degrade_to(fb_info, "pressure");
        }
      }
    }
  }

  // Breaker admission. An open breaker walks the ladder looking for a rung
  // whose breaker admits; when none does, the job carries the typed
  // Unavailable into the attempt loop (retryable, so a configured retry
  // policy backs off and probes again).
  Status admit = Status::OK();
  if (res.breaker.enabled && info != nullptr) {
    admit = breakers_->ForSolver(info->name).Admit();
    const api::SolverInfo* walk = info;
    while (!admit.ok()) {
      const std::string* fb = res.ladder.FallbackFor(walk->name);
      if (fb == nullptr) break;
      const api::SolverInfo* fb_info = registry.Find(*fb);
      if (fb_info == nullptr) break;
      const Status fb_admit = breakers_->ForSolver(fb_info->name).Admit();
      walk = fb_info;
      if (fb_admit.ok()) {
        degrade_to(fb_info, "breaker");
        admit = Status::OK();
      }
    }
  }

  // Deadline-free solves are deterministic: memoizable. Keys use the
  // canonical spelling of the *executing* solver so "CWSC" and "cwsc"
  // share one entry and degraded runs memoize under the fallback's name.
  const bool cacheable = info != nullptr && request.deadline.count() == 0 &&
                         options_.result_cache_entries > 0;
  ResultKey key;
  if (cacheable) {
    key = MakeResultKey(SnapshotHashFor(request.instance), info->name,
                        request);
    // A cache hit bypasses breakers and faults entirely — serving memoized
    // results is the cheapest form of graceful degradation.
    if (std::optional<api::SolveResult> cached = result_cache_->Lookup(key)) {
      // No recorder instant here: a hit is the common, boring case on the
      // warm path, and it is already visible as a near-zero serve.run span.
      run_span.Event("cache.hit");
      if (!outcome.degraded_from.empty()) {
        cached->degraded_from = outcome.degraded_from;
      }
      outcome.result = *std::move(cached);
      outcome.from_result_cache = true;
      complete(std::move(outcome));
      return;
    }
    run_span.Event("cache.miss");
    obs::FlightRecorder::Global().RecordInstant("serve.cache.miss");
  }

  // The job deadline becomes this job's RunContext; the registry would
  // reject a request carrying both.
  const std::chrono::milliseconds deadline = request.deadline;
  request.deadline = std::chrono::milliseconds{0};
  if (request.trace == nullptr) {
    request.trace = options_.trace;  // jobs trace into the serve session
  }

  const int max_attempts = std::max(1, res.retry.max_attempts);
  double backoff_ms = 0.0;
  Stopwatch timer;
  for (;;) {
    ++outcome.attempts;
    if (!admit.ok()) {
      outcome.result = admit;  // typed Unavailable from the open breaker
    } else {
      RunContext context;
      RunContext* run_context = nullptr;
      if (deadline.count() > 0) {
        context.SetDeadline(deadline);
        run_context = &context;
      }
      // Register the in-flight context so the watchdog can trip a job
      // stuck past its deadline + grace (a solver that stops checking its
      // context, an injected stall).
      std::list<RunningJob>::iterator running_it;
      bool registered = false;
      if (run_context != nullptr) {
        std::lock_guard<std::mutex> lock(mu_);
        running_.push_back(RunningJob{
            run_context, std::chrono::steady_clock::now() + deadline, true});
        running_it = std::prev(running_.end());
        registered = true;
      }

      if (FaultPlan* plan = FaultPlan::Active();
          plan != nullptr && plan->ShouldFire(FaultPoint::kSolverDelay)) {
        metrics_->counter("serve.faults.solver_delay").Increment();
        run_span.Event("fault/solver_delay");
        obs::FlightRecorder::Global().RecordInstant("fault/solver_delay");
        std::this_thread::sleep_for(
            std::chrono::milliseconds(plan->solver_delay_ms()));
      }
      // The solver call site is exception-contained: a throwing solver (or
      // an injected throw) becomes Status::Internal, never a lost future.
      try {
        if (FaultFires(FaultPoint::kSolverError)) {
          metrics_->counter("serve.faults.solver_error").Increment();
          run_span.Event("fault/solver_error");
          obs::FlightRecorder::Global().RecordInstant("fault/solver_error");
          outcome.result = Status::Internal(
              "injected fault: solver failure (FaultPoint solver_error)");
        } else if (FaultFires(FaultPoint::kSolverThrow)) {
          metrics_->counter("serve.faults.solver_throw").Increment();
          run_span.Event("fault/solver_throw");
          obs::FlightRecorder::Global().RecordInstant("fault/solver_throw");
          throw std::runtime_error(
              "injected fault: solver exception (FaultPoint solver_throw)");
        } else {
          outcome.result = registry.Solve(solver_to_run, request, run_context);
        }
      } catch (const std::exception& e) {
        outcome.result =
            Status::Internal(std::string("solver threw: ") + e.what());
      } catch (...) {
        outcome.result =
            Status::Internal("solver threw a non-standard exception");
      }
      if (registered) {
        std::lock_guard<std::mutex> lock(mu_);
        running_.erase(running_it);
      }

      // Breaker accounting: success heals, Internal and deadline trips are
      // failures; cancel / budget trips say nothing about solver health.
      if (res.breaker.enabled && info != nullptr) {
        CircuitBreaker& breaker = breakers_->ForSolver(info->name);
        if (outcome.result.ok()) {
          breaker.RecordSuccess();
        } else {
          const StatusCode code = outcome.result.status().code();
          if (code == StatusCode::kInternal ||
              code == StatusCode::kDeadlineExceeded) {
            breaker.RecordFailure();
          }
        }
      }
    }

    if (outcome.result.ok()) break;
    const Status& status = outcome.result.status();
    if (status.IsInterruption()) break;  // typed partials are never retried
    if (!IsRetryableFailure(status)) break;
    if (outcome.attempts >= max_attempts) {
      if (res.retry.enabled()) {
        metrics_->counter("serve.retries.exhausted").Increment();
      }
      break;
    }
    if (!retry_budget_.TryAcquire(outcome.label)) {
      metrics_->counter("serve.retries.budget_denied").Increment();
      break;
    }
    // Decorrelated jitter; the draw mixes the label so concurrent retrying
    // jobs spread out instead of thundering in lockstep.
    backoff_ms = NextBackoffMs(
        res.retry, backoff_ms,
        std::hash<std::string>{}(outcome.label) ^
            static_cast<std::uint64_t>(outcome.attempts));
    metrics_->counter("serve.retries.attempted").Increment();
    run_span.Event("retry/backoff");
    obs::FlightRecorder::Global().RecordInstant("retry/backoff", backoff_ms);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms));
    if (res.breaker.enabled && info != nullptr) {
      admit = breakers_->ForSolver(info->name).Admit();
    }
  }
  outcome.run_seconds = timer.ElapsedSeconds();

  // Memoize the *clean* result under the executing solver's key before
  // stamping serve-layer provenance: a later non-degraded request for the
  // fallback solver must not inherit this job's degraded_from.
  if (cacheable && outcome.result.ok()) {
    result_cache_->Insert(key, *outcome.result);
  }
  if (!outcome.degraded_from.empty() && outcome.result.ok()) {
    outcome.result->degraded_from = outcome.degraded_from;
  }
  complete(std::move(outcome));
}

void SolveScheduler::WatchdogLoop() {
  const auto interval = std::chrono::duration<double>(
      std::max(options_.resilience.watchdog_interval_seconds, 0.001));
  const auto grace =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              std::max(options_.resilience.watchdog_grace_seconds, 0.0)));
  const double stale_seconds =
      std::max(options_.resilience.watchdog_stale_seconds, 0.0);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    watchdog_cv_.wait_for(lock, interval, [this] { return watchdog_stop_; });
    if (watchdog_stop_) return;
    const auto now = std::chrono::steady_clock::now();
    // Deadline enforcement from outside the job: a solver wedged past
    // deadline + grace gets its context cancelled, so the registry call
    // returns an interruption Status and the future completes.
    for (const RunningJob& running : running_) {
      if (running.has_deadline && now > running.deadline_at + grace &&
          running.context->tripped() == TripKind::kNone) {
        running.context->RequestCancel();
        metrics_->counter("serve.watchdog.tripped").Increment();
        obs::FlightRecorder::Global().RecordInstant("watchdog/trip");
      }
    }
    // Liveness: a queue entry older than the stale bound means its
    // dispatch task never ran (injected pool task loss, or a flood);
    // submit a replacement per stale entry. Extra tasks are harmless —
    // RunOneJob returns when the queue is empty.
    std::size_t stale = 0;
    for (const PendingJob& pending : queue_) {
      if (SecondsSince(pending.enqueued_at, now) > stale_seconds) ++stale;
    }
    if (stale > 0) {
      metrics_->counter("serve.watchdog.redispatched").Increment(stale);
      obs::FlightRecorder::Global().RecordInstant(
          "watchdog/redispatch", static_cast<double>(stale));
      lock.unlock();  // Submit runs inline on a 1-lane pool; never hold mu_
      for (std::size_t i = 0; i < stale; ++i) {
        pool_->Submit([this] { RunOneJob(); });
      }
      lock.lock();
    }
  }
}

}  // namespace serve
}  // namespace scwsc
