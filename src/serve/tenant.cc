#include "src/serve/tenant.h"

#include <algorithm>
#include <cstdio>

namespace scwsc {
namespace serve {

TenantAdmission::TenantAdmission(TenantPolicy policy)
    : policy_(std::move(policy)) {}

Status TenantAdmission::Admit(const std::string& tenant) {
  if (!policy_.enabled) return Status::OK();
  const TenantQuota& quota = policy_.QuotaFor(tenant);
  if (quota.rate_per_second <= 0.0) return Status::OK();
  const double capacity = quota.burst > 0.0
                              ? quota.burst
                              : std::max(quota.rate_per_second, 1.0);
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  Bucket& bucket = buckets_[tenant];
  if (!bucket.initialized) {
    bucket.tokens = capacity;  // a fresh tenant starts with a full burst
    bucket.refilled_at = now;
    bucket.initialized = true;
  } else {
    const double elapsed =
        std::chrono::duration<double>(now - bucket.refilled_at).count();
    bucket.tokens = std::min(capacity,
                             bucket.tokens + elapsed * quota.rate_per_second);
    bucket.refilled_at = now;
  }
  if (bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    return Status::OK();
  }
  const double deficit = 1.0 - bucket.tokens;
  const double retry_after_ms = deficit / quota.rate_per_second * 1000.0;
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.0f", retry_after_ms);
  return Status::ResourceExhausted("tenant \"" + tenant +
                                   "\" is over its admission quota; retry "
                                   "after " +
                                   std::string(buffer) + "ms")
      .WithPayload(RetryAfterHint{retry_after_ms});
}

double TenantAdmission::WeightOf(const std::string& tenant) const {
  return std::max(policy_.QuotaFor(tenant).weight, 1e-6);
}

}  // namespace serve
}  // namespace scwsc
