#include "src/serve/slo.h"

#include <cctype>
#include <cstdlib>
#include <utility>

namespace scwsc {
namespace serve {

namespace {

struct MetricSpec {
  const char* name;
  SloMetric metric;
  double quantile;
};

constexpr MetricSpec kMetrics[] = {
    {"p50_latency_ms", SloMetric::kLatencyQuantile, 0.5},
    {"p90_latency_ms", SloMetric::kLatencyQuantile, 0.9},
    {"p99_latency_ms", SloMetric::kLatencyQuantile, 0.99},
    {"p999_latency_ms", SloMetric::kLatencyQuantile, 0.999},
    {"error_rate", SloMetric::kErrorRate, 0.0},
    {"queue_depth", SloMetric::kQueueDepth, 0.0},
    {"breaker_open", SloMetric::kBreakerOpen, 0.0},
};

std::string StripWhitespace(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) out += c;
  }
  return out;
}

std::string AcceptedMetrics() {
  std::string out;
  for (const MetricSpec& m : kMetrics) {
    if (!out.empty()) out += ", ";
    out += m.name;
  }
  return out;
}

}  // namespace

Result<SloRule> ParseSloRule(const std::string& text) {
  std::string s = StripWhitespace(text);
  std::string tenant;
  static constexpr const char kTenantPrefix[] = "tenant=";
  if (s.rfind(kTenantPrefix, 0) == 0) {
    const std::size_t colon = s.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument(
          "slo rule '" + text +
          "': tenant scope needs a ':' before the rule, e.g. "
          "\"tenant=acme:p99_latency_ms<=50\"");
    }
    tenant = s.substr(sizeof(kTenantPrefix) - 1,
                      colon - (sizeof(kTenantPrefix) - 1));
    if (tenant.empty()) {
      return Status::InvalidArgument("slo rule '" + text +
                                     "': empty tenant name");
    }
    s.erase(0, colon + 1);
  }
  std::size_t op_pos = std::string::npos;
  std::size_t op_len = 0;
  SloOp op = SloOp::kAtMost;
  if ((op_pos = s.find("<=")) != std::string::npos) {
    op_len = 2;
  } else if ((op_pos = s.find("==")) != std::string::npos) {
    op = SloOp::kEquals;
    op_len = 2;
  } else if ((op_pos = s.find('<')) != std::string::npos) {
    op_len = 1;
  } else {
    return Status::InvalidArgument("slo rule '" + text +
                                   "': expected '<=', '<' or '=='");
  }
  const std::string metric_name = s.substr(0, op_pos);
  const std::string value_str = s.substr(op_pos + op_len);

  SloRule rule;
  rule.op = op;
  rule.text = text;
  rule.tenant = std::move(tenant);
  bool found = false;
  for (const MetricSpec& m : kMetrics) {
    if (metric_name == m.name) {
      rule.metric = m.metric;
      rule.quantile = m.quantile;
      found = true;
      break;
    }
  }
  if (!found) {
    return Status::InvalidArgument("slo rule '" + text + "': unknown metric '" +
                                   metric_name + "' (accepted: " +
                                   AcceptedMetrics() + ")");
  }
  if (value_str.empty()) {
    return Status::InvalidArgument("slo rule '" + text +
                                   "': missing threshold");
  }
  char* end = nullptr;
  rule.threshold = std::strtod(value_str.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    return Status::InvalidArgument("slo rule '" + text +
                                   "': bad threshold '" + value_str + "'");
  }
  if (rule.threshold < 0.0) {
    return Status::InvalidArgument("slo rule '" + text +
                                   "': threshold must be >= 0");
  }
  return rule;
}

Result<std::vector<SloRule>> ParseSloRules(
    const std::vector<std::string>& texts) {
  std::vector<SloRule> rules;
  rules.reserve(texts.size());
  for (const std::string& text : texts) {
    Result<SloRule> rule = ParseSloRule(text);
    if (!rule.ok()) return rule.status();
    rules.push_back(std::move(rule).value());
  }
  return rules;
}

std::vector<SloViolation> EvaluateSlos(const std::vector<SloRule>& rules,
                                       const SloSample& sample) {
  std::vector<SloViolation> violations;
  for (const SloRule& rule : rules) {
    double observed = 0.0;
    bool has_data = true;
    switch (rule.metric) {
      case SloMetric::kLatencyQuantile:
        if (sample.latency == nullptr || sample.latency->count() == 0) {
          has_data = false;
          break;
        }
        observed = sample.latency->Quantile(rule.quantile) * 1e3;  // s -> ms
        break;
      case SloMetric::kErrorRate: {
        const std::uint64_t traffic =
            sample.completed_delta + sample.failed_delta;
        if (traffic == 0) {
          has_data = false;
          break;
        }
        observed = static_cast<double>(sample.failed_delta) /
                   static_cast<double>(traffic);
        break;
      }
      case SloMetric::kQueueDepth:
        observed = sample.queue_depth;
        break;
      case SloMetric::kBreakerOpen:
        observed = sample.breaker_open;
        break;
    }
    if (!has_data) continue;
    const bool violated = rule.op == SloOp::kEquals
                              ? observed != rule.threshold
                              : observed > rule.threshold;
    if (violated) violations.push_back(SloViolation{rule, observed});
  }
  return violations;
}

}  // namespace serve
}  // namespace scwsc
