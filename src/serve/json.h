// Minimal JSON for the serve layer: a tagged value type, a strict
// recursive-descent parser, and a writer with string escaping. Exists so
// the batch front end (--batch jobs.json) and the serve bench can read and
// write structured files without adding a dependency — the rest of the
// repo only ever *writes* JSON by hand (obs/export.cc), but batch input
// needs parsing.
//
// Deliberately small: UTF-8 pass-through (no \uXXXX decoding beyond ASCII),
// numbers parsed as double, no comments, no trailing commas. That is
// exactly the subset the batch format and BENCH_serve.json use.
//
// Hardened against untrusted input (batch files arrive from users): bounded
// nesting depth and total size (JsonParseLimits), duplicate object keys and
// numbers that overflow to infinity are typed errors, never silent
// acceptance or a stack overflow.

#ifndef SCWSC_SERVE_JSON_H_
#define SCWSC_SERVE_JSON_H_

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace scwsc {
namespace serve {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
/// std::map keeps object keys sorted, making every write deterministic.
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(double n) : kind_(Kind::kNumber), number_(n) {}
  JsonValue(int n) : kind_(Kind::kNumber), number_(n) {}
  JsonValue(std::size_t n)
      : kind_(Kind::kNumber), number_(static_cast<double>(n)) {}
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}
  JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  JsonValue(JsonArray a) : kind_(Kind::kArray), array_(std::move(a)) {}
  JsonValue(JsonObject o) : kind_(Kind::kObject), object_(std::move(o)) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const JsonArray& as_array() const { return array_; }
  const JsonObject& as_object() const { return object_; }
  JsonArray& mutable_array() { return array_; }
  JsonObject& mutable_object() { return object_; }

  /// Object member by key, or nullptr (also for non-objects).
  const JsonValue* Find(const std::string& key) const;

  /// Serializes compactly ("{"a":1}"); deterministic (sorted object keys,
  /// shortest-round-trip doubles, integers without a fraction part).
  std::string Dump() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  JsonArray array_;
  JsonObject object_;
};

/// Bounds the parser enforces on untrusted input. Defaults are far above
/// anything the batch format needs while keeping a hostile document (a
/// megabyte of '[', a gigabyte file) from exhausting the stack or memory.
struct JsonParseLimits {
  /// Maximum container nesting depth; exceeding it is InvalidArgument, not
  /// a stack overflow (the parser recurses once per level).
  std::size_t max_depth = 64;
  /// Maximum input size in bytes; 0 = unlimited.
  std::size_t max_bytes = 16ull << 20;
};

/// Parses one JSON document (surrounding whitespace allowed, trailing
/// garbage rejected). InvalidArgument with byte offset on malformed input —
/// including nesting beyond limits.max_depth, input beyond
/// limits.max_bytes, duplicate object keys, and numbers that overflow to
/// infinity ("1e999"): silently keeping the last duplicate or a non-finite
/// number would corrupt batch semantics downstream.
Result<JsonValue> ParseJson(const std::string& text,
                            const JsonParseLimits& limits = {});

/// Reads and parses a JSON file. NotFound when the file cannot be opened.
Result<JsonValue> ReadJsonFile(const std::string& path,
                               const JsonParseLimits& limits = {});

/// Writes `value.Dump()` plus a trailing newline to `path`.
Status WriteJsonFile(const JsonValue& value, const std::string& path);

}  // namespace serve
}  // namespace scwsc

#endif  // SCWSC_SERVE_JSON_H_
