#include "src/serve/batch.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/stopwatch.h"
#include "src/serve/wire.h"

namespace scwsc {
namespace serve {
namespace {

Result<double> RequireNumber(const JsonValue& v, const std::string& what) {
  if (!v.is_number()) {
    return Status::InvalidArgument("batch field '" + what +
                                   "' must be a number");
  }
  return v.as_number();
}

/// Latency percentile over a sorted sample (nearest-rank).
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<std::size_t>(std::lround(rank))];
}

}  // namespace

void FaultSpec::ApplyTo(FaultPlan& plan) const {
  for (int i = 0; i < kNumFaultPoints; ++i) {
    const double p = probabilities[static_cast<std::size_t>(i)];
    if (p > 0.0) plan.Arm(static_cast<FaultPoint>(i), p);
  }
  plan.set_solver_delay_ms(solver_delay_ms);
}

namespace {

Result<FaultSpec> ParseFaultSpec(const JsonValue& value) {
  FaultSpec spec;
  spec.configured = true;
  if (!value.is_object()) {
    return Status::InvalidArgument("batch \"faults\" must be an object");
  }
  for (const auto& [key, item] : value.as_object()) {
    if (key == "seed") {
      SCWSC_ASSIGN_OR_RETURN(double n, RequireNumber(item, "faults.seed"));
      spec.seed = static_cast<std::uint64_t>(n);
    } else if (key == "solver_delay_ms") {
      SCWSC_ASSIGN_OR_RETURN(double n,
                             RequireNumber(item, "faults.solver_delay_ms"));
      spec.solver_delay_ms = static_cast<std::uint64_t>(n);
    } else if (key == "points") {
      if (!item.is_object()) {
        return Status::InvalidArgument("faults.points must be an object");
      }
      for (const auto& [name, prob] : item.as_object()) {
        SCWSC_ASSIGN_OR_RETURN(FaultPoint point, FaultPointFromString(name));
        SCWSC_ASSIGN_OR_RETURN(double p,
                               RequireNumber(prob, "faults.points." + name));
        if (p < 0.0 || p > 1.0) {
          return Status::InvalidArgument("faults.points." + name +
                                         " must be in [0, 1]");
        }
        spec.probabilities[static_cast<std::size_t>(point)] = p;
      }
    } else {
      return Status::InvalidArgument(
          "unknown batch \"faults\" key '" + key +
          "'; accepted: seed, solver_delay_ms, points");
    }
  }
  return spec;
}

Result<SloSpec> ParseSloSpec(const JsonValue& value) {
  SloSpec spec;
  spec.configured = true;
  if (!value.is_object()) {
    return Status::InvalidArgument("batch \"slo\" must be an object");
  }
  for (const auto& [key, item] : value.as_object()) {
    if (key == "rules") {
      if (!item.is_array()) {
        return Status::InvalidArgument("slo.rules must be an array");
      }
      for (const JsonValue& rule_value : item.as_array()) {
        if (!rule_value.is_string()) {
          return Status::InvalidArgument(
              "slo.rules entries must be strings like "
              "\"p99_latency_ms<=250\"");
        }
        SCWSC_ASSIGN_OR_RETURN(SloRule rule,
                               ParseSloRule(rule_value.as_string()));
        spec.rules.push_back(std::move(rule));
      }
    } else if (key == "interval_ms") {
      SCWSC_ASSIGN_OR_RETURN(double ms,
                             RequireNumber(item, "slo.interval_ms"));
      if (!(ms > 0.0)) {
        return Status::InvalidArgument("slo.interval_ms must be > 0");
      }
      spec.interval_ms = ms;
    } else if (key == "dump_path") {
      if (!item.is_string()) {
        return Status::InvalidArgument("slo.dump_path must be a string");
      }
      spec.dump_path = item.as_string();
    } else {
      return Status::InvalidArgument(
          "unknown batch \"slo\" key '" + key +
          "'; accepted: rules, interval_ms, dump_path");
    }
  }
  return spec;
}

}  // namespace

Result<BatchSpec> ParseBatchSpec(const std::string& path,
                                 api::InstancePtr instance) {
  BatchSpec spec;
  SCWSC_ASSIGN_OR_RETURN(JsonValue root, ReadJsonFile(path));
  SCWSC_ASSIGN_OR_RETURN(spec.version,
                         CheckWireVersion(root, "batch-file " + path));
  if (const JsonValue* faults = root.Find("faults")) {
    SCWSC_ASSIGN_OR_RETURN(spec.faults, ParseFaultSpec(*faults));
  }
  if (const JsonValue* slo = root.Find("slo")) {
    SCWSC_ASSIGN_OR_RETURN(spec.slo, ParseSloSpec(*slo));
  }
  const JsonValue* jobs_value = root.Find("jobs");
  if (jobs_value == nullptr || !jobs_value->is_array()) {
    return Status::InvalidArgument(
        "batch file '" + path + "' must be an object with a \"jobs\" array");
  }
  if (spec.version >= kWireVersion && root.is_object()) {
    for (const auto& [key, value] : root.as_object()) {
      if (key != "version" && key != "jobs" && key != "faults" &&
          key != "slo") {
        spec.forward[key] = value;
      }
    }
  }
  std::vector<SolveJob> jobs;
  std::size_t index = 0;
  for (const JsonValue& entry : jobs_value->as_array()) {
    const std::string at = "jobs[" + std::to_string(index) + "]";
    SCWSC_ASSIGN_OR_RETURN(
        ParsedJob parsed,
        ParseJobObject(entry, instance, at, spec.version));
    if (parsed.job.request.label.empty()) {
      parsed.job.request.label = "job-" + std::to_string(index);
    }
    for (const auto& [key, value] : parsed.forward) {
      spec.forward[at + "." + key] = value;
    }
    for (std::size_t i = 0; i < parsed.repeat; ++i) {
      jobs.push_back(parsed.job);
    }
    ++index;
  }
  spec.jobs = std::move(jobs);
  return spec;
}

Result<std::vector<SolveJob>> ParseBatchFile(const std::string& path,
                                             api::InstancePtr instance) {
  SCWSC_ASSIGN_OR_RETURN(BatchSpec spec, ParseBatchSpec(path, instance));
  if (spec.faults.configured) {
    return Status::InvalidArgument(
        "batch file '" + path +
        "' carries a \"faults\" object, but this caller does not support "
        "fault injection; use ParseBatchSpec");
  }
  if (spec.slo.configured) {
    return Status::InvalidArgument(
        "batch file '" + path +
        "' carries an \"slo\" object, but this caller does not support "
        "telemetry; use ParseBatchSpec");
  }
  return std::move(spec.jobs);
}

Result<JsonValue> RunBatch(std::vector<SolveJob> jobs,
                           SolveScheduler& scheduler) {
  struct Slot {
    std::string label;
    std::string solver;
    std::future<JobOutcome> future;
    Status rejected = Status::OK();  // admission failure, if any
  };
  std::vector<Slot> slots;
  slots.reserve(jobs.size());

  Stopwatch wall;
  for (SolveJob& job : jobs) {
    Slot slot;
    slot.label = job.request.label;
    slot.solver = job.solver;
    auto future = scheduler.Enqueue(std::move(job));
    if (future.ok()) {
      slot.future = std::move(*future);
    } else {
      slot.rejected = future.status();
    }
    slots.push_back(std::move(slot));
  }

  JsonArray job_reports;
  std::vector<double> latencies;
  std::size_t succeeded = 0, failed = 0, cache_hits = 0;
  for (Slot& slot : slots) {
    JsonObject report;
    report["label"] = slot.label;
    report["solver"] = slot.solver;
    if (!slot.rejected.ok()) {
      report["ok"] = false;
      report["error"] = ErrorToJson(ErrorInfoFromStatus(slot.rejected));
      ++failed;
      job_reports.push_back(JsonValue(std::move(report)));
      continue;
    }
    JobOutcome outcome = slot.future.get();
    const double latency = outcome.queue_seconds + outcome.run_seconds;
    latencies.push_back(latency);
    report["from_result_cache"] = outcome.from_result_cache;
    report["queue_seconds"] = outcome.queue_seconds;
    report["run_seconds"] = outcome.run_seconds;
    report["attempts"] = outcome.attempts;
    if (!outcome.degraded_from.empty()) {
      report["degraded_from"] = outcome.degraded_from;
    }
    if (outcome.from_result_cache) ++cache_hits;
    const api::SolveResult* result = nullptr;
    if (outcome.result.ok()) {
      report["ok"] = true;
      result = &*outcome.result;
      ++succeeded;
    } else {
      report["ok"] = false;
      report["error"] =
          ErrorToJson(ErrorInfoFromStatus(outcome.result.status()));
      // An interruption still surfaces its best-so-far partial.
      result = outcome.result.status().payload<api::SolveResult>();
      ++failed;
    }
    if (result != nullptr) {
      report["total_cost"] = result->total_cost;
      report["covered"] = result->covered;
      report["num_sets"] = result->labels.size();
      if (result->accuracy_ratio > 0.0) {
        report["accuracy_ratio"] = result->accuracy_ratio;
      }
      JsonArray labels;
      for (const std::string& label : result->labels) {
        labels.push_back(JsonValue(label));
      }
      report["selection"] = JsonValue(std::move(labels));
    }
    job_reports.push_back(JsonValue(std::move(report)));
  }
  const double wall_seconds = wall.ElapsedSeconds();
  // One forced telemetry tick so the aggregate reads final counters and the
  // last interval's SLO evaluations (no-op without a pump).
  scheduler.FlushTelemetry();

  std::sort(latencies.begin(), latencies.end());
  obs::MetricRegistry& metrics = scheduler.metrics();
  JsonObject aggregate;
  aggregate["total_jobs"] = slots.size();
  aggregate["succeeded"] = succeeded;
  aggregate["failed"] = failed;
  aggregate["wall_seconds"] = wall_seconds;
  aggregate["jobs_per_second"] =
      wall_seconds > 0.0 ? static_cast<double>(slots.size()) / wall_seconds
                         : 0.0;
  aggregate["result_cache_hits"] =
      metrics.CounterValue("serve.result_cache.hits");
  aggregate["result_cache_misses"] =
      metrics.CounterValue("serve.result_cache.misses");
  aggregate["snapshot_cache_hits"] =
      metrics.CounterValue("serve.snapshot_cache.hits");
  aggregate["snapshot_cache_misses"] =
      metrics.CounterValue("serve.snapshot_cache.misses");
  aggregate["batch_result_cache_hits"] = cache_hits;
  aggregate["p50_latency_seconds"] = Percentile(latencies, 0.50);
  aggregate["p99_latency_seconds"] = Percentile(latencies, 0.99);
  aggregate["retries_attempted"] =
      metrics.CounterValue("serve.retries.attempted");
  aggregate["retries_exhausted"] =
      metrics.CounterValue("serve.retries.exhausted");
  aggregate["breaker_opened"] = metrics.CounterValue("serve.breaker.opened");
  aggregate["breaker_rejected"] =
      metrics.CounterValue("serve.breaker.rejected");
  aggregate["degraded_jobs"] = metrics.CounterValue("serve.degraded.jobs");
  aggregate["results_quarantined"] =
      metrics.CounterValue("serve.result_cache.quarantined");
  aggregate["watchdog_tripped"] =
      metrics.CounterValue("serve.watchdog.tripped");
  aggregate["watchdog_redispatched"] =
      metrics.CounterValue("serve.watchdog.redispatched");
  aggregate["slo_violations"] =
      metrics.CounterValue("serve.slo.violations");

  JsonObject root;
  root["version"] = JsonValue(static_cast<std::size_t>(kWireVersion));
  root["jobs"] = JsonValue(std::move(job_reports));
  root["aggregate"] = JsonValue(std::move(aggregate));
  return JsonValue(std::move(root));
}

Result<JsonValue> RunBatch(BatchSpec spec, SolveScheduler& scheduler) {
  SCWSC_ASSIGN_OR_RETURN(JsonValue report,
                         RunBatch(std::move(spec.jobs), scheduler));
  if (!spec.forward.empty()) {
    JsonObject root = report.as_object();
    root["forward"] = JsonValue(std::move(spec.forward));
    return JsonValue(std::move(root));
  }
  return report;
}

}  // namespace serve
}  // namespace scwsc
