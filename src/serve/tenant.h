// Multi-tenant admission and fairness for the serve scheduler.
//
// Jobs carry a tenant id (SolveRequest::tenant; empty maps onto the
// anonymous "default" tenant). When a TenantPolicy is enabled the scheduler
// runs two mechanisms on top of its existing admission control:
//
//  - Admission quotas: a token bucket per tenant (rate_per_second refill,
//    burst capacity). A job arriving with an empty bucket is rejected with
//    a typed ResourceExhausted carrying a RetryAfterHint payload — the time
//    until the bucket refills one token — so wire frontends surface a
//    machine-readable retry_after_ms instead of free text.
//
//  - Weighted-fair dequeue: workers pick the next job from the tenant with
//    the smallest served_work / weight among tenants with waiting jobs,
//    then the highest aged priority within that tenant. This composes with
//    priority aging (fairness picks the tenant, aging orders the tenant's
//    own jobs) and guarantees no tenant starves: every tenant with waiting
//    work has the minimal normalized share infinitely often.
//
// The default TenantPolicy is inert: disabled, no buckets, and the
// scheduler's dequeue is bit-identical to the single-tenant scan.

#ifndef SCWSC_SERVE_TENANT_H_
#define SCWSC_SERVE_TENANT_H_

#include <chrono>
#include <map>
#include <mutex>
#include <string>

#include "src/common/status.h"

namespace scwsc {
namespace serve {

/// The tenant id used for accounting when the request left it empty.
inline const std::string& EffectiveTenant(const std::string& tenant) {
  static const std::string kDefault = "default";
  return tenant.empty() ? kDefault : tenant;
}

/// Per-tenant limits and share. Tenants not listed in TenantPolicy::quotas
/// use default_quota.
struct TenantQuota {
  /// Token-bucket refill rate; 0 = no rate limit for this tenant.
  double rate_per_second = 0.0;
  /// Bucket capacity; 0 defaults to max(rate_per_second, 1).
  double burst = 0.0;
  /// Weighted-fair share (relative). Clamped to >= a small positive floor.
  double weight = 1.0;
};

struct TenantPolicy {
  /// Master switch. Disabled (the default) keeps the scheduler bit-identical
  /// to its single-tenant behaviour: no buckets, global priority scan.
  bool enabled = false;
  TenantQuota default_quota;
  std::map<std::string, TenantQuota> quotas;

  const TenantQuota& QuotaFor(const std::string& tenant) const {
    const auto it = quotas.find(tenant);
    return it == quotas.end() ? default_quota : it->second;
  }
};

/// Token-bucket admission, one bucket per tenant, lazily created. Thread
/// safe; the scheduler calls Admit under its own lock-free fast path.
class TenantAdmission {
 public:
  explicit TenantAdmission(TenantPolicy policy);

  /// Spends one token from `tenant`'s bucket (tenant already normalized via
  /// EffectiveTenant). OK when admitted or unlimited; ResourceExhausted
  /// with a RetryAfterHint payload (ms until one token refills) otherwise.
  Status Admit(const std::string& tenant);

  /// The fair-share weight of `tenant` (>= 1e-6).
  double WeightOf(const std::string& tenant) const;

  bool enabled() const { return policy_.enabled; }

 private:
  struct Bucket {
    double tokens = 0.0;
    std::chrono::steady_clock::time_point refilled_at;
    bool initialized = false;
  };

  const TenantPolicy policy_;
  std::mutex mu_;
  std::map<std::string, Bucket> buckets_;
};

}  // namespace serve
}  // namespace scwsc

#endif  // SCWSC_SERVE_TENANT_H_
