// Versioned wire protocol shared by the serve frontends (the batch file
// reader and the socket server, src/serve/server.h).
//
// Version 2 is the current protocol. A request envelope is one JSON object:
//
//   {"version": 2,                // required on v2; absent/1 = legacy v1
//    "id": "req-17",              // echoed verbatim in the response
//    "type": "solve",             // solve | delta | ping | list_solvers
//    "tenant": "acme",            // optional; admission + fair share
//    ...type-specific fields...}
//
// and every response is {"version": 2, "id": ..., "ok": true, "result":
// {...}} or {"version": 2, "id": ..., "ok": false, "error": {...}} where
// the error object is the typed envelope below — never free text.
//
// v1 payloads (a versionless solve-shaped object, or a batch file without
// a "version" key) are still accepted; the first one per process logs a
// deprecation warning (warn-once, same discipline as deprecated solver
// option aliases). Unknown keys under v2 are not errors: they are
// collected and echoed back under "forward", so a newer client's fields
// round-trip through an older server (forward compatibility).
//
// docs/serving.md carries the full reference and the v1 -> v2 migration
// table.

#ifndef SCWSC_SERVE_WIRE_H_
#define SCWSC_SERVE_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/api/delta.h"
#include "src/api/instance.h"
#include "src/common/result.h"
#include "src/serve/json.h"
#include "src/serve/scheduler.h"

namespace scwsc {
namespace serve {

/// The protocol version this build speaks natively.
inline constexpr int kWireVersion = 2;

/// The typed error envelope: a 1:1 mapping of Status onto the wire.
/// `retryable` mirrors the scheduler's own retry classification plus
/// capacity rejections (Internal, Unavailable, ResourceExhausted);
/// `retry_after_ms` surfaces a RetryAfterHint payload (open breaker,
/// tenant quota, full queue) machine-readably, 0 when the status carried
/// none.
struct ErrorInfo {
  std::string code;     // stable StatusCode name, e.g. "ResourceExhausted"
  std::string message;  // the status message, verbatim
  bool retryable = false;
  double retry_after_ms = 0.0;
};

/// Maps a non-OK Status onto the envelope. Must not be called with OK.
ErrorInfo ErrorInfoFromStatus(const Status& status);

/// {"code": ..., "message": ..., "retryable": ...} plus "retry_after_ms"
/// when the hint is positive.
JsonValue ErrorToJson(const ErrorInfo& error);

/// Logs the v1 deprecation warning once per process per call site tag
/// ("batch-file", "socket"). Returns true when this call did the warning
/// (tests reset nothing; the warn-once set is process state).
bool WarnDeprecatedWireV1(const std::string& where);

/// Validates a payload's "version" key: absent or 1 is legacy v1 (accepted,
/// warn-once), kWireVersion is current, anything else is InvalidArgument.
/// Returns the effective version.
Result<int> CheckWireVersion(const JsonValue& root, const std::string& where);

/// One parsed job object plus its v2 extras. `forward` holds the unknown
/// keys (v2 only) for the round-trip echo; `repeat` is the batch-file
/// expansion count (always 1 on the socket path).
struct ParsedJob {
  SolveJob job;
  std::size_t repeat = 1;
  JsonObject forward;
};

/// Parses one job-shaped JSON object (a batch "jobs" entry or a socket
/// "solve" request) into a SolveJob over `instance`. Accepted keys: solver
/// (required), k, coverage, options, deadline_ms, priority, label, tenant,
/// repeat. Under version >= 2 unknown keys land in `forward`; under v1 they
/// are ignored (the legacy behaviour). `at` prefixes error messages
/// ("jobs[3]"). Envelope keys (version/id/type) are skipped, never
/// forwarded.
Result<ParsedJob> ParseJobObject(const JsonValue& entry,
                                 const api::InstancePtr& instance,
                                 const std::string& at, int version);

/// Parses the mutation fields of a "delta" request into a SnapshotDelta.
/// Accepted keys: append_rows ([{"values": [...], "measure": n}]),
/// retract_rows ([indices]), add_sets ([{"elements": [...], "cost": n,
/// "label": s}]), remove_sets ([ids]). Validation beyond shape (bounds,
/// duplicates, arity) happens in api::ApplyDelta, which owns the rules.
Result<api::SnapshotDelta> ParseDeltaObject(const JsonValue& entry,
                                            const std::string& at);

/// Renders what one delta application did: child_version, shards
/// chained/rehashed, row/set op counts, and the child's content hash as a
/// hex *string* ("0x..."), because a 64-bit hash does not survive the trip
/// through a JSON double.
JsonValue DeltaStatsToJson(const api::DeltaStats& stats,
                           std::uint64_t content_hash);

/// The registry's solver table as machine-readable JSON: {"solvers":
/// [{"name", "summary", "capabilities", "options": [{"name", "type",
/// "default", "required", "help", "deprecated_alias"}]}]}. Shared by the
/// CLI's --list-solvers --json and the socket server's list_solvers so the
/// two surfaces cannot drift.
JsonValue SolverListToJson();

}  // namespace serve
}  // namespace scwsc

#endif  // SCWSC_SERVE_WIRE_H_
