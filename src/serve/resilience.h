// Recovery policies for the serve path: retries with decorrelated-jitter
// backoff, per-label retry budgets, per-solver circuit breakers, and a
// degradation ladder mapping solvers onto cheaper registered fallbacks.
//
// These are *policies*, not mechanisms: the SolveScheduler owns the attempt
// loop, the breaker bank and the watchdog thread; this header owns the
// decisions (should this failure be retried? how long to back off? is this
// solver's breaker open? what is the cheaper fallback?). Keeping the
// decisions pure and clock-explicit makes every one of them unit-testable
// without a scheduler, a thread pool or a real clock.
//
// Defaults are chosen so a default-constructed ResilienceOptions is inert:
// max_attempts = 1 (no retries), breaker disabled, ladder empty, watchdog
// off. A scheduler built with defaults behaves bit-identically to one that
// predates this subsystem.

#ifndef SCWSC_SERVE_RESILIENCE_H_
#define SCWSC_SERVE_RESILIENCE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/common/result.h"
#include "src/obs/metrics.h"

namespace scwsc {
namespace serve {

// --- retries ---------------------------------------------------------------

/// When and how the scheduler re-runs a failed solve attempt.
struct RetryPolicy {
  /// Total attempts including the first; 1 = retries off (the default, so a
  /// plain scheduler never re-runs work).
  int max_attempts = 1;
  /// Backoff bounds in milliseconds. The first retry waits
  /// `initial_backoff_ms`; later waits use decorrelated jitter:
  /// uniform(initial, 3 * previous), capped at `max_backoff_ms`.
  double initial_backoff_ms = 1.0;
  double max_backoff_ms = 250.0;
  /// Seed for the jitter decisions; the wait sequence for a fixed seed is
  /// deterministic (see NextBackoffMs).
  std::uint64_t jitter_seed = 0;

  bool enabled() const { return max_attempts > 1; }
};

/// The next backoff wait in milliseconds, decorrelated-jitter style:
/// uniform(initial, 3 * prev_ms) capped at max, where "uniform" is decided
/// by a hash of (policy.jitter_seed, draw) — a pure function, so tests and
/// replays get the same wait sequence from the same seed. `prev_ms` is 0.0
/// before the first retry.
double NextBackoffMs(const RetryPolicy& policy, double prev_ms,
                     std::uint64_t draw);

/// True for failures a retry might fix: Internal (transient solver / fault
/// injection breakage) and Unavailable (open breaker). Interruption
/// statuses (deadline / cancel / budget) carry partial results and are
/// never retried; argument/capability errors would fail identically again.
bool IsRetryableFailure(const Status& status);

// --- retry budget ----------------------------------------------------------

/// Token-bucket bound on retries per label, so one failing tenant's retry
/// storm cannot multiply load for everyone. Each retry consumes one token;
/// tokens refill continuously at `tokens_per_second` up to `burst`.
struct RetryBudgetOptions {
  double tokens_per_second = 10.0;
  double burst = 20.0;
};

class RetryBudget {
 public:
  explicit RetryBudget(RetryBudgetOptions options = {});

  /// Consumes one token from `label`'s bucket (created full on first use)
  /// at time `now`; false = budget exhausted, the retry must not happen.
  bool TryAcquire(const std::string& label,
                  std::chrono::steady_clock::time_point now =
                      std::chrono::steady_clock::now());

  /// Tokens currently available to `label` (burst for unseen labels).
  double available(const std::string& label,
                   std::chrono::steady_clock::time_point now =
                       std::chrono::steady_clock::now()) const;

 private:
  struct Bucket {
    double tokens = 0.0;
    std::chrono::steady_clock::time_point refilled_at;
  };

  const RetryBudgetOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, Bucket> buckets_;
};

// --- circuit breaker -------------------------------------------------------

struct CircuitBreakerOptions {
  /// Disabled by default: Admit always passes, Record* are no-ops.
  bool enabled = false;
  /// Consecutive breaker-relevant failures (Internal / deadline timeout)
  /// that open the breaker.
  int failure_threshold = 5;
  /// Seconds the breaker stays open before letting probes through.
  double open_seconds = 1.0;
  /// Consecutive half-open successes that close the breaker again.
  int half_open_successes = 1;
};

/// Classic closed -> open -> half-open breaker guarding one solver.
///
///   closed:    all work admitted; `failure_threshold` consecutive
///              failures -> open.
///   open:      Admit() returns Unavailable naming the seconds until the
///              next probe; after `open_seconds` the next Admit moves to
///              half-open and passes.
///   half-open: work admitted as probes; `half_open_successes` consecutive
///              successes -> closed, any failure -> open again.
///
/// Transitions count into serve.breaker.{opened,half_opened,closed} and
/// open-state rejections into serve.breaker.rejected when a registry is
/// attached. The gauge serve.breaker.open tracks how many breakers sharing
/// `shared_open_count` (the bank's counter; the breaker's own when
/// standalone) are currently open — the SLO rule `breaker_open==0` reads
/// it. Transitions also land on the flight recorder as breaker/* instants.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };
  static const char* StateToString(State state);

  explicit CircuitBreaker(CircuitBreakerOptions options,
                          obs::MetricRegistry* metrics = nullptr,
                          std::atomic<long>* shared_open_count = nullptr);

  /// OK to run now, or Unavailable ("retry after N.NNNs") while open.
  Status Admit(std::chrono::steady_clock::time_point now =
                   std::chrono::steady_clock::now());

  void RecordSuccess();
  void RecordFailure(std::chrono::steady_clock::time_point now =
                         std::chrono::steady_clock::now());

  State state() const;

 private:
  void OpenLocked(std::chrono::steady_clock::time_point now);
  /// Flip this breaker's membership in the shared open count and republish
  /// the serve.breaker.open gauge. Callers hold mu_.
  void SetOpenCountedLocked(bool open);

  const CircuitBreakerOptions options_;
  obs::MetricRegistry* const metrics_;
  std::atomic<long> own_open_count_{0};  // used when no shared counter
  std::atomic<long>* const open_count_;

  mutable std::mutex mu_;
  State state_ = State::kClosed;
  bool counted_open_ = false;  // this breaker's +1 in *open_count_
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  std::chrono::steady_clock::time_point opened_at_{};
};

/// Lazily created breaker per canonical solver name, shared scheduler-wide
/// so every job against a failing solver sees the same state. References
/// stay valid for the bank's lifetime.
class BreakerBank {
 public:
  BreakerBank(CircuitBreakerOptions options,
              obs::MetricRegistry* metrics = nullptr);

  CircuitBreaker& ForSolver(const std::string& canonical_name);

 private:
  const CircuitBreakerOptions options_;
  obs::MetricRegistry* const metrics_;
  std::atomic<long> open_count_{0};  // shared by every breaker in the bank
  std::mutex mu_;
  std::map<std::string, std::unique_ptr<CircuitBreaker>> breakers_;
};

// --- degradation -----------------------------------------------------------

/// Maps a solver onto the next-cheaper registered solver to substitute when
/// the requested one is unavailable (open breaker) or the queue is under
/// pressure. Rungs chain: exact -> cwsc -> greedy-wsc, so a walk from
/// "exact" can degrade twice if both upper rungs are refused. Empty by
/// default — no substitution ever happens unless a ladder is configured.
class DegradationLadder {
 public:
  DegradationLadder() = default;

  /// The stock ladder over built-in solvers: expensive searchers fall back
  /// to the paper's CWSC greedy, which falls back to the cheapest baseline.
  static DegradationLadder Default();

  DegradationLadder& AddRung(std::string from, std::string to);

  /// The configured fallback for `canonical_name`, or nullptr.
  const std::string* FallbackFor(const std::string& canonical_name) const;

  bool empty() const { return rungs_.empty(); }

 private:
  std::map<std::string, std::string> rungs_;
};

// --- aggregate -------------------------------------------------------------

/// Everything the scheduler's recovery machinery is configured by. The
/// default value is inert (see file comment): no retries, no breaker, no
/// ladder, no watchdog — bit-identical serving to a scheduler without it.
struct ResilienceOptions {
  RetryPolicy retry;
  RetryBudgetOptions retry_budget;
  CircuitBreakerOptions breaker;
  DegradationLadder ladder;

  /// Substitute down the ladder when in-flight jobs reach
  /// `pressure_fraction` of max_queue_depth (needs a non-empty ladder and a
  /// bounded queue).
  bool degrade_on_pressure = false;
  double pressure_fraction = 0.8;

  /// Background watchdog thread: trips RunContexts of jobs past
  /// deadline + grace, and re-dispatches pool tasks for queue entries that
  /// stale out (the recovery for injected pool task loss — without it, a
  /// lost task means a future that never resolves).
  bool watchdog = false;
  double watchdog_interval_seconds = 0.05;
  double watchdog_grace_seconds = 0.25;
  /// A queued job older than this with no worker having claimed it gets a
  /// fresh pool task submitted on its behalf.
  double watchdog_stale_seconds = 0.25;
};

}  // namespace serve
}  // namespace scwsc

#endif  // SCWSC_SERVE_RESILIENCE_H_
