#include "src/serve/resilience.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "src/obs/recorder.h"

namespace scwsc {
namespace serve {
namespace {

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double SecondsBetween(std::chrono::steady_clock::time_point a,
                      std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

// --- retries ---------------------------------------------------------------

double NextBackoffMs(const RetryPolicy& policy, double prev_ms,
                     std::uint64_t draw) {
  const double lo = std::max(policy.initial_backoff_ms, 0.0);
  const double hi = std::max(lo, 3.0 * prev_ms);
  // hash -> [0, 1): 53 mantissa bits of the mixed draw.
  const double unit =
      static_cast<double>(SplitMix64(policy.jitter_seed ^ draw) >> 11) *
      (1.0 / 9007199254740992.0 /* 2^53 */);
  const double wait = lo + unit * (hi - lo);
  return std::min(wait, std::max(policy.max_backoff_ms, 0.0));
}

bool IsRetryableFailure(const Status& status) {
  if (status.ok()) return false;
  return status.code() == StatusCode::kInternal || status.IsUnavailable();
}

// --- retry budget ----------------------------------------------------------

RetryBudget::RetryBudget(RetryBudgetOptions options) : options_(options) {}

bool RetryBudget::TryAcquire(const std::string& label,
                             std::chrono::steady_clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = buckets_.try_emplace(label);
  Bucket& bucket = it->second;
  if (inserted) {
    bucket.tokens = options_.burst;  // new labels start with a full bucket
    bucket.refilled_at = now;
  } else {
    const double elapsed = SecondsBetween(bucket.refilled_at, now);
    if (elapsed > 0.0) {
      bucket.tokens = std::min(options_.burst,
                               bucket.tokens +
                                   elapsed * options_.tokens_per_second);
      bucket.refilled_at = now;
    }
  }
  if (bucket.tokens < 1.0) return false;
  bucket.tokens -= 1.0;
  return true;
}

double RetryBudget::available(const std::string& label,
                              std::chrono::steady_clock::time_point now) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buckets_.find(label);
  if (it == buckets_.end()) return options_.burst;
  const double elapsed = SecondsBetween(it->second.refilled_at, now);
  return std::min(options_.burst,
                  it->second.tokens +
                      std::max(elapsed, 0.0) * options_.tokens_per_second);
}

// --- circuit breaker -------------------------------------------------------

const char* CircuitBreaker::StateToString(State state) {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options,
                               obs::MetricRegistry* metrics,
                               std::atomic<long>* shared_open_count)
    : options_(options),
      metrics_(metrics),
      open_count_(shared_open_count != nullptr ? shared_open_count
                                               : &own_open_count_) {}

void CircuitBreaker::SetOpenCountedLocked(bool open) {
  if (open == counted_open_) return;
  counted_open_ = open;
  const long count = open ? open_count_->fetch_add(1) + 1
                          : open_count_->fetch_sub(1) - 1;
  if (metrics_ != nullptr) {
    metrics_->gauge("serve.breaker.open").Set(static_cast<double>(count));
  }
}

void CircuitBreaker::OpenLocked(std::chrono::steady_clock::time_point now) {
  state_ = State::kOpen;
  opened_at_ = now;
  consecutive_failures_ = 0;
  half_open_successes_ = 0;
  SetOpenCountedLocked(true);
  if (metrics_ != nullptr) {
    metrics_->counter("serve.breaker.opened").Increment();
  }
  obs::FlightRecorder::Global().RecordInstant("breaker/opened");
}

Status CircuitBreaker::Admit(std::chrono::steady_clock::time_point now) {
  if (!options_.enabled) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != State::kOpen) return Status::OK();
  const double waited = SecondsBetween(opened_at_, now);
  if (waited < options_.open_seconds) {
    if (metrics_ != nullptr) {
      metrics_->counter("serve.breaker.rejected").Increment();
    }
    const double retry_after = options_.open_seconds - waited;
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.3f", retry_after);
    // The hint carries the same retry-after in machine-readable form, so
    // wire frontends fill the error envelope's retry_after_ms without
    // parsing the message.
    return Status::Unavailable("circuit breaker is open; retry after " +
                               std::string(buffer) + "s")
        .WithPayload(RetryAfterHint{retry_after * 1000.0});
  }
  state_ = State::kHalfOpen;
  half_open_successes_ = 0;
  SetOpenCountedLocked(false);
  if (metrics_ != nullptr) {
    metrics_->counter("serve.breaker.half_opened").Increment();
  }
  obs::FlightRecorder::Global().RecordInstant("breaker/half_open");
  return Status::OK();
}

void CircuitBreaker::RecordSuccess() {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen) {
    if (++half_open_successes_ >= options_.half_open_successes) {
      state_ = State::kClosed;
      half_open_successes_ = 0;
      if (metrics_ != nullptr) {
        metrics_->counter("serve.breaker.closed").Increment();
      }
      obs::FlightRecorder::Global().RecordInstant("breaker/closed");
    }
  }
}

void CircuitBreaker::RecordFailure(std::chrono::steady_clock::time_point now) {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen) {
    OpenLocked(now);  // a failed probe re-opens immediately
    return;
  }
  if (state_ == State::kClosed &&
      ++consecutive_failures_ >= options_.failure_threshold) {
    OpenLocked(now);
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

BreakerBank::BreakerBank(CircuitBreakerOptions options,
                         obs::MetricRegistry* metrics)
    : options_(options), metrics_(metrics) {}

CircuitBreaker& BreakerBank::ForSolver(const std::string& canonical_name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = breakers_.find(canonical_name);
  if (it == breakers_.end()) {
    it = breakers_
             .emplace(canonical_name,
                      std::make_unique<CircuitBreaker>(options_, metrics_,
                                                       &open_count_))
             .first;
  }
  return *it->second;
}

// --- degradation -----------------------------------------------------------

DegradationLadder DegradationLadder::Default() {
  DegradationLadder ladder;
  // Expensive searchers step down to the paper's greedy CWSC; the greedy
  // families step down to the cheapest registered baseline. Names are the
  // canonical registry spellings.
  ladder.AddRung("exact", "cwsc");
  ladder.AddRung("lp-rounding", "cwsc");
  ladder.AddRung("opt-cwsc", "cwsc");
  ladder.AddRung("opt-cmc", "cmc");
  ladder.AddRung("hcwsc", "cwsc");
  ladder.AddRung("hcmc", "cmc");
  ladder.AddRung("cwsc-literal", "cwsc");
  ladder.AddRung("cmc-literal", "cmc");
  ladder.AddRung("cwsc", "greedy-wsc");
  ladder.AddRung("cmc", "greedy-max-coverage");
  return ladder;
}

DegradationLadder& DegradationLadder::AddRung(std::string from,
                                              std::string to) {
  rungs_[std::move(from)] = std::move(to);
  return *this;
}

const std::string* DegradationLadder::FallbackFor(
    const std::string& canonical_name) const {
  auto it = rungs_.find(canonical_name);
  return it == rungs_.end() ? nullptr : &it->second;
}

}  // namespace serve
}  // namespace scwsc
