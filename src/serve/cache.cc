#include "src/serve/cache.h"

#include <cstring>
#include <tuple>
#include <utility>

#include "src/common/fault.h"

namespace scwsc {
namespace serve {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void HashBytes(const void* data, std::size_t len, std::uint64_t& h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void HashU64(std::uint64_t v, std::uint64_t& h) { HashBytes(&v, sizeof(v), h); }

void HashDouble(double v, std::uint64_t& h) {
  std::uint64_t bits;  // bit pattern, so the hash is exact, not rounded
  std::memcpy(&bits, &v, sizeof(bits));
  HashU64(bits, h);
}

void HashString(const std::string& s, std::uint64_t& h) {
  HashU64(s.size(), h);
  HashBytes(s.data(), s.size(), h);
}

void HashTable(const Table& table, std::uint64_t& h) {
  HashU64(table.num_rows(), h);
  HashU64(table.num_attributes(), h);
  for (std::size_t attr = 0; attr < table.num_attributes(); ++attr) {
    HashString(table.schema().attribute_name(attr), h);
    const Dictionary& dict = table.dictionary(attr);
    HashU64(dict.size(), h);
    for (ValueId v = 0; v < dict.size(); ++v) HashString(dict.Name(v), h);
    const std::vector<ValueId>& column = table.column(attr);
    HashBytes(column.data(), column.size() * sizeof(ValueId), h);
  }
  if (table.has_measure()) {
    const std::vector<double>& m = table.measures();
    HashBytes(m.data(), m.size() * sizeof(double), h);
  }
}

void HashSetSystem(const SetSystem& system, std::uint64_t& h) {
  HashU64(system.num_elements(), h);
  HashU64(system.num_sets(), h);
  for (SetId id = 0; id < system.num_sets(); ++id) {
    const WeightedSet& s = system.set(id);
    HashU64(s.elements.size(), h);
    HashBytes(s.elements.data(), s.elements.size() * sizeof(ElementId), h);
    HashDouble(s.cost, h);
    HashString(s.label, h);
  }
}

}  // namespace

std::uint64_t ContentHash(const api::InstanceSnapshot& instance) {
  std::uint64_t h = kFnvOffset;
  if (instance.has_table()) {
    HashU64(1, h);  // domain-separate the two snapshot shapes
    HashTable(instance.table(), h);
    HashU64(static_cast<std::uint64_t>(instance.cost_fn().kind()), h);
    HashDouble(instance.cost_fn().p(), h);
    HashU64(instance.has_hierarchy() ? 1 : 0, h);
  } else {
    HashU64(2, h);
    // FromSetSystem snapshots always have their view materialized.
    auto system = instance.set_system();
    if (system.ok()) HashSetSystem(**system, h);
  }
  return h;
}

std::size_t ApproxSnapshotBytes(const api::InstanceSnapshot& instance) {
  std::size_t bytes = sizeof(api::InstanceSnapshot);
  if (instance.has_table()) {
    const Table& table = instance.table();
    bytes += table.num_rows() * table.num_attributes() * sizeof(ValueId);
    if (table.has_measure()) bytes += table.num_rows() * sizeof(double);
    return bytes;
  }
  auto system = instance.set_system();
  if (!system.ok()) return bytes;
  for (SetId id = 0; id < (*system)->num_sets(); ++id) {
    bytes += sizeof(WeightedSet) +
             (*system)->set(id).elements.size() * sizeof(ElementId);
  }
  return bytes;
}

// --- SnapshotCache ---------------------------------------------------------

SnapshotCache::SnapshotCache(std::size_t capacity_bytes,
                             obs::MetricRegistry* metrics)
    : capacity_bytes_(capacity_bytes), metrics_(metrics) {}

api::InstancePtr SnapshotCache::Lookup(std::uint64_t hash) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(hash);
  if (it == index_.end()) {
    if (metrics_ != nullptr) {
      metrics_->counter("serve.snapshot_cache.misses").Increment();
    }
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  if (metrics_ != nullptr) {
    metrics_->counter("serve.snapshot_cache.hits").Increment();
  }
  return it->second->instance;
}

Status SnapshotCache::Insert(std::uint64_t hash, api::InstancePtr instance) {
  if (instance == nullptr) {
    return Status::InvalidArgument("snapshot cache: null instance");
  }
  const std::size_t bytes = ApproxSnapshotBytes(*instance);
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_bytes_ > 0 && bytes > capacity_bytes_) {
    // Admitting this entry could only end with every other resident entry
    // evicted and the cache still over budget — reject it instead; the
    // caller's InstancePtr keeps working uncached.
    if (metrics_ != nullptr) {
      metrics_->counter("serve.snapshot_cache.oversized").Increment();
    }
    return Status::ResourceExhausted(
        "snapshot cache: entry of " + std::to_string(bytes) +
        " bytes exceeds the whole cache budget of " +
        std::to_string(capacity_bytes_) + " bytes; not cached");
  }
  auto it = index_.find(hash);
  if (it != index_.end()) {
    resident_bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Entry{hash, std::move(instance), bytes});
  index_[hash] = lru_.begin();
  resident_bytes_ += bytes;
  EvictOverBudgetLocked();
  return Status::OK();
}

void SnapshotCache::EvictOverBudgetLocked() {
  // Never evict the entry just inserted, even when it alone exceeds the
  // budget: a cache that cannot hold its newest snapshot degrades to a
  // rebuild-per-job serve loop.
  while (resident_bytes_ > capacity_bytes_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    resident_bytes_ -= victim.bytes;
    index_.erase(victim.hash);
    lru_.pop_back();
    if (metrics_ != nullptr) {
      metrics_->counter("serve.snapshot_cache.evictions").Increment();
    }
  }
}

std::size_t SnapshotCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::size_t SnapshotCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

// --- ResultCache -----------------------------------------------------------

bool ResultKey::operator<(const ResultKey& other) const {
  return std::tie(snapshot_hash, solver, k, coverage_fraction, options) <
         std::tie(other.snapshot_hash, other.solver, other.k,
                  other.coverage_fraction, other.options);
}

ResultKey MakeResultKey(std::uint64_t snapshot_hash, const std::string& solver,
                        const api::SolveRequest& request) {
  ResultKey key;
  key.snapshot_hash = snapshot_hash;
  key.solver = solver;
  key.k = request.k;
  key.coverage_fraction = request.coverage_fraction;
  key.options = request.options.CanonicalString();
  return key;
}

std::uint64_t ResultChecksum(const api::SolveResult& result) {
  std::uint64_t h = kFnvOffset;
  HashU64(result.solution.sets.size(), h);
  HashBytes(result.solution.sets.data(),
            result.solution.sets.size() * sizeof(SetId), h);
  HashDouble(result.solution.total_cost, h);
  HashU64(result.solution.covered, h);
  HashU64(result.labels.size(), h);
  for (const std::string& label : result.labels) HashString(label, h);
  HashU64(result.patterns.size(), h);
  HashDouble(result.total_cost, h);
  HashU64(result.covered, h);
  HashU64(result.audit.num_sets, h);
  HashDouble(result.audit.total_cost, h);
  HashU64(result.audit.covered, h);
  HashU64(result.audit.bookkeeping_consistent ? 1 : 0, h);
  HashU64(result.contract.max_sets, h);
  HashU64(result.contract.coverage_target, h);
  HashDouble(result.seconds, h);
  return h;
}

ResultCache::ResultCache(std::size_t capacity_entries,
                         obs::MetricRegistry* metrics)
    : capacity_entries_(capacity_entries), metrics_(metrics) {}

std::optional<api::SolveResult> ResultCache::Lookup(const ResultKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    if (metrics_ != nullptr) {
      metrics_->counter("serve.result_cache.misses").Increment();
    }
    return std::nullopt;
  }
  if (ResultChecksum(it->second->result) != it->second->checksum) {
    // Quarantine: never serve a result whose bytes changed since insert.
    lru_.erase(it->second);
    index_.erase(it);
    if (metrics_ != nullptr) {
      metrics_->counter("serve.result_cache.quarantined").Increment();
      metrics_->counter("serve.result_cache.misses").Increment();
    }
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  if (metrics_ != nullptr) {
    metrics_->counter("serve.result_cache.hits").Increment();
  }
  return it->second->result;
}

void ResultCache::Insert(const ResultKey& key, api::SolveResult result) {
  // Checksum the clean result first; an injected corruption below then
  // guarantees a mismatch the next Lookup quarantines.
  const std::uint64_t checksum = ResultChecksum(result);
  if (FaultFires(FaultPoint::kResultCacheCorrupt)) {
    std::uint64_t bits;
    std::memcpy(&bits, &result.total_cost, sizeof(bits));
    bits ^= 0x0008000000000001ULL;  // flip mantissa bits: silent data damage
    std::memcpy(&result.total_cost, &bits, sizeof(bits));
    result.covered += 1;
    if (metrics_ != nullptr) {
      metrics_->counter("serve.result_cache.corrupted").Increment();
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Entry{key, std::move(result), checksum});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_entries_ && lru_.size() > 1) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    if (metrics_ != nullptr) {
      metrics_->counter("serve.result_cache.evictions").Increment();
    }
  }
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace serve
}  // namespace scwsc
