#include "src/serve/cache.h"

#include <cstring>
#include <tuple>
#include <utility>

#include "src/common/fault.h"
#include "src/common/hash.h"

namespace scwsc {
namespace serve {

std::uint64_t ContentHash(const api::InstanceSnapshot& instance) {
  // Snapshots stamp their content hash (global metadata chained with the
  // shard plan and per-shard data hashes) at construction; the serve layer
  // just reads it.
  return instance.content_hash();
}

std::size_t ApproxSnapshotBytes(const api::InstanceSnapshot& instance) {
  std::size_t bytes = sizeof(api::InstanceSnapshot);
  if (instance.has_table()) {
    const Table& table = instance.table();
    bytes += table.num_rows() * table.num_attributes() * sizeof(ValueId);
    if (table.has_measure()) bytes += table.num_rows() * sizeof(double);
    return bytes;
  }
  auto system = instance.set_system();
  if (!system.ok()) return bytes;
  for (SetId id = 0; id < (*system)->num_sets(); ++id) {
    bytes += sizeof(WeightedSet) +
             (*system)->set(id).elements.size() * sizeof(ElementId);
  }
  return bytes;
}

// --- SnapshotCache ---------------------------------------------------------

SnapshotCache::SnapshotCache(std::size_t capacity_bytes,
                             obs::MetricRegistry* metrics)
    : capacity_bytes_(capacity_bytes), metrics_(metrics) {}

api::InstancePtr SnapshotCache::Lookup(std::uint64_t hash) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(hash);
  if (it == index_.end()) {
    if (metrics_ != nullptr) {
      metrics_->counter("serve.snapshot_cache.misses").Increment();
    }
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  if (metrics_ != nullptr) {
    metrics_->counter("serve.snapshot_cache.hits").Increment();
  }
  return it->second->instance;
}

Status SnapshotCache::Insert(std::uint64_t hash, api::InstancePtr instance) {
  if (instance == nullptr) {
    return Status::InvalidArgument("snapshot cache: null instance");
  }
  const std::size_t bytes = ApproxSnapshotBytes(*instance);
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_bytes_ > 0 && bytes > capacity_bytes_) {
    // Admitting this entry could only end with every other resident entry
    // evicted and the cache still over budget — reject it instead; the
    // caller's InstancePtr keeps working uncached.
    if (metrics_ != nullptr) {
      metrics_->counter("serve.snapshot_cache.oversized").Increment();
    }
    return Status::ResourceExhausted(
        "snapshot cache: entry of " + std::to_string(bytes) +
        " bytes exceeds the whole cache budget of " +
        std::to_string(capacity_bytes_) + " bytes; not cached");
  }
  auto it = index_.find(hash);
  if (it != index_.end()) {
    resident_bytes_ -= it->second->bytes;
    RemoveShardRefsLocked(it->second->shard_hashes);
    lru_.erase(it->second);
    index_.erase(it);
  }
  std::vector<std::uint64_t> shard_hashes = instance->shard_hashes();
  if (metrics_ != nullptr) {
    // Shards whose data is already resident through other snapshots (the
    // replaced same-hash entry, if any, was unreferenced above): how much
    // of this snapshot the cache effectively already held.
    std::size_t overlap = 0;
    for (const std::uint64_t sh : shard_hashes) {
      if (shard_refs_.count(sh) != 0) ++overlap;
    }
    if (overlap != 0) {
      metrics_->counter("serve.snapshot_cache.shard_shared")
          .Increment(overlap);
    }
  }
  AddShardRefsLocked(shard_hashes);
  lru_.push_front(
      Entry{hash, std::move(instance), bytes, std::move(shard_hashes)});
  index_[hash] = lru_.begin();
  resident_bytes_ += bytes;
  EvictOverBudgetLocked();
  return Status::OK();
}

void SnapshotCache::EvictOverBudgetLocked() {
  // Never evict the entry just inserted, even when it alone exceeds the
  // budget: a cache that cannot hold its newest snapshot degrades to a
  // rebuild-per-job serve loop.
  while (resident_bytes_ > capacity_bytes_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    resident_bytes_ -= victim.bytes;
    RemoveShardRefsLocked(victim.shard_hashes);
    index_.erase(victim.hash);
    lru_.pop_back();
    if (metrics_ != nullptr) {
      metrics_->counter("serve.snapshot_cache.evictions").Increment();
    }
  }
}

void SnapshotCache::AddShardRefsLocked(
    const std::vector<std::uint64_t>& hashes) {
  for (const std::uint64_t h : hashes) ++shard_refs_[h];
}

void SnapshotCache::RemoveShardRefsLocked(
    const std::vector<std::uint64_t>& hashes) {
  for (const std::uint64_t h : hashes) {
    auto it = shard_refs_.find(h);
    if (it == shard_refs_.end()) continue;
    if (--it->second == 0) shard_refs_.erase(it);
  }
}

std::size_t SnapshotCache::ResidentShardOverlap(
    const api::InstanceSnapshot& instance) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t overlap = 0;
  for (const std::uint64_t h : instance.shard_hashes()) {
    if (shard_refs_.count(h) != 0) ++overlap;
  }
  return overlap;
}

std::size_t SnapshotCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::size_t SnapshotCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

// --- ResultCache -----------------------------------------------------------

bool ResultKey::operator<(const ResultKey& other) const {
  return std::tie(snapshot_hash, solver, k, coverage_fraction, options) <
         std::tie(other.snapshot_hash, other.solver, other.k,
                  other.coverage_fraction, other.options);
}

ResultKey MakeResultKey(std::uint64_t snapshot_hash, const std::string& solver,
                        const api::SolveRequest& request) {
  ResultKey key;
  key.snapshot_hash = snapshot_hash;
  key.solver = solver;
  key.k = request.k;
  key.coverage_fraction = request.coverage_fraction;
  key.options = request.options.CanonicalString();
  return key;
}

std::uint64_t ResultChecksum(const api::SolveResult& result) {
  std::uint64_t h = kFnv64Offset;
  HashU64(result.solution.sets.size(), h);
  HashBytes(result.solution.sets.data(),
            result.solution.sets.size() * sizeof(SetId), h);
  HashDouble(result.solution.total_cost, h);
  HashU64(result.solution.covered, h);
  HashU64(result.labels.size(), h);
  for (const std::string& label : result.labels) HashString(label, h);
  HashU64(result.patterns.size(), h);
  HashDouble(result.total_cost, h);
  HashU64(result.covered, h);
  HashU64(result.audit.num_sets, h);
  HashDouble(result.audit.total_cost, h);
  HashU64(result.audit.covered, h);
  HashU64(result.audit.bookkeeping_consistent ? 1 : 0, h);
  HashU64(result.contract.max_sets, h);
  HashU64(result.contract.coverage_target, h);
  HashDouble(result.seconds, h);
  return h;
}

ResultCache::ResultCache(std::size_t capacity_entries,
                         obs::MetricRegistry* metrics)
    : capacity_entries_(capacity_entries), metrics_(metrics) {}

std::optional<api::SolveResult> ResultCache::Lookup(const ResultKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    if (metrics_ != nullptr) {
      metrics_->counter("serve.result_cache.misses").Increment();
    }
    return std::nullopt;
  }
  if (ResultChecksum(it->second->result) != it->second->checksum) {
    // Quarantine: never serve a result whose bytes changed since insert.
    lru_.erase(it->second);
    index_.erase(it);
    if (metrics_ != nullptr) {
      metrics_->counter("serve.result_cache.quarantined").Increment();
      metrics_->counter("serve.result_cache.misses").Increment();
    }
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  if (metrics_ != nullptr) {
    metrics_->counter("serve.result_cache.hits").Increment();
  }
  return it->second->result;
}

void ResultCache::Insert(const ResultKey& key, api::SolveResult result) {
  // Checksum the clean result first; an injected corruption below then
  // guarantees a mismatch the next Lookup quarantines.
  const std::uint64_t checksum = ResultChecksum(result);
  if (FaultFires(FaultPoint::kResultCacheCorrupt)) {
    std::uint64_t bits;
    std::memcpy(&bits, &result.total_cost, sizeof(bits));
    bits ^= 0x0008000000000001ULL;  // flip mantissa bits: silent data damage
    std::memcpy(&result.total_cost, &bits, sizeof(bits));
    result.covered += 1;
    if (metrics_ != nullptr) {
      metrics_->counter("serve.result_cache.corrupted").Increment();
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Entry{key, std::move(result), checksum});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_entries_ && lru_.size() > 1) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    if (metrics_ != nullptr) {
      metrics_->counter("serve.result_cache.evictions").Increment();
    }
  }
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace serve
}  // namespace scwsc
