// TelemetryPump: the background thread that turns the MetricRegistry's
// point-in-time state into a continuous record. Each tick it (1) invokes an
// optional sampler so the owner can refresh gauges (the scheduler samples
// queue depth and per-priority wait), (2) snapshots counters, gauges and
// sketches, diffing counters against the previous tick, (3) merges sketch
// '#'-families into aggregate quantiles, (4) evaluates the configured SLO
// rules (serve/slo.h) — a violation bumps `serve.slo.violations`, logs a
// warning and dumps the flight recorder — and (5) appends one JSON object
// to the JSONL time series and rewrites the Prometheus text exposition.
//
// The pump is owned by SolveScheduler when SchedulerOptions::telemetry is
// configured; TickNow() lets tests and the batch runner force a final tick
// so reports observe the last interval.

#ifndef SCWSC_SERVE_TELEMETRY_H_
#define SCWSC_SERVE_TELEMETRY_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/result.h"
#include "src/obs/metrics.h"
#include "src/serve/slo.h"

namespace scwsc {
namespace serve {

struct TelemetryOptions {
  /// Seconds between ticks; <= 0 disables the background thread (TickNow()
  /// still works).
  double interval_seconds = 1.0;
  /// One JSON object per tick appended here; empty = no JSONL output.
  std::string jsonl_path;
  /// Prometheus text exposition rewritten each tick; empty = no exposition.
  /// The CLI derives this as `<jsonl_path>.prom`.
  std::string prom_path;
  /// SLO rules evaluated each tick (parse with ParseSloRules).
  std::vector<SloRule> slo_rules;
  /// Flight-recorder dump target on an SLO violation. Empty derives
  /// `<jsonl_path>.slo_trace.json` (or "slo_trace.json" with no JSONL).
  std::string slo_dump_path;
  /// Seconds of recorder history each dump keeps (0 = recorder retention).
  double slo_dump_seconds = 0.0;
  /// At most this many dump files per pump; later violating ticks only
  /// count and log. Dump k > 1 is written to `<slo_dump_path>.<k>`.
  std::size_t max_slo_dumps = 4;

  bool configured() const {
    return !jsonl_path.empty() || !prom_path.empty() || !slo_rules.empty();
  }
};

class TelemetryPump {
 public:
  /// `registry` must outlive the pump. Starts the tick thread when
  /// options.interval_seconds > 0 and options.configured().
  TelemetryPump(obs::MetricRegistry* registry, TelemetryOptions options);
  ~TelemetryPump();
  TelemetryPump(const TelemetryPump&) = delete;
  TelemetryPump& operator=(const TelemetryPump&) = delete;

  /// Installs the pre-snapshot hook run at the start of every tick (the
  /// scheduler refreshes its queue gauges here). Safe to call while the
  /// tick thread runs.
  void SetTickSampler(std::function<void()> sampler);

  /// Stops the tick thread (idempotent) and runs one final tick so the
  /// last interval is recorded and its SLOs evaluated.
  void Stop();

  /// One synchronous tick; serialized against the background thread.
  void TickNow();

  std::uint64_t ticks() const;
  /// Total SLO rule violations observed (also the `serve.slo.violations`
  /// counter in the registry).
  std::uint64_t violations() const;
  /// Flight-recorder dump files written by violating ticks, in order.
  std::vector<std::string> dump_paths() const;
  /// First output error (JSONL append, exposition write, dump write), or
  /// OK. Output errors never stop the pump.
  Status last_error() const;

  const TelemetryOptions& options() const { return options_; }

 private:
  void Loop();
  void Tick();  // requires tick_mu_

  obs::MetricRegistry* const registry_;
  const TelemetryOptions options_;
  const std::chrono::steady_clock::time_point started_;

  mutable std::mutex tick_mu_;  // serializes ticks; guards everything below
  std::function<void()> sampler_;
  std::map<std::string, std::uint64_t> prev_counters_;
  std::uint64_t prev_completed_ = 0;
  std::uint64_t prev_failed_ = 0;
  std::uint64_t tick_count_ = 0;
  std::uint64_t violation_count_ = 0;
  std::vector<std::string> dump_paths_;
  Status error_ = Status::OK();

  std::mutex stop_mu_;  // guards stop_ for the cv; never nests tick_mu_
  std::condition_variable stop_cv_;
  bool stop_ = false;
  bool joined_ = false;
  std::thread thread_;
};

}  // namespace serve
}  // namespace scwsc

#endif  // SCWSC_SERVE_TELEMETRY_H_
