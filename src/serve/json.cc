#include "src/serve/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

namespace scwsc {
namespace serve {
namespace {

void AppendEscaped(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through
        }
    }
  }
  out += '"';
}

void AppendNumber(double n, std::string& out) {
  if (std::isfinite(n) && n == std::floor(n) && std::abs(n) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(n));
    out += buf;
    return;
  }
  if (!std::isfinite(n)) {  // JSON has no inf/nan; null is the lossless-ish out
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", n);
  out += buf;
}

void DumpTo(const JsonValue& v, std::string& out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      out += "null";
      return;
    case JsonValue::Kind::kBool:
      out += v.as_bool() ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber:
      AppendNumber(v.as_number(), out);
      return;
    case JsonValue::Kind::kString:
      AppendEscaped(v.as_string(), out);
      return;
    case JsonValue::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& item : v.as_array()) {
        if (!first) out += ',';
        first = false;
        DumpTo(item, out);
      }
      out += ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, item] : v.as_object()) {
        if (!first) out += ',';
        first = false;
        AppendEscaped(key, out);
        out += ':';
        DumpTo(item, out);
      }
      out += '}';
      return;
    }
  }
}

class Parser {
 public:
  Parser(const std::string& text, const JsonParseLimits& limits)
      : text_(text), limits_(limits) {}

  Result<JsonValue> Parse() {
    if (limits_.max_bytes > 0 && text_.size() > limits_.max_bytes) {
      return Status::InvalidArgument(
          "JSON input of " + std::to_string(text_.size()) +
          " bytes exceeds the limit of " + std::to_string(limits_.max_bytes) +
          " bytes");
    }
    SCWSC_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Error(std::string("expected '") + c + "'");
    }
    return Status::OK();
  }

  bool ConsumeWord(const char* word) {
    std::size_t len = 0;
    while (word[len] != '\0') ++len;
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      SCWSC_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue(std::move(s));
    }
    if (ConsumeWord("null")) return JsonValue();
    if (ConsumeWord("true")) return JsonValue(true);
    if (ConsumeWord("false")) return JsonValue(false);
    return ParseNumber();
  }

  /// One recursion level per open container; bounded so "[[[[..." is a
  /// typed error instead of a stack overflow.
  Status EnterContainer() {
    if (++depth_ > limits_.max_depth) {
      return Error("nesting deeper than " + std::to_string(limits_.max_depth) +
                   " levels");
    }
    return Status::OK();
  }

  Result<JsonValue> ParseObject() {
    SCWSC_RETURN_NOT_OK(Expect('{'));
    SCWSC_RETURN_NOT_OK(EnterContainer());
    JsonObject object;
    SkipWhitespace();
    if (Consume('}')) {
      --depth_;
      return JsonValue(std::move(object));
    }
    for (;;) {
      SkipWhitespace();
      SCWSC_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      SCWSC_RETURN_NOT_OK(Expect(':'));
      SCWSC_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      // Duplicate keys are ambiguous — last-wins would silently drop half
      // of a batch spec — so they are rejected outright.
      if (!object.emplace(std::move(key), std::move(value)).second) {
        return Error("duplicate object key");
      }
      SkipWhitespace();
      if (Consume(',')) continue;
      SCWSC_RETURN_NOT_OK(Expect('}'));
      --depth_;
      return JsonValue(std::move(object));
    }
  }

  Result<JsonValue> ParseArray() {
    SCWSC_RETURN_NOT_OK(Expect('['));
    SCWSC_RETURN_NOT_OK(EnterContainer());
    JsonArray array;
    SkipWhitespace();
    if (Consume(']')) {
      --depth_;
      return JsonValue(std::move(array));
    }
    for (;;) {
      SCWSC_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      SCWSC_RETURN_NOT_OK(Expect(']'));
      --depth_;
      return JsonValue(std::move(array));
    }
  }

  Result<std::string> ParseString() {
    SCWSC_RETURN_NOT_OK(Expect('"'));
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          if (code > 0x7F) {
            return Error("non-ASCII \\u escape unsupported (use raw UTF-8)");
          }
          out += static_cast<char>(code);
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const std::size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      return Error("malformed number '" + token + "'");
    }
    if (!std::isfinite(value)) {  // "1e999" overflows to inf; JSON has no inf
      return Error("number '" + token + "' is not finite");
    }
    return JsonValue(value);
  }

  const std::string& text_;
  const JsonParseLimits limits_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(*this, out);
  return out;
}

Result<JsonValue> ParseJson(const std::string& text,
                            const JsonParseLimits& limits) {
  return Parser(text, limits).Parse();
}

Result<JsonValue> ReadJsonFile(const std::string& path,
                               const JsonParseLimits& limits) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseJson(buffer.str(), limits);
}

Status WriteJsonFile(const JsonValue& value, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open '" + path + "' for writing");
  out << value.Dump() << '\n';
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::OK();
}

}  // namespace serve
}  // namespace scwsc
