// Socket front end for live serving: a single-threaded epoll loop speaking
// the versioned wire protocol (serve/wire.h) over persistent TCP
// connections, in front of the same SolveScheduler the batch path uses.
//
// Protocol: newline-delimited JSON, one request object per line, one
// response object per request (responses may arrive out of order — clients
// correlate by "id"). Request types:
//
//   {"version": 2, "id": "r1", "type": "ping"}
//   {"version": 2, "id": "r2", "type": "list_solvers"}
//   {"version": 2, "id": "r3", "type": "solve", "snapshot": "live",
//    "solver": "cwsc", "k": 5, "coverage": 0.5, "tenant": "acme", ...}
//   {"version": 2, "id": "r4", "type": "delta", "snapshot": "live",
//    "add_sets": [{"elements": [1, 2], "cost": 0.5, "label": "s9"}],
//    "remove_sets": [3]}
//
// "solve" resolves the named snapshot from the SnapshotStore, builds the
// job through the shared ParseJobObject (so CLI batch files and socket
// requests cannot drift), enqueues it, and answers when the future
// resolves — the loop keeps serving other connections meanwhile. "delta"
// applies a SnapshotDelta to the named head, publishes the child version,
// and inserts it into the scheduler's SnapshotCache so unchanged shards
// are recognized as shared (serve.snapshot_cache.shard_shared).
//
// Concurrency model: one epoll thread owns every connection; solves run on
// the scheduler's pool and come back as futures the loop polls between
// epoll waits. Sockets are non-blocking; response bytes that do not fit the
// kernel buffer wait for EPOLLOUT (backpressure, never a blocked loop).
// Stop() wakes the loop through an eventfd and joins.

#ifndef SCWSC_SERVE_SERVER_H_
#define SCWSC_SERVE_SERVER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/api/delta.h"
#include "src/api/instance.h"
#include "src/common/result.h"
#include "src/serve/cache.h"
#include "src/serve/scheduler.h"

namespace scwsc {
namespace serve {

/// Named snapshot heads, each the latest version of a live instance.
/// Put() registers (or replaces) a head; Apply() advances one by a delta,
/// atomically swapping the head to the child version. Readers always get
/// a consistent InstancePtr — in-flight solves keep the version they
/// resolved, exactly like the scheduler's caches.
class SnapshotStore {
 public:
  /// `cache` (optional) receives every published version keyed by content
  /// hash, which is what makes cross-version shard sharing observable
  /// (SnapshotCache::Insert counts serve.snapshot_cache.shard_shared).
  explicit SnapshotStore(SnapshotCache* cache = nullptr) : cache_(cache) {}

  /// Registers or replaces the head for `name`. InvalidArgument on a null
  /// snapshot or empty name.
  Status Put(const std::string& name, api::InstancePtr snapshot);

  /// The current head. NotFound when `name` was never Put.
  Result<api::InstancePtr> Get(const std::string& name) const;

  /// Applies `delta` to the current head of `name` and publishes the child
  /// as the new head. Errors from api::ApplyDelta pass through and leave
  /// the head unchanged.
  Result<api::AppliedDelta> Apply(const std::string& name,
                                  const api::SnapshotDelta& delta);

  /// Registered head names, sorted.
  std::vector<std::string> Names() const;

 private:
  SnapshotCache* const cache_;
  mutable std::mutex mu_;
  std::map<std::string, api::InstancePtr> heads_;
};

struct ServerOptions {
  /// Listen address; tests keep the loopback default.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral: the kernel picks, port() reports it after Start().
  int port = 0;
  /// Concurrent connections; accepts beyond this are closed immediately.
  std::size_t max_connections = 64;
  /// Longest accepted request line; a connection that exceeds it without
  /// a newline gets a typed error and is closed (a hostile peer cannot
  /// grow a buffer without bound).
  std::size_t max_request_bytes = 1 << 20;
};

/// The epoll front end. Construct over a scheduler and a store (both must
/// outlive the server), Start(), connect, speak the wire protocol.
class SolveServer {
 public:
  SolveServer(SolveScheduler* scheduler, SnapshotStore* store,
              ServerOptions options = {});

  SolveServer(const SolveServer&) = delete;
  SolveServer& operator=(const SolveServer&) = delete;

  /// Stops if still running.
  ~SolveServer();

  /// Binds, listens, and spawns the epoll thread. Unavailable when the
  /// socket cannot be bound, FailedPrecondition-free otherwise: calling
  /// Start() twice is InvalidArgument.
  Status Start();

  /// Wakes the loop, closes every connection, joins. Idempotent. Futures
  /// of solves already enqueued still complete inside the scheduler; their
  /// responses are dropped with the connections.
  void Stop();

  /// The bound port (the kernel-assigned one under port = 0), or 0 before
  /// Start().
  int port() const { return bound_port_; }

 private:
  struct Connection;

  void Loop();
  /// Parses and dispatches one request line; appends any immediate
  /// response to the connection's output buffer (solves append later,
  /// when their future resolves).
  void HandleLine(Connection& conn, const std::string& line);
  /// Moves resolved solve futures into response bytes. Returns true when
  /// any connection made progress (the loop then retries flushing).
  bool PumpPending();
  void FlushOutput(Connection& conn);
  void CloseConnection(int fd);

  SolveScheduler* const scheduler_;
  SnapshotStore* const store_;
  const ServerOptions options_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd Stop() writes to unblock epoll_wait
  int bound_port_ = 0;
  bool started_ = false;
  std::mutex stop_mu_;
  bool stopped_ = false;
  std::thread thread_;

  std::map<int, std::unique_ptr<Connection>> connections_;
};

}  // namespace serve
}  // namespace scwsc

#endif  // SCWSC_SERVE_SERVER_H_
