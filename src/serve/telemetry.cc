#include "src/serve/telemetry.h"

#include <cstdio>
#include <optional>
#include <utility>

#include "src/common/logging.h"
#include "src/obs/export.h"
#include "src/obs/json_util.h"
#include "src/obs/recorder.h"
#include "src/serve/json.h"

namespace scwsc {
namespace serve {

namespace {

// Counter families the SLO error-rate rule diffs, as recorded by the
// scheduler's completion path.
constexpr const char* kCompletedCounter = "serve.jobs.completed";
constexpr const char* kFailedCounter = "serve.jobs.failed";
// The per-solver latency sketch family the scheduler observes into; its
// merged aggregate feeds latency SLO rules.
constexpr const char* kLatencyFamily = "serve.latency_seconds";

std::string FamilyOf(const std::string& sketch_name) {
  const std::size_t hash = sketch_name.find('#');
  return hash == std::string::npos ? sketch_name : sketch_name.substr(0, hash);
}

JsonValue SketchToJson(const obs::QuantileSketch& sketch) {
  JsonObject o;
  o["count"] = JsonValue(static_cast<std::size_t>(sketch.count()));
  o["sum"] = JsonValue(sketch.sum());
  o["p50"] = JsonValue(sketch.Quantile(0.5));
  o["p90"] = JsonValue(sketch.Quantile(0.9));
  o["p99"] = JsonValue(sketch.Quantile(0.99));
  o["p999"] = JsonValue(sketch.Quantile(0.999));
  return JsonValue(std::move(o));
}

Status AppendLine(const std::string& path, const std::string& line) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open '" + path + "' for append");
  }
  const std::string body = line + "\n";
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != body.size() || !close_ok) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace

TelemetryPump::TelemetryPump(obs::MetricRegistry* registry,
                             TelemetryOptions options)
    : registry_(registry),
      options_(std::move(options)),
      started_(std::chrono::steady_clock::now()) {
  if (options_.interval_seconds > 0.0 && options_.configured()) {
    thread_ = std::thread([this] { Loop(); });
  }
}

TelemetryPump::~TelemetryPump() { Stop(); }

void TelemetryPump::SetTickSampler(std::function<void()> sampler) {
  std::lock_guard<std::mutex> lock(tick_mu_);
  sampler_ = std::move(sampler);
}

void TelemetryPump::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (joined_) return;
    stop_ = true;
    joined_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  TickNow();  // record the final partial interval
}

void TelemetryPump::TickNow() {
  std::lock_guard<std::mutex> lock(tick_mu_);
  Tick();
}

std::uint64_t TelemetryPump::ticks() const {
  std::lock_guard<std::mutex> lock(tick_mu_);
  return tick_count_;
}

std::uint64_t TelemetryPump::violations() const {
  std::lock_guard<std::mutex> lock(tick_mu_);
  return violation_count_;
}

std::vector<std::string> TelemetryPump::dump_paths() const {
  std::lock_guard<std::mutex> lock(tick_mu_);
  return dump_paths_;
}

Status TelemetryPump::last_error() const {
  std::lock_guard<std::mutex> lock(tick_mu_);
  return error_;
}

void TelemetryPump::Loop() {
  const auto interval =
      std::chrono::duration<double>(options_.interval_seconds);
  std::unique_lock<std::mutex> lock(stop_mu_);
  for (;;) {
    stop_cv_.wait_for(lock, interval, [this] { return stop_; });
    if (stop_) return;
    lock.unlock();
    TickNow();
    lock.lock();
  }
}

void TelemetryPump::Tick() {
  if (sampler_) sampler_();
  // The suppressed-warning count is process state, not a registry counter;
  // mirror it as a gauge so the JSONL and exposition carry it.
  registry_->gauge("log.suppressed")
      .Set(static_cast<double>(LogSuppressedCount()));

  const auto counters = registry_->CounterValues();
  const auto gauges = registry_->GaugeValues();
  const auto sketches = registry_->SketchValues();

  // Merge '#'-families; a plain name is its own single-member family.
  std::map<std::string, obs::QuantileSketch> families;
  for (const auto& [name, sketch] : sketches) {
    const std::string family = FamilyOf(name);
    auto it = families.find(family);
    if (it == families.end()) {
      families.emplace(family, sketch);
    } else {
      // Members of one family share a relative error by construction; a
      // mismatched member is skipped rather than poisoning the aggregate.
      const Status merged = it->second.Merge(sketch);
      (void)merged;
    }
  }

  // Counter deltas vs the previous tick (first tick diffs against zero).
  std::map<std::string, std::uint64_t> deltas;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  for (const auto& [name, value] : counters) {
    const auto prev = prev_counters_.find(name);
    const std::uint64_t before =
        prev == prev_counters_.end() ? 0 : prev->second;
    if (value > before) deltas[name] = value - before;
    prev_counters_[name] = value;
    if (name == kCompletedCounter) completed = value;
    if (name == kFailedCounter) failed = value;
  }

  // SLO evaluation over this tick's evidence.
  SloSample sample;
  const auto family_it = families.find(kLatencyFamily);
  if (family_it != families.end()) sample.latency = &family_it->second;
  sample.completed_delta =
      completed >= prev_completed_ ? completed - prev_completed_ : 0;
  sample.failed_delta = failed >= prev_failed_ ? failed - prev_failed_ : 0;
  prev_completed_ = completed;
  prev_failed_ = failed;
  sample.queue_depth = registry_->GaugeValue("serve.queue.depth");
  sample.breaker_open = registry_->GaugeValue("serve.breaker.open");

  // Tenant-scoped rules read that tenant's own sketch member and completion
  // deltas; queue depth and breaker state stay global (they are shared
  // resources, not per-tenant ones). Aggregate rules see the merged sample.
  std::vector<SloRule> aggregate_rules;
  std::map<std::string, std::vector<SloRule>> tenant_rules;
  for (const SloRule& rule : options_.slo_rules) {
    if (rule.tenant.empty()) {
      aggregate_rules.push_back(rule);
    } else {
      tenant_rules[rule.tenant].push_back(rule);
    }
  }
  std::vector<SloViolation> violated = EvaluateSlos(aggregate_rules, sample);
  for (const auto& [tenant, rules] : tenant_rules) {
    SloSample tenant_sample;
    const std::string member = "serve.tenant.latency_seconds#" + tenant;
    for (const auto& [name, sketch] : sketches) {
      if (name == member) {
        tenant_sample.latency = &sketch;
        break;
      }
    }
    const auto delta_of = [&deltas](const std::string& name) {
      const auto it = deltas.find(name);
      return it == deltas.end() ? std::uint64_t{0} : it->second;
    };
    tenant_sample.completed_delta =
        delta_of("serve.tenant." + tenant + ".completed");
    tenant_sample.failed_delta =
        delta_of("serve.tenant." + tenant + ".failed");
    tenant_sample.queue_depth = sample.queue_depth;
    tenant_sample.breaker_open = sample.breaker_open;
    for (SloViolation& v : EvaluateSlos(rules, tenant_sample)) {
      violated.push_back(std::move(v));
    }
  }

  if (!violated.empty()) {
    registry_->counter("serve.slo.violations").Increment(violated.size());
    violation_count_ += violated.size();
    for (const SloViolation& v : violated) {
      SCWSC_LOG_WARN("slo violation: %s (observed %.6g)",
                     v.rule.text.c_str(), v.observed);
    }
    if (dump_paths_.size() < options_.max_slo_dumps) {
      std::string base = options_.slo_dump_path;
      if (base.empty()) {
        base = options_.jsonl_path.empty()
                   ? std::string("slo_trace.json")
                   : options_.jsonl_path + ".slo_trace.json";
      }
      std::string path = base;
      if (!dump_paths_.empty()) {
        path += "." + std::to_string(dump_paths_.size() + 1);
      }
      const Status dumped = obs::FlightRecorder::Global().DumpToFile(
          path, options_.slo_dump_seconds);
      if (dumped.ok()) {
        dump_paths_.push_back(path);
        SCWSC_LOG_WARN("slo violation: flight recorder dumped to %s",
                       path.c_str());
      } else if (error_.ok()) {
        error_ = dumped;
      }
    }
  }

  ++tick_count_;

  if (!options_.jsonl_path.empty()) {
    JsonObject line;
    line["tick"] = JsonValue(static_cast<std::size_t>(tick_count_));
    line["elapsed_seconds"] = JsonValue(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started_)
            .count());
    JsonObject counters_obj;
    for (const auto& [name, value] : counters) {
      counters_obj[name] = JsonValue(static_cast<std::size_t>(value));
    }
    line["counters"] = JsonValue(std::move(counters_obj));
    JsonObject deltas_obj;
    for (const auto& [name, value] : deltas) {
      deltas_obj[name] = JsonValue(static_cast<std::size_t>(value));
    }
    line["deltas"] = JsonValue(std::move(deltas_obj));
    JsonObject gauges_obj;
    for (const auto& [name, value] : gauges) {
      gauges_obj[name] = JsonValue(value);
    }
    line["gauges"] = JsonValue(std::move(gauges_obj));
    JsonObject quantiles;
    for (const auto& [name, sketch] : sketches) {
      if (FamilyOf(name) != name) quantiles[name] = SketchToJson(sketch);
    }
    for (const auto& [family, merged] : families) {
      quantiles[family] = SketchToJson(merged);
    }
    line["quantiles"] = JsonValue(std::move(quantiles));
    JsonObject slo;
    slo["violations_total"] =
        JsonValue(static_cast<std::size_t>(violation_count_));
    JsonArray violated_arr;
    for (const SloViolation& v : violated) {
      JsonObject vo;
      vo["rule"] = JsonValue(v.rule.text);
      vo["observed"] = JsonValue(v.observed);
      violated_arr.push_back(JsonValue(std::move(vo)));
    }
    slo["violated"] = JsonValue(std::move(violated_arr));
    line["slo"] = JsonValue(std::move(slo));

    const Status appended =
        AppendLine(options_.jsonl_path, JsonValue(std::move(line)).Dump());
    if (!appended.ok() && error_.ok()) error_ = appended;
  }

  if (!options_.prom_path.empty()) {
    const Status written = obs::internal::WriteFileOrStatus(
        options_.prom_path, obs::ToPrometheusText(*registry_));
    if (!written.ok() && error_.ok()) error_ = written;
  }
}

}  // namespace serve
}  // namespace scwsc
