// Declarative SLO rules over the serving metrics, evaluated every telemetry
// tick. A rule is one line of text — "p99_latency_ms<=50",
// "error_rate<=0.05", "breaker_open==0", "queue_depth<=100" — parsed once
// at startup; the telemetry pump assembles an SloSample per tick (merged
// latency sketch, per-tick completion deltas, queue/breaker gauges) and
// EvaluateSlos returns the rules the sample violates. The pump turns each
// violation into a `serve.slo.violations` bump, a warn log and a
// flight-recorder dump — see docs/observability.md for the rule syntax.

#ifndef SCWSC_SERVE_SLO_H_
#define SCWSC_SERVE_SLO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/obs/sketch.h"

namespace scwsc {
namespace serve {

/// What a rule constrains.
enum class SloMetric {
  kLatencyQuantile,  // p50_/p90_/p99_/p999_latency_ms: merged sketch quantile
  kErrorRate,        // failed / (completed + failed), per tick
  kQueueDepth,       // serve.queue.depth gauge
  kBreakerOpen,      // serve.breaker.open gauge (breakers currently open)
};

enum class SloOp {
  kAtMost,  // "<=" or "<": violated when observed > threshold
  kEquals,  // "==": violated when observed != threshold
};

struct SloRule {
  SloMetric metric = SloMetric::kLatencyQuantile;
  SloOp op = SloOp::kAtMost;
  double quantile = 0.99;   // only for kLatencyQuantile
  double threshold = 0.0;   // milliseconds for latency rules
  std::string text;         // original spelling, echoed in logs and reports
  /// Tenant scope: empty = the aggregate sample; otherwise the pump
  /// evaluates this rule against that tenant's own latency sketch
  /// (serve.tenant.latency_seconds#<tenant>) and completion deltas
  /// (serve.tenant.<tenant>.completed/.failed). Spelled "tenant=NAME:rule".
  std::string tenant;
};

/// Parses one rule. Accepted metrics: p50_latency_ms, p90_latency_ms,
/// p99_latency_ms, p999_latency_ms, error_rate, queue_depth, breaker_open;
/// operators: "<=", "<" (both at-most) and "==". Whitespace is ignored.
/// A "tenant=NAME:" prefix scopes the rule to one tenant's metrics, e.g.
/// "tenant=acme:p99_latency_ms<=50".
Result<SloRule> ParseSloRule(const std::string& text);

/// ParseSloRule over a list; fails on the first bad rule.
Result<std::vector<SloRule>> ParseSloRules(
    const std::vector<std::string>& texts);

/// One tick's worth of evidence, assembled by the telemetry pump.
struct SloSample {
  /// Merged latency sketch (seconds) across all solver members; nullptr or
  /// an empty sketch means no latency data yet, so latency rules pass.
  const obs::QuantileSketch* latency = nullptr;
  /// Jobs that completed / failed since the previous tick. Error-rate rules
  /// pass when the tick saw no traffic.
  std::uint64_t completed_delta = 0;
  std::uint64_t failed_delta = 0;
  double queue_depth = 0.0;
  double breaker_open = 0.0;
};

struct SloViolation {
  SloRule rule;
  double observed = 0.0;  // in the rule's own unit (ms for latency rules)
};

/// The subset of `rules` that `sample` violates, in rule order.
std::vector<SloViolation> EvaluateSlos(const std::vector<SloRule>& rules,
                                       const SloSample& sample);

}  // namespace serve
}  // namespace scwsc

#endif  // SCWSC_SERVE_SLO_H_
