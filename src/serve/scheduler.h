// SolveScheduler: the serving seam of the library. Frontends hand it typed
// SolveJobs (solver name + SolveRequest + priority); it admits or rejects
// them against a bounded queue, runs them concurrently on a shared
// ThreadPool against cached snapshots, memoizes deterministic solves, and
// returns futures.
//
// Admission control:
//   - Bounded queue depth: Enqueue returns ResourceExhausted (typed
//     backpressure, never blocking) when queue + running reaches
//     max_queue_depth.
//   - Deadlines: a job's request.deadline is moved onto the scheduler's
//     per-job RunContext, so deadline trips surface exactly like direct
//     registry calls — an interruption Status carrying the partial
//     SolveResult payload.
//   - Priority aging: workers pop the job with the highest *effective*
//     priority (static priority + seconds-waited / aging_interval), so a
//     flood of high-priority interactive jobs cannot starve batch jobs —
//     every waiting job eventually outranks fresh arrivals.
//   - Graceful drain: Drain() (and the destructor) stops admission and
//     waits for every accepted job to finish; submitted futures always
//     complete.
//
// Caching: the scheduler content-hashes each job's snapshot (memoized per
// snapshot pointer) and consults its ResultCache before dispatch.
// Deadline-free jobs are deterministic — every registered algorithm is,
// given its options (LP rounding is seeded) — so they are served from cache
// when the (snapshot, solver, k, ŝ, canonical options) key matches;
// deadline-bearing jobs bypass the cache both ways since their partials
// depend on timing. A SnapshotCache is owned alongside for frontends to
// dedupe instance construction (the batch front end keys table loads by
// content).
//
// Resilience (opt-in; defaults are inert and bit-identical to a scheduler
// without them — see serve/resilience.h):
//   - Retries: per-job attempt loop re-running retryable failures
//     (Internal / Unavailable) up to RetryPolicy::max_attempts with
//     decorrelated-jitter backoff, gated by a per-label token-bucket
//     RetryBudget so one tenant's failures cannot storm the pool.
//   - Circuit breakers: one breaker per canonical solver name; consecutive
//     Internal/deadline failures open it, open-state jobs get a typed
//     Unavailable with retry-after (or degrade, below), probes half-open it
//     back.
//   - Degradation: a DegradationLadder substitutes the next-cheaper
//     registered solver under queue pressure or an open breaker; the
//     substitution is stamped into SolveResult::degraded_from and the
//     outcome, never into the memoized cache entry.
//   - Watchdog: a background thread trips RunContexts of jobs stuck past
//     deadline + grace and re-submits pool tasks for queue entries no
//     worker claimed (the recovery path for injected ThreadPool task
//     loss), so every admitted future completes even under chaos.
//
// Fault injection (src/common/fault.h): with an installed FaultPlan the
// scheduler's solve call site can be told to fail (solver_error), throw
// (solver_throw — contained and converted to Status::Internal) or stall
// (solver_delay); the caches and the pool carry their own points.
//
// Observability: spans serve.enqueue / serve.run per job and counters
// serve.jobs.{accepted,rejected,completed,failed}, serve.result_cache.*,
// serve.snapshot_cache.*, serve.retries.*, serve.breaker.*,
// serve.degraded.*, serve.watchdog.*, serve.faults.* through the session's
// MetricRegistry; retry/degrade/fault moments appear as span events
// ("retry/backoff", "degrade/breaker", "fault/solver_error").

#ifndef SCWSC_SERVE_SCHEDULER_H_
#define SCWSC_SERVE_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/api/registry.h"
#include "src/common/run_context.h"
#include "src/common/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/serve/cache.h"
#include "src/serve/resilience.h"
#include "src/serve/telemetry.h"
#include "src/serve/tenant.h"

namespace scwsc {
namespace serve {

/// One unit of work for the scheduler.
struct SolveJob {
  std::string solver;         // registry name (case-insensitive)
  api::SolveRequest request;  // deadline and label ride inside
  /// Larger = more urgent. Interactive frontends use higher priorities;
  /// aging guarantees lower-priority batch jobs still run.
  int priority = 0;
};

/// What a job's future resolves to.
struct JobOutcome {
  /// The solve outcome — including interruption Statuses carrying partial
  /// SolveResult payloads, exactly as the registry returns them.
  Result<api::SolveResult> result = Status::Internal("job never ran");
  bool from_result_cache = false;
  double queue_seconds = 0.0;  // admission -> dispatch
  double run_seconds = 0.0;    // dispatch -> completion (0 on cache hit)
  std::string label;           // echoed from the request
  /// Solve attempts executed (0 on a cache hit, 1 for a plain run, more
  /// when the retry policy re-ran a retryable failure).
  int attempts = 0;
  /// Canonical name of the originally requested solver when degradation
  /// substituted a cheaper one; empty otherwise (mirrors
  /// SolveResult::degraded_from so error outcomes carry it too).
  std::string degraded_from;
};

struct SchedulerOptions {
  /// Jobs admitted but not yet finished; Enqueue beyond this is
  /// ResourceExhausted. 0 = unbounded.
  std::size_t max_queue_depth = 256;
  /// Seconds of waiting that add one effective priority level.
  double aging_interval_seconds = 0.25;
  /// Result-cache entries (deterministic solves memoized). 0 disables.
  std::size_t result_cache_entries = 512;
  /// Snapshot-cache byte budget for the cache owned by the scheduler.
  std::size_t snapshot_cache_bytes = 256ull << 20;
  /// Optional trace session: serve.enqueue/serve.run spans and all serve.*
  /// counters go here. The scheduler keeps its own MetricRegistry when
  /// null, so counters are always available via metrics().
  obs::TraceSession* trace = nullptr;
  /// Recovery policies (retries, breakers, degradation, watchdog). The
  /// default is inert — see serve/resilience.h.
  ResilienceOptions resilience;
  /// Continuous telemetry (JSONL time series, Prometheus exposition, SLO
  /// rules). Inert unless configured() — see serve/telemetry.h. The pump's
  /// tick sampler refreshes serve.queue.depth and the per-priority
  /// serve.queue.wait_seconds.p<N> gauges.
  TelemetryOptions telemetry;
  /// Multi-tenant admission quotas and weighted-fair dequeue (see
  /// serve/tenant.h). The default is inert: dequeue order and admission are
  /// bit-identical to a scheduler without tenancy.
  TenantPolicy tenant;
};

class SolveScheduler {
 public:
  /// `pool` must outlive the scheduler. Jobs run as pool tasks; solvers
  /// that parallelize internally create their own pools, so scheduler
  /// concurrency and solver concurrency never deadlock each other.
  SolveScheduler(ThreadPool* pool, SchedulerOptions options = {});

  SolveScheduler(const SolveScheduler&) = delete;
  SolveScheduler& operator=(const SolveScheduler&) = delete;

  /// Drains: stops admission and waits for accepted jobs to finish.
  ~SolveScheduler();

  /// Admits a job, returning the future its outcome will resolve on.
  /// ResourceExhausted when the queue is full (typed backpressure),
  /// Cancelled after Drain(). Never blocks on queue space.
  Result<std::future<JobOutcome>> Enqueue(SolveJob job);

  /// Stops admission, waits until every accepted job has completed.
  /// Idempotent.
  void Drain();

  /// Counters: serve.jobs.*, serve.result_cache.*, serve.snapshot_cache.*.
  /// The session's registry when options.trace was set, else internal.
  obs::MetricRegistry& metrics() { return *metrics_; }

  SnapshotCache& snapshot_cache() { return *snapshot_cache_; }
  ResultCache& result_cache() { return *result_cache_; }

  /// Jobs admitted but not yet completed (queued + running).
  std::size_t in_flight() const;

  /// The per-solver circuit breakers (visible for tests and frontends that
  /// report breaker state). Always constructed; inert unless
  /// options.resilience.breaker.enabled.
  BreakerBank& breakers() { return *breakers_; }

  /// The telemetry pump, or nullptr when options.telemetry is inert.
  TelemetryPump* telemetry() { return pump_.get(); }

  /// Forces one telemetry tick so reports read final counters (including
  /// last-interval SLO evaluations). No-op without a pump.
  void FlushTelemetry();

 private:
  struct PendingJob {
    SolveJob job;
    std::promise<JobOutcome> promise;
    std::chrono::steady_clock::time_point enqueued_at;
  };

  /// One running job's interruption handle, registered while the registry
  /// call is in flight so the watchdog can trip it (RequestCancel needs
  /// the non-const context).
  struct RunningJob {
    RunContext* context = nullptr;
    std::chrono::steady_clock::time_point deadline_at;
    bool has_deadline = false;
  };

  /// Worker-side: pops the job with the highest effective priority and
  /// runs it to completion (cache lookup, attempt loop with retries /
  /// breaker / degradation, cache fill).
  void RunOneJob();

  /// Completes one popped job: resolves degradation, consults the result
  /// cache, runs the attempt loop, fills the outcome and the promise.
  void ExecuteJob(PendingJob pending, double queue_seconds);

  /// Background thread body: trips overdue running jobs and re-dispatches
  /// stale queue entries (see ResilienceOptions::watchdog).
  void WatchdogLoop();

  /// Content hash of the job's snapshot, memoized by snapshot address so a
  /// shared instance is scanned once, not once per job.
  std::uint64_t SnapshotHashFor(const api::InstancePtr& instance);

  /// Telemetry tick sampler: refreshes serve.queue.depth and the
  /// per-priority wait gauges from the live queue.
  void SampleQueueGauges();

  ThreadPool* const pool_;
  const SchedulerOptions options_;
  obs::MetricRegistry* metrics_;  // session registry or owned_metrics_
  std::unique_ptr<obs::MetricRegistry> owned_metrics_;
  std::unique_ptr<SnapshotCache> snapshot_cache_;
  std::unique_ptr<ResultCache> result_cache_;
  std::unique_ptr<BreakerBank> breakers_;
  RetryBudget retry_budget_;
  std::unique_ptr<TenantAdmission> tenants_;

  mutable std::mutex mu_;
  std::condition_variable drained_cv_;  // fires when in_flight_ hits 0
  std::list<PendingJob> queue_;
  std::list<RunningJob> running_;  // registry calls currently in flight
  std::size_t in_flight_ = 0;      // queued + running
  bool draining_ = false;
  /// Weighted-fair accounting: jobs dispatched per tenant. Only written
  /// when the tenant policy is enabled; guarded by mu_.
  std::map<std::string, double> tenant_served_;

  std::mutex hash_mu_;
  std::map<const api::InstanceSnapshot*, std::uint64_t> hash_memo_;

  // Watchdog thread state (only started when options.resilience.watchdog).
  std::condition_variable watchdog_cv_;  // waits on mu_
  bool watchdog_stop_ = false;
  std::thread watchdog_;

  // Declared last: the pump's destructor stops its tick thread (which
  // touches metrics_ and the queue via the sampler) before anything above
  // is torn down.
  std::unique_ptr<TelemetryPump> pump_;
};

}  // namespace serve
}  // namespace scwsc

#endif  // SCWSC_SERVE_SCHEDULER_H_
