// The serve layer's two caches, plus the content hashing that keys them.
//
// SnapshotCache: content-hash of the underlying table/set-system (plus cost
// function and hierarchy presence) -> shared InstancePtr. Repeated batch
// jobs over the same data reuse one snapshot — and therefore one lazy
// pattern enumeration — instead of rebuilding it per job. LRU with a
// byte-accounted capacity (a snapshot's dominant cost is its encoded
// columns / element lists, which ApproxSnapshotBytes estimates).
//
// ResultCache: (snapshot hash, canonical solver name, k, coverage,
// canonicalized options) -> SolveResult. Memoizes deterministic solves:
// every registered algorithm is deterministic given its inputs (the LP
// rounding trials are seeded), so the only jobs the scheduler refuses to
// memoize are deadline-bearing ones, whose partial results depend on
// timing. LRU by entry count.
//
// Integrity: every ResultCache entry stores a content checksum computed at
// insert time and re-verified on every hit. An entry whose bytes no longer
// match (injected corruption, a future serialization bug) is quarantined —
// erased and counted under serve.result_cache.quarantined — and reported as
// a miss, so a corrupt result is never served.
//
// Sizing: a snapshot larger than the SnapshotCache's entire byte budget is
// rejected with a typed ResourceExhausted (and counted under
// serve.snapshot_cache.oversized) instead of evicting every other resident
// entry on the way to an over-budget cache of one.
//
// Both caches are thread-safe and count hits/misses into an
// obs::MetricRegistry when one is attached ("serve.snapshot_cache.hits",
// "serve.result_cache.misses", ...).

#ifndef SCWSC_SERVE_CACHE_H_
#define SCWSC_SERVE_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/api/instance.h"
#include "src/api/solver.h"
#include "src/obs/metrics.h"

namespace scwsc {
namespace serve {

/// FNV-1a content hash of an instance: table columns + measure + cost
/// function (+ hierarchy presence), or the set system's elements, costs and
/// labels, chained through the snapshot's shard plan and per-shard hashes.
/// Two snapshots built from identical data with identical sharding hash
/// identically, so a restarted client reconnects to the same cache entries.
/// The hash is computed once at snapshot construction (src/api/instance.cc);
/// this returns the stored value.
std::uint64_t ContentHash(const api::InstanceSnapshot& instance);

/// Rough resident size of a snapshot: encoded columns + measure for table
/// instances, element lists for set systems. Used for the snapshot cache's
/// byte accounting — an estimate, not an audit.
std::size_t ApproxSnapshotBytes(const api::InstanceSnapshot& instance);

class SnapshotCache {
 public:
  /// `capacity_bytes` bounds the sum of ApproxSnapshotBytes over resident
  /// entries; inserting past it evicts least-recently-used snapshots
  /// (evicted snapshots stay alive while jobs still hold their InstancePtr).
  explicit SnapshotCache(std::size_t capacity_bytes,
                         obs::MetricRegistry* metrics = nullptr);

  /// The snapshot cached under `hash`, refreshing its recency; nullptr on
  /// miss. Counts serve.snapshot_cache.{hits,misses}.
  api::InstancePtr Lookup(std::uint64_t hash);

  /// Caches `instance` under `hash` (replacing any previous entry), then
  /// evicts LRU entries until the byte budget holds again. A snapshot
  /// larger than the whole budget is rejected with ResourceExhausted
  /// (counted under serve.snapshot_cache.oversized) rather than admitted
  /// at the cost of evicting everything else; the caller keeps using its
  /// InstancePtr uncached.
  Status Insert(std::uint64_t hash, api::InstancePtr instance);

  std::size_t size() const;
  std::size_t resident_bytes() const;

  /// How many of `instance`'s per-shard hashes are already resident through
  /// other cached snapshots. Callers probe this before Insert (after a
  /// Lookup miss) to learn how much of an incoming snapshot's data the
  /// cache already holds — e.g. a re-ingested table where only one shard's
  /// rows changed overlaps on every other shard. Purely observational: the
  /// scheduler feeds it into serve.snapshot_cache.shard_shared.
  std::size_t ResidentShardOverlap(const api::InstanceSnapshot& instance) const;

 private:
  struct Entry {
    std::uint64_t hash = 0;
    api::InstancePtr instance;
    std::size_t bytes = 0;
    std::vector<std::uint64_t> shard_hashes;
  };

  void EvictOverBudgetLocked();
  void AddShardRefsLocked(const std::vector<std::uint64_t>& hashes);
  void RemoveShardRefsLocked(const std::vector<std::uint64_t>& hashes);

  const std::size_t capacity_bytes_;
  obs::MetricRegistry* const metrics_;

  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::map<std::uint64_t, std::size_t> shard_refs_;  // shard hash -> #entries
  std::size_t resident_bytes_ = 0;
};

/// The identity of one deterministic solve. Built via MakeResultKey so the
/// options string is always the canonicalized spelling.
struct ResultKey {
  std::uint64_t snapshot_hash = 0;
  std::string solver;   // canonical registry name
  std::size_t k = 0;
  double coverage_fraction = 0.0;
  std::string options;  // OptionsBag::CanonicalString()

  bool operator<(const ResultKey& other) const;
};

ResultKey MakeResultKey(std::uint64_t snapshot_hash,
                        const std::string& solver,
                        const api::SolveRequest& request);

/// Content checksum of the fields a cached SolveResult serves back
/// (selection, labels, cost/coverage bookkeeping, audit). Computed at
/// insert and re-verified on every hit so a corrupted entry is detected
/// before anyone consumes it.
std::uint64_t ResultChecksum(const api::SolveResult& result);

class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity_entries,
                       obs::MetricRegistry* metrics = nullptr);

  /// The memoized result, refreshing recency; nullopt on miss. Counts
  /// serve.result_cache.{hits,misses}. A hit whose stored bytes fail the
  /// checksum is quarantined: the entry is erased, counted under
  /// serve.result_cache.quarantined, and reported as a miss.
  std::optional<api::SolveResult> Lookup(const ResultKey& key);

  /// Memoizes `result` under `key` with its content checksum. An installed
  /// FaultPlan arming result_cache_corrupt flips bits in the stored copy
  /// (counted under serve.result_cache.corrupted) so the quarantine path
  /// is exercisable.
  void Insert(const ResultKey& key, api::SolveResult result);

  std::size_t size() const;

 private:
  struct Entry {
    ResultKey key;
    api::SolveResult result;
    std::uint64_t checksum = 0;
  };

  const std::size_t capacity_entries_;
  obs::MetricRegistry* const metrics_;

  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::map<ResultKey, std::list<Entry>::iterator> index_;
};

}  // namespace serve
}  // namespace scwsc

#endif  // SCWSC_SERVE_CACHE_H_
