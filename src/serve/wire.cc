#include "src/serve/wire.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <set>
#include <utility>

#include "src/api/registry.h"
#include "src/common/logging.h"

namespace scwsc {
namespace serve {
namespace {

/// Renders a JSON option value the way OptionsBag expects it spelled:
/// numbers lose a redundant ".0", bools become "true"/"false".
Result<std::string> OptionValueToString(const std::string& key,
                                        const JsonValue& value) {
  switch (value.kind()) {
    case JsonValue::Kind::kString:
      return value.as_string();
    case JsonValue::Kind::kBool:
      return std::string(value.as_bool() ? "true" : "false");
    case JsonValue::Kind::kNumber: {
      const double n = value.as_number();
      JsonValue rendered(n);
      return rendered.Dump();  // integral doubles print without a fraction
    }
    default:
      return Status::InvalidArgument("option '" + key +
                                     "' must be a string, number or bool");
  }
}

Result<double> RequireNumber(const JsonValue& v, const std::string& what) {
  if (!v.is_number()) {
    return Status::InvalidArgument("field '" + what + "' must be a number");
  }
  return v.as_number();
}

}  // namespace

ErrorInfo ErrorInfoFromStatus(const Status& status) {
  ErrorInfo error;
  error.code = std::string(StatusCodeToString(status.code()));
  error.message = std::string(status.message());
  const StatusCode code = status.code();
  error.retryable = code == StatusCode::kInternal ||
                    code == StatusCode::kUnavailable ||
                    code == StatusCode::kResourceExhausted;
  if (const RetryAfterHint* hint = status.payload<RetryAfterHint>()) {
    error.retry_after_ms = hint->ms;
  }
  return error;
}

JsonValue ErrorToJson(const ErrorInfo& error) {
  JsonObject o;
  o["code"] = JsonValue(error.code);
  o["message"] = JsonValue(error.message);
  o["retryable"] = JsonValue(error.retryable);
  if (error.retry_after_ms > 0.0) {
    o["retry_after_ms"] = JsonValue(error.retry_after_ms);
  }
  return JsonValue(std::move(o));
}

bool WarnDeprecatedWireV1(const std::string& where) {
  static std::mutex mu;
  static std::set<std::string>* warned = new std::set<std::string>();
  bool first;
  {
    std::lock_guard<std::mutex> lock(mu);
    first = warned->insert(where).second;
  }
  if (first) {
    SCWSC_LOG_WARN(
        "wire protocol v1 payload (%s): versionless requests are "
        "deprecated; add \"version\": %d (see docs/serving.md for the "
        "migration table)",
        where.c_str(), kWireVersion);
  }
  return first;
}

Result<int> CheckWireVersion(const JsonValue& root, const std::string& where) {
  const JsonValue* version = root.is_object() ? root.Find("version") : nullptr;
  if (version == nullptr) {
    WarnDeprecatedWireV1(where);
    return 1;
  }
  if (!version->is_number()) {
    return Status::InvalidArgument("\"version\" must be a number (" + where +
                                   ")");
  }
  const int v = static_cast<int>(version->as_number());
  if (v == 1) {
    WarnDeprecatedWireV1(where);
    return 1;
  }
  if (v == kWireVersion) return v;
  return Status::InvalidArgument(
      "unsupported wire version " + std::to_string(v) + " (" + where +
      "); this build speaks versions 1 (deprecated) and " +
      std::to_string(kWireVersion));
}

Result<ParsedJob> ParseJobObject(const JsonValue& entry,
                                 const api::InstancePtr& instance,
                                 const std::string& at, int version) {
  if (!entry.is_object()) {
    return Status::InvalidArgument(at + " is not an object");
  }
  const JsonValue* solver = entry.Find("solver");
  if (solver == nullptr || !solver->is_string()) {
    return Status::InvalidArgument(at + " needs a string \"solver\"");
  }

  ParsedJob parsed;
  api::SolveRequest::Builder builder(instance);
  std::string label;
  bool have_label = false;
  for (const auto& [key, value] : entry.as_object()) {
    if (key == "solver") {
      // handled above
    } else if (key == "k") {
      SCWSC_ASSIGN_OR_RETURN(double n, RequireNumber(value, at + ".k"));
      builder.WithK(static_cast<std::size_t>(n));
    } else if (key == "coverage") {
      SCWSC_ASSIGN_OR_RETURN(double f, RequireNumber(value, at + ".coverage"));
      builder.WithCoverage(f);
    } else if (key == "options") {
      if (!value.is_object()) {
        return Status::InvalidArgument(at + ".options must be an object");
      }
      for (const auto& [opt_key, opt_value] : value.as_object()) {
        SCWSC_ASSIGN_OR_RETURN(std::string rendered,
                               OptionValueToString(opt_key, opt_value));
        builder.WithOption(opt_key, std::move(rendered));
      }
    } else if (key == "deadline_ms") {
      SCWSC_ASSIGN_OR_RETURN(double ms,
                             RequireNumber(value, at + ".deadline_ms"));
      builder.WithDeadline(
          std::chrono::milliseconds(static_cast<std::int64_t>(ms)));
    } else if (key == "label") {
      if (!value.is_string()) {
        return Status::InvalidArgument(at + ".label must be a string");
      }
      label = value.as_string();
      have_label = true;
    } else if (key == "tenant") {
      if (!value.is_string()) {
        return Status::InvalidArgument(at + ".tenant must be a string");
      }
      builder.WithTenant(value.as_string());
    } else if (key == "priority") {
      SCWSC_ASSIGN_OR_RETURN(double p, RequireNumber(value, at + ".priority"));
      parsed.job.priority = static_cast<int>(p);
    } else if (key == "repeat") {
      SCWSC_ASSIGN_OR_RETURN(double n, RequireNumber(value, at + ".repeat"));
      if (n < 1) {
        return Status::InvalidArgument(at + ".repeat must be >= 1");
      }
      parsed.repeat = static_cast<std::size_t>(n);
    } else if (key == "version" || key == "id" || key == "type" ||
               key == "snapshot") {
      // Envelope keys on the socket path; never job data, never forwarded.
    } else if (version >= kWireVersion) {
      // Forward compatibility: a newer client's keys round-trip through the
      // report/response instead of failing or silently vanishing.
      parsed.forward[key] = value;
    }
    // v1: unknown keys are ignored, the legacy behaviour.
  }
  if (have_label) builder.WithLabel(std::move(label));
  SCWSC_ASSIGN_OR_RETURN(parsed.job.request, builder.Build());
  parsed.job.solver = solver->as_string();
  return parsed;
}

Result<api::SnapshotDelta> ParseDeltaObject(const JsonValue& entry,
                                            const std::string& at) {
  if (!entry.is_object()) {
    return Status::InvalidArgument(at + " is not an object");
  }
  api::SnapshotDelta delta;
  if (const JsonValue* rows = entry.Find("append_rows")) {
    if (!rows->is_array()) {
      return Status::InvalidArgument(at + ".append_rows must be an array");
    }
    for (std::size_t i = 0; i < rows->as_array().size(); ++i) {
      const JsonValue& row = rows->as_array()[i];
      const std::string where = at + ".append_rows[" + std::to_string(i) + "]";
      if (!row.is_object()) {
        return Status::InvalidArgument(where + " must be an object");
      }
      api::SnapshotDelta::RowAppend append;
      const JsonValue* values = row.Find("values");
      if (values == nullptr || !values->is_array()) {
        return Status::InvalidArgument(where + " needs a \"values\" array");
      }
      for (const JsonValue& v : values->as_array()) {
        if (!v.is_string()) {
          return Status::InvalidArgument(where + ".values must be strings");
        }
        append.values.push_back(v.as_string());
      }
      if (const JsonValue* measure = row.Find("measure")) {
        SCWSC_ASSIGN_OR_RETURN(append.measure,
                               RequireNumber(*measure, where + ".measure"));
      }
      delta.append_rows.push_back(std::move(append));
    }
  }
  if (const JsonValue* rows = entry.Find("retract_rows")) {
    if (!rows->is_array()) {
      return Status::InvalidArgument(at + ".retract_rows must be an array");
    }
    for (const JsonValue& v : rows->as_array()) {
      SCWSC_ASSIGN_OR_RETURN(double n,
                             RequireNumber(v, at + ".retract_rows[]"));
      if (n < 0) {
        return Status::InvalidArgument(at + ".retract_rows must be >= 0");
      }
      delta.retract_rows.push_back(static_cast<std::size_t>(n));
    }
  }
  if (const JsonValue* sets = entry.Find("add_sets")) {
    if (!sets->is_array()) {
      return Status::InvalidArgument(at + ".add_sets must be an array");
    }
    for (std::size_t i = 0; i < sets->as_array().size(); ++i) {
      const JsonValue& set = sets->as_array()[i];
      const std::string where = at + ".add_sets[" + std::to_string(i) + "]";
      if (!set.is_object()) {
        return Status::InvalidArgument(where + " must be an object");
      }
      api::SnapshotDelta::SetAdd add;
      const JsonValue* elements = set.Find("elements");
      if (elements == nullptr || !elements->is_array()) {
        return Status::InvalidArgument(where + " needs an \"elements\" array");
      }
      for (const JsonValue& e : elements->as_array()) {
        SCWSC_ASSIGN_OR_RETURN(double n,
                               RequireNumber(e, where + ".elements[]"));
        if (n < 0) {
          return Status::InvalidArgument(where + ".elements must be >= 0");
        }
        add.elements.push_back(static_cast<ElementId>(n));
      }
      if (const JsonValue* cost = set.Find("cost")) {
        SCWSC_ASSIGN_OR_RETURN(add.cost,
                               RequireNumber(*cost, where + ".cost"));
      }
      if (const JsonValue* label = set.Find("label")) {
        if (!label->is_string()) {
          return Status::InvalidArgument(where + ".label must be a string");
        }
        add.label = label->as_string();
      }
      delta.add_sets.push_back(std::move(add));
    }
  }
  if (const JsonValue* sets = entry.Find("remove_sets")) {
    if (!sets->is_array()) {
      return Status::InvalidArgument(at + ".remove_sets must be an array");
    }
    for (const JsonValue& v : sets->as_array()) {
      SCWSC_ASSIGN_OR_RETURN(double n, RequireNumber(v, at + ".remove_sets[]"));
      if (n < 0) {
        return Status::InvalidArgument(at + ".remove_sets must be >= 0");
      }
      delta.remove_sets.push_back(static_cast<SetId>(n));
    }
  }
  return delta;
}

JsonValue DeltaStatsToJson(const api::DeltaStats& stats,
                           std::uint64_t content_hash) {
  char hex[2 + 16 + 1];
  std::snprintf(hex, sizeof(hex), "0x%016llx",
                static_cast<unsigned long long>(content_hash));
  JsonObject o;
  o["child_version"] = JsonValue(stats.child_version);
  o["content_hash"] = JsonValue(std::string(hex));
  o["shards_total"] = JsonValue(stats.shards_total);
  o["shards_chained"] = JsonValue(stats.shards_chained);
  o["shards_rehashed"] = JsonValue(stats.shards_rehashed);
  o["rows_appended"] = JsonValue(stats.rows_appended);
  o["rows_retracted"] = JsonValue(stats.rows_retracted);
  o["sets_added"] = JsonValue(stats.sets_added);
  o["sets_removed"] = JsonValue(stats.sets_removed);
  return JsonValue(std::move(o));
}

JsonValue SolverListToJson() {
  JsonArray solvers;
  for (const api::SolverInfo& info : api::SolverRegistry::Global().List()) {
    JsonObject entry;
    entry["name"] = JsonValue(info.name);
    entry["summary"] = JsonValue(info.summary);
    entry["capabilities"] =
        JsonValue(api::CapabilitiesToString(info.capabilities));
    JsonArray options;
    for (const api::OptionSpec& opt : info.options) {
      JsonObject spec;
      spec["name"] = JsonValue(opt.name);
      spec["type"] = JsonValue(std::string(api::OptionTypeToString(opt.type)));
      spec["default"] = JsonValue(opt.default_value);
      spec["required"] = JsonValue(opt.required);
      spec["help"] = JsonValue(opt.help);
      if (!opt.deprecated_alias.empty()) {
        spec["deprecated_alias"] = JsonValue(opt.deprecated_alias);
      }
      options.push_back(JsonValue(std::move(spec)));
    }
    entry["options"] = JsonValue(std::move(options));
    solvers.push_back(JsonValue(std::move(entry)));
  }
  JsonObject root;
  root["solvers"] = JsonValue(std::move(solvers));
  return JsonValue(std::move(root));
}

}  // namespace serve
}  // namespace scwsc
