// TableBuilder: row-at-a-time construction of an immutable Table.

#ifndef SCWSC_TABLE_BUILDER_H_
#define SCWSC_TABLE_BUILDER_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/table/table.h"

namespace scwsc {

class TableBuilder {
 public:
  /// Builder for a table with the given categorical attributes and, when
  /// `measure_name` is non-empty, a numeric measure attribute.
  explicit TableBuilder(std::vector<std::string> attribute_names,
                        std::string measure_name = "");

  /// Appends a row given decoded string values (one per attribute).
  /// `measure` is ignored when the schema has no measure; otherwise it must
  /// be finite (negative is fine, NaN/±inf are InvalidArgument).
  Status AddRow(const std::vector<std::string_view>& values,
                double measure = 0.0);

  /// Convenience overload for literals.
  Status AddRow(std::initializer_list<std::string_view> values,
                double measure = 0.0);

  std::size_t num_rows() const { return num_rows_; }

  /// Finalizes into an immutable Table. The builder is consumed.
  Table Build() &&;

 private:
  Schema schema_;
  std::vector<Dictionary> dictionaries_;
  std::vector<std::vector<ValueId>> columns_;
  std::vector<double> measure_;
  std::size_t num_rows_ = 0;
};

}  // namespace scwsc

#endif  // SCWSC_TABLE_BUILDER_H_
