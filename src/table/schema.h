// Schema and dictionary encoding for the relational substrate.
//
// The patterned special case of size-constrained weighted set cover operates
// on a table of categorical "pattern attributes" D1..Dj plus a numeric
// measure attribute used to weight patterns (paper §II). Categorical values
// are dictionary-encoded to dense 32-bit ids so that pattern matching and
// lattice descent are integer comparisons.

#ifndef SCWSC_TABLE_SCHEMA_H_
#define SCWSC_TABLE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"

namespace scwsc {

/// Dense id of a categorical value within one attribute's dictionary.
using ValueId = std::uint32_t;

/// Row index within a Table.
using RowId = std::uint32_t;

/// Per-attribute dictionary: bidirectional string <-> ValueId map.
/// Ids are assigned densely in first-seen order.
class Dictionary {
 public:
  /// Returns the id for `value`, inserting it if new.
  ValueId GetOrAdd(std::string_view value);

  /// Returns the id for `value` or NotFound.
  Result<ValueId> Find(std::string_view value) const;

  /// Returns the string for `id`. Requires id < size().
  const std::string& Name(ValueId id) const;

  /// Number of distinct values (the active domain size, paper's |dom(Di)|).
  std::size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, ValueId> ids_;
};

/// Names the pattern attributes and the optional measure attribute.
class Schema {
 public:
  Schema() = default;

  /// `attribute_names` are the categorical pattern attributes D1..Dj;
  /// `measure_name` names the numeric attribute (may be empty when the
  /// table carries no measure and set costs come from elsewhere).
  Schema(std::vector<std::string> attribute_names, std::string measure_name);

  std::size_t num_attributes() const { return attribute_names_.size(); }
  const std::string& attribute_name(std::size_t i) const {
    return attribute_names_[i];
  }
  const std::vector<std::string>& attribute_names() const {
    return attribute_names_;
  }

  bool has_measure() const { return !measure_name_.empty(); }
  const std::string& measure_name() const { return measure_name_; }

  /// Index of the attribute with the given name, or NotFound.
  Result<std::size_t> AttributeIndex(std::string_view name) const;

 private:
  std::vector<std::string> attribute_names_;
  std::string measure_name_;
};

}  // namespace scwsc

#endif  // SCWSC_TABLE_SCHEMA_H_
