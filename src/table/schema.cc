#include "src/table/schema.h"

#include "src/common/logging.h"

namespace scwsc {

ValueId Dictionary::GetOrAdd(std::string_view value) {
  auto it = ids_.find(std::string(value));
  if (it != ids_.end()) return it->second;
  const ValueId id = static_cast<ValueId>(names_.size());
  SCWSC_CHECK(names_.size() < 0xFFFFFFFFull, "dictionary overflow");
  names_.emplace_back(value);
  ids_.emplace(names_.back(), id);
  return id;
}

Result<ValueId> Dictionary::Find(std::string_view value) const {
  auto it = ids_.find(std::string(value));
  if (it == ids_.end()) {
    return Status::NotFound("value not in dictionary: '" +
                            std::string(value) + "'");
  }
  return it->second;
}

const std::string& Dictionary::Name(ValueId id) const {
  SCWSC_CHECK(id < names_.size(), "ValueId out of range");
  return names_[id];
}

Schema::Schema(std::vector<std::string> attribute_names,
               std::string measure_name)
    : attribute_names_(std::move(attribute_names)),
      measure_name_(std::move(measure_name)) {}

Result<std::size_t> Schema::AttributeIndex(std::string_view name) const {
  for (std::size_t i = 0; i < attribute_names_.size(); ++i) {
    if (attribute_names_[i] == name) return i;
  }
  return Status::NotFound("no attribute named '" + std::string(name) + "'");
}

}  // namespace scwsc
