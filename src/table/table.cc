#include "src/table/table.h"

#include <algorithm>
#include <numeric>

#include "src/common/logging.h"

namespace scwsc {

Table::Table(Schema schema, std::vector<Dictionary> dictionaries,
             std::vector<std::vector<ValueId>> columns,
             std::vector<double> measure)
    : schema_(std::move(schema)),
      dictionaries_(std::move(dictionaries)),
      columns_(std::move(columns)),
      measure_(std::move(measure)) {
  SCWSC_CHECK(dictionaries_.size() == columns_.size(),
              "one dictionary per column required");
  SCWSC_CHECK(schema_.num_attributes() == columns_.size(),
              "schema/column mismatch");
  num_rows_ = columns_.empty() ? measure_.size() : columns_[0].size();
  for (const auto& col : columns_) {
    SCWSC_CHECK(col.size() == num_rows_, "ragged columns");
  }
  if (!measure_.empty()) {
    SCWSC_CHECK(measure_.size() == num_rows_, "measure length mismatch");
  }
}

Table Table::SelectRows(const std::vector<RowId>& rows) const {
  // Re-densify dictionaries so domain sizes reflect the surviving rows
  // (the paper's |dom(Di)| is always the *active* domain).
  std::vector<Dictionary> dicts(columns_.size());
  std::vector<std::vector<ValueId>> cols(columns_.size());
  for (std::size_t a = 0; a < columns_.size(); ++a) {
    cols[a].reserve(rows.size());
    for (RowId r : rows) {
      cols[a].push_back(dicts[a].GetOrAdd(dictionaries_[a].Name(columns_[a][r])));
    }
  }
  std::vector<double> meas;
  if (!measure_.empty()) {
    meas.reserve(rows.size());
    for (RowId r : rows) meas.push_back(measure_[r]);
  }
  return Table(schema_, std::move(dicts), std::move(cols), std::move(meas));
}

Table Table::Head(std::size_t n) const {
  n = std::min(n, num_rows_);
  std::vector<RowId> rows(n);
  std::iota(rows.begin(), rows.end(), RowId{0});
  return SelectRows(rows);
}

Table Table::Sample(std::size_t n, Rng& rng) const {
  n = std::min(n, num_rows_);
  std::vector<RowId> all(num_rows_);
  std::iota(all.begin(), all.end(), RowId{0});
  // Partial Fisher-Yates: the first n entries form the sample.
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t j =
        i + static_cast<std::size_t>(rng.NextBounded(num_rows_ - i));
    std::swap(all[i], all[j]);
  }
  all.resize(n);
  std::sort(all.begin(), all.end());
  return SelectRows(all);
}

Result<Table> Table::ProjectAttributes(
    const std::vector<std::size_t>& keep) const {
  std::vector<std::string> names;
  std::vector<Dictionary> dicts;
  std::vector<std::vector<ValueId>> cols;
  for (std::size_t a : keep) {
    if (a >= columns_.size()) {
      return Status::InvalidArgument("attribute index out of range");
    }
    names.push_back(schema_.attribute_name(a));
    dicts.push_back(dictionaries_[a]);
    cols.push_back(columns_[a]);
  }
  return Table(Schema(std::move(names), schema_.measure_name()),
               std::move(dicts), std::move(cols), measure_);
}

Result<Table> Table::WithMeasure(std::vector<double> measure) const {
  if (measure.size() != num_rows_) {
    return Status::InvalidArgument("measure length does not match row count");
  }
  return Table(schema_, dictionaries_, columns_, std::move(measure));
}

}  // namespace scwsc
