// CSV import/export for Tables.
//
// Format: a header line naming every column, then one row per line. All
// columns except the designated measure column are treated as categorical
// pattern attributes. Quoting is not supported (the LBL-style traces this
// library targets are plain space/comma-separated tokens); a field containing
// the delimiter is therefore impossible and parse errors are reported with
// line numbers.

#ifndef SCWSC_TABLE_CSV_H_
#define SCWSC_TABLE_CSV_H_

#include <iosfwd>
#include <string>

#include "src/common/result.h"
#include "src/table/table.h"

namespace scwsc {
namespace csv {

struct ReadOptions {
  /// Column separator.
  char delimiter = ',';
  /// Name of the numeric measure column; empty means every column is a
  /// pattern attribute and the table has no measure.
  std::string measure_column;
};

/// Parses a table from an input stream.
Result<Table> Read(std::istream& in, const ReadOptions& options = {});

/// Parses a table from a file.
Result<Table> ReadFile(const std::string& path,
                       const ReadOptions& options = {});

struct WriteOptions {
  char delimiter = ',';
  /// Number of significant digits for the measure column.
  int measure_precision = 12;
};

/// Writes `table` (header + rows, measure last when present).
Status Write(const Table& table, std::ostream& out,
             const WriteOptions& options = {});

/// Writes `table` to a file.
Status WriteFile(const Table& table, const std::string& path,
                 const WriteOptions& options = {});

}  // namespace csv
}  // namespace scwsc

#endif  // SCWSC_TABLE_CSV_H_
