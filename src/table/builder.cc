#include "src/table/builder.h"

#include <cmath>

namespace scwsc {

TableBuilder::TableBuilder(std::vector<std::string> attribute_names,
                           std::string measure_name)
    : schema_(std::move(attribute_names), std::move(measure_name)),
      dictionaries_(schema_.num_attributes()),
      columns_(schema_.num_attributes()) {}

Status TableBuilder::AddRow(const std::vector<std::string_view>& values,
                            double measure) {
  if (values.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(
        "row arity does not match schema (" + std::to_string(values.size()) +
        " vs " + std::to_string(schema_.num_attributes()) + ")");
  }
  // Negative measures are legal (and exercised by the cost-function tests);
  // NaN and ±inf would silently poison every downstream pattern cost.
  if (schema_.has_measure() && !std::isfinite(measure)) {
    return Status::InvalidArgument("row measure must be finite");
  }
  for (std::size_t a = 0; a < values.size(); ++a) {
    columns_[a].push_back(dictionaries_[a].GetOrAdd(values[a]));
  }
  if (schema_.has_measure()) measure_.push_back(measure);
  ++num_rows_;
  return Status::OK();
}

Status TableBuilder::AddRow(std::initializer_list<std::string_view> values,
                            double measure) {
  return AddRow(std::vector<std::string_view>(values), measure);
}

Table TableBuilder::Build() && {
  return Table(std::move(schema_), std::move(dictionaries_),
               std::move(columns_), std::move(measure_));
}

}  // namespace scwsc
