#include "src/table/csv.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "src/common/strings.h"
#include "src/table/builder.h"

namespace scwsc {
namespace csv {

Result<Table> Read(std::istream& in, const ReadOptions& options) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::ParseError("empty input: missing CSV header");
  }
  const auto header = SplitView(line, options.delimiter);

  std::vector<std::string> attr_names;
  std::ptrdiff_t measure_idx = -1;
  for (std::size_t i = 0; i < header.size(); ++i) {
    const std::string name(StripView(header[i]));
    if (name.empty()) {
      return Status::ParseError("empty column name in header");
    }
    if (!options.measure_column.empty() && name == options.measure_column) {
      if (measure_idx >= 0) {
        return Status::ParseError("duplicate measure column '" + name + "'");
      }
      measure_idx = static_cast<std::ptrdiff_t>(i);
    } else {
      attr_names.push_back(name);
    }
  }
  if (!options.measure_column.empty() && measure_idx < 0) {
    return Status::NotFound("measure column '" + options.measure_column +
                            "' not in header");
  }

  TableBuilder builder(attr_names,
                       measure_idx >= 0 ? options.measure_column : "");
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (StripView(line).empty()) continue;
    const auto fields = SplitView(line, options.delimiter);
    if (fields.size() != header.size()) {
      return Status::ParseError(
          StrFormat("line %zu: expected %zu fields, got %zu", line_no,
                    header.size(), fields.size()));
    }
    std::vector<std::string_view> values;
    double measure = 0.0;
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (static_cast<std::ptrdiff_t>(i) == measure_idx) {
        auto parsed = ParseDouble(fields[i]);
        if (!parsed.ok()) {
          return Status::ParseError(StrFormat(
              "line %zu: %s", line_no, parsed.status().ToString().c_str()));
        }
        measure = *parsed;
      } else {
        values.push_back(StripView(fields[i]));
      }
    }
    SCWSC_RETURN_NOT_OK(builder.AddRow(values, measure));
  }
  return std::move(builder).Build();
}

Result<Table> ReadFile(const std::string& path, const ReadOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open file: " + path);
  return Read(in, options);
}

Status Write(const Table& table, std::ostream& out,
             const WriteOptions& options) {
  const Schema& schema = table.schema();
  for (std::size_t a = 0; a < schema.num_attributes(); ++a) {
    if (a) out << options.delimiter;
    out << schema.attribute_name(a);
  }
  if (schema.has_measure()) {
    if (schema.num_attributes()) out << options.delimiter;
    out << schema.measure_name();
  }
  out << '\n';
  for (RowId r = 0; r < table.num_rows(); ++r) {
    for (std::size_t a = 0; a < schema.num_attributes(); ++a) {
      if (a) out << options.delimiter;
      out << table.value_name(r, a);
    }
    if (schema.has_measure()) {
      if (schema.num_attributes()) out << options.delimiter;
      out << FormatNumber(table.measure(r), options.measure_precision);
    }
    out << '\n';
  }
  if (!out) return Status::Internal("stream write failure");
  return Status::OK();
}

Status WriteFile(const Table& table, const std::string& path,
                 const WriteOptions& options) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open file for write: " + path);
  return Write(table, out, options);
}

}  // namespace csv
}  // namespace scwsc
