// Table: a columnar, dictionary-encoded data set of n records.
//
// Storage is column-major: one dense ValueId vector per pattern attribute and
// one double vector for the measure. Tables are immutable after construction
// (build them with TableBuilder); the experiment harness derives new tables
// via Sample / ProjectAttributes / Head, matching how the paper varies data
// size (Fig. 5/6) and attribute count (Fig. 7).

#ifndef SCWSC_TABLE_TABLE_H_
#define SCWSC_TABLE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/table/schema.h"

namespace scwsc {

class Table {
 public:
  Table(Schema schema, std::vector<Dictionary> dictionaries,
        std::vector<std::vector<ValueId>> columns, std::vector<double> measure);

  const Schema& schema() const { return schema_; }
  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_attributes() const { return columns_.size(); }

  /// The dictionary of attribute `attr`.
  const Dictionary& dictionary(std::size_t attr) const {
    return dictionaries_[attr];
  }

  /// Active domain size of attribute `attr`.
  std::size_t domain_size(std::size_t attr) const {
    return dictionaries_[attr].size();
  }

  /// Encoded value of row `row` in attribute `attr`.
  ValueId value(RowId row, std::size_t attr) const {
    return columns_[attr][row];
  }

  /// The whole encoded column for attribute `attr`.
  const std::vector<ValueId>& column(std::size_t attr) const {
    return columns_[attr];
  }

  /// Decoded (string) value of row `row` in attribute `attr`.
  const std::string& value_name(RowId row, std::size_t attr) const {
    return dictionaries_[attr].Name(columns_[attr][row]);
  }

  bool has_measure() const { return !measure_.empty(); }

  /// Measure value of `row`. Requires has_measure().
  double measure(RowId row) const { return measure_[row]; }
  const std::vector<double>& measures() const { return measure_; }

  /// A new table containing rows [0, n) of this one. n is clamped to
  /// num_rows(). Dictionaries are re-densified to the surviving values.
  Table Head(std::size_t n) const;

  /// A uniform random sample (without replacement) of n rows, in original
  /// row order. n is clamped to num_rows().
  Table Sample(std::size_t n, Rng& rng) const;

  /// A new table keeping only the pattern attributes whose indices appear in
  /// `keep` (in the given order); the measure is retained.
  Result<Table> ProjectAttributes(const std::vector<std::size_t>& keep) const;

  /// A copy of this table with the measure column replaced. `measure` must
  /// have num_rows() entries.
  Result<Table> WithMeasure(std::vector<double> measure) const;

 private:
  Table SelectRows(const std::vector<RowId>& rows) const;

  Schema schema_;
  std::vector<Dictionary> dictionaries_;
  std::vector<std::vector<ValueId>> columns_;  // [attr][row]
  std::vector<double> measure_;                // empty when no measure
  std::size_t num_rows_ = 0;
};

}  // namespace scwsc

#endif  // SCWSC_TABLE_TABLE_H_
