// Umbrella header for the scwsc library: size-constrained weighted set
// cover (Golab, Korn, Li, Saha, Srivastava — ICDE 2015).
//
// Typical usage (patterned data):
//
//   #include "src/scwsc.h"
//   using namespace scwsc;
//
//   Table table = ...;                          // categorical attrs + measure
//   pattern::CostFunction cost(pattern::CostKind::kMax);
//   CwscOptions opts{.k = 10, .coverage_fraction = 0.3};
//   auto solution = pattern::RunOptimizedCwsc(table, cost, opts);
//
// For arbitrary (non-patterned) weighted set systems build a SetSystem and
// call RunCwsc / RunCmc directly.

#ifndef SCWSC_SCWSC_H_
#define SCWSC_SCWSC_H_

#include "src/api/instance.h"
#include "src/api/registry.h"
#include "src/api/solver.h"
#include "src/common/bitset.h"
#include "src/common/logging.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/stopwatch.h"
#include "src/common/strings.h"
#include "src/core/baselines.h"
#include "src/core/cmc.h"
#include "src/core/cwsc.h"
#include "src/core/exact.h"
#include "src/core/instances.h"
#include "src/core/literal.h"
#include "src/core/nonoverlap.h"
#include "src/core/set_system.h"
#include "src/core/solution.h"
#include "src/ext/incremental.h"
#include "src/ext/multiweight.h"
#include "src/gen/lbl_parser.h"
#include "src/gen/lbl_synth.h"
#include "src/hierarchy/bucketize.h"
#include "src/hierarchy/hcmc.h"
#include "src/hierarchy/hcwsc.h"
#include "src/hierarchy/henumerate.h"
#include "src/hierarchy/hierarchy.h"
#include "src/hierarchy/hpattern.h"
#include "src/gen/perturb.h"
#include "src/gen/toy.h"
#include "src/gen/tripartite.h"
#include "src/lp/lp_rounding.h"
#include "src/lp/simplex.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/pattern/benefit_index.h"
#include "src/pattern/cost.h"
#include "src/pattern/enumerate.h"
#include "src/pattern/lattice.h"
#include "src/pattern/opt_cmc.h"
#include "src/pattern/opt_cwsc.h"
#include "src/pattern/pattern.h"
#include "src/pattern/pattern_system.h"
#include "src/pattern/stats.h"
#include "src/table/builder.h"
#include "src/table/csv.h"
#include "src/table/schema.h"
#include "src/table/table.h"

#endif  // SCWSC_SCWSC_H_
