#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite, then smoke
# the engine-comparison micro-benchmark (which asserts that the seed and
# fast engine configurations return identical solutions).
#
# Usage: scripts/check.sh [extra cmake args...]
#   BUILD_DIR  build directory (default: build)
#   SCWSC_BENCH_SCALE  bench scale for the smoke run (default: 0.02)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
JOBS=$(nproc 2>/dev/null || echo 2)

cmake -B "$BUILD_DIR" -S . "$@"
cmake --build "$BUILD_DIR" -j"$JOBS"
(cd "$BUILD_DIR" && ctest --output-on-failure -j"$JOBS")

SCWSC_BENCH_SCALE=${SCWSC_BENCH_SCALE:-0.02} \
  "$BUILD_DIR"/bench/micro_core --engine-compare \
  --out="$BUILD_DIR"/BENCH_core.json

echo "check.sh: build, tests and engine smoke all green"
