#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite, then smoke
# the engine-comparison micro-benchmark (which asserts that the seed and
# fast engine configurations return identical solutions) and the anytime
# bench (which asserts the deterministic budget axes yield monotone
# quality). Fails fast: the first failing stage stops the run with a named
# error so CI logs point at the broken stage directly.
#
# Usage: scripts/check.sh [extra cmake args...]
#   BUILD_DIR  build directory (default: build)
#   SCWSC_BENCH_SCALE  bench scale for the smoke runs (default: 0.02)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
JOBS=$(nproc 2>/dev/null || echo 2)

fail() { echo "check.sh: FAILED at stage: $1" >&2; exit 1; }

cmake -B "$BUILD_DIR" -S . "$@" || fail "configure"
cmake --build "$BUILD_DIR" -j"$JOBS" || fail "build"
(cd "$BUILD_DIR" && ctest --output-on-failure -j"$JOBS") || fail "tests"

# Registry coverage: every algorithm entry point (Result<T> Run*/Solve*
# declared in a src header outside src/api) must be called from a registry
# adapter, so all algorithms stay invocable by name. Internal sub-steps
# that are deliberately not solvers go on the allowlist. src/serve sits
# ABOVE the registry (its RunBatch dispatches through it), so it is no
# more an algorithm entry point than src/api itself.
REGISTRY_ALLOWLIST="SolveLp SolveScwscRelaxation"
entry_points=$(grep -rhoE 'Result<[^;]*> (Run|Solve)[A-Za-z0-9]*\(' \
                 src --include='*.h' --exclude-dir=api --exclude-dir=serve \
               | grep -oE '(Run|Solve)[A-Za-z0-9]*\($' \
               | tr -d '(' | sort -u)
[ -n "$entry_points" ] || fail "registry coverage (no entry points found)"
for fn in $entry_points; do
  case " $REGISTRY_ALLOWLIST " in *" $fn "*) continue ;; esac
  grep -q "\b$fn\b" src/api/*.cc \
    || { echo "check.sh: '$fn' is not reachable through the solver" \
              "registry (src/api); register it or allowlist it" >&2
         fail "registry coverage"; }
done

# CLI smoke: the registry self-registration must survive linking (static
# registrars are prone to dead stripping).
list=$("$BUILD_DIR"/examples/scwsc_cli --list-solvers) || fail "cli smoke"
for name in cwsc opt-cwsc opt-cmc exact hcmc lp-rounding; do
  echo "$list" | grep -q "^$name " || {
    echo "check.sh: solver '$name' missing from --list-solvers" >&2
    fail "cli smoke"; }
done

# Machine-readable solver list: --list-solvers --json emits the OptionsSpec
# tables as one JSON document (the same serve::SolverListToJson the socket
# server's list_solvers answers with), so tooling never scrapes the text.
"$BUILD_DIR"/examples/scwsc_cli --list-solvers --json \
  > "$BUILD_DIR"/solvers.json || fail "cli smoke (--json)"
python3 -m json.tool "$BUILD_DIR"/solvers.json > /dev/null \
  || fail "cli smoke (--json well-formed)"
python3 - "$BUILD_DIR"/solvers.json <<'EOF' || fail "cli smoke (--json contents)"
import json, sys
solvers = json.load(open(sys.argv[1]))["solvers"]
names = {s["name"] for s in solvers}
assert {"cwsc", "opt-cwsc", "exact"} <= names, names
for s in solvers:
    for option in s["options"]:
        assert {"name", "type", "required"} <= option.keys(), option
EOF

# Observability smoke: a real solve with tracing + metrics enabled must
# produce well-formed JSON (the trace loads in Perfetto / chrome://tracing).
printf 'Region,Product,Cost\nEast,Widget,3\nEast,Gadget,5\nWest,Widget,2\nWest,Gadget,4\nNorth,Widget,1\nNorth,Gadget,6\nSouth,Widget,2\nSouth,Gadget,3\n' \
  > "$BUILD_DIR"/obs_smoke.csv
"$BUILD_DIR"/examples/scwsc_cli --input "$BUILD_DIR"/obs_smoke.csv \
  --measure Cost --solver opt-cwsc --k 4 --coverage 0.5 \
  --trace-out "$BUILD_DIR"/trace.json \
  --metrics-out "$BUILD_DIR"/metrics.json || fail "observability smoke (solve)"
python3 -m json.tool "$BUILD_DIR"/trace.json > /dev/null \
  || fail "observability smoke (trace JSON)"
python3 -m json.tool "$BUILD_DIR"/metrics.json > /dev/null \
  || fail "observability smoke (metrics JSON)"

# Serve smoke: a 20-job batch through the SolveScheduler must produce a
# well-formed report with zero failures and visible result-cache hits (the
# repeats are deterministic duplicates, so misses-only means the cache or
# the canonical option keys broke).
cat > "$BUILD_DIR"/serve_jobs.json <<'EOF'
{"jobs": [
  {"solver": "cwsc", "k": 3, "coverage": 0.5, "label": "warm", "repeat": 8},
  {"solver": "opt-cwsc", "k": 3, "coverage": 0.5, "repeat": 6},
  {"solver": "CMC", "k": 3, "coverage": 0.5, "options": {"b": 2}, "repeat": 4},
  {"solver": "greedy-max-coverage", "k": 4, "coverage": 0.9, "priority": 2},
  {"solver": "exact", "k": 3, "coverage": 0.5, "deadline_ms": 30000}
]}
EOF
"$BUILD_DIR"/examples/scwsc_cli --input "$BUILD_DIR"/obs_smoke.csv \
  --measure Cost --batch "$BUILD_DIR"/serve_jobs.json \
  --batch-out "$BUILD_DIR"/batch_results.json || fail "serve smoke (batch)"
python3 -m json.tool "$BUILD_DIR"/batch_results.json > /dev/null \
  || fail "serve smoke (report JSON)"
python3 - "$BUILD_DIR"/batch_results.json <<'EOF' || fail "serve smoke (report contents)"
import json, sys
agg = json.load(open(sys.argv[1]))["aggregate"]
assert agg["total_jobs"] == 20, agg
assert agg["failed"] == 0, agg
assert agg["result_cache_hits"] > 0, agg
EOF

# Batch negative smoke: a missing jobs file must surface as a typed error
# on stderr and a non-zero exit — not a crash, not a silent empty report.
if "$BUILD_DIR"/examples/scwsc_cli --input "$BUILD_DIR"/obs_smoke.csv \
     --measure Cost --batch "$BUILD_DIR"/no_such_jobs.json \
     --batch-out "$BUILD_DIR"/unused.json 2> "$BUILD_DIR"/batch_err.txt; then
  fail "batch negative smoke (missing jobs file exited 0)"
fi
grep -q "cannot open" "$BUILD_DIR"/batch_err.txt \
  || fail "batch negative smoke (expected a typed NotFound message)"

# Chaos smoke: the same batch under a seeded fault storm. The scheduler
# arms retries/breakers/degradation when a "faults" object is present, so
# the report must stay well-formed and account for every job even though
# solver attempts are being killed underneath it.
cat > "$BUILD_DIR"/serve_chaos_jobs.json <<'EOF'
{"faults": {"seed": 7, "solver_delay_ms": 1,
            "points": {"solver_error": 0.3, "solver_throw": 0.1,
                       "solver_delay": 0.2, "result_cache_corrupt": 0.5}},
 "jobs": [
  {"solver": "cwsc", "k": 3, "coverage": 0.5, "label": "storm", "repeat": 8},
  {"solver": "CMC", "k": 3, "coverage": 0.5, "options": {"b": 2}, "repeat": 4},
  {"solver": "greedy-wsc", "k": 4, "coverage": 0.6, "repeat": 4}
]}
EOF
# Retries may still exhaust under the storm, so tolerate a non-zero exit;
# the gate is the report's integrity, asserted below.
"$BUILD_DIR"/examples/scwsc_cli --input "$BUILD_DIR"/obs_smoke.csv \
  --measure Cost --batch "$BUILD_DIR"/serve_chaos_jobs.json \
  --batch-out "$BUILD_DIR"/chaos_results.json \
  || true
python3 - "$BUILD_DIR"/chaos_results.json <<'EOF' || fail "chaos smoke (report contents)"
import json, sys
report = json.load(open(sys.argv[1]))
agg = report["aggregate"]
assert agg["total_jobs"] == 16, agg
assert agg["succeeded"] + agg["failed"] == agg["total_jobs"], agg
assert len(report["jobs"]) == agg["total_jobs"], len(report["jobs"])
for job in report["jobs"]:
    assert "attempts" in job, job
EOF

# Telemetry smoke: the same batch with the continuous-telemetry pump on —
# an "slo" object with a deliberately untenable latency rule plus CLI
# --telemetry-out/--slo flags. Every JSONL line must parse, the Prometheus
# exposition must exist, the violation must auto-dump a flight-recorder
# trace that chrome://tracing would load, and the aggregate must count the
# violations.
cat > "$BUILD_DIR"/serve_slo_jobs.json <<'EOF'
{"slo": {"rules": ["p99_latency_ms<=0.001"], "interval_ms": 25},
 "jobs": [
  {"solver": "cwsc", "k": 3, "coverage": 0.5, "label": "slo", "repeat": 8},
  {"solver": "opt-cwsc", "k": 3, "coverage": 0.5, "repeat": 6},
  {"solver": "CMC", "k": 3, "coverage": 0.5, "options": {"b": 2}, "repeat": 4}
]}
EOF
"$BUILD_DIR"/examples/scwsc_cli --input "$BUILD_DIR"/obs_smoke.csv \
  --measure Cost --batch "$BUILD_DIR"/serve_slo_jobs.json \
  --batch-out "$BUILD_DIR"/slo_results.json \
  --telemetry-out "$BUILD_DIR"/telemetry.jsonl \
  --slo "error_rate<=0.5" || fail "telemetry smoke (batch)"
python3 - "$BUILD_DIR"/telemetry.jsonl <<'EOF' || fail "telemetry smoke (JSONL)"
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert lines, "telemetry JSONL is empty"
for line in lines:
    for key in ("tick", "counters", "gauges", "quantiles", "slo"):
        assert key in line, (key, line)
assert lines[-1]["slo"]["violations_total"] >= 1, lines[-1]["slo"]
EOF
[ -s "$BUILD_DIR"/telemetry.jsonl.prom ] || fail "telemetry smoke (prom)"
python3 -m json.tool "$BUILD_DIR"/telemetry.jsonl.slo_trace.json > /dev/null \
  || fail "telemetry smoke (SLO trace dump)"
python3 - "$BUILD_DIR"/slo_results.json <<'EOF' || fail "telemetry smoke (aggregate)"
import json, sys
report = json.load(open(sys.argv[1]))
assert report["aggregate"]["slo_violations"] >= 1, report["aggregate"]
EOF

SCWSC_BENCH_SCALE=${SCWSC_BENCH_SCALE:-0.02} \
  "$BUILD_DIR"/bench/micro_core --engine-compare \
  --out="$BUILD_DIR"/BENCH_core.json || fail "engine smoke"

SCWSC_BENCH_SCALE=${SCWSC_BENCH_SCALE:-0.02} \
  "$BUILD_DIR"/bench/anytime_quality \
  --out="$BUILD_DIR"/BENCH_anytime.json || fail "anytime smoke"

# Serve throughput: asserts >= 3x jobs/sec over a serial loop on a warm
# cache and that scheduled solutions are identical to serial execution.
SCWSC_BENCH_SCALE=${SCWSC_BENCH_SCALE:-0.02} \
  "$BUILD_DIR"/bench/serve_throughput "$BUILD_DIR"/BENCH_serve.json \
  || fail "serve throughput smoke"

# Serve chaos soak: open-loop fault storm through the scheduler. The bench
# itself gates on completion, bounded error amplification, zero corrupt
# results served and unaffected-job p99; re-validate the report JSON here.
SCWSC_BENCH_SCALE=${SCWSC_BENCH_SCALE:-0.02} \
  "$BUILD_DIR"/bench/serve_chaos "$BUILD_DIR"/BENCH_chaos.json \
  || fail "serve chaos smoke"
python3 - "$BUILD_DIR"/BENCH_chaos.json <<'EOF' || fail "serve chaos smoke (report)"
import json, sys
report = json.load(open(sys.argv[1]))
assert report["pass"] is True, report["gates"]
assert all(report["gates"].values()), report["gates"]
EOF

# Serve soak: open-loop Poisson arrivals from three weighted tenants with
# live snapshot deltas. The bench itself gates on bit-identity of every
# delta-applied version vs a from-scratch rebuild, per-delta shard chaining
# plus cross-version shard sharing, zero tenant starvation and p99;
# re-validate the report JSON here.
SCWSC_BENCH_SCALE=${SCWSC_BENCH_SCALE:-0.02} \
  "$BUILD_DIR"/bench/serve_soak "$BUILD_DIR"/BENCH_serve_soak.json \
  || fail "serve soak smoke"
python3 - "$BUILD_DIR"/BENCH_serve_soak.json <<'EOF' || fail "serve soak smoke (report)"
import json, sys
report = json.load(open(sys.argv[1]))
assert all(report["gates"].values()), report["gates"]
assert report["snapshot_cache_shard_shared"] > 0, report
for tenant in report["tenants"].values():
    assert tenant["succeeded"] > 0, report["tenants"]
EOF

# Shard scaling: sharded snapshots must be bit-identical to the flat path
# at every shard count (the speedup bar only arms at SCWSC_BENCH_SCALE >=
# 1.0, so the small-scale smoke here checks correctness, not timing).
SCWSC_BENCH_SCALE=${SCWSC_BENCH_SCALE:-0.02} \
  "$BUILD_DIR"/bench/shard_scaling "$BUILD_DIR"/BENCH_shard.json \
  || fail "shard scaling smoke"
python3 - "$BUILD_DIR"/BENCH_shard.json <<'EOF' || fail "shard scaling smoke (report)"
import json, sys
report = json.load(open(sys.argv[1]))
assert report["pass"] is True, report["gates"]
assert report["gates"]["bit_identical_all_arms"] is True, report["gates"]
EOF

echo "check.sh: build, tests, observability, serve, chaos, telemetry, soak, shard, engine and anytime smokes all green"
