# Empty dependencies file for tripartite_test.
# This may be replaced when dependencies are built.
