file(REMOVE_RECURSE
  "CMakeFiles/tripartite_test.dir/tripartite_test.cc.o"
  "CMakeFiles/tripartite_test.dir/tripartite_test.cc.o.d"
  "tripartite_test"
  "tripartite_test.pdb"
  "tripartite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tripartite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
