# Empty dependencies file for multiweight_test.
# This may be replaced when dependencies are built.
