file(REMOVE_RECURSE
  "CMakeFiles/multiweight_test.dir/multiweight_test.cc.o"
  "CMakeFiles/multiweight_test.dir/multiweight_test.cc.o.d"
  "multiweight_test"
  "multiweight_test.pdb"
  "multiweight_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiweight_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
