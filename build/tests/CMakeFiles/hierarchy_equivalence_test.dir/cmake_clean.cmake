file(REMOVE_RECURSE
  "CMakeFiles/hierarchy_equivalence_test.dir/hierarchy_equivalence_test.cc.o"
  "CMakeFiles/hierarchy_equivalence_test.dir/hierarchy_equivalence_test.cc.o.d"
  "hierarchy_equivalence_test"
  "hierarchy_equivalence_test.pdb"
  "hierarchy_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchy_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
