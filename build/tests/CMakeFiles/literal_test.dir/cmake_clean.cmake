file(REMOVE_RECURSE
  "CMakeFiles/literal_test.dir/literal_test.cc.o"
  "CMakeFiles/literal_test.dir/literal_test.cc.o.d"
  "literal_test"
  "literal_test.pdb"
  "literal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/literal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
