# Empty compiler generated dependencies file for hcwsc_test.
# This may be replaced when dependencies are built.
