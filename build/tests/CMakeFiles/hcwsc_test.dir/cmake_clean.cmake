file(REMOVE_RECURSE
  "CMakeFiles/hcwsc_test.dir/hcwsc_test.cc.o"
  "CMakeFiles/hcwsc_test.dir/hcwsc_test.cc.o.d"
  "hcwsc_test"
  "hcwsc_test.pdb"
  "hcwsc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcwsc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
