# Empty dependencies file for greedy_state_test.
# This may be replaced when dependencies are built.
