file(REMOVE_RECURSE
  "CMakeFiles/greedy_state_test.dir/greedy_state_test.cc.o"
  "CMakeFiles/greedy_state_test.dir/greedy_state_test.cc.o.d"
  "greedy_state_test"
  "greedy_state_test.pdb"
  "greedy_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
