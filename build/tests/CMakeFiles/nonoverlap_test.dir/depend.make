# Empty dependencies file for nonoverlap_test.
# This may be replaced when dependencies are built.
