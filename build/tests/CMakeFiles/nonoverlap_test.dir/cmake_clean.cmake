file(REMOVE_RECURSE
  "CMakeFiles/nonoverlap_test.dir/nonoverlap_test.cc.o"
  "CMakeFiles/nonoverlap_test.dir/nonoverlap_test.cc.o.d"
  "nonoverlap_test"
  "nonoverlap_test.pdb"
  "nonoverlap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonoverlap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
