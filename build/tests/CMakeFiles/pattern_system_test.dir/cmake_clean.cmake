file(REMOVE_RECURSE
  "CMakeFiles/pattern_system_test.dir/pattern_system_test.cc.o"
  "CMakeFiles/pattern_system_test.dir/pattern_system_test.cc.o.d"
  "pattern_system_test"
  "pattern_system_test.pdb"
  "pattern_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
