# Empty dependencies file for pattern_system_test.
# This may be replaced when dependencies are built.
