# Empty dependencies file for cwsc_test.
# This may be replaced when dependencies are built.
