file(REMOVE_RECURSE
  "CMakeFiles/cwsc_test.dir/cwsc_test.cc.o"
  "CMakeFiles/cwsc_test.dir/cwsc_test.cc.o.d"
  "cwsc_test"
  "cwsc_test.pdb"
  "cwsc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwsc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
