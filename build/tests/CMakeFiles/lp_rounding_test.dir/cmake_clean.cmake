file(REMOVE_RECURSE
  "CMakeFiles/lp_rounding_test.dir/lp_rounding_test.cc.o"
  "CMakeFiles/lp_rounding_test.dir/lp_rounding_test.cc.o.d"
  "lp_rounding_test"
  "lp_rounding_test.pdb"
  "lp_rounding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_rounding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
