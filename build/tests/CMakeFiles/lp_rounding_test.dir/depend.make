# Empty dependencies file for lp_rounding_test.
# This may be replaced when dependencies are built.
