# Empty dependencies file for solution_test.
# This may be replaced when dependencies are built.
