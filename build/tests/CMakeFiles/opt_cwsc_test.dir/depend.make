# Empty dependencies file for opt_cwsc_test.
# This may be replaced when dependencies are built.
