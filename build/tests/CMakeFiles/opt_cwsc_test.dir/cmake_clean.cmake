file(REMOVE_RECURSE
  "CMakeFiles/opt_cwsc_test.dir/opt_cwsc_test.cc.o"
  "CMakeFiles/opt_cwsc_test.dir/opt_cwsc_test.cc.o.d"
  "opt_cwsc_test"
  "opt_cwsc_test.pdb"
  "opt_cwsc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_cwsc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
