file(REMOVE_RECURSE
  "CMakeFiles/hcmc_test.dir/hcmc_test.cc.o"
  "CMakeFiles/hcmc_test.dir/hcmc_test.cc.o.d"
  "hcmc_test"
  "hcmc_test.pdb"
  "hcmc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcmc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
