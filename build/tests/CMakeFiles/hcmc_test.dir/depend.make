# Empty dependencies file for hcmc_test.
# This may be replaced when dependencies are built.
