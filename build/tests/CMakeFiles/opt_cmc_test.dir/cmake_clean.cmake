file(REMOVE_RECURSE
  "CMakeFiles/opt_cmc_test.dir/opt_cmc_test.cc.o"
  "CMakeFiles/opt_cmc_test.dir/opt_cmc_test.cc.o.d"
  "opt_cmc_test"
  "opt_cmc_test.pdb"
  "opt_cmc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_cmc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
