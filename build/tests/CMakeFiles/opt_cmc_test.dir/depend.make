# Empty dependencies file for opt_cmc_test.
# This may be replaced when dependencies are built.
