file(REMOVE_RECURSE
  "CMakeFiles/cmc_test.dir/cmc_test.cc.o"
  "CMakeFiles/cmc_test.dir/cmc_test.cc.o.d"
  "cmc_test"
  "cmc_test.pdb"
  "cmc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
