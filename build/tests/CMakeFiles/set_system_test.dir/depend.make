# Empty dependencies file for set_system_test.
# This may be replaced when dependencies are built.
