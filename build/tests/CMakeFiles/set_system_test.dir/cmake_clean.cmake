file(REMOVE_RECURSE
  "CMakeFiles/set_system_test.dir/set_system_test.cc.o"
  "CMakeFiles/set_system_test.dir/set_system_test.cc.o.d"
  "set_system_test"
  "set_system_test.pdb"
  "set_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/set_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
