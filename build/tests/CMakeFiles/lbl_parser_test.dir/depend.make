# Empty dependencies file for lbl_parser_test.
# This may be replaced when dependencies are built.
