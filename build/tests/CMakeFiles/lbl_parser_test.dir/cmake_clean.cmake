file(REMOVE_RECURSE
  "CMakeFiles/lbl_parser_test.dir/lbl_parser_test.cc.o"
  "CMakeFiles/lbl_parser_test.dir/lbl_parser_test.cc.o.d"
  "lbl_parser_test"
  "lbl_parser_test.pdb"
  "lbl_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbl_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
