file(REMOVE_RECURSE
  "CMakeFiles/exp_lp_rounding.dir/exp_lp_rounding.cc.o"
  "CMakeFiles/exp_lp_rounding.dir/exp_lp_rounding.cc.o.d"
  "exp_lp_rounding"
  "exp_lp_rounding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_lp_rounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
