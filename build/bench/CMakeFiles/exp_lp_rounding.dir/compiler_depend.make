# Empty compiler generated dependencies file for exp_lp_rounding.
# This may be replaced when dependencies are built.
