# Empty dependencies file for fig5_runtime_vs_datasize.
# This may be replaced when dependencies are built.
