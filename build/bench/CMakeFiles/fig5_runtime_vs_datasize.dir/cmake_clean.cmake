file(REMOVE_RECURSE
  "CMakeFiles/fig5_runtime_vs_datasize.dir/fig5_runtime_vs_datasize.cc.o"
  "CMakeFiles/fig5_runtime_vs_datasize.dir/fig5_runtime_vs_datasize.cc.o.d"
  "fig5_runtime_vs_datasize"
  "fig5_runtime_vs_datasize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_runtime_vs_datasize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
