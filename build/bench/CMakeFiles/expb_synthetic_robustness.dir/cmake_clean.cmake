file(REMOVE_RECURSE
  "CMakeFiles/expb_synthetic_robustness.dir/expb_synthetic_robustness.cc.o"
  "CMakeFiles/expb_synthetic_robustness.dir/expb_synthetic_robustness.cc.o.d"
  "expb_synthetic_robustness"
  "expb_synthetic_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expb_synthetic_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
