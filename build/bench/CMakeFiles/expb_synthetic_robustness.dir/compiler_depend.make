# Empty compiler generated dependencies file for expb_synthetic_robustness.
# This may be replaced when dependencies are built.
