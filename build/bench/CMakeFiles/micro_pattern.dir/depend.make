# Empty dependencies file for micro_pattern.
# This may be replaced when dependencies are built.
