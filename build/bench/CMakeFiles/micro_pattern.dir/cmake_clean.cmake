file(REMOVE_RECURSE
  "CMakeFiles/micro_pattern.dir/micro_pattern.cc.o"
  "CMakeFiles/micro_pattern.dir/micro_pattern.cc.o.d"
  "micro_pattern"
  "micro_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
