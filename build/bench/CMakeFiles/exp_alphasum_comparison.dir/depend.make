# Empty dependencies file for exp_alphasum_comparison.
# This may be replaced when dependencies are built.
