file(REMOVE_RECURSE
  "CMakeFiles/exp_alphasum_comparison.dir/exp_alphasum_comparison.cc.o"
  "CMakeFiles/exp_alphasum_comparison.dir/exp_alphasum_comparison.cc.o.d"
  "exp_alphasum_comparison"
  "exp_alphasum_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_alphasum_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
