# Empty compiler generated dependencies file for exp_vi_c_existing_approaches.
# This may be replaced when dependencies are built.
