file(REMOVE_RECURSE
  "CMakeFiles/exp_vi_c_existing_approaches.dir/exp_vi_c_existing_approaches.cc.o"
  "CMakeFiles/exp_vi_c_existing_approaches.dir/exp_vi_c_existing_approaches.cc.o.d"
  "exp_vi_c_existing_approaches"
  "exp_vi_c_existing_approaches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_vi_c_existing_approaches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
