file(REMOVE_RECURSE
  "libscwsc_bench_util.a"
)
