# Empty dependencies file for scwsc_bench_util.
# This may be replaced when dependencies are built.
