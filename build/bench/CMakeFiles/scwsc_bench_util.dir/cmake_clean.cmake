file(REMOVE_RECURSE
  "CMakeFiles/scwsc_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/scwsc_bench_util.dir/bench_util.cc.o.d"
  "libscwsc_bench_util.a"
  "libscwsc_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scwsc_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
