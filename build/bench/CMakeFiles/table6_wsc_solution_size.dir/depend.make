# Empty dependencies file for table6_wsc_solution_size.
# This may be replaced when dependencies are built.
