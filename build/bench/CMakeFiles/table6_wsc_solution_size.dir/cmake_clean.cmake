file(REMOVE_RECURSE
  "CMakeFiles/table6_wsc_solution_size.dir/table6_wsc_solution_size.cc.o"
  "CMakeFiles/table6_wsc_solution_size.dir/table6_wsc_solution_size.cc.o.d"
  "table6_wsc_solution_size"
  "table6_wsc_solution_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_wsc_solution_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
