# Empty compiler generated dependencies file for table5_runtime_comparison.
# This may be replaced when dependencies are built.
