file(REMOVE_RECURSE
  "CMakeFiles/exp_vi_d_optimal_comparison.dir/exp_vi_d_optimal_comparison.cc.o"
  "CMakeFiles/exp_vi_d_optimal_comparison.dir/exp_vi_d_optimal_comparison.cc.o.d"
  "exp_vi_d_optimal_comparison"
  "exp_vi_d_optimal_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_vi_d_optimal_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
