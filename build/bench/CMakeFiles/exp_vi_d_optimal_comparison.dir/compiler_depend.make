# Empty compiler generated dependencies file for exp_vi_d_optimal_comparison.
# This may be replaced when dependencies are built.
