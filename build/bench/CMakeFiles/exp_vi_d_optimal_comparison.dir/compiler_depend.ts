# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for exp_vi_d_optimal_comparison.
