file(REMOVE_RECURSE
  "CMakeFiles/table4_solution_quality.dir/table4_solution_quality.cc.o"
  "CMakeFiles/table4_solution_quality.dir/table4_solution_quality.cc.o.d"
  "table4_solution_quality"
  "table4_solution_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_solution_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
