# Empty dependencies file for ablation_cmc_params.
# This may be replaced when dependencies are built.
