file(REMOVE_RECURSE
  "CMakeFiles/ablation_cmc_params.dir/ablation_cmc_params.cc.o"
  "CMakeFiles/ablation_cmc_params.dir/ablation_cmc_params.cc.o.d"
  "ablation_cmc_params"
  "ablation_cmc_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cmc_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
