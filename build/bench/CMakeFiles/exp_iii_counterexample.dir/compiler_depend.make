# Empty compiler generated dependencies file for exp_iii_counterexample.
# This may be replaced when dependencies are built.
