file(REMOVE_RECURSE
  "CMakeFiles/exp_iii_counterexample.dir/exp_iii_counterexample.cc.o"
  "CMakeFiles/exp_iii_counterexample.dir/exp_iii_counterexample.cc.o.d"
  "exp_iii_counterexample"
  "exp_iii_counterexample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_iii_counterexample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
