file(REMOVE_RECURSE
  "CMakeFiles/fig9_runtime_vs_coverage.dir/fig9_runtime_vs_coverage.cc.o"
  "CMakeFiles/fig9_runtime_vs_coverage.dir/fig9_runtime_vs_coverage.cc.o.d"
  "fig9_runtime_vs_coverage"
  "fig9_runtime_vs_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_runtime_vs_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
