file(REMOVE_RECURSE
  "CMakeFiles/fig8_runtime_vs_k.dir/fig8_runtime_vs_k.cc.o"
  "CMakeFiles/fig8_runtime_vs_k.dir/fig8_runtime_vs_k.cc.o.d"
  "fig8_runtime_vs_k"
  "fig8_runtime_vs_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_runtime_vs_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
