# Empty dependencies file for fig8_runtime_vs_k.
# This may be replaced when dependencies are built.
