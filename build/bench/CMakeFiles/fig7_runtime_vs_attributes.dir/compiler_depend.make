# Empty compiler generated dependencies file for fig7_runtime_vs_attributes.
# This may be replaced when dependencies are built.
