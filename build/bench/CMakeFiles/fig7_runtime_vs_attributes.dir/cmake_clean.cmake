file(REMOVE_RECURSE
  "CMakeFiles/fig7_runtime_vs_attributes.dir/fig7_runtime_vs_attributes.cc.o"
  "CMakeFiles/fig7_runtime_vs_attributes.dir/fig7_runtime_vs_attributes.cc.o.d"
  "fig7_runtime_vs_attributes"
  "fig7_runtime_vs_attributes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_runtime_vs_attributes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
