file(REMOVE_RECURSE
  "CMakeFiles/fig6_patterns_considered.dir/fig6_patterns_considered.cc.o"
  "CMakeFiles/fig6_patterns_considered.dir/fig6_patterns_considered.cc.o.d"
  "fig6_patterns_considered"
  "fig6_patterns_considered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_patterns_considered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
