# Empty dependencies file for fig6_patterns_considered.
# This may be replaced when dependencies are built.
