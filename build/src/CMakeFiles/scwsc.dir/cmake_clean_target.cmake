file(REMOVE_RECURSE
  "libscwsc.a"
)
