# Empty dependencies file for scwsc.
# This may be replaced when dependencies are built.
