
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/bitset.cc" "src/CMakeFiles/scwsc.dir/common/bitset.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/common/bitset.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/scwsc.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/scwsc.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/scwsc.dir/common/status.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/common/status.cc.o.d"
  "/root/repo/src/common/stopwatch.cc" "src/CMakeFiles/scwsc.dir/common/stopwatch.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/common/stopwatch.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/scwsc.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/common/strings.cc.o.d"
  "/root/repo/src/core/baselines.cc" "src/CMakeFiles/scwsc.dir/core/baselines.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/core/baselines.cc.o.d"
  "/root/repo/src/core/cmc.cc" "src/CMakeFiles/scwsc.dir/core/cmc.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/core/cmc.cc.o.d"
  "/root/repo/src/core/cwsc.cc" "src/CMakeFiles/scwsc.dir/core/cwsc.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/core/cwsc.cc.o.d"
  "/root/repo/src/core/exact.cc" "src/CMakeFiles/scwsc.dir/core/exact.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/core/exact.cc.o.d"
  "/root/repo/src/core/greedy_state.cc" "src/CMakeFiles/scwsc.dir/core/greedy_state.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/core/greedy_state.cc.o.d"
  "/root/repo/src/core/instances.cc" "src/CMakeFiles/scwsc.dir/core/instances.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/core/instances.cc.o.d"
  "/root/repo/src/core/literal.cc" "src/CMakeFiles/scwsc.dir/core/literal.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/core/literal.cc.o.d"
  "/root/repo/src/core/nonoverlap.cc" "src/CMakeFiles/scwsc.dir/core/nonoverlap.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/core/nonoverlap.cc.o.d"
  "/root/repo/src/core/set_system.cc" "src/CMakeFiles/scwsc.dir/core/set_system.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/core/set_system.cc.o.d"
  "/root/repo/src/core/solution.cc" "src/CMakeFiles/scwsc.dir/core/solution.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/core/solution.cc.o.d"
  "/root/repo/src/ext/incremental.cc" "src/CMakeFiles/scwsc.dir/ext/incremental.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/ext/incremental.cc.o.d"
  "/root/repo/src/ext/multiweight.cc" "src/CMakeFiles/scwsc.dir/ext/multiweight.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/ext/multiweight.cc.o.d"
  "/root/repo/src/gen/lbl_parser.cc" "src/CMakeFiles/scwsc.dir/gen/lbl_parser.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/gen/lbl_parser.cc.o.d"
  "/root/repo/src/gen/lbl_synth.cc" "src/CMakeFiles/scwsc.dir/gen/lbl_synth.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/gen/lbl_synth.cc.o.d"
  "/root/repo/src/gen/perturb.cc" "src/CMakeFiles/scwsc.dir/gen/perturb.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/gen/perturb.cc.o.d"
  "/root/repo/src/gen/toy.cc" "src/CMakeFiles/scwsc.dir/gen/toy.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/gen/toy.cc.o.d"
  "/root/repo/src/gen/tripartite.cc" "src/CMakeFiles/scwsc.dir/gen/tripartite.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/gen/tripartite.cc.o.d"
  "/root/repo/src/hierarchy/bucketize.cc" "src/CMakeFiles/scwsc.dir/hierarchy/bucketize.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/hierarchy/bucketize.cc.o.d"
  "/root/repo/src/hierarchy/hcmc.cc" "src/CMakeFiles/scwsc.dir/hierarchy/hcmc.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/hierarchy/hcmc.cc.o.d"
  "/root/repo/src/hierarchy/hcwsc.cc" "src/CMakeFiles/scwsc.dir/hierarchy/hcwsc.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/hierarchy/hcwsc.cc.o.d"
  "/root/repo/src/hierarchy/henumerate.cc" "src/CMakeFiles/scwsc.dir/hierarchy/henumerate.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/hierarchy/henumerate.cc.o.d"
  "/root/repo/src/hierarchy/hierarchy.cc" "src/CMakeFiles/scwsc.dir/hierarchy/hierarchy.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/hierarchy/hierarchy.cc.o.d"
  "/root/repo/src/hierarchy/hpattern.cc" "src/CMakeFiles/scwsc.dir/hierarchy/hpattern.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/hierarchy/hpattern.cc.o.d"
  "/root/repo/src/lp/lp_rounding.cc" "src/CMakeFiles/scwsc.dir/lp/lp_rounding.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/lp/lp_rounding.cc.o.d"
  "/root/repo/src/lp/simplex.cc" "src/CMakeFiles/scwsc.dir/lp/simplex.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/lp/simplex.cc.o.d"
  "/root/repo/src/pattern/benefit_index.cc" "src/CMakeFiles/scwsc.dir/pattern/benefit_index.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/pattern/benefit_index.cc.o.d"
  "/root/repo/src/pattern/codec.cc" "src/CMakeFiles/scwsc.dir/pattern/codec.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/pattern/codec.cc.o.d"
  "/root/repo/src/pattern/cost.cc" "src/CMakeFiles/scwsc.dir/pattern/cost.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/pattern/cost.cc.o.d"
  "/root/repo/src/pattern/enumerate.cc" "src/CMakeFiles/scwsc.dir/pattern/enumerate.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/pattern/enumerate.cc.o.d"
  "/root/repo/src/pattern/lattice.cc" "src/CMakeFiles/scwsc.dir/pattern/lattice.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/pattern/lattice.cc.o.d"
  "/root/repo/src/pattern/opt_cmc.cc" "src/CMakeFiles/scwsc.dir/pattern/opt_cmc.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/pattern/opt_cmc.cc.o.d"
  "/root/repo/src/pattern/opt_cwsc.cc" "src/CMakeFiles/scwsc.dir/pattern/opt_cwsc.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/pattern/opt_cwsc.cc.o.d"
  "/root/repo/src/pattern/pattern.cc" "src/CMakeFiles/scwsc.dir/pattern/pattern.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/pattern/pattern.cc.o.d"
  "/root/repo/src/pattern/pattern_system.cc" "src/CMakeFiles/scwsc.dir/pattern/pattern_system.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/pattern/pattern_system.cc.o.d"
  "/root/repo/src/table/builder.cc" "src/CMakeFiles/scwsc.dir/table/builder.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/table/builder.cc.o.d"
  "/root/repo/src/table/csv.cc" "src/CMakeFiles/scwsc.dir/table/csv.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/table/csv.cc.o.d"
  "/root/repo/src/table/schema.cc" "src/CMakeFiles/scwsc.dir/table/schema.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/table/schema.cc.o.d"
  "/root/repo/src/table/table.cc" "src/CMakeFiles/scwsc.dir/table/table.cc.o" "gcc" "src/CMakeFiles/scwsc.dir/table/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
