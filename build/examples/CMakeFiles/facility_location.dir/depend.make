# Empty dependencies file for facility_location.
# This may be replaced when dependencies are built.
