file(REMOVE_RECURSE
  "CMakeFiles/marketing_campaign.dir/marketing_campaign.cpp.o"
  "CMakeFiles/marketing_campaign.dir/marketing_campaign.cpp.o.d"
  "marketing_campaign"
  "marketing_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marketing_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
