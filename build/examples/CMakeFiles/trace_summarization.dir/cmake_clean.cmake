file(REMOVE_RECURSE
  "CMakeFiles/trace_summarization.dir/trace_summarization.cpp.o"
  "CMakeFiles/trace_summarization.dir/trace_summarization.cpp.o.d"
  "trace_summarization"
  "trace_summarization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_summarization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
