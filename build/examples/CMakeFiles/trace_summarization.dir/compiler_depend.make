# Empty compiler generated dependencies file for trace_summarization.
# This may be replaced when dependencies are built.
