file(REMOVE_RECURSE
  "CMakeFiles/hierarchical_rollup.dir/hierarchical_rollup.cpp.o"
  "CMakeFiles/hierarchical_rollup.dir/hierarchical_rollup.cpp.o.d"
  "hierarchical_rollup"
  "hierarchical_rollup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchical_rollup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
