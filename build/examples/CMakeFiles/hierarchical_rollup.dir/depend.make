# Empty dependencies file for hierarchical_rollup.
# This may be replaced when dependencies are built.
