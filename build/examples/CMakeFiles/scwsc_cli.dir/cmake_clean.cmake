file(REMOVE_RECURSE
  "CMakeFiles/scwsc_cli.dir/scwsc_cli.cpp.o"
  "CMakeFiles/scwsc_cli.dir/scwsc_cli.cpp.o.d"
  "scwsc_cli"
  "scwsc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scwsc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
