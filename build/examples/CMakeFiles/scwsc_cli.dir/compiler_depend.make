# Empty compiler generated dependencies file for scwsc_cli.
# This may be replaced when dependencies are built.
