// Tests for the always-on flight recorder: bounded per-thread rings, the
// enabled gate, Chrome-trace dumps, RecorderScope, and concurrent writers
// racing a dump (the TSan CI job runs this file under ThreadSanitizer).

#include "src/obs/recorder.h"

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace scwsc {
namespace obs {
namespace {

TEST(FlightRecorderTest, InstantsAndCompletesAppearInDump) {
  FlightRecorder recorder;
  recorder.RecordInstant("breaker/opened", 3.0);
  const std::int64_t start = recorder.NowNs();
  recorder.RecordComplete("serve.run/cwsc", start, recorder.NowNs());
  EXPECT_EQ(recorder.recorded(), 2u);
  EXPECT_EQ(recorder.num_threads(), 1u);

  const std::string json = recorder.DumpChromeTraceJson();
  EXPECT_TRUE(test::JsonChecker::IsValid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("breaker/opened"), std::string::npos);
  EXPECT_NE(json.find("serve.run/cwsc"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("scwsc-flight-0"), std::string::npos);  // thread name
}

TEST(FlightRecorderTest, RingWrapKeepsMemoryBounded) {
  RecorderOptions options;
  options.ring_capacity = 64;
  FlightRecorder recorder(options);
  for (int i = 0; i < 1000; ++i) {
    recorder.RecordInstant("tick", static_cast<double>(i));
  }
  EXPECT_EQ(recorder.recorded(), 1000u);
  // The dump retains at most ring_capacity entries for this thread: the
  // newest ones. Count "tick" occurrences in the rendered JSON.
  const std::string json = recorder.DumpChromeTraceJson();
  std::size_t occurrences = 0;
  for (std::size_t pos = json.find("\"tick\""); pos != std::string::npos;
       pos = json.find("\"tick\"", pos + 1)) {
    ++occurrences;
  }
  EXPECT_LE(occurrences, options.ring_capacity);
  EXPECT_GT(occurrences, 0u);
  // The newest entry survived the wrap; the oldest did not.
  EXPECT_NE(json.find("\"v\":999"), std::string::npos);
  EXPECT_EQ(json.find("\"v\":1,"), std::string::npos);
}

TEST(FlightRecorderTest, DisabledRecorderDropsNothingIntoRings) {
  FlightRecorder recorder;
  recorder.set_enabled(false);
  recorder.RecordInstant("ignored");
  const std::int64_t t = recorder.NowNs();
  recorder.RecordComplete("also-ignored", t, t + 10);
  EXPECT_EQ(recorder.recorded(), 0u);
  recorder.set_enabled(true);
  recorder.RecordInstant("kept");
  EXPECT_EQ(recorder.recorded(), 1u);
}

TEST(FlightRecorderTest, LongNamesAreTruncatedNotRejected) {
  FlightRecorder recorder;
  const std::string long_name(100, 'x');
  recorder.RecordInstant(long_name);
  EXPECT_EQ(recorder.recorded(), 1u);
  const std::string json = recorder.DumpChromeTraceJson();
  EXPECT_TRUE(test::JsonChecker::IsValid(json));
  EXPECT_NE(json.find(std::string(30, 'x')), std::string::npos);
  EXPECT_EQ(json.find(long_name), std::string::npos);
}

TEST(FlightRecorderTest, DumpToFileWritesParsableTrace) {
  FlightRecorder recorder;
  recorder.RecordInstant("event");
  const std::string path =
      ::testing::TempDir() + "/scwsc_recorder_dump.json";
  SCWSC_ASSERT_OK(recorder.DumpToFile(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buffer[4096];
  std::size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_TRUE(test::JsonChecker::IsValid(contents)) << contents;
  EXPECT_NE(contents.find("\"event\""), std::string::npos);
}

TEST(FlightRecorderTest, RecorderScopeRecordsOnDestruction) {
  FlightRecorder recorder;
  {
    RecorderScope scope("scoped-work", &recorder);
  }
  EXPECT_EQ(recorder.recorded(), 1u);
  const std::string json = recorder.DumpChromeTraceJson();
  EXPECT_NE(json.find("scoped-work"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(FlightRecorderTest, MovedFromScopeDoesNotDoubleRecord) {
  FlightRecorder recorder;
  {
    RecorderScope outer;
    {
      RecorderScope inner("moved", &recorder);
      outer = std::move(inner);
    }  // inner destroyed moved-from: no record yet
    EXPECT_EQ(recorder.recorded(), 0u);
  }  // outer records once
  EXPECT_EQ(recorder.recorded(), 1u);
}

TEST(FlightRecorderTest, ConcurrentWritersAndDumpsStayConsistent) {
  RecorderOptions options;
  options.ring_capacity = 256;
  FlightRecorder recorder(options);
  constexpr int kThreads = 4;
  constexpr int kEvents = 5000;
  std::atomic<bool> stop{false};
  std::thread dumper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string json = recorder.DumpChromeTraceJson();
      EXPECT_TRUE(test::JsonChecker::IsValid(json));
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder, t] {
      for (int i = 0; i < kEvents; ++i) {
        recorder.RecordInstant("w", static_cast<double>(t));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  dumper.join();
  // Every event was either accepted or counted as dropped — none vanished.
  EXPECT_EQ(recorder.recorded() + recorder.dropped(),
            static_cast<std::uint64_t>(kThreads) * kEvents);
  EXPECT_EQ(recorder.num_threads(), static_cast<std::size_t>(kThreads));
  EXPECT_TRUE(test::JsonChecker::IsValid(recorder.DumpChromeTraceJson()));
}

TEST(FlightRecorderTest, GlobalIsASingleton) {
  FlightRecorder& a = FlightRecorder::Global();
  FlightRecorder& b = FlightRecorder::Global();
  EXPECT_EQ(&a, &b);
  EXPECT_TRUE(a.enabled());
}

}  // namespace
}  // namespace obs
}  // namespace scwsc
