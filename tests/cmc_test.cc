#include "src/core/cmc.h"

#include <cmath>

#include "gtest/gtest.h"
#include "src/common/rng.h"
#include "src/core/instances.h"
#include "src/core/solution.h"

namespace scwsc {
namespace {

TEST(BuildCmcLevelsTest, PartitionsBudgetForPowerOfTwoK) {
  // k = 4, B = 8: geometric levels (4,8], (2,4], then cheap [0,2] with
  // capacity k.
  auto levels = BuildCmcLevels(8.0, 4, 0.0, 1);
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_DOUBLE_EQ(levels[0].hi, 8.0);
  EXPECT_DOUBLE_EQ(levels[0].lo, 4.0);
  EXPECT_EQ(levels[0].capacity, 2u);
  EXPECT_DOUBLE_EQ(levels[1].hi, 4.0);
  EXPECT_DOUBLE_EQ(levels[1].lo, 2.0);
  EXPECT_EQ(levels[1].capacity, 4u);
  EXPECT_DOUBLE_EQ(levels[2].hi, 2.0);
  EXPECT_TRUE(levels[2].closed_at_lo);
  EXPECT_EQ(levels[2].capacity, 4u);
}

TEST(BuildCmcLevelsTest, NonPowerOfTwoKClampsLastGeometricLevel) {
  // k = 3, B = 12: levels (6,12] cap 2, (4,6] cap 4 (clamped at B/k = 4),
  // [0,4] cap 3.
  auto levels = BuildCmcLevels(12.0, 3, 0.0, 1);
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_DOUBLE_EQ(levels[1].lo, 4.0);
  EXPECT_EQ(levels[1].capacity, 4u);
  EXPECT_DOUBLE_EQ(levels[2].hi, 4.0);
  EXPECT_EQ(levels[2].capacity, 3u);
}

TEST(BuildCmcLevelsTest, KOneHasSingleCheapLevel) {
  auto levels = BuildCmcLevels(10.0, 1, 0.0, 1);
  ASSERT_EQ(levels.size(), 1u);
  EXPECT_DOUBLE_EQ(levels[0].hi, 10.0);
  EXPECT_TRUE(levels[0].closed_at_lo);
  EXPECT_EQ(levels[0].capacity, 1u);
}

TEST(BuildCmcLevelsTest, EpsilonVariantLimitsGeometricCapacity) {
  // k = 12, eps = 0.5 -> allowance 6: levels cap 2 and 4 (2+4 <= 6), then
  // cheap level with capacity 12 (the paper's own example in §V-A3).
  auto levels = BuildCmcLevels(16.0, 12, 0.5, 1);
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_EQ(levels[0].capacity, 2u);
  EXPECT_EQ(levels[1].capacity, 4u);
  EXPECT_EQ(levels[2].capacity, 12u);
  EXPECT_DOUBLE_EQ(levels[2].hi, 4.0);  // B / 2^2
}

TEST(BuildCmcLevelsTest, TinyEpsilonDegeneratesToOneLevel) {
  auto levels = BuildCmcLevels(16.0, 4, 0.1, 1);  // allowance 0.4 < 2
  ASSERT_EQ(levels.size(), 1u);
  EXPECT_EQ(levels[0].capacity, 4u);
  EXPECT_DOUBLE_EQ(levels[0].hi, 16.0);
}

TEST(BuildCmcLevelsTest, GeneralizedBaseUsesPowersOfOnePlusL) {
  // l = 2 -> base 3. k = 9, B = 9: levels (3,9] cap 3, (1,3] cap 9
  // (clamped at B/k = 1), [0,1] cap 9.
  auto levels = BuildCmcLevels(9.0, 9, 0.0, 2);
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_EQ(levels[0].capacity, 3u);
  EXPECT_DOUBLE_EQ(levels[0].lo, 3.0);
  EXPECT_EQ(levels[1].capacity, 9u);
  EXPECT_DOUBLE_EQ(levels[1].lo, 1.0);
  EXPECT_EQ(levels[2].capacity, 9u);
}

TEST(BuildCmcLevelsTest, CapacityTotalsRespectTheoremBounds) {
  for (std::size_t k : {1u, 2u, 3u, 5u, 10u, 17u, 64u, 100u}) {
    EXPECT_LE(CmcMaxSelectable(k, 0.0, 1), 5 * k) << "k=" << k;
    for (double eps : {0.5, 1.0, 2.0}) {
      EXPECT_LE(CmcMaxSelectable(k, eps, 1),
                static_cast<std::size_t>(std::ceil((1.0 + eps) * double(k))))
          << "k=" << k << " eps=" << eps;
    }
  }
}

TEST(LevelOfTest, MapsCostsToLevels) {
  auto levels = BuildCmcLevels(8.0, 4, 0.0, 1);
  EXPECT_EQ(LevelOf(levels, 9.0), -1);   // over budget
  EXPECT_EQ(LevelOf(levels, 8.0), 0);
  EXPECT_EQ(LevelOf(levels, 4.5), 0);
  EXPECT_EQ(LevelOf(levels, 4.0), 1);    // boundary goes to the cheaper level
  EXPECT_EQ(LevelOf(levels, 2.0), 2);
  EXPECT_EQ(LevelOf(levels, 0.0), 2);    // cheap level is closed at zero
}

SetSystem MakeSystemWithUniverse() {
  SetSystem system(12);
  EXPECT_TRUE(system.AddSet({0, 1, 2}, 3.0).ok());
  EXPECT_TRUE(system.AddSet({3, 4, 5}, 3.0).ok());
  EXPECT_TRUE(system.AddSet({6, 7}, 1.0).ok());
  EXPECT_TRUE(system.AddSet({8}, 0.5).ok());
  EXPECT_TRUE(system.AddSet({9, 10, 11}, 6.0).ok());
  EXPECT_TRUE(
      system
          .AddSet({0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, 50.0, "universe")
          .ok());
  return system;
}

TEST(CmcTest, RejectsBadOptions) {
  SetSystem system = MakeSystemWithUniverse();
  CmcOptions opts;
  opts.k = 0;
  EXPECT_TRUE(RunCmc(system, opts).status().IsInvalidArgument());
  opts = CmcOptions{};
  opts.b = 0.0;
  EXPECT_TRUE(RunCmc(system, opts).status().IsInvalidArgument());
  opts = CmcOptions{};
  opts.coverage_fraction = 2.0;
  EXPECT_TRUE(RunCmc(system, opts).status().IsInvalidArgument());
  opts = CmcOptions{};
  opts.epsilon = -1.0;
  EXPECT_TRUE(RunCmc(system, opts).status().IsInvalidArgument());
  opts = CmcOptions{};
  opts.l = 0;
  EXPECT_TRUE(RunCmc(system, opts).status().IsInvalidArgument());
}

TEST(CmcTest, ZeroTargetReturnsEmptySolution) {
  SetSystem system = MakeSystemWithUniverse();
  CmcOptions opts;
  opts.coverage_fraction = 0.0;
  auto result = RunCmc(system, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->solution.sets.empty());
}

TEST(CmcTest, MeetsRelaxedCoverageWithinSetBound) {
  SetSystem system = MakeSystemWithUniverse();
  for (double fraction : {0.3, 0.5, 0.8, 1.0}) {
    for (std::size_t k : {1u, 2u, 4u}) {
      CmcOptions opts;
      opts.k = k;
      opts.coverage_fraction = fraction;
      auto result = RunCmc(system, opts);
      ASSERT_TRUE(result.ok())
          << "k=" << k << " s=" << fraction << ": "
          << result.status().ToString();
      const std::size_t relaxed_target = SetSystem::CoverageTarget(
          (1.0 - 1.0 / M_E) * fraction, system.num_elements());
      EXPECT_GE(result->solution.covered, relaxed_target);
      EXPECT_LE(result->solution.sets.size(), CmcMaxSelectable(k, 0.0, 1));
      auto audit = AuditSolution(system, result->solution);
      ASSERT_TRUE(audit.ok());
      EXPECT_TRUE(audit->bookkeeping_consistent);
    }
  }
}

TEST(CmcTest, StrictCoverageModeReachesFullTarget) {
  SetSystem system = MakeSystemWithUniverse();
  CmcOptions opts;
  opts.k = 3;
  opts.coverage_fraction = 0.75;
  opts.relax_coverage = false;
  auto result = RunCmc(system, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->solution.covered, 9u);  // 0.75 * 12
}

TEST(CmcTest, EpsilonVariantRespectsSizeBound) {
  SetSystem system = MakeSystemWithUniverse();
  CmcOptions opts;
  opts.k = 4;
  opts.coverage_fraction = 1.0;
  opts.epsilon = 1.0;
  auto result = RunCmc(system, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->solution.sets.size(),
            static_cast<std::size_t>((1.0 + opts.epsilon) * double(opts.k)));
}

TEST(CmcTest, BudgetGrowsGeometrically) {
  SetSystem system = MakeSystemWithUniverse();
  CmcOptions small_b;
  small_b.k = 1;
  small_b.coverage_fraction = 1.0;
  small_b.b = 0.5;
  auto with_small_b = RunCmc(system, small_b);
  CmcOptions big_b = small_b;
  big_b.b = 4.0;
  auto with_big_b = RunCmc(system, big_b);
  ASSERT_TRUE(with_small_b.ok());
  ASSERT_TRUE(with_big_b.ok());
  // Larger b converges in fewer (or equal) rounds.
  EXPECT_LE(with_big_b->budget_rounds, with_small_b->budget_rounds);
}

TEST(CmcTest, FinerBudgetScheduleNeverCostsMoreOnThisInstance) {
  SetSystem system = MakeSystemWithUniverse();
  CmcOptions opts;
  opts.k = 2;
  opts.coverage_fraction = 0.9;
  opts.b = 0.25;
  auto fine = RunCmc(system, opts);
  opts.b = 3.0;
  auto coarse = RunCmc(system, opts);
  ASSERT_TRUE(fine.ok());
  ASSERT_TRUE(coarse.ok());
  // Both are feasible; the finer schedule tracks the optimal budget more
  // closely on this instance (this mirrors Table IV's observation that
  // larger b tends to increase solution cost).
  EXPECT_LE(fine->solution.total_cost,
            coarse->solution.total_cost * (1.0 + 1e-9));
}

TEST(CmcTest, InfeasibleWithoutUniverseAtFullCoverage) {
  SetSystem system(10);
  ASSERT_TRUE(system.AddSet({0, 1}, 1.0).ok());
  ASSERT_TRUE(system.AddSet({2}, 1.0).ok());
  CmcOptions opts;
  opts.k = 1;
  opts.coverage_fraction = 1.0;
  opts.relax_coverage = false;
  EXPECT_TRUE(RunCmc(system, opts).status().IsInfeasible());
}

TEST(CmcTest, EmptySystemIsInfeasible) {
  SetSystem system(5);
  CmcOptions opts;
  EXPECT_TRUE(RunCmc(system, opts).status().IsInfeasible());
}

TEST(CmcTest, AllZeroCostSystemStillCovers) {
  SetSystem system(4);
  ASSERT_TRUE(system.AddSet({0, 1}, 0.0).ok());
  ASSERT_TRUE(system.AddSet({2, 3}, 0.0).ok());
  CmcOptions opts;
  opts.k = 2;
  opts.coverage_fraction = 1.0;
  opts.relax_coverage = false;
  auto result = RunCmc(system, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->solution.covered, 4u);
  EXPECT_DOUBLE_EQ(result->solution.total_cost, 0.0);
}

TEST(CmcTest, UniverseClampRoundCatchesExpensiveUniverse) {
  // The only way to cover everything is a universe set more expensive than
  // the geometric schedule's natural last round; the clamped final round
  // must still find it.
  SetSystem system(8);
  ASSERT_TRUE(system.AddSet({0}, 1.0).ok());
  ASSERT_TRUE(system.AddSet({0, 1, 2, 3, 4, 5, 6, 7}, 100.0, "u").ok());
  CmcOptions opts;
  opts.k = 1;
  opts.coverage_fraction = 1.0;
  opts.relax_coverage = false;
  opts.b = 10.0;  // coarse schedule overshoots the universe cost quickly
  auto result = RunCmc(system, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->solution.covered, 8u);
}

TEST(CmcTest, RandomInstancesRespectTheorem4Bounds) {
  Rng rng(1234);
  for (int trial = 0; trial < 25; ++trial) {
    RandomSystemSpec spec;
    spec.num_elements = 40 + static_cast<std::size_t>(rng.NextBounded(60));
    spec.num_sets = 20 + static_cast<std::size_t>(rng.NextBounded(80));
    spec.max_set_size = 1 + static_cast<std::size_t>(rng.NextBounded(10));
    auto system = RandomSetSystem(spec, rng);
    ASSERT_TRUE(system.ok());
    CmcOptions opts;
    opts.k = 1 + static_cast<std::size_t>(rng.NextBounded(7));
    opts.coverage_fraction = rng.NextDouble(0.1, 1.0);
    auto result = RunCmc(*system, opts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_LE(result->solution.sets.size(), 5 * opts.k);
    const std::size_t relaxed = SetSystem::CoverageTarget(
        (1.0 - 1.0 / M_E) * opts.coverage_fraction, system->num_elements());
    EXPECT_GE(result->solution.covered, relaxed);
  }
}

}  // namespace
}  // namespace scwsc
