// The registry-backed Solver API: every registered solver satisfies the
// uniform request/response contract on a golden instance, dispatching
// through the registry is bit-identical to calling the algorithm directly,
// interruption surrenders a typed partial result, and concurrent solves
// share one immutable snapshot without copying it.

#include "src/api/registry.h"

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/api/instance.h"
#include "src/api/solver.h"
#include "src/core/cmc.h"
#include "src/core/cwsc.h"
#include "src/core/exact.h"
#include "src/gen/lbl_synth.h"
#include "src/gen/toy.h"
#include "src/hierarchy/hierarchy.h"
#include "src/obs/trace.h"
#include "src/pattern/opt_cwsc.h"
#include "tests/test_util.h"

namespace scwsc {
namespace {

using api::InstancePtr;
using api::SolveRequest;
using api::SolveResult;
using api::SolverRegistry;

/// The paper's 16-entity toy table, with flat hierarchies so every solver
/// family (set-system, lattice, hierarchical) can run on it.
InstancePtr GoldenInstance() {
  Table table = gen::MakeEntitiesTable();
  auto hier = hierarchy::TableHierarchy::Flat(table);
  auto instance = api::InstanceSnapshot::FromTable(
      std::move(table), pattern::CostFunction(pattern::CostKind::kMax),
      std::move(hier));
  EXPECT_TRUE(instance.ok()) << instance.status().ToString();
  return *instance;
}

SolveRequest MakeRequest(InstancePtr instance, std::size_t k, double fraction,
                         const std::vector<std::string>& options = {}) {
  auto request = SolveRequest::Builder(std::move(instance))
                     .WithK(k)
                     .WithCoverage(fraction)
                     .WithOptions(options)
                     .Build();
  EXPECT_TRUE(request.ok()) << request.status().ToString();
  return *std::move(request);
}

TEST(SolverRegistryTest, EverySolverSatisfiesContractOnGoldenInstance) {
  const InstancePtr instance = GoldenInstance();
  const auto infos = SolverRegistry::Global().List();
  ASSERT_GE(infos.size(), 14u) << "built-in solvers missing from registry";

  for (const api::SolverInfo& info : infos) {
    // Stubs registered by this test binary don't model real algorithms.
    if (info.name.rfind("test-", 0) == 0) continue;
    SCOPED_TRACE("solver: " + info.name);
    std::vector<std::string> options;
    if (info.name == "budgeted-max-coverage") options = {"budget=100"};
    if (info.name == "nonoverlap") options = {"best_effort=true"};
    auto result = SolverRegistry::Global().Solve(
        info.name, MakeRequest(instance, 3, 0.5, options));
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    // The audit recomputes cost and coverage independently of the
    // algorithm's own bookkeeping; it must agree for every solver.
    EXPECT_TRUE(result->audit.bookkeeping_consistent);
    EXPECT_FALSE(result->labels.empty());
    EXPECT_EQ(result->audit.covered, result->covered);
    EXPECT_NEAR(result->audit.total_cost, result->total_cost, 1e-9);

    // The contract the adapter reported must hold for the result it
    // returned (0 on an axis = no promise there).
    if (result->contract.max_sets > 0) {
      EXPECT_LE(result->labels.size(), result->contract.max_sets);
    }
    if (result->contract.coverage_target > 0) {
      EXPECT_GE(result->covered, result->contract.coverage_target);
    }
  }
}

TEST(SolverRegistryTest, EverySolverEmitsRootSpanWithPhaseChildAndCounters) {
  const InstancePtr instance = GoldenInstance();
  for (const api::SolverInfo& info : SolverRegistry::Global().List()) {
    if (info.name.rfind("test-", 0) == 0) continue;
    SCOPED_TRACE("solver: " + info.name);
    std::vector<std::string> options;
    if (info.name == "budgeted-max-coverage") options = {"budget=100"};
    if (info.name == "nonoverlap") options = {"best_effort=true"};

    obs::TraceSession trace;
    SolveRequest request = MakeRequest(instance, 3, 0.5, options);
    request.trace = &trace;
    auto result = SolverRegistry::Global().Solve(info.name, request);
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    // One closed root span per dispatch, named after the solver...
    const std::vector<obs::SpanRecord> spans = trace.spans();
    const obs::SpanRecord* root = nullptr;
    for (const obs::SpanRecord& s : spans) {
      if (s.name == "solve/" + info.name) root = &s;
    }
    ASSERT_NE(root, nullptr) << "no root span among " << spans.size();
    EXPECT_TRUE(root->closed());
    EXPECT_EQ(root->parent, obs::kNoSpan);

    // ...with at least one phase span nested beneath it.
    bool has_phase_child = false;
    for (const obs::SpanRecord& s : spans) {
      if (s.parent == root->id) has_phase_child = true;
    }
    EXPECT_TRUE(has_phase_child) << "root span has no phase children";

    // Every adapter accounts for its candidate scans (satellite contract:
    // sets_considered must not silently stay zero)...
    EXPECT_GT(result->counters.sets_considered, 0u);
    // ...and the dispatch folded the snapshot into the session's registry.
    EXPECT_EQ(trace.metrics().CounterValue("solve." + info.name + ".solves"),
              1u);
    EXPECT_EQ(
        trace.metrics().CounterValue("solve." + info.name +
                                     ".sets_considered"),
        result->counters.sets_considered);
  }
}

TEST(SolverRegistryTest, GeneralizedCmcReportsBudgetRounds) {
  const InstancePtr instance = GoldenInstance();
  for (const char* name : {"cmc", "cmc-literal", "opt-cmc", "hcmc"}) {
    SCOPED_TRACE(name);
    auto result =
        SolverRegistry::Global().Solve(name, MakeRequest(instance, 3, 0.5));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(result->counters.budget_rounds, 0u);
    EXPECT_GT(result->counters.final_budget, 0.0);
  }
}

TEST(SolverRegistryTest, UntracedRequestRecordsNothing) {
  const InstancePtr instance = GoldenInstance();
  auto result =
      SolverRegistry::Global().Solve("cwsc", MakeRequest(instance, 3, 0.5));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // No session attached: the solve still fills the typed counters.
  EXPECT_GT(result->counters.sets_considered, 0u);
}

TEST(SolverRegistryTest, RegistryDispatchIsBitIdenticalToDirectCalls) {
  gen::LblSynthSpec spec;
  spec.num_rows = 500;
  spec.seed = 7;
  auto table = gen::MakeLblSynth(spec);
  ASSERT_TRUE(table.ok());
  const pattern::CostFunction cost_fn(pattern::CostKind::kMax);
  auto instance =
      api::InstanceSnapshot::FromTable(Table(*table), cost_fn);
  ASSERT_TRUE(instance.ok());
  const std::size_t k = 5;
  const double fraction = 0.4;

  auto system = (*instance)->set_system();
  ASSERT_TRUE(system.ok());

  {  // cwsc == RunCwsc on the same set system.
    auto via_registry = SolverRegistry::Global().Solve(
        "cwsc", MakeRequest(*instance, k, fraction));
    ASSERT_TRUE(via_registry.ok()) << via_registry.status().ToString();
    auto direct = RunCwsc(**system, {k, fraction});
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(via_registry->solution.sets, direct->sets);
    EXPECT_EQ(via_registry->total_cost, direct->total_cost);  // bit-identical
  }
  {  // cmc == RunCmc with default knobs.
    auto via_registry = SolverRegistry::Global().Solve(
        "cmc", MakeRequest(*instance, k, fraction));
    ASSERT_TRUE(via_registry.ok()) << via_registry.status().ToString();
    CmcOptions opts;
    opts.k = k;
    opts.coverage_fraction = fraction;
    auto direct = RunCmc(**system, opts);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(via_registry->solution.sets, direct->solution.sets);
    EXPECT_EQ(via_registry->total_cost, direct->solution.total_cost);
  }
  {  // opt-cwsc == RunOptimizedCwsc on the same table (no enumeration).
    auto via_registry = SolverRegistry::Global().Solve(
        "opt-cwsc", MakeRequest(*instance, k, fraction));
    ASSERT_TRUE(via_registry.ok()) << via_registry.status().ToString();
    auto direct = pattern::RunOptimizedCwsc(*table, cost_fn, {k, fraction});
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(via_registry->patterns, direct->patterns);
    EXPECT_EQ(via_registry->total_cost, direct->total_cost);
  }
  {  // exact == SolveExact.
    auto small = gen::MakeEntitiesTable();
    auto toy = api::InstanceSnapshot::FromTable(Table(small), cost_fn);
    ASSERT_TRUE(toy.ok());
    auto via_registry = SolverRegistry::Global().Solve(
        "exact", MakeRequest(*toy, 2, 9.0 / 16.0));
    ASSERT_TRUE(via_registry.ok()) << via_registry.status().ToString();
    auto toy_system = (*toy)->set_system();
    ASSERT_TRUE(toy_system.ok());
    ExactOptions opts;
    opts.k = 2;
    opts.coverage_fraction = 9.0 / 16.0;
    auto direct = SolveExact(**toy_system, opts);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(via_registry->solution.sets, direct->solution.sets);
    EXPECT_EQ(via_registry->total_cost, direct->solution.total_cost);
  }
}

TEST(SolverRegistryTest, InterruptionReturnsPartialResultPayload) {
  const InstancePtr instance = GoldenInstance();
  RunContext ctx;
  ctx.FailAfter(0);  // cancel at the very first check point
  auto result = SolverRegistry::Global().Solve(
      "cwsc", MakeRequest(instance, 3, 0.5), &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInterruption())
      << result.status().ToString();
  const auto* partial = result.status().payload<SolveResult>();
  ASSERT_NE(partial, nullptr);
  // The partial result obeys the same envelope as a finished one.
  EXPECT_LE(partial->labels.size(), 3u);
  EXPECT_EQ(partial->labels.size(), partial->provenance.sets_chosen);
}

TEST(SolverRegistryTest, ConcurrentSolvesShareOneSnapshotWithoutCopying) {
  const InstancePtr instance = GoldenInstance();
  // Materialize the set-system view up front and pin its address: if any
  // solve copied the snapshot (or rebuilt the view), the pointer would
  // differ afterwards.
  auto before = instance->set_system();
  ASSERT_TRUE(before.ok());
  const SetSystem* view = *before;
  const long baseline_use_count = instance.use_count();

  constexpr int kThreads = 8;
  std::vector<double> costs(kThreads, -1.0);
  std::atomic<int> failures{0};
  {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        const char* solver = (t % 2 == 0) ? "cwsc" : "opt-cwsc";
        auto result = SolverRegistry::Global().Solve(
            solver, MakeRequest(instance, 3, 0.5));
        if (!result.ok()) {
          failures.fetch_add(1);
          return;
        }
        costs[static_cast<std::size_t>(t)] = result->total_cost;
      });
    }
    for (auto& w : workers) w.join();
  }
  EXPECT_EQ(failures.load(), 0);
  // Deterministic algorithms over one immutable snapshot: same answer on
  // every thread, per solver family.
  for (int t = 2; t < kThreads; ++t) {
    EXPECT_DOUBLE_EQ(costs[static_cast<std::size_t>(t)],
                     costs[static_cast<std::size_t>(t % 2)]);
  }
  auto after = instance->set_system();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, view);  // the shared view was never rebuilt or copied
  EXPECT_EQ(instance.use_count(), baseline_use_count);  // no handle leaked
}

// A complete out-of-tree solver: one class + one macro line, as
// docs/api.md promises.
class FixedAnswerSolver : public api::Solver {
 public:
  Result<SolveResult> Solve(const SolveRequest& request,
                            const RunContext*) const override {
    SolveResult result;
    result.labels = {"the-answer"};
    result.covered = request.instance->num_elements();
    result.audit.bookkeeping_consistent = true;
    result.seconds = 42.0;
    return result;
  }
};
SCWSC_REGISTER_SOLVER(
    FixedAnswerSolver,
    api::SolverInfo{"test-fixed-answer",
                    "registration test stub",
                    0,
                    {{"knob", api::OptionType::kU64, "0", "test knob", "",
                      false}}});

TEST(SolverRegistryTest, CustomSolverRegistersThroughMacro) {
  const api::SolverInfo* info =
      SolverRegistry::Global().Find("test-fixed-answer");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->summary, "registration test stub");

  const InstancePtr instance = GoldenInstance();
  auto result = SolverRegistry::Global().Solve(
      "test-fixed-answer", MakeRequest(instance, 1, 0.1, {"knob=7"}));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->labels, std::vector<std::string>{"the-answer"});
  EXPECT_EQ(result->seconds, 42.0);
}

TEST(SolverRegistryTest, DuplicateAndEmptyRegistrationsAreRejected) {
  auto& registry = SolverRegistry::Global();
  auto factory = []() -> std::unique_ptr<api::Solver> {
    return std::make_unique<FixedAnswerSolver>();
  };
  EXPECT_TRUE(registry
                  .Register(api::SolverInfo{"test-fixed-answer", "dup", 0, {}},
                            factory)
                  .IsInvalidArgument());
  EXPECT_TRUE(registry.Register(api::SolverInfo{"", "anon", 0, {}}, factory)
                  .IsInvalidArgument());
  EXPECT_TRUE(
      registry.Register(api::SolverInfo{"test-null", "null", 0, {}}, nullptr)
          .IsInvalidArgument());
}

TEST(SolverRegistryTest, UnknownSolverListsRegisteredNames) {
  const InstancePtr instance = GoldenInstance();
  auto result = SolverRegistry::Global().Solve(
      "no-such-solver", MakeRequest(instance, 3, 0.5));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_NE(std::string(result.status().message()).find("opt-cwsc"),
            std::string::npos);
}

TEST(SolverRegistryTest, UnknownOptionIsRejectedBeforeSolving) {
  const InstancePtr instance = GoldenInstance();
  auto result = SolverRegistry::Global().Solve(
      "cmc", MakeRequest(instance, 3, 0.5, {"espilon=2"}));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  // The error names the typo and the accepted keys.
  const std::string message(result.status().message());
  EXPECT_NE(message.find("espilon"), std::string::npos);
  EXPECT_NE(message.find("epsilon"), std::string::npos);
}

TEST(SolverRegistryTest, LookupIsCaseInsensitive) {
  const api::SolverInfo* upper = SolverRegistry::Global().Find("CWSC");
  ASSERT_NE(upper, nullptr);
  EXPECT_EQ(upper->name, "cwsc");  // canonical spelling, not the query's

  const InstancePtr instance = GoldenInstance();
  auto mixed =
      SolverRegistry::Global().Solve("CwSc", MakeRequest(instance, 3, 0.5));
  auto lower =
      SolverRegistry::Global().Solve("cwsc", MakeRequest(instance, 3, 0.5));
  ASSERT_TRUE(mixed.ok()) << mixed.status().ToString();
  ASSERT_TRUE(lower.ok());
  EXPECT_EQ(mixed->labels, lower->labels);
  EXPECT_EQ(mixed->total_cost, lower->total_cost);
}

TEST(SolverRegistryTest, DeprecatedAliasMapsToCanonicalKey) {
  const InstancePtr instance = GoldenInstance();
  auto via_alias = SolverRegistry::Global().Solve(
      "cmc", MakeRequest(instance, 3, 0.5, {"max-budget-rounds=64"}));
  auto via_canonical = SolverRegistry::Global().Solve(
      "cmc", MakeRequest(instance, 3, 0.5, {"max_budget_rounds=64"}));
  ASSERT_TRUE(via_alias.ok()) << via_alias.status().ToString();
  ASSERT_TRUE(via_canonical.ok());
  EXPECT_EQ(via_alias->labels, via_canonical->labels);
  EXPECT_EQ(via_alias->total_cost, via_canonical->total_cost);

  // Spelling both the alias and the canonical key is ambiguous, not merged.
  auto both = SolverRegistry::Global().Solve(
      "cmc", MakeRequest(instance, 3, 0.5,
                         {"max-budget-rounds=64", "max_budget_rounds=32"}));
  ASSERT_FALSE(both.ok());
  EXPECT_TRUE(both.status().IsInvalidArgument());
}

// The options round-trip property: for every registered solver, spelling
// out each option's spec default as an "--opt key=value" string must yield
// a SolveResult bit-identical to the request that says nothing at all —
// i.e. the parse path (CLI strings -> OptionsBag -> Canonicalize -> typed
// reads) agrees with the defaults compiled into the adapters.
TEST(SolverRegistryTest, SpecDefaultsRoundTripBitIdentically) {
  const InstancePtr instance = GoldenInstance();
  for (const api::SolverInfo& info : SolverRegistry::Global().List()) {
    if (info.name.rfind("test-", 0) == 0) continue;
    SCOPED_TRACE("solver: " + info.name);

    // Required options have no default; both arms carry the same value.
    std::vector<std::string> baseline;
    std::vector<std::string> explicit_defaults;
    for (const api::OptionSpec& opt : info.options) {
      if (opt.required) {
        baseline.push_back(opt.name + "=100");
        explicit_defaults.push_back(opt.name + "=100");
      } else {
        explicit_defaults.push_back(opt.name + "=" + opt.default_value);
      }
    }

    auto implicit = SolverRegistry::Global().Solve(
        info.name, MakeRequest(instance, 3, 0.5, baseline));
    auto spelled = SolverRegistry::Global().Solve(
        info.name, MakeRequest(instance, 3, 0.5, explicit_defaults));
    ASSERT_EQ(implicit.ok(), spelled.ok())
        << implicit.status().ToString() << " vs "
        << spelled.status().ToString();
    if (!implicit.ok()) {
      // Some solvers are legitimately infeasible here (e.g. nonoverlap
      // without best_effort); both arms must then fail identically.
      EXPECT_EQ(implicit.status().code(), spelled.status().code());
      continue;
    }
    EXPECT_EQ(implicit->labels, spelled->labels);
    EXPECT_EQ(implicit->total_cost, spelled->total_cost);  // bit-identical
    EXPECT_EQ(implicit->covered, spelled->covered);
  }
}

TEST(SolverRegistryTest, BuilderDefersParseErrorsToBuild) {
  const InstancePtr instance = GoldenInstance();
  auto bad = SolveRequest::Builder(instance)
                 .WithK(3)
                 .WithOptions({"not-an-assignment"})
                 .WithCoverage(0.5)  // chaining continues past the error
                 .Build();
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST(SolverRegistryTest, RequestDeadlineConflictsWithExplicitRunContext) {
  const InstancePtr instance = GoldenInstance();
  auto request = SolveRequest::Builder(instance)
                     .WithK(3)
                     .WithCoverage(0.5)
                     .WithDeadline(std::chrono::milliseconds(5000))
                     .Build();
  ASSERT_TRUE(request.ok());

  // Deadline alone: applied via an internal context; a generous budget
  // leaves the solve untouched.
  auto result = SolverRegistry::Global().Solve("cwsc", *request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Deadline plus an explicit context: ambiguous authority, rejected.
  RunContext ctx;
  auto conflict = SolverRegistry::Global().Solve("cwsc", *request, &ctx);
  ASSERT_FALSE(conflict.ok());
  EXPECT_TRUE(conflict.status().IsInvalidArgument());
}

TEST(SolverRegistryTest, CapabilityMismatchIsATypedError) {
  // A lattice solver cannot run on an explicit set system...
  SetSystem system(4);
  ASSERT_TRUE(system.AddSet({0, 1}, 1.0, "a").ok());
  ASSERT_TRUE(system.AddSet({2, 3}, 1.0, "b").ok());
  auto raw = api::InstanceSnapshot::FromSetSystem(std::move(system));
  ASSERT_TRUE(raw.ok());
  auto result = SolverRegistry::Global().Solve(
      "opt-cwsc", MakeRequest(*raw, 2, 0.5));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());

  // ...and a hierarchical solver cannot run without hierarchies.
  auto flat = api::InstanceSnapshot::FromTable(
      gen::MakeEntitiesTable(),
      pattern::CostFunction(pattern::CostKind::kMax));
  ASSERT_TRUE(flat.ok());
  auto hresult = SolverRegistry::Global().Solve(
      "hcwsc", MakeRequest(*flat, 2, 0.5));
  ASSERT_FALSE(hresult.ok());
  EXPECT_TRUE(hresult.status().IsInvalidArgument());
  EXPECT_NE(std::string(hresult.status().message()).find("hierarch"),
            std::string::npos);
}

}  // namespace
}  // namespace scwsc
