#include "src/pattern/pattern.h"

#include <algorithm>
#include <numeric>

#include <unordered_set>

#include "gtest/gtest.h"
#include "src/gen/toy.h"
#include "src/pattern/lattice.h"
#include "tests/test_util.h"

namespace scwsc {
namespace {

using pattern::CanonicalLess;
using pattern::kAll;
using pattern::Pattern;
using pattern::PatternHash;
using test::MakePattern;

TEST(PatternTest, AllWildcardsHasNoConstants) {
  Pattern p = Pattern::AllWildcards(3);
  EXPECT_EQ(p.num_attributes(), 3u);
  EXPECT_EQ(p.num_constants(), 0u);
  for (std::size_t a = 0; a < 3; ++a) EXPECT_TRUE(p.is_wildcard(a));
}

TEST(PatternTest, WithValueAndWithWildcardRoundTrip) {
  Pattern p = Pattern::AllWildcards(2);
  Pattern child = p.WithValue(1, 5);
  EXPECT_EQ(child.num_constants(), 1u);
  EXPECT_EQ(child.value(1), 5u);
  EXPECT_TRUE(child.is_wildcard(0));
  EXPECT_EQ(child.WithWildcard(1), p);
}

TEST(PatternTest, MatchesAgreesWithPaperSemantics) {
  Table table = gen::MakeEntitiesTable();
  // {Type=ALL, Location=West} covers records 1 and 7 (ids 0 and 6).
  Pattern west = MakePattern(table, {"*", "West"});
  std::vector<RowId> matched;
  for (RowId r = 0; r < table.num_rows(); ++r) {
    if (west.Matches(table, r)) matched.push_back(r);
  }
  EXPECT_EQ(matched, (std::vector<RowId>{0, 6}));

  // {Type=B, Location=South} covers records 3 and 13 (ids 2 and 12).
  Pattern bsouth = MakePattern(table, {"B", "South"});
  matched.clear();
  for (RowId r = 0; r < table.num_rows(); ++r) {
    if (bsouth.Matches(table, r)) matched.push_back(r);
  }
  EXPECT_EQ(matched, (std::vector<RowId>{2, 12}));
}

TEST(PatternTest, AllWildcardsMatchesEverything) {
  Table table = gen::MakeEntitiesTable();
  Pattern all = Pattern::AllWildcards(2);
  for (RowId r = 0; r < table.num_rows(); ++r) {
    EXPECT_TRUE(all.Matches(table, r));
  }
}

TEST(PatternTest, GeneralizesIsReflexiveAndLatticeConsistent) {
  Table table = gen::MakeEntitiesTable();
  Pattern all = Pattern::AllWildcards(2);
  Pattern a_any = MakePattern(table, {"A", "*"});
  Pattern a_west = MakePattern(table, {"A", "West"});
  EXPECT_TRUE(all.Generalizes(a_west));
  EXPECT_TRUE(a_any.Generalizes(a_west));
  EXPECT_TRUE(a_west.Generalizes(a_west));
  EXPECT_FALSE(a_west.Generalizes(a_any));
  EXPECT_FALSE(a_any.Generalizes(MakePattern(table, {"B", "West"})));
}

TEST(PatternTest, ToStringShowsNamesAndWildcards) {
  Table table = gen::MakeEntitiesTable();
  Pattern p = MakePattern(table, {"B", "*"});
  EXPECT_EQ(p.ToString(table), "{Type=B, Location=ALL}");
}

TEST(CanonicalLessTest, ConcreteValuesOrderBeforeAll) {
  Pattern v0({0, kAll});
  Pattern v1({1, kAll});
  Pattern all({kAll, kAll});
  EXPECT_TRUE(CanonicalLess(v0, v1));
  EXPECT_TRUE(CanonicalLess(v1, all));
  EXPECT_TRUE(CanonicalLess(v0, all));
  EXPECT_FALSE(CanonicalLess(all, v0));
  EXPECT_FALSE(CanonicalLess(v0, v0));
}

TEST(CanonicalLessTest, IsAStrictTotalOrderOnEnumeratedPatterns) {
  std::vector<Pattern> patterns;
  for (ValueId a : {ValueId{0}, ValueId{1}, kAll}) {
    for (ValueId b : {ValueId{0}, ValueId{1}, ValueId{2}, kAll}) {
      patterns.push_back(Pattern({a, b}));
    }
  }
  std::sort(patterns.begin(), patterns.end(), CanonicalLess);
  for (std::size_t i = 0; i + 1 < patterns.size(); ++i) {
    EXPECT_TRUE(CanonicalLess(patterns[i], patterns[i + 1]));
    EXPECT_FALSE(CanonicalLess(patterns[i + 1], patterns[i]));
  }
}

TEST(PatternHashTest, EqualPatternsHashEqual) {
  PatternHash hash;
  Pattern a({1, kAll, 3});
  Pattern b({1, kAll, 3});
  EXPECT_EQ(hash(a), hash(b));
  EXPECT_EQ(a, b);
}

TEST(PatternHashTest, WorksInUnorderedSet) {
  std::unordered_set<Pattern, PatternHash> set;
  set.insert(Pattern({0, 1}));
  set.insert(Pattern({0, kAll}));
  set.insert(Pattern({0, 1}));  // duplicate
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count(Pattern({0, kAll})));
}

TEST(LatticeTest, ParentsReplaceOneConstantEach) {
  Pattern p({1, 2, pattern::kAll});
  auto parents = pattern::Parents(p);
  ASSERT_EQ(parents.size(), 2u);
  EXPECT_EQ(parents[0], Pattern({kAll, 2, kAll}));
  EXPECT_EQ(parents[1], Pattern({1, kAll, kAll}));
}

TEST(LatticeTest, RootHasNoParents) {
  EXPECT_TRUE(pattern::Parents(Pattern::AllWildcards(4)).empty());
}

TEST(LatticeTest, GroupChildrenPartitionsRowsPerAttribute) {
  Table table = gen::MakeEntitiesTable();
  Pattern root = Pattern::AllWildcards(2);
  std::vector<RowId> all_rows(table.num_rows());
  std::iota(all_rows.begin(), all_rows.end(), RowId{0});
  auto groups = pattern::GroupChildren(table, root, all_rows);
  // Attribute 0 contributes 2 groups (A, B), attribute 1 contributes 7.
  ASSERT_EQ(groups.size(), 9u);
  std::size_t attr0_rows = 0;
  std::size_t attr1_rows = 0;
  for (const auto& g : groups) {
    if (g.attr == 0) {
      attr0_rows += g.marginal_rows.size();
    } else {
      attr1_rows += g.marginal_rows.size();
    }
  }
  EXPECT_EQ(attr0_rows, 16u);  // partition of all rows
  EXPECT_EQ(attr1_rows, 16u);
}

TEST(LatticeTest, GroupChildrenOnlyExpandsWildcards) {
  Table table = gen::MakeEntitiesTable();
  Pattern p = MakePattern(table, {"A", "*"});
  std::vector<RowId> rows;
  for (RowId r = 0; r < table.num_rows(); ++r) {
    if (p.Matches(table, r)) rows.push_back(r);
  }
  auto groups = pattern::GroupChildren(table, p, rows);
  for (const auto& g : groups) {
    EXPECT_EQ(g.attr, 1u);  // Type is fixed, only Location expands
  }
  ASSERT_EQ(groups.size(), 7u);  // A appears with 7 locations
}

TEST(LatticeTest, GroupChildrenIsDeterministicallyOrdered) {
  Table table = gen::MakeEntitiesTable();
  Pattern root = Pattern::AllWildcards(2);
  std::vector<RowId> all_rows(table.num_rows());
  std::iota(all_rows.begin(), all_rows.end(), RowId{0});
  auto g1 = pattern::GroupChildren(table, root, all_rows);
  auto g2 = pattern::GroupChildren(table, root, all_rows);
  ASSERT_EQ(g1.size(), g2.size());
  for (std::size_t i = 0; i < g1.size(); ++i) {
    EXPECT_EQ(g1[i].attr, g2[i].attr);
    EXPECT_EQ(g1[i].value, g2[i].value);
    EXPECT_EQ(g1[i].marginal_rows, g2[i].marginal_rows);
  }
  // Within each attribute, groups are sorted by value id.
  for (std::size_t i = 0; i + 1 < g1.size(); ++i) {
    if (g1[i].attr == g1[i + 1].attr) {
      EXPECT_LT(g1[i].value, g1[i + 1].value);
    }
  }
}

TEST(LatticeTest, GroupChildrenOfLeafIsEmpty) {
  Table table = gen::MakeEntitiesTable();
  Pattern leaf = MakePattern(table, {"A", "West"});
  auto groups = pattern::GroupChildren(table, leaf, {0});
  EXPECT_TRUE(groups.empty());
}

}  // namespace
}  // namespace scwsc
